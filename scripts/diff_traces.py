#!/usr/bin/env python3
"""Compare two JSONL event-trace dumps and report the first divergence.

Usage:
    scripts/diff_traces.py A.jsonl B.jsonl [--context N]

The inputs are the per-thread trace dumps the torture harness and the
golden-trace test produce (`export::jsonl` in `sprwl-trace`): one JSON
object per line. Torture postmortems carry a metadata object on the first
line; it is compared like any other line, so two postmortems of the same
violation also diff cleanly.

Two runs of a deterministic-scheduler case with the same seeds must be
byte-identical; the first differing line is where the schedules forked,
which is the interesting line for debugging (everything after it is
downstream noise). Exit status: 0 when identical, 1 on divergence, 2 on
usage errors — so the script doubles as a CI assertion.

This is the offline twin of `sprwl_torture::first_divergence`.
"""

import argparse
import itertools
import json
import sys


def load_lines(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return f.read().splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def describe(line):
    """One-phrase summary of an event line, best-effort."""
    if line == "<end of trace>":
        return "(trace ended early)"
    try:
        ev = json.loads(line)
    except (json.JSONDecodeError, ValueError):
        return "(unparseable line)"
    if "ev" in ev:
        return f"tid={ev.get('tid')} ts={ev.get('ts')} ev={ev.get('ev')}"
    return "(metadata line)"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("a", help="first trace dump (JSONL)")
    ap.add_argument("b", help="second trace dump (JSONL)")
    ap.add_argument(
        "--context",
        type=int,
        default=2,
        metavar="N",
        help="matching lines to show before the divergence (default 2)",
    )
    args = ap.parse_args()

    la, lb = load_lines(args.a), load_lines(args.b)
    end = "<end of trace>"
    for n, (x, y) in enumerate(itertools.zip_longest(la, lb), start=1):
        if x == y:
            continue
        x = end if x is None else x
        y = end if y is None else y
        lo = max(0, n - 1 - args.context)
        for i in range(lo, n - 1):
            print(f"  {i + 1:>6}  = {la[i]}")
        print(f"  {n:>6}  < {x}")
        print(f"  {'':>6}  > {y}")
        print()
        print(f"first divergence at line {n}:")
        print(f"  {args.a}: {describe(x)}")
        print(f"  {args.b}: {describe(y)}")
        same = len(la) == len(lb)
        if not same:
            print(f"  (lengths differ: {len(la)} vs {len(lb)} lines)")
        return 1

    print(f"identical: {len(la)} lines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
