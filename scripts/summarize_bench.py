#!/usr/bin/env python3
"""Summarizes benchmark captures into the comparison tables EXPERIMENTS.md
embeds. Three input shapes:

* ``BENCH_*.json`` — a schema-versioned results document from
  ``bench-sweep`` (see ``results/SCHEMA.md``). Detected by a ``.json``
  suffix or a leading ``{``.
* an ``sprwl-analyze`` report (also ``.json``; detected by its
  ``top_pairs`` key) — rendered as the top-conflict/line-heat tables.
* ``bench_output.txt`` — legacy ``CSV:``-prefixed rows from the figure
  benches (19 columns):
    fig,profile,param,lock,threads,tx_s,abort_pct,htm,rot,gl,unins,
    rd_mean_ns,wr_mean_ns,rd_p50_ns,rd_p95_ns,rd_p99_ns,
    wr_p50_ns,wr_p95_ns,wr_p99_ns
  Older captures with the pre-percentile 15-column shape still parse; the
  latency summaries just skip them.
"""
import collections
import json
import sys


def summarize_json(doc: dict) -> None:
    if doc.get("schema_version") != 1:
        sys.exit(f"unsupported schema_version {doc.get('schema_version')!r}")
    hw = doc.get("hardware", {})
    print(
        f"BENCH_{doc['category']}_{doc['date']} @ {doc['git_commit']} "
        f"({doc['mode']}, {doc['capacity_profile']}, "
        f"{hw.get('os', '?')}/{hw.get('arch', '?')}, "
        f"{len(doc['points'])} points)"
    )
    if doc.get("params"):
        print("params: " + ", ".join(f"{k}={v}" for k, v in sorted(doc["params"].items())))

    groups = collections.defaultdict(dict)
    for p in doc["points"]:
        groups[(p["workload"], p["threads"])][p["lock"]] = p
    for (workload, threads) in sorted(groups, key=str):
        locks = groups[(workload, threads)]
        best = max(locks.items(), key=lambda kv: kv[1]["throughput"])
        line = " | ".join(
            f"{name} {p['throughput'] / 1e3:.0f}k" for name, p in sorted(locks.items())
        )
        print(f"{workload} thr={threads}: {line}  [best: {best[0]}]")
    # Capacity-sweep rows: wherever a workload carries both stretch arms,
    # print the before/after contrast the capacity documents exist for —
    # writer capacity aborts (plain + ROT) and the throughput delta of
    # turning the stretching ladder on.
    for (workload, threads) in sorted(groups, key=str):
        locks = groups[(workload, threads)]
        off, on = locks.get("SpRWL"), locks.get("SpRWL+stretch")
        if not off or not on:
            continue

        def caps(p):
            return p["aborts"].get("capacity", 0) + p["aborts"].get("capacity-rot", 0)

        delta = (on["throughput"] / max(off["throughput"], 1e-9) - 1) * 100
        print(
            f"  stretch {workload} thr={threads}: capacity aborts "
            f"{caps(off)} -> {caps(on)}, tx/s {delta:+.1f}%"
        )
    for (workload, threads) in sorted(groups, key=str):
        cells = []
        for name, p in sorted(groups[(workload, threads)].items()):
            lat = p["reader_latency_ns"]
            if lat["samples"] == 0:
                continue
            cells.append(
                f"{name} {lat['p50'] / 1e3:.0f}/{lat['p95'] / 1e3:.0f}/{lat['p99'] / 1e3:.0f}"
            )
        if cells:
            print(f"  rd lat us p50/p95/p99 {workload} thr={threads}: " + " | ".join(cells))
    # Per-shard rows (schema minor >= 1, server-category points). A point
    # without a `shards` array — every pre-minor-1 document — prints nothing.
    for (workload, threads) in sorted(groups, key=str):
        for name, p in sorted(groups[(workload, threads)].items()):
            shards = p.get("shards")
            if not shards:
                continue
            cells = []
            for sh in shards:
                modes = "/".join(
                    str(sh["commit_mode"][m]) for m in ("htm", "rot", "gl", "unins")
                )
                cells.append(f"s{sh['shard']} {sh['commits']}c {sh['aborts']}a [{modes}]")
            print(
                f"  shards {workload} {name} thr={threads}: " + " | ".join(cells)
            )


def summarize_analyzer(doc: dict) -> None:
    """Renders an ``sprwl-analyze`` contention report as the tables
    EXPERIMENTS.md §7f embeds: top conflicting section pairs, cache-line
    heat with peer attribution, per-section rollups, tune decisions."""
    if doc.get("schema_version") != 1:
        sys.exit(f"unsupported analyzer schema_version {doc.get('schema_version')!r}")
    samp = doc.get("sampling")
    scale = ""
    if samp:
        scale = (
            f", sampled 1/{samp['max_rate']}"
            f" ({samp['sections_sampled']}/{samp['sections_seen']} sections kept)"
        )
    print(
        f"analyzer report: {doc['events']} events, {doc['threads']} threads, "
        f"{doc['dropped']} dropped{scale}"
    )
    if doc["top_pairs"]:
        print("top conflicting section pairs:")
        for p in doc["top_pairs"]:
            causes = ", ".join(f"{k}={v}" for k, v in sorted(p["causes"].items()))
            print(f"  sec {p['a']} x sec {p['b']}: {p['count']} aborts ({causes})")
    else:
        print("top conflicting section pairs: none")
    if doc["line_heat"]:
        print("hottest cache lines:")
        for ln in doc["line_heat"]:
            peers = ", ".join(
                f"tid{t}={n}"
                for t, n in sorted(ln["peers"].items(), key=lambda kv: (-kv[1], kv[0]))
            )
            print(f"  line {ln['line']}: {ln['count']} conflicts (winners: {peers})")
    for s in doc["sections"]:
        lat = s["latency_ns"]
        modes = ", ".join(f"{k}:{v}" for k, v in sorted(s["modes"].items()))
        print(
            f"  sec {s['sec']}: {s['reader_execs']}r/{s['writer_execs']}w execs, "
            f"abort rate {100 * s['abort_rate']:.1f}%, modes [{modes}], "
            f"lat p50/p99 {lat['p50']}/{lat['p99']}ns"
        )
    for d in doc.get("tune_decisions", []):
        print(
            f"  tune @{d['ts']} tid{d['tid']}: {d['knob']} sec {d['sec']} -> {d['value']}"
        )


def summarize_csv(path: str) -> None:
    rows = []
    for line in open(path, encoding="utf-8", errors="replace"):
        line = line.strip()
        if not line.startswith("CSV:"):
            continue
        parts = line[4:].split(",")
        if len(parts) < 13:
            continue
        rows.append(parts)

    by_fig = collections.defaultdict(list)
    for r in rows:
        by_fig[r[0]].append(r)

    for fig in sorted(by_fig):
        print(f"\n### {fig}")
        groups = collections.defaultdict(dict)
        for r in by_fig[fig]:
            profile, param, lock, threads = r[1], r[2], r[3], int(r[4])
            groups[(profile, param, threads)][lock] = r
        for key in sorted(groups, key=str):
            profile, param, threads = key
            locks = groups[key]
            best = max(locks.items(), key=lambda kv: float(kv[1][5]))
            line = " | ".join(
                f"{name} {float(r[5])/1e3:.0f}k" for name, r in sorted(locks.items())
            )
            print(f"{profile} {param} thr={threads}: {line}  [best: {best[0]}]")
        # Per-figure speedup summaries of interest.
        if fig in ("fig3", "fig4"):
            for key, locks in sorted(groups.items(), key=str):
                if "SpRWL" in locks and "TLE" in locks:
                    s = float(locks["SpRWL"][5]) / max(float(locks["TLE"][5]), 1)
                    print(f"  SpRWL/TLE {key}: {s:.2f}x")
        # Reader tail latency (p50/p95/p99, us) where the row carries the
        # 19-column percentile shape.
        for key in sorted(groups, key=str):
            profile, param, threads = key
            cells = []
            for name, r in sorted(groups[key].items()):
                if len(r) < 19:
                    continue
                p50, p95, p99 = (float(r[i]) / 1e3 for i in (13, 14, 15))
                cells.append(f"{name} {p50:.0f}/{p95:.0f}/{p99:.0f}")
            if cells:
                print(
                    f"  rd lat us p50/p95/p99 {profile} {param} thr={threads}: "
                    + " | ".join(cells)
                )


def main(path: str) -> None:
    with open(path, encoding="utf-8", errors="replace") as f:
        head = f.read(1)
    if path.endswith(".json") or head == "{":
        doc = json.load(open(path, encoding="utf-8"))
        if "top_pairs" in doc:
            summarize_analyzer(doc)
        else:
            summarize_json(doc)
    else:
        summarize_csv(path)


if __name__ == "__main__":
    try:
        main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe early.
        sys.stderr.close()
        sys.exit(0)
