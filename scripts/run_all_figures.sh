#!/usr/bin/env bash
# Regenerates every figure of the paper plus the ablations, writing the
# combined output to bench_output.txt at the repository root.
#
# Usage: scripts/run_all_figures.sh [secs-per-point] [thread-sweep]
set -euo pipefail
cd "$(dirname "$0")/.."

export SPRWL_BENCH_SECS="${1:-0.25}"
export SPRWL_BENCH_THREADS="${2:-1,2,4,8}"

echo "== SpRWL figure regeneration: ${SPRWL_BENCH_SECS}s/point, threads ${SPRWL_BENCH_THREADS} =="
cargo bench -p sprwl-bench 2>&1 | tee bench_output.txt
echo "== done; see bench_output.txt =="
