#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 build+test, and a torture smoke.
# Everything runs offline against the in-workspace dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

# Torture postmortems (oracle violations and non-linearizable histories)
# land in a known directory so CI can upload them as build artifacts on
# failure instead of losing them in the OS temp dir.
export TORTURE_DUMP_DIR="${TORTURE_DUMP_DIR:-$PWD/target/torture-dumps}"
mkdir -p "$TORTURE_DUMP_DIR"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> torture smoke (full matrix, reduced depth)"
cargo run -q --release --offline -p sprwl-torture -- --threads 2 --ops 100

echo "==> deterministic torture smoke (serialized scheduler, incl. mid-run thread churn cases)"
cargo run -q --release --offline -p sprwl-torture -- --det --threads 2 --ops 100

echo "==> lincheck smoke (checker accepts the committed cross-lock golden history)"
CROSS_GOLDEN=crates/torture/tests/golden/det_cross_smoke.trace.jsonl
cargo run -q --release --offline -p sprwl-lincheck -- "$CROSS_GOLDEN" > /dev/null
# An injected bug must flip the verdict to exactly exit 1 (non-linearizable).
# "Any non-zero" is not good enough: exit 2 means the checker gave up
# (budget/incomplete history), and a gate that confuses the two passes
# vacuously the day the budget is too small for the golden history.
rc=0
cargo run -q --release --offline -p sprwl-lincheck -- "$CROSS_GOLDEN" \
    --mutate drop-commit > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "lincheck mutate smoke: expected exit 1 (violation), got $rc" >&2
    exit 1
fi
# And a starved budget must answer exit 2 (unknown), not a violation.
rc=0
cargo run -q --release --offline -p sprwl-lincheck -- "$CROSS_GOLDEN" \
    --max-nodes 1 > /dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "lincheck budget smoke: expected exit 2 (unknown), got $rc" >&2
    exit 1
fi

echo "==> explore smoke (injected bug found by schedule search, then replayed bit-exactly)"
# The weakened commit-time reader check must be caught within a bounded
# frontier; the violating decision trace lands in TORTURE_DUMP_DIR (so CI
# uploads it as an artifact) and must replay bit-exactly.
EXPLORE_OUT=$(cargo run -q --release --offline -p sprwl-torture -- explore \
    --inject-bug --budget 256 --seed 225 --expect-violation)
echo "$EXPLORE_OUT"
SCHEDULE=$(printf '%s\n' "$EXPLORE_OUT" | sed -n 's/^schedule: //p')
test -s "$SCHEDULE"
cargo run -q --release --offline -p sprwl-torture -- explore \
    --replay-schedule "$SCHEDULE"

echo "==> diff_traces smoke (identical -> 0, divergence -> 1)"
python3 scripts/diff_traces.py "$CROSS_GOLDEN" "$CROSS_GOLDEN" > /dev/null
head -n -1 "$CROSS_GOLDEN" > target/truncated-golden.jsonl
if python3 scripts/diff_traces.py "$CROSS_GOLDEN" target/truncated-golden.jsonl > /dev/null; then
    echo "diff_traces.py failed to flag a truncated trace" >&2
    exit 1
fi
rm -f target/truncated-golden.jsonl

echo "==> trace smoke (fig3 --trace produces a non-empty Chrome trace)"
# Benches run with cwd at the package root, so hand them an absolute path.
SPRWL_BENCH_SECS=0.05 SPRWL_BENCH_THREADS=2 \
    cargo bench -q -p sprwl-bench --bench fig3 --offline -- --trace "$PWD/target/trace-smoke.json" \
    > /dev/null
test -s target/trace-smoke.json
cargo test -q -p sprwl-trace --offline > /dev/null

echo "==> bench pipeline smoke (BENCH_*.json emit + compare exit-code contract)"
BENCH_SMOKE_DIR=target/bench-smoke
rm -rf "$BENCH_SMOKE_DIR"
mkdir -p "$BENCH_SMOKE_DIR"
bench_sweep() { cargo run -q --release --offline -p sprwl-bench --bin bench-sweep -- "$@"; }
bench_compare() { cargo run -q --release --offline -p sprwl-bench --bin bench-compare -- "$@"; }
# A small deterministic grid must emit a parsable, summarizable document.
bench_sweep --det --threads 1,2 --ops 400 --warmup-ops 50 --locks SpRWL,TLE \
    --workloads read-only,hot-key --category smoke --out "$BENCH_SMOKE_DIR" > /dev/null
SMOKE_JSON=$(ls "$BENCH_SMOKE_DIR"/BENCH_smoke_*.json)
python3 scripts/summarize_bench.py "$SMOKE_JSON" > /dev/null
# Self-diff is clean (exit 0)...
bench_compare "$SMOKE_JSON" "$SMOKE_JSON" > /dev/null
# ...and an injected throughput regression fails with exactly exit 1.
# "Any non-zero" is not good enough: exit 2 means the documents never got
# compared (parse/schema error) and exit 3 means nothing matched — a gate
# that confuses those with a regression verdict passes vacuously the day
# the schema drifts.
python3 - "$SMOKE_JSON" "$BENCH_SMOKE_DIR/regressed.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for p in doc["points"]:
    p["throughput"] *= 0.4
json.dump(doc, open(sys.argv[2], "w"))
EOF
rc=0
bench_compare "$SMOKE_JSON" "$BENCH_SMOKE_DIR/regressed.json" > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "bench-compare regression smoke: expected exit 1, got $rc" >&2
    exit 1
fi

echo "==> trace-overhead smoke (sampled tracing within 3% of off) + analyzer contract"
# Two single-policy sweeps over an identical deterministic grid produce
# documents with identical point keys, so bench-compare can bound the
# sampled policy's throughput cost against tracing-off directly. The
# deterministic virtual clock makes the 3% bound tight-but-stable: any
# drift here is sampling bookkeeping on the hot path, not host noise.
bench_sweep --det --threads 2 --ops 600 --warmup-ops 50 --locks SpRWL \
    --workloads mixed-90-10,hot-key --trace off \
    --category traceoff --out "$BENCH_SMOKE_DIR" > /dev/null
bench_sweep --det --threads 2 --ops 600 --warmup-ops 50 --locks SpRWL \
    --workloads mixed-90-10,hot-key --trace sampled:64:4096 \
    --capture "$BENCH_SMOKE_DIR/capture.jsonl" \
    --category tracesampled --out "$BENCH_SMOKE_DIR" > /dev/null
bench_compare "$BENCH_SMOKE_DIR"/BENCH_traceoff_*.json \
    "$BENCH_SMOKE_DIR"/BENCH_tracesampled_*.json \
    --throughput-drop-pct 3 --abort-rise-pp 5 --p99-rise-pct 50
# sprwl-analyze exit contract: 0 = report with sections. The report is a
# workflow artifact; the summarizer renders its top-conflict table.
sprwl_analyze() { cargo run -q --release --offline -p sprwl-trace --bin sprwl-analyze -- "$@"; }
sprwl_analyze "$BENCH_SMOKE_DIR/capture.jsonl" --out "$BENCH_SMOKE_DIR/analyze-report.json"
python3 scripts/summarize_bench.py "$BENCH_SMOKE_DIR/analyze-report.json"
# ...1 = vacuous capture (parses, but no section lifecycles): the gate
# must distinguish "empty" from "broken" — a sampling or export bug that
# empties every capture would otherwise pass as a quiet success.
printf '{"tid":0,"ev":"trace-meta","dropped":0}\n' > "$BENCH_SMOKE_DIR/vacuous.jsonl"
rc=0
sprwl_analyze "$BENCH_SMOKE_DIR/vacuous.jsonl" > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "sprwl-analyze vacuous smoke: expected exit 1, got $rc" >&2
    exit 1
fi
# ...and 2 = unusable input (missing file, malformed line).
rc=0
sprwl_analyze "$BENCH_SMOKE_DIR/no-such-capture.jsonl" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "sprwl-analyze IO smoke: expected exit 2, got $rc" >&2
    exit 1
fi

echo "==> bravo-vs-snzi bench smoke (biased admission holds the SNZI baseline)"
# Same deterministic grid under the two reader-tracking policies. BRAVO's
# committed claim is "never worse than plain SNZI": with the bias word in
# the SNZI root's tag bits the writer's commit check costs the same line,
# and the adaptive re-arm backoff keeps revocation thrash off the
# writer-pressure shapes. Rewriting the SNZI document's lock labels lets
# bench-compare pair the points, so the thresholds read "BRAVO may not
# collapse against SNZI" on both the read-dominated and contended shapes.
bench_sweep --det --threads 2,4 --ops 800 --warmup-ops 80 --locks SNZI \
    --workloads read-only,hot-key --category snzibase --out "$BENCH_SMOKE_DIR" > /dev/null
bench_sweep --det --threads 2,4 --ops 800 --warmup-ops 80 --locks BRAVO \
    --workloads read-only,hot-key --category bravocand --out "$BENCH_SMOKE_DIR" > /dev/null
python3 - "$BENCH_SMOKE_DIR"/BENCH_snzibase_*.json "$BENCH_SMOKE_DIR/snzi-as-bravo.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for p in doc["points"]:
    p["lock"] = "BRAVO"
json.dump(doc, open(sys.argv[2], "w"))
EOF
bench_compare "$BENCH_SMOKE_DIR/snzi-as-bravo.json" "$BENCH_SMOKE_DIR"/BENCH_bravocand_*.json \
    --throughput-drop-pct 10 --abort-rise-pp 10 --p99-rise-pct 100

echo "==> det server smoke (sharded async KV service: emit twice, byte-identical, self-compare clean)"
# The whole service — hashed routing, per-shard SpRWLs, async guard
# futures, redis-shaped traffic — must produce a byte-identical document
# for the same flags: that is the determinism contract the end-to-end
# test stack (tests/server_det.rs) asserts, re-checked here through the
# real binary.
bench_sweep --server --shards 2,4 --threads 2 --ops 200 --warmup-ops 16 \
    --category serversmoke --out "$BENCH_SMOKE_DIR/srv-a" > /dev/null
bench_sweep --server --shards 2,4 --threads 2 --ops 200 --warmup-ops 16 \
    --category serversmoke --out "$BENCH_SMOKE_DIR/srv-b" > /dev/null
cmp "$BENCH_SMOKE_DIR"/srv-a/BENCH_serversmoke_*.json \
    "$BENCH_SMOKE_DIR"/srv-b/BENCH_serversmoke_*.json
bench_compare "$BENCH_SMOKE_DIR"/srv-a/BENCH_serversmoke_*.json \
    "$BENCH_SMOKE_DIR"/srv-b/BENCH_serversmoke_*.json > /dev/null
python3 scripts/summarize_bench.py "$BENCH_SMOKE_DIR"/srv-a/BENCH_serversmoke_*.json > /dev/null

echo "==> server baseline gate (regenerate the committed service grid, loose thresholds)"
SERVER_BASELINE=$(ls results/BENCH_server_*.json | head -n 1)
bench_sweep --server --shards 2,4 --threads 2,4 --ops 400 --warmup-ops 40 \
    --schedule-seed 7 --seed 42 --out "$BENCH_SMOKE_DIR/server-current" > /dev/null
SERVER_CURRENT=$(ls "$BENCH_SMOKE_DIR"/server-current/BENCH_server_*.json)
bench_compare "$SERVER_BASELINE" "$SERVER_CURRENT" \
    --throughput-drop-pct 40 --abort-rise-pp 25 --p99-rise-pct 400
python3 scripts/summarize_bench.py "$SERVER_CURRENT" > /dev/null

echo "==> capacity baseline gate (big-footprint writers: the stretching ladder must keep winning)"
# Regenerate the committed capacity document (deterministic: byte-identical
# for identical flags) and gate the stretching claim three ways.
CAP_BASELINE=$(ls results/BENCH_capacity_*.json | head -n 1)
bench_sweep --capacity --threads 2 --ops 240 --schedule-seed 7 --seed 42 \
    --out "$BENCH_SMOKE_DIR/capacity-current" > /dev/null
CAP_CURRENT=$(ls "$BENCH_SMOKE_DIR"/capacity-current/BENCH_capacity_*.json)
# 1. Drift against the committed baseline (loose: catches collapses).
bench_compare "$CAP_BASELINE" "$CAP_CURRENT" \
    --throughput-drop-pct 40 --abort-rise-pp 25 --p99-rise-pct 400
# 2. Stretching-on vs stretching-off through bench-compare: relabel the
#    off arm's points so they pair with the stretch arm's, then require
#    the ladder not to cost throughput at loose thresholds. The abort
#    threshold stays loose on purpose — ROT retries trade cheap
#    speculative aborts for lock-serialized fallbacks, so total abort%
#    may rise while capacity aborts and throughput both improve.
python3 - "$CAP_CURRENT" "$BENCH_SMOKE_DIR/capacity-off-as-stretch.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["points"] = [p for p in doc["points"] if p["lock"] == "SpRWL"]
for p in doc["points"]:
    p["lock"] = "SpRWL+stretch"
json.dump(doc, open(sys.argv[2], "w"))
EOF
bench_compare "$BENCH_SMOKE_DIR/capacity-off-as-stretch.json" "$CAP_CURRENT" \
    --throughput-drop-pct 20 --abort-rise-pp 30 --p99-rise-pct 400
# 3. The strict claim the document is committed for: on every
#    (workload, profile) pair the stretch arm's writer capacity aborts
#    (plain + ROT) are strictly lower, and on the POWER8 points — the
#    profile whose ROT/suspend machinery the ladder targets — throughput
#    is no worse.
python3 - "$CAP_CURRENT" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
pts = {(p["workload"], p["lock"]): p for p in doc["points"]}
caps = lambda p: p["aborts"]["capacity"] + p["aborts"]["capacity-rot"]
bad = []
for (wl, lock), off in sorted(pts.items()):
    if lock != "SpRWL":
        continue
    on = pts.get((wl, "SpRWL+stretch"))
    if on is None:
        bad.append(f"{wl}: stretch arm missing")
    elif caps(on) >= caps(off):
        bad.append(f"{wl}: capacity aborts {caps(on)} !< {caps(off)}")
    elif "power8" in wl and on["throughput"] < off["throughput"]:
        bad.append(
            f"{wl}: stretch throughput {on['throughput']:.0f} < {off['throughput']:.0f}"
        )
if bad:
    sys.exit("capacity gate: " + "; ".join(bad))
print("capacity gate: stretching strictly cuts capacity aborts on every point")
EOF
python3 scripts/summarize_bench.py "$CAP_CURRENT" > /dev/null

echo "==> perf baseline gate (regenerate the committed grid, compare with loose thresholds)"
# The committed baseline is deterministic (virtual clock, fixed work), so
# point-for-point drift here is caused by code changes, not host speed.
# Thresholds are loose on purpose: the gate catches collapses (a lock
# serializing, speculation dying), not percent-level tuning.
BASELINE=$(ls results/BENCH_sweep_*.json | head -n 1)
bench_sweep --det --threads 1,2,4 --ops 1500 --warmup-ops 150 --schedule-seed 7 --seed 42 \
    --locks SpRWL,TLE,BRLock --workloads read-only,independent-write,hot-key,mixed-90-10 \
    --category sweep --out "$BENCH_SMOKE_DIR/current" > /dev/null
CURRENT=$(ls "$BENCH_SMOKE_DIR"/current/BENCH_sweep_*.json)
bench_compare "$BASELINE" "$CURRENT" \
    --throughput-drop-pct 40 --abort-rise-pp 25 --p99-rise-pct 400
python3 scripts/summarize_bench.py "$CURRENT" > /dev/null

echo "CI gate passed."
