#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 build+test, and a torture smoke.
# Everything runs offline against the in-workspace dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> torture smoke (full matrix, reduced depth)"
cargo run -q --release --offline -p sprwl-torture -- --threads 2 --ops 100

echo "==> deterministic torture smoke (serialized scheduler, bit-exact replay)"
cargo run -q --release --offline -p sprwl-torture -- --det --threads 2 --ops 100

echo "==> trace smoke (fig3 --trace produces a non-empty Chrome trace)"
# Benches run with cwd at the package root, so hand them an absolute path.
SPRWL_BENCH_SECS=0.05 SPRWL_BENCH_THREADS=2 \
    cargo bench -q -p sprwl-bench --bench fig3 --offline -- --trace "$PWD/target/trace-smoke.json" \
    > /dev/null
test -s target/trace-smoke.json
cargo test -q -p sprwl-trace --offline > /dev/null

echo "CI gate passed."
