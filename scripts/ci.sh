#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 build+test, and a torture smoke.
# Everything runs offline against the in-workspace dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

# Torture postmortems (oracle violations and non-linearizable histories)
# land in a known directory so CI can upload them as build artifacts on
# failure instead of losing them in the OS temp dir.
export TORTURE_DUMP_DIR="${TORTURE_DUMP_DIR:-$PWD/target/torture-dumps}"
mkdir -p "$TORTURE_DUMP_DIR"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> torture smoke (full matrix, reduced depth)"
cargo run -q --release --offline -p sprwl-torture -- --threads 2 --ops 100

echo "==> deterministic torture smoke (serialized scheduler, bit-exact replay)"
cargo run -q --release --offline -p sprwl-torture -- --det --threads 2 --ops 100

echo "==> lincheck smoke (checker accepts the committed cross-lock golden history)"
CROSS_GOLDEN=crates/torture/tests/golden/det_cross_smoke.trace.jsonl
cargo run -q --release --offline -p sprwl-lincheck -- "$CROSS_GOLDEN" > /dev/null
# An injected bug must flip the verdict to exactly exit 1 (non-linearizable).
# "Any non-zero" is not good enough: exit 2 means the checker gave up
# (budget/incomplete history), and a gate that confuses the two passes
# vacuously the day the budget is too small for the golden history.
rc=0
cargo run -q --release --offline -p sprwl-lincheck -- "$CROSS_GOLDEN" \
    --mutate drop-commit > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "lincheck mutate smoke: expected exit 1 (violation), got $rc" >&2
    exit 1
fi
# And a starved budget must answer exit 2 (unknown), not a violation.
rc=0
cargo run -q --release --offline -p sprwl-lincheck -- "$CROSS_GOLDEN" \
    --max-nodes 1 > /dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "lincheck budget smoke: expected exit 2 (unknown), got $rc" >&2
    exit 1
fi

echo "==> explore smoke (injected bug found by schedule search, then replayed bit-exactly)"
# The weakened commit-time reader check must be caught within a bounded
# frontier; the violating decision trace lands in TORTURE_DUMP_DIR (so CI
# uploads it as an artifact) and must replay bit-exactly.
EXPLORE_OUT=$(cargo run -q --release --offline -p sprwl-torture -- explore \
    --inject-bug --budget 256 --seed 225 --expect-violation)
echo "$EXPLORE_OUT"
SCHEDULE=$(printf '%s\n' "$EXPLORE_OUT" | sed -n 's/^schedule: //p')
test -s "$SCHEDULE"
cargo run -q --release --offline -p sprwl-torture -- explore \
    --replay-schedule "$SCHEDULE"

echo "==> diff_traces smoke (identical -> 0, divergence -> 1)"
python3 scripts/diff_traces.py "$CROSS_GOLDEN" "$CROSS_GOLDEN" > /dev/null
head -n -1 "$CROSS_GOLDEN" > target/truncated-golden.jsonl
if python3 scripts/diff_traces.py "$CROSS_GOLDEN" target/truncated-golden.jsonl > /dev/null; then
    echo "diff_traces.py failed to flag a truncated trace" >&2
    exit 1
fi
rm -f target/truncated-golden.jsonl

echo "==> trace smoke (fig3 --trace produces a non-empty Chrome trace)"
# Benches run with cwd at the package root, so hand them an absolute path.
SPRWL_BENCH_SECS=0.05 SPRWL_BENCH_THREADS=2 \
    cargo bench -q -p sprwl-bench --bench fig3 --offline -- --trace "$PWD/target/trace-smoke.json" \
    > /dev/null
test -s target/trace-smoke.json
cargo test -q -p sprwl-trace --offline > /dev/null

echo "==> bench pipeline smoke (BENCH_*.json emit + compare exit-code contract)"
BENCH_SMOKE_DIR=target/bench-smoke
rm -rf "$BENCH_SMOKE_DIR"
mkdir -p "$BENCH_SMOKE_DIR"
bench_sweep() { cargo run -q --release --offline -p sprwl-bench --bin bench-sweep -- "$@"; }
bench_compare() { cargo run -q --release --offline -p sprwl-bench --bin bench-compare -- "$@"; }
# A small deterministic grid must emit a parsable, summarizable document.
bench_sweep --det --threads 1,2 --ops 400 --warmup-ops 50 --locks SpRWL,TLE \
    --workloads read-only,hot-key --category smoke --out "$BENCH_SMOKE_DIR" > /dev/null
SMOKE_JSON=$(ls "$BENCH_SMOKE_DIR"/BENCH_smoke_*.json)
python3 scripts/summarize_bench.py "$SMOKE_JSON" > /dev/null
# Self-diff is clean (exit 0)...
bench_compare "$SMOKE_JSON" "$SMOKE_JSON" > /dev/null
# ...and an injected throughput regression fails with exactly exit 1.
# "Any non-zero" is not good enough: exit 2 means the documents never got
# compared (parse/schema error) and exit 3 means nothing matched — a gate
# that confuses those with a regression verdict passes vacuously the day
# the schema drifts.
python3 - "$SMOKE_JSON" "$BENCH_SMOKE_DIR/regressed.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for p in doc["points"]:
    p["throughput"] *= 0.4
json.dump(doc, open(sys.argv[2], "w"))
EOF
rc=0
bench_compare "$SMOKE_JSON" "$BENCH_SMOKE_DIR/regressed.json" > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "bench-compare regression smoke: expected exit 1, got $rc" >&2
    exit 1
fi

echo "==> perf baseline gate (regenerate the committed grid, compare with loose thresholds)"
# The committed baseline is deterministic (virtual clock, fixed work), so
# point-for-point drift here is caused by code changes, not host speed.
# Thresholds are loose on purpose: the gate catches collapses (a lock
# serializing, speculation dying), not percent-level tuning.
BASELINE=$(ls results/BENCH_sweep_*.json | head -n 1)
bench_sweep --det --threads 1,2,4 --ops 1500 --warmup-ops 150 --schedule-seed 7 --seed 42 \
    --locks SpRWL,TLE,BRLock --workloads read-only,independent-write,hot-key,mixed-90-10 \
    --category sweep --out "$BENCH_SMOKE_DIR/current" > /dev/null
CURRENT=$(ls "$BENCH_SMOKE_DIR"/current/BENCH_sweep_*.json)
bench_compare "$BASELINE" "$CURRENT" \
    --throughput-drop-pct 40 --abort-rise-pp 25 --p99-rise-pct 400
python3 scripts/summarize_bench.py "$CURRENT" > /dev/null

echo "CI gate passed."
