//! Quickstart: protect a shared structure with SpRWL.
//!
//! Four threads hammer a tiny shared array: writers transfer value between
//! slots (speculative, HTM-backed), readers audit the invariant sum
//! (uninstrumented — they never enter a hardware transaction). At the end
//! we print each thread's commit-mode breakdown, which shows the paper's
//! signature split: writers commit in `HTM`, readers in `Unins`.
//!
//! Run with: `cargo run --release --example quickstart`

use sprwl_repro::prelude::*;

const THREADS: usize = 4;
const SLOTS: usize = 8;
const OPS: usize = 2_000;
const SEC_READ: SectionId = SectionId(0);
const SEC_WRITE: SectionId = SectionId(1);

fn main() {
    // 1. A simulated-HTM runtime (Broadwell-like capacity profile).
    let htm = Htm::new(
        HtmConfig {
            max_threads: THREADS,
            ..HtmConfig::default()
        },
        4096,
    );

    // 2. The lock — a drop-in replacement for any RwSync read-write lock.
    let lock = SpRwl::with_defaults(&htm);

    // 3. Shared data lives in simulated memory cells.
    let slots = htm.memory().alloc(SLOTS);
    for c in slots.iter() {
        htm.memory().init_store(c, 100);
    }
    let expected_total: u64 = SLOTS as u64 * 100;

    let reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let (htm, lock, slots) = (&htm, &lock, &slots);
                s.spawn(move || {
                    let mut t = LockThread::new(htm.thread(tid));
                    let mut x = (tid as u64 + 1) * 0x9E37_79B9;
                    let mut rnd = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    for op in 0..OPS {
                        if op % 4 == 0 {
                            // Writer: move one unit between two random slots.
                            let from = (rnd() as usize) % SLOTS;
                            let to = (rnd() as usize) % SLOTS;
                            lock.write_section(&mut t, SEC_WRITE, &mut |a| {
                                let f = a.read(slots.cell(from))?;
                                if f == 0 || from == to {
                                    return Ok(0);
                                }
                                let v = a.read(slots.cell(to))?;
                                a.write(slots.cell(from), f - 1)?;
                                a.write(slots.cell(to), v + 1)?;
                                Ok(1)
                            });
                        } else {
                            // Reader: audit the conserved total.
                            let sum = lock.read_section(&mut t, SEC_READ, &mut |a| {
                                let mut sum = 0;
                                for c in slots.iter() {
                                    sum += a.read(c)?;
                                }
                                Ok(sum)
                            });
                            assert_eq!(sum, expected_total, "torn snapshot!");
                        }
                    }
                    t.stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut merged = SessionStats::default();
    for r in &reports {
        merged.merge(r);
    }
    println!(
        "SpRWL quickstart: {} ops on {} threads",
        THREADS * OPS,
        THREADS
    );
    println!(
        "  reader commits: {:>6} HTM, {:>6} uninstrumented",
        merged.commits_by(Role::Reader, CommitMode::Htm),
        merged.commits_by(Role::Reader, CommitMode::Unins),
    );
    println!(
        "  writer commits: {:>6} HTM, {:>6} global-lock fallback",
        merged.commits_by(Role::Writer, CommitMode::Htm),
        merged.commits_by(Role::Writer, CommitMode::Gl),
    );
    println!(
        "  aborts: {} total ({} reader-induced)",
        merged.total_aborts(),
        merged.aborts_of(AbortCause::Reader),
    );
    let final_total: u64 = slots.iter().map(|c| htm.direct(0).load(c)).sum();
    assert_eq!(final_total, expected_total);
    println!("  invariant conserved: total = {final_total}");
}
