//! Every synchronization scheme in the repository, one table: the four
//! SpRWL ablation variants, the SNZI variant, and every baseline, all
//! running the same workload through the same `RwSync` interface.
//!
//! Run with: `cargo run --release --example lock_shootout [update_pct]`

use std::time::Duration;

use sprwl_repro::bench::{hashmap_point, run_hashmap, LockKind, RunConfig, RunReport};
use sprwl_repro::prelude::*;

fn main() {
    let update_pct: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    assert!(update_pct <= 100, "update percentage must be 0..=100");

    let threads = 4;
    let profile = CapacityProfile::POWER8_SIM;
    let spec = HashmapSpec::paper(&profile, true, update_pct);

    println!(
        "Lock shootout: hashmap, 10-lookup readers, {update_pct}% updates, \
         {threads} threads, profile {}\n",
        profile.name
    );
    println!("{}", RunReport::header());

    let contenders: Vec<LockKind> = vec![
        LockKind::Sprwl(SprwlConfig::no_sched()),
        LockKind::Sprwl(SprwlConfig::rwait()),
        LockKind::Sprwl(SprwlConfig::rsync()),
        LockKind::Sprwl(SprwlConfig::full()),
        LockKind::Sprwl(SprwlConfig::with_snzi()),
        LockKind::Sprwl(SprwlConfig::adaptive()),
        LockKind::Tle,
        LockKind::RwLe,
        LockKind::Rwl,
        LockKind::BrLock,
        LockKind::PhaseFair,
        LockKind::Mcs,
        LockKind::Passive,
    ];

    let mut best: Option<(String, f64)> = None;
    for kind in &contenders {
        if !kind.supports(&profile) {
            continue;
        }
        let (htm, lock, map) = hashmap_point(profile, &spec, kind, threads);
        let report = run_hashmap(
            &htm,
            &*lock,
            &map,
            &spec,
            &RunConfig {
                threads,
                duration: Duration::from_millis(300),
                seed: 13,
            },
        )
        .with_lock_name(kind.name());
        println!("{}", report.row());
        if best.as_ref().is_none_or(|(_, t)| report.throughput > *t) {
            best = Some((report.lock.clone(), report.throughput));
        }
    }
    if let Some((name, thr)) = best {
        println!("\nFastest on this host: {name} at {thr:.0} tx/s");
    }
}
