//! The paper's opening motivation, reduced to its essence: a sorted list
//! where readers run **range queries** (long traversals, far beyond HTM
//! capacity) while writers insert and remove single keys.
//!
//! With SpRWL the scans run uninstrumented and still see atomic snapshots:
//! we verify that every scan of the full list observes a consistent
//! length/sum pair while writers churn.
//!
//! Run with: `cargo run --release --example range_scan`

use std::sync::atomic::{AtomicU64, Ordering};

use sprwl_repro::prelude::*;
use sprwl_repro::workloads::SortedList;

const THREADS: usize = 4;
const INITIAL: u64 = 512;
const SEC_SCAN: SectionId = SectionId(0);
const SEC_UPDATE: SectionId = SectionId(1);

fn main() {
    let htm = Htm::new(
        HtmConfig {
            max_threads: THREADS,
            capacity: CapacityProfile::POWER8_SIM,
            ..HtmConfig::default()
        },
        SortedList::cells_needed(4096, THREADS) + 1024,
    );
    let lock = SpRwl::with_defaults(&htm);
    let list = SortedList::new(htm.memory(), 4096, THREADS);
    {
        let mut setup = htm.direct(0);
        list.populate(&mut setup, INITIAL)
            .expect("setup cannot abort");
    }

    let scans = AtomicU64::new(0);
    let updates = AtomicU64::new(0);
    let reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let (htm, lock, list, scans, updates) = (&htm, &lock, &list, &scans, &updates);
                s.spawn(move || {
                    let mut t = LockThread::new(htm.thread(tid));
                    let mut x = ((tid as u64 + 1) * 0xA5A5_5A5A) | 1;
                    let mut rnd = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    for op in 0..800 {
                        if op % 5 == 0 {
                            // Writer: move a key (remove odd, insert odd+2k).
                            let k = rnd() % (INITIAL * 2);
                            let do_insert = rnd() % 2 == 0;
                            lock.write_section(&mut t, SEC_UPDATE, &mut |a| {
                                // Keep an invariant the scans can check:
                                // only odd keys are ever inserted/removed,
                                // so even keys (the initial population)
                                // always remain — length ≥ INITIAL.
                                let key = k | 1;
                                if do_insert {
                                    list.insert(a, tid, key, 1)?;
                                } else {
                                    list.remove(a, tid, key)?;
                                }
                                Ok(0)
                            });
                            updates.fetch_add(1, Ordering::Relaxed);
                        } else {
                            // Reader: full-range scan (way over capacity).
                            let (len, _keysum) = {
                                let mut out = (0, 0);
                                lock.read_section(&mut t, SEC_SCAN, &mut |a| {
                                    out = list.checksum(a)?;
                                    Ok(out.0)
                                });
                                out
                            };
                            assert!(
                                len >= INITIAL,
                                "initial even keys must never disappear (saw {len})"
                            );
                            scans.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    t.stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut merged = SessionStats::default();
    for r in &reports {
        merged.merge(r);
    }
    println!(
        "range_scan: {} full-list scans, {} updates across {THREADS} threads",
        scans.load(Ordering::Relaxed),
        updates.load(Ordering::Relaxed)
    );
    println!(
        "  scans ran uninstrumented: {} Unins vs {} HTM reader commits",
        merged.commits_by(Role::Reader, CommitMode::Unins),
        merged.commits_by(Role::Reader, CommitMode::Htm),
    );
    println!(
        "  writers: {} HTM, {} fallback; reader-induced aborts: {}",
        merged.commits_by(Role::Writer, CommitMode::Htm),
        merged.commits_by(Role::Writer, CommitMode::Gl),
        merged.aborts_of(AbortCause::Reader),
    );
    println!(
        "  p99 scan latency: {:.1} µs (mean {:.1} µs)",
        merged.reader_latency.percentile_ns(99.0) as f64 / 1_000.0,
        merged.reader_latency.mean_ns() as f64 / 1_000.0,
    );
}
