//! TPC-C under SpRWL (the paper's §4.2 experiment, example-sized): runs
//! the standard mix for a moment, prints throughput plus the commit-mode
//! breakdown, and verifies the database's consistency conditions.
//!
//! Run with: `cargo run --release --example tpcc_demo`

use std::time::Duration;

use sprwl_repro::bench::{run_tpcc, tpcc_point, LockKind, RunConfig, RunReport};
use sprwl_repro::prelude::*;
use sprwl_repro::workloads::tpcc::TpccScale;

fn main() {
    let threads = 4;
    let profile = CapacityProfile::POWER8_SIM;
    let scale = TpccScale::with_warehouses(threads as u32);

    println!(
        "TPC-C: {} warehouses, mix = Stock-Level 31% / Delivery 4% / \
         Order-Status 4% / Payment 43% / New-Order 18%\n",
        scale.warehouses
    );
    println!("{}", RunReport::header());

    for kind in [
        LockKind::Sprwl(SprwlConfig::default()),
        LockKind::Sprwl(SprwlConfig::with_snzi()),
        LockKind::Tle,
        LockKind::RwLe,
        LockKind::Rwl,
    ] {
        let (htm, lock, db) = tpcc_point(profile, scale, &kind, threads);
        let report = run_tpcc(
            &htm,
            &*lock,
            &db,
            &Mix::PAPER,
            &RunConfig {
                threads,
                duration: Duration::from_millis(400),
                seed: 11,
            },
        )
        .with_lock_name(kind.name());
        println!("{}", report.row());

        // TPC-C consistency conditions must hold whatever the lock.
        assert!(db.audit_ytd(htm.memory()), "W_YTD == Σ D_YTD violated");
        assert!(db.audit_order_queues(htm.memory()), "order queue corrupted");
    }
    println!("\nAll consistency audits passed (W_YTD == Σ D_YTD, delivery queues sane).");
}
