//! The motivating scenario from the paper's introduction: a concurrent map
//! whose read operations are long (range-scan-like, multiple lookups per
//! critical section) and therefore exceed HTM capacity. SpRWL runs those
//! readers uninstrumented; plain lock elision (TLE) keeps falling back to
//! the global lock.
//!
//! Run with: `cargo run --release --example concurrent_map`

use std::time::Duration;

use sprwl_repro::bench::{hashmap_point, run_hashmap, LockKind, RunConfig, RunReport};
use sprwl_repro::prelude::*;

fn main() {
    let profile = CapacityProfile::POWER8_SIM;
    let threads = 4;
    let spec = HashmapSpec::paper(
        &profile, /* long readers */ true, /* 10% updates */ 10,
    );

    println!("Concurrent hashmap, 10-lookup readers, 10% updates, {threads} threads");
    println!(
        "(each read critical section overflows the {} capacity profile)\n",
        profile.name
    );
    println!("{}", RunReport::header());

    for kind in [
        LockKind::Sprwl(SprwlConfig::default()),
        LockKind::Tle,
        LockKind::Rwl,
        LockKind::BrLock,
    ] {
        let (htm, lock, map) = hashmap_point(profile, &spec, &kind, threads);
        let report = run_hashmap(
            &htm,
            &*lock,
            &map,
            &spec,
            &RunConfig {
                threads,
                duration: Duration::from_millis(400),
                seed: 7,
            },
        )
        .with_lock_name(kind.name());
        println!("{}", report.row());
    }

    println!(
        "\nReading the table: SpRWL's readers commit in the `Unins` column \
         (uninstrumented — immune to capacity limits), while TLE's land in \
         `GL` (serialized on the fallback lock after capacity aborts). \
         That column is the paper's whole point."
    );
}
