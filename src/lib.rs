//! # sprwl-repro — reproduction of “Speculative Read Write Locks”
//! (Issa, Romano, Lopes — Middleware ’18)
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | What it provides |
//! |---|---|
//! | [`htm`] (`htm-sim`) | the simulated best-effort HTM substrate |
//! | [`snzi`] | the scalable non-zero indicator (Ellen et al.) |
//! | [`locks`] (`sprwl-locks`) | the `RwSync` interface, SGL machinery and every baseline (RWL, BRLock, PF-RWL, PRWL, TLE, RW-LE) |
//! | [`sprwl`] | the paper's contribution: SpRWL and its variants |
//! | [`workloads`] | the hashmap micro-benchmark and the TPC-C port |
//! | [`mod@bench`] | the figure-regeneration harness |
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use sprwl_repro::prelude::*;
//!
//! // A simulated-HTM runtime with 4 hardware threads.
//! let htm = Htm::new(HtmConfig { max_threads: 4, ..HtmConfig::default() }, 4096);
//! let lock = SpRwl::with_defaults(&htm);
//! let cell = htm.memory().alloc(1).cell(0);
//!
//! std::thread::scope(|s| {
//!     for tid in 0..4 {
//!         let (htm, lock) = (&htm, &lock);
//!         s.spawn(move || {
//!             let mut t = LockThread::new(htm.thread(tid));
//!             for _ in 0..100 {
//!                 lock.write_section(&mut t, SectionId(0), &mut |a| {
//!                     let v = a.read(cell)?;
//!                     a.write(cell, v + 1)?;
//!                     Ok(v)
//!                 });
//!             }
//!         });
//!     }
//! });
//! assert_eq!(htm.direct(0).load(cell), 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use htm_sim as htm;
pub use snzi;
pub use sprwl;
pub use sprwl_bench as bench;
pub use sprwl_locks as locks;
pub use sprwl_workloads as workloads;

/// The common imports for applications and examples.
pub mod prelude {
    pub use htm_sim::{
        clock, Abort, AccessMode, CapacityProfile, CellId, Direct, Htm, HtmConfig, MemAccess,
        Region, SimMemory, TxKind, TxResult,
    };
    pub use snzi::Snzi;
    pub use sprwl::{DeltaPolicy, ReaderTracking, Scheduling, SpRwl, SprwlConfig};
    pub use sprwl_locks::{
        AbortCause, BrLock, CommitMode, GlobalLock, LockThread, McsRwLock, PassiveRwLock,
        PhaseFairRwLock, PthreadRwLock, RetryPolicy, Role, RwLe, RwSync, SectionId, SessionStats,
        Tle,
    };
    pub use sprwl_workloads::{HashmapSpec, Mix, SimHashMap, SortedList};
}
