//! Tier-1 smoke slice of the torture matrix: a fast cross-section of lock
//! kinds and fault axes so every `cargo test` run exercises the oracle.
//! The full acceptance matrix lives in `sprwl-torture`'s own test suite
//! (`cargo test -p sprwl-torture`); replay any failure it reports with
//! `TORTURE_SEED=<seed>`.

use sprwl_torture::{base_seed, default_matrix, run_case};

#[test]
fn torture_smoke_cross_section() {
    let seed = base_seed();
    let matrix = default_matrix(2, 100);
    let picks = [
        "sprwl-flags-full",
        "sprwl-snzi-nosched",
        "sprwl-versioned-int5",
        "sprwl-full-tiny-capacity",
        "tle",
        "mcs-rwl",
    ];
    for name in picks {
        let spec = matrix
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("case {name} missing from matrix"));
        if let Err(v) = run_case(spec, seed) {
            panic!("{v}");
        }
    }
}
