//! Liveness and fairness: the §3.3 guarantees — no reader/writer
//! deadlock, fallback writers cannot wait forever behind a reader stream,
//! and (with the versioned-SGL extension) readers cannot starve behind a
//! stream of fallback writers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use sprwl_repro::prelude::*;

fn htm(threads: usize) -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: threads,
            capacity: CapacityProfile::POWER8_SIM,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

/// A write section too large for HTM — every execution lands on the SGL.
fn big_write(lock: &SpRwl, t: &mut LockThread<'_>, region: &Region) {
    lock.write_section(t, SectionId(1), &mut |a| {
        for i in 0..200 {
            let v = a.read(region.cell(i * 8))?;
            a.write(region.cell(i * 8), v + 1)?;
        }
        Ok(0)
    });
}

#[test]
fn fallback_writer_completes_against_a_constant_reader_stream() {
    // §3.3: a writer that acquired the SGL waits for each reader at most
    // once, so it finishes even while readers keep arriving.
    const READERS: usize = 3;
    let h = htm(READERS + 1);
    let lock = SpRwl::with_defaults(&h);
    let region = h.memory().alloc_line_aligned(200 * 8);
    let cell = h.memory().alloc(1).cell(0);
    let writer_done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for tid in 0..READERS {
            let (h, lock, wd) = (&h, &lock, &writer_done);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(tid));
                while !wd.load(Ordering::SeqCst) {
                    lock.read_section(&mut t, SectionId(0), &mut |a| a.read(cell));
                }
            });
        }
        let (h, lock, region, wd) = (&h, &lock, &region, &writer_done);
        s.spawn(move || {
            let mut t = LockThread::new(h.thread(READERS));
            big_write(lock, &mut t, region);
            assert_eq!(
                t.stats.commits_by(Role::Writer, CommitMode::Gl),
                1,
                "the oversized writer must have used the fallback"
            );
            wd.store(true, Ordering::SeqCst);
        });
        // Watchdog: the writer must finish well within the test timeout.
        let start = Instant::now();
        while !writer_done.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(20),
                "fallback writer starved by readers"
            );
            std::thread::yield_now();
        }
    });
}

#[test]
fn versioned_sgl_lets_readers_through_a_writer_stream() {
    // The §3.3 anti-starvation extension: under a constant stream of
    // fallback writers, a reader waits for at most ~one full writer turn.
    const WRITERS: usize = 2;
    let h = htm(WRITERS + 1);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            versioned_sgl: true,
            readers_try_htm: false,
            ..SprwlConfig::default()
        },
    );
    let region = h.memory().alloc_line_aligned(200 * 8);
    let cell = h.memory().alloc(1).cell(0);
    let stop = AtomicBool::new(false);
    let reads_done = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let (h, lock, region, stop) = (&h, &lock, &region, &stop);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(w));
                while !stop.load(Ordering::SeqCst) {
                    big_write(lock, &mut t, region);
                }
            });
        }
        let (h, lock, stop, rd) = (&h, &lock, &stop, &reads_done);
        s.spawn(move || {
            let mut t = LockThread::new(h.thread(WRITERS));
            for _ in 0..25 {
                lock.read_section(&mut t, SectionId(0), &mut |a| a.read(cell));
                rd.fetch_add(1, Ordering::SeqCst);
            }
            stop.store(true, Ordering::SeqCst);
        });
        let start = Instant::now();
        while !stop.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "reader starved behind fallback writers: only {} reads",
                reads_done.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
    });
    assert_eq!(reads_done.load(Ordering::SeqCst), 25);
}

#[test]
fn reader_synchronization_is_fair_to_writers() {
    // Alg. 2's fairness property: once a writer is active (flag up), a
    // newly arriving reader waits rather than dooming it — so a writer
    // surrounded by eager readers still commits in HTM.
    const READERS: usize = 3;
    let h = htm(READERS + 1);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::default()
        },
    );
    let cells = h.memory().alloc_line_aligned(8 * 8);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for tid in 0..READERS {
            let (h, lock, cells, stop) = (&h, &lock, &cells, &stop);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(tid));
                while !stop.load(Ordering::SeqCst) {
                    lock.read_section(&mut t, SectionId(0), &mut |a| {
                        let mut sum = 0;
                        for i in 0..8 {
                            sum += a.read(cells.cell(i * 8))?;
                        }
                        Ok(sum)
                    });
                }
            });
        }
        let (h, lock, cells, stop) = (&h, &lock, &cells, &stop);
        s.spawn(move || {
            let mut t = LockThread::new(h.thread(READERS));
            for _ in 0..50 {
                lock.write_section(&mut t, SectionId(1), &mut |a| {
                    for i in 0..8 {
                        let v = a.read(cells.cell(i * 8))?;
                        a.write(cells.cell(i * 8), v + 1)?;
                    }
                    Ok(0)
                });
            }
            stop.store(true, Ordering::SeqCst);
            // Under reader synchronization most writes should commit in
            // HTM rather than being starved to the fallback.
            let htm_commits = t.stats.commits_by(Role::Writer, CommitMode::Htm);
            assert!(
                htm_commits >= 25,
                "writer starved: only {htm_commits}/50 HTM commits"
            );
        });
    });
    // All 50 increments applied exactly once to every cell.
    let d = h.direct(0);
    for i in 0..8 {
        assert_eq!(d.load(cells.cell(i * 8)), 50);
    }
}

#[test]
fn no_deadlock_between_readers_and_fallback_writers_under_churn() {
    // Hammer the exact interleaving §3.3 proves deadlock-free: readers
    // flag/unflag around the SGL check while writers cycle the SGL.
    const THREADS: usize = 4;
    let h = htm(THREADS);
    let lock = SpRwl::with_defaults(&h);
    let region = h.memory().alloc_line_aligned(200 * 8);
    let cell = h.memory().alloc(1).cell(0);
    let done = AtomicU64::new(0);
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let (h, lock, region, done) = (&h, &lock, &region, &done);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(tid));
                for i in 0..40 {
                    if (tid + i) % 2 == 0 {
                        big_write(lock, &mut t, region);
                    } else {
                        lock.read_section(&mut t, SectionId(0), &mut |a| a.read(cell));
                    }
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(done.load(Ordering::SeqCst), THREADS as u64);
}
