//! Property-based integration tests: randomized op sequences, randomized
//! scheme configurations, always the same invariants.

use proptest::prelude::*;
use sprwl_repro::prelude::*;

/// Arbitrary SpRWL configuration covering the whole knob space.
fn sprwl_config() -> impl Strategy<Value = SprwlConfig> {
    (
        prop_oneof![
            Just(Scheduling::NoSched),
            Just(Scheduling::RWait),
            Just(Scheduling::RSync),
            Just(Scheduling::Full),
        ],
        prop_oneof![
            Just(ReaderTracking::Flags),
            Just(ReaderTracking::Snzi),
            Just(ReaderTracking::Adaptive),
        ],
        any::<bool>(), // readers_try_htm
        any::<bool>(), // adaptive
        any::<bool>(), // versioned_sgl
        any::<bool>(), // timed_reader_wait
        prop_oneof![
            Just(DeltaPolicy::Zero),
            Just(DeltaPolicy::HalfWriterDuration),
            (0u64..100_000).prop_map(DeltaPolicy::FixedNs),
        ],
    )
        .prop_map(
            |(scheduling, tracking, try_htm, adaptive, versioned, timed, delta)| SprwlConfig {
                scheduling,
                reader_tracking: tracking,
                readers_try_htm: try_htm,
                adaptive_reader_htm: adaptive,
                versioned_sgl: versioned,
                timed_reader_wait: timed,
                delta,
                ..SprwlConfig::default()
            },
        )
}

/// One logical operation of the generated workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Transfer 1 unit between two slots (write critical section).
    Transfer(u8, u8),
    /// Audit the conserved total (read critical section).
    Audit,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Transfer(a, b)),
            Just(Op::Audit),
        ],
        1..max,
    )
}

const SLOTS: usize = 10;
const TOTAL: u64 = SLOTS as u64 * 40;

fn run_ops(lock: &SpRwl, h: &Htm, slots: &Region, per_thread: &[Vec<Op>]) {
    std::thread::scope(|s| {
        for (tid, my_ops) in per_thread.iter().enumerate() {
            let (lock, h) = (lock, h);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(tid));
                for op in my_ops {
                    match *op {
                        Op::Transfer(a, b) => {
                            let from = a as usize % SLOTS;
                            let to = b as usize % SLOTS;
                            lock.write_section(&mut t, SectionId(1), &mut |acc| {
                                let f = acc.read(slots.cell(from * 8))?;
                                if f == 0 || from == to {
                                    return Ok(0);
                                }
                                let v = acc.read(slots.cell(to * 8))?;
                                acc.write(slots.cell(from * 8), f - 1)?;
                                acc.write(slots.cell(to * 8), v + 1)?;
                                Ok(1)
                            });
                        }
                        Op::Audit => {
                            let sum = lock.read_section(&mut t, SectionId(0), &mut |acc| {
                                let mut sum = 0;
                                for i in 0..SLOTS {
                                    sum += acc.read(slots.cell(i * 8))?;
                                }
                                Ok(sum)
                            });
                            assert_eq!(sum, TOTAL, "torn audit snapshot");
                        }
                    }
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any configuration, any interleaving: audits see conserved totals,
    /// and the final state conserves the total too.
    #[test]
    fn conservation_under_arbitrary_configs(
        cfg in sprwl_config(),
        t0 in ops(40),
        t1 in ops(40),
        t2 in ops(40),
    ) {
        let h = Htm::new(
            HtmConfig {
                max_threads: 3,
                capacity: CapacityProfile::POWER8_SIM,
                ..HtmConfig::default()
            },
            16 * 1024,
        );
        let lock = SpRwl::new(&h, cfg);
        let slots = h.memory().alloc_line_aligned(SLOTS * 8);
        for i in 0..SLOTS {
            h.memory().init_store(slots.cell(i * 8), 40);
        }
        run_ops(&lock, &h, &slots, &[t0, t1, t2]);
        let total: u64 = (0..SLOTS).map(|i| h.direct(0).load(slots.cell(i * 8))).sum();
        prop_assert_eq!(total, TOTAL);
    }

    /// Same property under failure injection.
    #[test]
    fn conservation_under_interrupt_injection(
        prob in 0.0f64..0.05,
        t0 in ops(30),
        t1 in ops(30),
    ) {
        let h = Htm::new(
            HtmConfig {
                max_threads: 2,
                capacity: CapacityProfile::POWER8_SIM,
                interrupt_prob: prob,
                ..HtmConfig::default()
            },
            16 * 1024,
        );
        let lock = SpRwl::with_defaults(&h);
        let slots = h.memory().alloc_line_aligned(SLOTS * 8);
        for i in 0..SLOTS {
            h.memory().init_store(slots.cell(i * 8), 40);
        }
        run_ops(&lock, &h, &slots, &[t0, t1]);
        let total: u64 = (0..SLOTS).map(|i| h.direct(0).load(slots.cell(i * 8))).sum();
        prop_assert_eq!(total, TOTAL);
    }

    /// The hashmap behaves like a map whatever lock protects it: sequential
    /// model equivalence after a concurrent run over disjoint key ranges.
    #[test]
    fn hashmap_stays_a_map_under_concurrency(seed in any::<u64>()) {
        let spec = HashmapSpec {
            buckets: 32,
            population: 0,
            key_space: 1 << 16,
            lookups_per_read: 3,
            update_pct: 50,
        };
        let h = Htm::new(
            HtmConfig {
                max_threads: 3,
                capacity: CapacityProfile::POWER8_SIM,
                ..HtmConfig::default()
            },
            spec.cells_needed(3),
        );
        let lock = SpRwl::with_defaults(&h);
        let map = spec.build(h.memory(), 3);
        std::thread::scope(|s| {
            for tid in 0..3usize {
                let (h, lock, map) = (&h, &lock, &map);
                s.spawn(move || {
                    let mut t = LockThread::new(h.thread(tid));
                    let mut x = seed ^ ((tid as u64 + 1) << 32) | 1;
                    let mut rnd = move || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x };
                    for k in 0..40u64 {
                        let key = (tid as u64) << 32 | k;
                        let tid_v = tid;
                        lock.write_section(&mut t, SectionId(1), &mut |a| {
                            map.insert(a, tid_v, key, key + 1)?;
                            Ok(0)
                        });
                        if rnd() % 4 == 0 {
                            lock.write_section(&mut t, SectionId(1), &mut |a| {
                                map.delete(a, tid_v, key)?;
                                Ok(0)
                            });
                        }
                    }
                });
            }
        });
        // Sequential check: every surviving key maps to key+1.
        let mut d = h.direct(0);
        for tid in 0..3u64 {
            for k in 0..40u64 {
                let key = tid << 32 | k;
                if let Some(v) = map.lookup(&mut d, key).unwrap() {
                    prop_assert_eq!(v, key + 1);
                }
            }
        }
    }
}
