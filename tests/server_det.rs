//! Deterministic end-to-end service runs (ISSUE 9 satellite):
//!
//! * the sharded KV service run twice from the same `(seed, config)` on
//!   the deterministic scheduler produces byte-identical traces and final
//!   store contents;
//! * a third run with one extra worker differs (more ops, different
//!   interleaving) but only in the expected ways — per-shard conservation
//!   still holds and every shard lock is quiescent.

use sprwl::ReaderTracking;
use sprwl_server::{run_det, ServerConfig, ServerRun};

fn det_cfg(tracking: ReaderTracking) -> ServerConfig {
    let mut cfg = ServerConfig {
        tracking,
        lin_marks: true,
        warmup_ops: 16,
        ops_per_worker: 160,
        ..ServerConfig::smoke()
    };
    // Full capture: trace equality is the determinism witness.
    cfg.trace = cfg.lin_ring();
    cfg
}

fn fingerprint(run: &ServerRun) -> (usize, u64, u64) {
    (
        run.traces.iter().map(|t| t.events.len()).sum::<usize>(),
        run.merged.total_commits(),
        run.shards.iter().map(|s| s.increments).sum::<u64>(),
    )
}

#[test]
fn same_seed_same_config_is_byte_identical() {
    for tracking in [ReaderTracking::Snzi, ReaderTracking::Bravo] {
        let cfg = det_cfg(tracking);
        let a = run_det(&cfg);
        let b = run_det(&cfg);
        a.quiescence.as_ref().expect("run A quiescent");
        b.quiescence.as_ref().expect("run B quiescent");
        // Traces carry virtual timestamps of every event of every worker:
        // equality here means the whole service run replayed exactly.
        assert_eq!(
            a.traces, b.traces,
            "{tracking:?}: det service traces must be byte-identical"
        );
        assert_eq!(
            a.dump, b.dump,
            "{tracking:?}: final store contents must be identical"
        );
        assert!(
            a.traces.iter().map(|t| t.events.len()).sum::<usize>() > 0,
            "{tracking:?}: trace capture produced no events"
        );
        assert!(a.merged.total_commits() > 0);
    }
}

#[test]
fn extra_worker_differs_only_in_expected_ways() {
    let cfg = det_cfg(ReaderTracking::Snzi);
    let bigger = ServerConfig {
        workers: cfg.workers + 1,
        ..cfg.clone()
    };
    let base = run_det(&cfg);
    let wide = run_det(&bigger);

    // Different pool size ⇒ different run shape…
    assert_ne!(fingerprint(&base), fingerprint(&wide));
    assert_eq!(wide.traces.len(), bigger.workers);

    // …but the invariants hold independently for each run: every shard
    // conserves its routed increments and every lock is quiescent.
    base.check_conservation().expect("base run conserves");
    wide.check_conservation().expect("wider run conserves");
    wide.quiescence.as_ref().expect("wider run quiescent");

    // The extra worker's ops all landed: total increments grew by exactly
    // one worker's worth of committed SET/MSET keys is workload-dependent,
    // but strictly positive growth is guaranteed.
    let total = |r: &ServerRun| r.shards.iter().map(|s| s.increments).sum::<u64>();
    assert!(total(&wide) > total(&base));

    // And the wider run is itself reproducible.
    let wide2 = run_det(&bigger);
    assert_eq!(wide.traces, wide2.traces);
    assert_eq!(wide.dump, wide2.dump);
}
