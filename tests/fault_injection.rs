//! Failure injection: timer-interrupt aborts (the OS-scheduling events
//! that plague real HTM) must never break safety — schemes fall back and
//! invariants hold. This exercises exactly the robustness SpRWL claims for
//! its readers: they run uninstrumented, so injection cannot touch them.

use std::time::Duration;

use sprwl_repro::bench::{run_hashmap, LockKind, RunConfig};
use sprwl_repro::prelude::*;

fn noisy_htm(threads: usize, cells: usize, interrupt_prob: f64) -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: threads,
            capacity: CapacityProfile::POWER8_SIM,
            interrupt_prob,
            ..HtmConfig::default()
        },
        cells,
    )
}

fn spec() -> HashmapSpec {
    HashmapSpec {
        buckets: 64,
        population: 1024,
        key_space: 2048,
        lookups_per_read: 5,
        update_pct: 30,
    }
}

fn run_noisy(kind: &LockKind, interrupt_prob: f64) -> sprwl_repro::bench::RunReport {
    let spec = spec();
    let htm = noisy_htm(3, spec.cells_needed(3) + 4096, interrupt_prob);
    let lock = kind.build(&htm);
    let map = spec.build(htm.memory(), 3);
    run_hashmap(
        &htm,
        &*lock,
        &map,
        &spec,
        &RunConfig {
            threads: 3,
            duration: Duration::from_millis(80),
            seed: 55,
        },
    )
}

#[test]
fn sprwl_survives_heavy_interrupt_injection() {
    let report = run_noisy(&LockKind::Sprwl(SprwlConfig::default()), 0.02);
    assert!(report.stats.total_commits() > 0);
    // Writers are speculative, so injection must show up...
    assert!(
        report.stats.aborts_of(AbortCause::Interrupt) > 0,
        "2% per-access injection must cause interrupt aborts"
    );
}

#[test]
fn tle_survives_heavy_interrupt_injection() {
    let report = run_noisy(&LockKind::Tle, 0.02);
    assert!(report.stats.total_commits() > 0);
    assert!(report.stats.aborts_of(AbortCause::Interrupt) > 0);
}

#[test]
fn rwle_survives_heavy_interrupt_injection() {
    let report = run_noisy(&LockKind::RwLe, 0.02);
    assert!(report.stats.total_commits() > 0);
}

#[test]
fn uninstrumented_readers_are_immune_to_injection() {
    // Force readers straight to the uninstrumented path: with HTM probing
    // off, reader commits must be injection-free even at brutal rates.
    let cfg = SprwlConfig {
        readers_try_htm: false,
        ..SprwlConfig::default()
    };
    let report = run_noisy(&LockKind::Sprwl(cfg), 0.10);
    let unins = report.stats.commits_by(Role::Reader, CommitMode::Unins);
    let htm_reads = report.stats.commits_by(Role::Reader, CommitMode::Htm);
    assert!(unins > 0, "readers made progress");
    assert_eq!(htm_reads, 0, "no reader ever entered a transaction");
}

#[test]
fn sprwl_under_injection_keeps_bank_invariant() {
    const THREADS: usize = 3;
    const SLOTS: usize = 12;
    let htm = noisy_htm(THREADS, 8192, 0.05);
    let lock = SpRwl::with_defaults(&htm);
    let slots = htm.memory().alloc_line_aligned(SLOTS * 8);
    for i in 0..SLOTS {
        htm.memory().init_store(slots.cell(i * 8), 50);
    }
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let (htm, lock, slots) = (&htm, &lock, &slots);
            s.spawn(move || {
                let mut t = LockThread::new(htm.thread(tid));
                let mut x = tid as u64 * 77 + 1;
                let mut rnd = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for op in 0..150 {
                    if op % 3 == 0 {
                        let from = (rnd() as usize) % SLOTS;
                        let to = (rnd() as usize) % SLOTS;
                        lock.write_section(&mut t, SectionId(1), &mut |a| {
                            let f = a.read(slots.cell(from * 8))?;
                            if f == 0 || from == to {
                                return Ok(0);
                            }
                            let v = a.read(slots.cell(to * 8))?;
                            a.write(slots.cell(from * 8), f - 1)?;
                            a.write(slots.cell(to * 8), v + 1)?;
                            Ok(1)
                        });
                    } else {
                        let sum = lock.read_section(&mut t, SectionId(0), &mut |a| {
                            let mut s = 0;
                            for i in 0..SLOTS {
                                s += a.read(slots.cell(i * 8))?;
                            }
                            Ok(s)
                        });
                        assert_eq!(sum, SLOTS as u64 * 50, "torn read under injection");
                    }
                }
            });
        }
    });
    let total: u64 = (0..SLOTS)
        .map(|i| htm.direct(0).load(slots.cell(i * 8)))
        .sum();
    assert_eq!(total, SLOTS as u64 * 50);
}
