//! Full-stack integration tests: every synchronization scheme driving the
//! real workloads over the simulated HTM, with invariants audited.

use std::time::Duration;

use sprwl_repro::bench::{hashmap_point, run_hashmap, run_tpcc, tpcc_point, LockKind, RunConfig};
use sprwl_repro::prelude::*;
use sprwl_repro::workloads::tpcc::TpccScale;

fn all_schemes() -> Vec<LockKind> {
    vec![
        LockKind::Sprwl(SprwlConfig::no_sched()),
        LockKind::Sprwl(SprwlConfig::rwait()),
        LockKind::Sprwl(SprwlConfig::rsync()),
        LockKind::Sprwl(SprwlConfig::full()),
        LockKind::Sprwl(SprwlConfig::with_snzi()),
        LockKind::Sprwl(SprwlConfig::adaptive()),
        LockKind::Sprwl(SprwlConfig {
            versioned_sgl: true,
            ..SprwlConfig::default()
        }),
        LockKind::Tle,
        LockKind::RwLe,
        LockKind::Rwl,
        LockKind::BrLock,
        LockKind::PhaseFair,
        LockKind::Mcs,
        LockKind::Passive,
    ]
}

#[test]
fn every_scheme_runs_the_hashmap_workload() {
    let profile = CapacityProfile::POWER8_SIM;
    let spec = HashmapSpec {
        buckets: 64,
        population: 2048,
        key_space: 4096,
        lookups_per_read: 5,
        update_pct: 30,
    };
    for kind in all_schemes() {
        if !kind.supports(&profile) {
            continue;
        }
        let (htm, lock, map) = hashmap_point(profile, &spec, &kind, 3);
        let report = run_hashmap(
            &htm,
            &*lock,
            &map,
            &spec,
            &RunConfig {
                threads: 3,
                duration: Duration::from_millis(60),
                seed: 99,
            },
        );
        assert!(
            report.stats.total_commits() > 0,
            "{} made no progress",
            kind.name()
        );
    }
}

#[test]
fn every_scheme_preserves_tpcc_consistency() {
    let profile = CapacityProfile::POWER8_SIM;
    let scale = TpccScale {
        warehouses: 2,
        customers_per_district: 32,
        items: 256,
        ..TpccScale::default()
    };
    for kind in all_schemes() {
        if !kind.supports(&profile) {
            continue;
        }
        let (htm, lock, db) = tpcc_point(profile, scale, &kind, 3);
        let report = run_tpcc(
            &htm,
            &*lock,
            &db,
            &Mix::PAPER,
            &RunConfig {
                threads: 3,
                duration: Duration::from_millis(60),
                seed: 100,
            },
        );
        assert!(report.stats.total_commits() > 0, "{}", kind.name());
        assert!(
            db.audit_ytd(htm.memory()),
            "{}: W_YTD != Σ D_YTD",
            kind.name()
        );
        assert!(
            db.audit_order_queues(htm.memory()),
            "{}: broken delivery queue",
            kind.name()
        );
    }
}

#[test]
fn sprwl_readers_go_uninstrumented_tle_readers_take_the_lock() {
    // The paper's central contrast, end to end.
    let profile = CapacityProfile::POWER8_SIM;
    let spec = HashmapSpec::paper(&profile, true, 10);
    let rc = RunConfig {
        threads: 2,
        duration: Duration::from_millis(120),
        seed: 17,
    };

    let (htm, lock, map) = hashmap_point(profile, &spec, &LockKind::Sprwl(SprwlConfig::full()), 2);
    let sprwl_rep = run_hashmap(&htm, &*lock, &map, &spec, &rc);
    drop((htm, lock, map));

    let (htm, lock, map) = hashmap_point(profile, &spec, &LockKind::Tle, 2);
    let tle_rep = run_hashmap(&htm, &*lock, &map, &spec, &rc);

    let sprwl_unins = sprwl_rep.stats.commits_by(Role::Reader, CommitMode::Unins);
    let sprwl_reads = sprwl_unins + sprwl_rep.stats.commits_by(Role::Reader, CommitMode::Htm);
    assert!(
        sprwl_unins as f64 > 0.8 * sprwl_reads as f64,
        "SpRWL long readers should be overwhelmingly uninstrumented: {sprwl_unins}/{sprwl_reads}"
    );

    let tle_gl = tle_rep.stats.commits_by(Role::Reader, CommitMode::Gl);
    let tle_reads = tle_gl + tle_rep.stats.commits_by(Role::Reader, CommitMode::Htm);
    assert!(
        tle_gl as f64 > 0.8 * tle_reads as f64,
        "TLE long readers should collapse onto the lock: {tle_gl}/{tle_reads}"
    );
    assert!(
        tle_rep.stats.aborts_of(AbortCause::Capacity) > 0,
        "TLE must be hitting capacity aborts"
    );
}

#[test]
fn sprwl_outperforms_tle_on_long_reader_workloads() {
    // The headline direction (magnitudes are host-dependent; see
    // EXPERIMENTS.md): SpRWL must beat TLE clearly on the 10%-update
    // long-reader mix.
    let profile = CapacityProfile::POWER8_SIM;
    let spec = HashmapSpec::paper(&profile, true, 10);
    let rc = RunConfig {
        threads: 4,
        duration: Duration::from_millis(150),
        seed: 18,
    };
    let (htm, lock, map) = hashmap_point(profile, &spec, &LockKind::Sprwl(SprwlConfig::full()), 4);
    let sprwl_rep = run_hashmap(&htm, &*lock, &map, &spec, &rc);
    drop((htm, lock, map));
    let (htm, lock, map) = hashmap_point(profile, &spec, &LockKind::Tle, 4);
    let tle_rep = run_hashmap(&htm, &*lock, &map, &spec, &rc);
    assert!(
        sprwl_rep.throughput > 1.5 * tle_rep.throughput,
        "SpRWL ({:.0} tx/s) should clearly beat TLE ({:.0} tx/s)",
        sprwl_rep.throughput,
        tle_rep.throughput
    );
}

#[test]
fn short_reader_workloads_keep_sprwl_close_to_tle() {
    // Fig. 4's story: when readers fit in HTM, SpRWL must not collapse —
    // the paper reports TLE peaks ≤30% above SpRWL. Allow generous slack
    // for the simulated substrate.
    let profile = CapacityProfile::POWER8_SIM;
    let spec = HashmapSpec::paper(&profile, false, 50);
    let rc = RunConfig {
        threads: 2,
        duration: Duration::from_millis(150),
        seed: 19,
    };
    let (htm, lock, map) = hashmap_point(profile, &spec, &LockKind::Sprwl(SprwlConfig::full()), 2);
    let sprwl_rep = run_hashmap(&htm, &*lock, &map, &spec, &rc);
    drop((htm, lock, map));
    let (htm, lock, map) = hashmap_point(profile, &spec, &LockKind::Tle, 2);
    let tle_rep = run_hashmap(&htm, &*lock, &map, &spec, &rc);
    assert!(
        sprwl_rep.throughput > 0.5 * tle_rep.throughput,
        "SpRWL ({:.0}) fell too far behind TLE ({:.0}) on short readers",
        sprwl_rep.throughput,
        tle_rep.throughput
    );
}

#[test]
fn rwle_writer_latency_exceeds_sprwl_under_long_readers() {
    // The paper's Fig. 3 commentary: RW-LE's quiescence makes writers wait
    // for active readers, inflating writer latency versus SpRWL.
    let profile = CapacityProfile::POWER8_SIM;
    let spec = HashmapSpec::paper(&profile, true, 10);
    let rc = RunConfig {
        threads: 4,
        duration: Duration::from_millis(150),
        seed: 20,
    };
    let (htm, lock, map) = hashmap_point(profile, &spec, &LockKind::Sprwl(SprwlConfig::full()), 4);
    let sprwl_rep = run_hashmap(&htm, &*lock, &map, &spec, &rc);
    drop((htm, lock, map));
    let (htm, lock, map) = hashmap_point(profile, &spec, &LockKind::RwLe, 4);
    let rwle_rep = run_hashmap(&htm, &*lock, &map, &spec, &rc);
    assert!(
        rwle_rep.stats.writer_latency.mean_ns() > sprwl_rep.stats.writer_latency.mean_ns(),
        "RW-LE writer latency ({}) should exceed SpRWL's ({})",
        rwle_rep.stats.writer_latency.mean_ns(),
        sprwl_rep.stats.writer_latency.mean_ns()
    );
}
