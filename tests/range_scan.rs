//! Integration test mirroring the `range_scan` example: full-list range
//! scans (far beyond HTM capacity) stay snapshot-atomic while writers
//! churn, for SpRWL and for the SNZI/adaptive variants.

use sprwl_repro::prelude::*;
use sprwl_repro::workloads::SortedList;

const THREADS: usize = 3;
const INITIAL: u64 = 256;

fn run_with(cfg: SprwlConfig) {
    let htm = Htm::new(
        HtmConfig {
            max_threads: THREADS,
            capacity: CapacityProfile::POWER8_SIM,
            ..HtmConfig::default()
        },
        SortedList::cells_needed(2048, THREADS) + 1024,
    );
    let lock = SpRwl::new(&htm, cfg);
    let list = SortedList::new(htm.memory(), 2048, THREADS);
    {
        let mut setup = htm.direct(0);
        list.populate(&mut setup, INITIAL).unwrap();
    }
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let (htm, lock, list) = (&htm, &lock, &list);
            s.spawn(move || {
                let mut t = LockThread::new(htm.thread(tid));
                let mut x = (tid as u64 + 1) | 1;
                let mut rnd = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for op in 0..200 {
                    if op % 4 == 0 {
                        // Writers only touch odd keys; even keys persist.
                        let key = (rnd() % (INITIAL * 2)) | 1;
                        let insert = rnd() % 2 == 0;
                        lock.write_section(&mut t, SectionId(1), &mut |a| {
                            if insert {
                                list.insert(a, tid, key, 1)?;
                            } else {
                                list.remove(a, tid, key)?;
                            }
                            Ok(0)
                        });
                    } else {
                        let mut len = 0;
                        lock.read_section(&mut t, SectionId(0), &mut |a| {
                            // checksum() panics internally on order
                            // violations — the strongest torn-read canary.
                            let (l, _sum) = list.checksum(a)?;
                            len = l;
                            Ok(l)
                        });
                        assert!(len >= INITIAL, "even keys vanished: {len}");
                    }
                }
            });
        }
    });
    // Final structural verification.
    let mut d = htm.direct(0);
    let (len, _) = list.checksum(&mut d).unwrap();
    assert!(len >= INITIAL);
    for k in 0..INITIAL {
        assert!(
            list.get(&mut d, k * 2).unwrap().is_some(),
            "initial key {} missing",
            k * 2
        );
    }
}

#[test]
fn range_scans_are_atomic_under_default_sprwl() {
    run_with(SprwlConfig::default());
}

#[test]
fn range_scans_are_atomic_under_snzi_tracking() {
    run_with(SprwlConfig::with_snzi());
}

#[test]
fn range_scans_are_atomic_under_adaptive_tracking() {
    run_with(SprwlConfig::adaptive());
}

#[test]
fn range_scans_are_atomic_under_base_algorithm() {
    run_with(SprwlConfig::no_sched());
}
