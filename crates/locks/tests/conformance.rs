//! A conformance suite every `RwSync` implementation must pass: lost-update
//! freedom, snapshot atomicity for readers, progress under mixed load, and
//! sane statistics. The same checks run against each scheme in this crate
//! (SpRWL runs them too, from its own crate's tests).

use htm_sim::{CapacityProfile, Htm, HtmConfig};
use sprwl_locks::{
    BrLock, LockThread, McsRwLock, PassiveRwLock, PhaseFairRwLock, PthreadRwLock, RwLe, RwSync,
    SectionId, Tle,
};

const THREADS: usize = 4;
const SLOTS: usize = 8;
const OPS: usize = 250;

fn htm() -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: THREADS,
            capacity: CapacityProfile::POWER8_SIM,
            ..HtmConfig::default()
        },
        16 * 1024,
    )
}

/// Builds each scheme under test (SpRWL variants are covered in `sprwl`'s
/// own test-suite; this file is about the baselines).
fn schemes(h: &Htm) -> Vec<Box<dyn RwSync>> {
    vec![
        Box::new(PthreadRwLock::new()),
        Box::new(BrLock::new(THREADS)),
        Box::new(PhaseFairRwLock::new()),
        Box::new(McsRwLock::new(THREADS)),
        Box::new(PassiveRwLock::new(THREADS)),
        Box::new(Tle::new(h)),
        Box::new(RwLe::new(h)),
    ]
}

/// The conformance body: transfers + audits; panics on any violation.
fn exercise(h: &Htm, lock: &dyn RwSync) {
    let slots = h.memory().alloc_line_aligned(SLOTS * 8);
    let d0 = h.direct(0);
    for i in 0..SLOTS {
        d0.store(slots.cell(i * 8), 100);
    }
    let total = SLOTS as u64 * 100;
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let (h, slots) = (h, &slots);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(tid));
                let mut x = (tid as u64 + 1) | 1;
                let mut rnd = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for op in 0..OPS {
                    if op % 3 == 0 {
                        let from = (rnd() as usize) % SLOTS;
                        let to = (rnd() as usize) % SLOTS;
                        lock.write_section(&mut t, SectionId(1), &mut |a| {
                            let f = a.read(slots.cell(from * 8))?;
                            if f == 0 || from == to {
                                return Ok(0);
                            }
                            let v = a.read(slots.cell(to * 8))?;
                            a.write(slots.cell(from * 8), f - 1)?;
                            a.write(slots.cell(to * 8), v + 1)?;
                            Ok(1)
                        });
                    } else {
                        let sum = lock.read_section(&mut t, SectionId(0), &mut |a| {
                            let mut sum = 0;
                            for i in 0..SLOTS {
                                sum += a.read(slots.cell(i * 8))?;
                            }
                            Ok(sum)
                        });
                        assert_eq!(sum, total, "{}: torn reader snapshot", lock.name());
                    }
                }
                assert!(
                    t.stats.total_commits() > 0,
                    "{}: thread made no progress",
                    lock.name()
                );
            });
        }
    });
    let final_total: u64 = (0..SLOTS).map(|i| d0.load(slots.cell(i * 8))).sum();
    assert_eq!(final_total, total, "{}: money not conserved", lock.name());
}

#[test]
fn all_baselines_pass_the_conformance_suite() {
    let h = htm();
    for lock in schemes(&h) {
        exercise(&h, &*lock);
    }
}

#[test]
fn read_sections_return_section_values() {
    let h = htm();
    let cell = h.memory().alloc(1).cell(0);
    h.direct(0).store(cell, 42);
    for lock in schemes(&h) {
        let mut t = LockThread::new(h.thread(0));
        let v = lock.read_section(&mut t, SectionId(0), &mut |a| a.read(cell));
        assert_eq!(v, 42, "{}", lock.name());
        let w = lock.write_section(&mut t, SectionId(1), &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1)?;
            Ok(v + 1)
        });
        assert_eq!(w, 43, "{}", lock.name());
        h.direct(0).store(cell, 42); // reset for the next scheme
    }
}

#[test]
fn names_are_stable_and_distinct() {
    let h = htm();
    let names: Vec<&'static str> = schemes(&h).iter().map(|l| l.name()).collect();
    let unique: std::collections::HashSet<_> = names.iter().collect();
    assert_eq!(
        unique.len(),
        names.len(),
        "duplicate scheme names: {names:?}"
    );
    for n in names {
        assert!(!n.is_empty());
    }
}

#[test]
fn latencies_are_recorded_for_both_roles() {
    let h = htm();
    let cell = h.memory().alloc(1).cell(0);
    for lock in schemes(&h) {
        let mut t = LockThread::new(h.thread(0));
        lock.read_section(&mut t, SectionId(0), &mut |a| a.read(cell));
        lock.write_section(&mut t, SectionId(1), &mut |a| a.write(cell, 1).map(|_| 0));
        assert_eq!(t.stats.reader_latency.count, 1, "{}", lock.name());
        assert_eq!(t.stats.writer_latency.count, 1, "{}", lock.name());
        assert_eq!(t.stats.total_commits(), 2, "{}", lock.name());
    }
}
