//! The Big Reader Lock (BRLock), as once used in the Linux kernel: readers
//! take only their own per-thread mutex (no shared-line traffic on the read
//! path); writers take a global mutex and then *every* per-thread mutex.

use htm_sim::clock;

use crate::api::{run_untracked, LockThread, RwSync, SectionBody, SectionId};
use crate::spin::SpinMutex;
use crate::stats::{CommitMode, Role};

/// Pads a per-thread mutex to a cache line to avoid false sharing.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedMutex(SpinMutex);

/// Big Reader Lock for a fixed set of threads.
#[derive(Debug)]
pub struct BrLock {
    global: SpinMutex,
    per_thread: Box<[PaddedMutex]>,
}

impl BrLock {
    /// Creates a BRLock for `n_threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0, "BRLock needs at least one thread");
        let mut v = Vec::with_capacity(n_threads);
        v.resize_with(n_threads, PaddedMutex::default);
        Self {
            global: SpinMutex::new(),
            per_thread: v.into_boxed_slice(),
        }
    }

    /// Number of per-thread slots.
    pub fn threads(&self) -> usize {
        self.per_thread.len()
    }

    /// Shared acquisition: only the caller's own mutex.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn read_lock(&self, tid: usize) {
        self.per_thread[tid].0.lock();
    }

    /// Shared release.
    pub fn read_unlock(&self, tid: usize) {
        self.per_thread[tid].0.unlock();
    }

    /// Exclusive acquisition: global mutex, then every per-thread mutex in
    /// index order (a total order, so writers cannot deadlock).
    pub fn write_lock(&self) {
        self.global.lock();
        for m in self.per_thread.iter() {
            m.0.lock();
        }
    }

    /// Exclusive release (reverse order).
    pub fn write_unlock(&self) {
        for m in self.per_thread.iter().rev() {
            m.0.unlock();
        }
        self.global.unlock();
    }
}

impl RwSync for BrLock {
    fn name(&self) -> &'static str {
        "BRLock"
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.read_lock(t.tid());
        let r = run_untracked(t, f);
        self.read_unlock(t.tid());
        t.stats
            .record_commit(Role::Reader, CommitMode::Gl, clock::now() - start);
        r
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.write_lock();
        let r = run_untracked(t, f);
        self.write_unlock();
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, clock::now() - start);
        r
    }

    fn check_quiescent(&self, _mem: &htm_sim::SimMemory) -> Result<(), String> {
        if self.global.is_locked() {
            return Err("BRLock: global mutex still held at quiescence".into());
        }
        for (tid, m) in self.per_thread.iter().enumerate() {
            if m.0.is_locked() {
                return Err(format!(
                    "BRLock: per-thread mutex {tid} still held at quiescence"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_use_disjoint_mutexes() {
        let l = BrLock::new(4);
        l.read_lock(0);
        l.read_lock(1); // no interference
        l.read_unlock(0);
        l.read_unlock(1);
    }

    #[test]
    fn writer_excludes_all_readers() {
        let l = std::sync::Arc::new(BrLock::new(3));
        let data = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        {
            let l = l.clone();
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    l.write_lock();
                    let v = data.load(std::sync::atomic::Ordering::Relaxed);
                    data.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    l.write_unlock();
                }
            }));
        }
        for tid in 0..3 {
            let l = l.clone();
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    l.read_lock(tid);
                    let _ = data.load(std::sync::atomic::Ordering::Relaxed);
                    l.read_unlock(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(std::sync::atomic::Ordering::Relaxed), 300);
    }

    #[test]
    fn concurrent_writers_serialize() {
        let l = std::sync::Arc::new(BrLock::new(2));
        let data = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = l.clone();
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    l.write_lock();
                    let v = data.load(std::sync::atomic::Ordering::Relaxed);
                    data.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    l.write_unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }

    #[test]
    #[should_panic]
    fn out_of_range_tid_panics() {
        BrLock::new(2).read_lock(5);
    }
}
