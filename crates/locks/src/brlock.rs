//! The Big Reader Lock (BRLock), as once used in the Linux kernel: readers
//! take only their own per-thread mutex (no shared-line traffic on the read
//! path); writers take a global mutex and then *every* per-thread mutex.
//!
//! The biased flavour ([`BrLock::with_bias`]) layers the BRAVO
//! visible-readers table on top: while bias is armed readers publish with
//! one CAS and skip even their own mutex; writers revoke bias (draining
//! active fast-path readers) before sweeping the per-thread mutexes. This
//! gives the pessimistic baseline the *same* reader-admission machinery as
//! the speculative lock's `Bravo` tracking, for apples-to-apples
//! comparisons.

use std::sync::atomic::{fence, Ordering};

use htm_sim::clock;

use crate::api::{run_untracked, LockThread, RwSync, SectionBody, SectionId};
use crate::policy::BiasPolicy;
use crate::spin::SpinMutex;
use crate::stats::{CommitMode, Role};
use crate::visible::VisibleReaders;

/// Pads a per-thread mutex to a cache line to avoid false sharing.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedMutex(SpinMutex);

/// Big Reader Lock for a fixed set of threads.
#[derive(Debug)]
pub struct BrLock {
    global: SpinMutex,
    per_thread: Box<[PaddedMutex]>,
    /// BRAVO bias layer (see [`crate::visible`]); `None` for the classic
    /// unbiased lock.
    bias: Option<VisibleReaders>,
}

impl BrLock {
    /// Creates a BRLock for `n_threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0, "BRLock needs at least one thread");
        let mut v = Vec::with_capacity(n_threads);
        v.resize_with(n_threads, PaddedMutex::default);
        Self {
            global: SpinMutex::new(),
            per_thread: v.into_boxed_slice(),
            bias: None,
        }
    }

    /// Creates a BRLock with the BRAVO bias layer on top: biased readers
    /// publish in the visible-readers table with one CAS instead of taking
    /// their per-thread mutex; writers revoke and drain before sweeping.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn with_bias(n_threads: usize, policy: BiasPolicy) -> Self {
        let mut l = Self::new(n_threads);
        l.bias = Some(VisibleReaders::new(n_threads, policy));
        l
    }

    /// The bias layer, when this is a biased lock.
    pub fn bias(&self) -> Option<&VisibleReaders> {
        self.bias.as_ref()
    }

    /// Number of per-thread slots.
    pub fn threads(&self) -> usize {
        self.per_thread.len()
    }

    /// Shared acquisition. Biased locks try the visible-table fast path
    /// first; the returned pass must be handed back to
    /// [`BrLock::read_unlock`].
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn read_lock(&self, tid: usize) -> ReadPass {
        assert!(tid < self.per_thread.len(), "BRLock tid {tid} out of range");
        if let Some(bias) = &self.bias {
            if let Some(slot) = bias.arrive(tid) {
                // Publish-then-check (Dekker with the writer's lock-then-
                // drain): either we see the global mutex held and withdraw,
                // or the writer's drain sees our occupied slot and waits.
                // Without this check a reader re-arming bias mid-write
                // could slip past the mutex sweep. The SeqCst fence — paired
                // with the one in `write_lock` — is what makes the pair
                // sound: `SpinMutex` itself is only Acquire/Release, so
                // without the fences there is no total order between our
                // slot publish and the `is_locked` load versus the writer's
                // lock CAS and its drain loads, and on weakly ordered
                // targets (aarch64) both sides could miss each other.
                fence(Ordering::SeqCst);
                if !self.global.is_locked() {
                    return ReadPass::Visible(slot);
                }
                bias.depart(slot);
            }
        }
        self.per_thread[tid].0.lock();
        ReadPass::Mutex
    }

    /// Shared release (balancing whatever [`BrLock::read_lock`] took).
    pub fn read_unlock(&self, tid: usize, pass: ReadPass) {
        match pass {
            ReadPass::Visible(slot) => self
                .bias
                .as_ref()
                .expect("a Visible pass implies a biased lock")
                .depart(slot),
            ReadPass::Mutex => self.per_thread[tid].0.unlock(),
        }
    }

    /// Exclusive acquisition: global mutex, bias revocation (biased locks
    /// only — fast-path readers must drain before the sweep can exclude
    /// them), then every per-thread mutex in index order (a total order, so
    /// writers cannot deadlock).
    pub fn write_lock(&self) {
        self.global.lock();
        if let Some(bias) = &self.bias {
            // Writer half of the Dekker pair (see `read_lock`): order the
            // global-lock CAS before the drain's bias and slot loads, so a
            // reader that missed the lock is seen by the drain.
            fence(Ordering::SeqCst);
            let _ = bias.revoke();
        }
        for m in self.per_thread.iter() {
            m.0.lock();
        }
    }

    /// Exclusive release (reverse order).
    pub fn write_unlock(&self) {
        for m in self.per_thread.iter().rev() {
            m.0.unlock();
        }
        self.global.unlock();
    }
}

/// What a reader acquired — its per-thread mutex or a visible-table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPass {
    /// The classic path: the caller's own padded mutex.
    Mutex,
    /// The biased fast path: a published visible-readers slot.
    Visible(usize),
}

impl RwSync for BrLock {
    fn name(&self) -> &'static str {
        if self.bias.is_some() {
            "BRLock+bias"
        } else {
            "BRLock"
        }
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        let pass = self.read_lock(t.tid());
        let r = run_untracked(t, f);
        self.read_unlock(t.tid(), pass);
        t.stats
            .record_commit(Role::Reader, CommitMode::Gl, clock::now() - start);
        r
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.write_lock();
        let r = run_untracked(t, f);
        self.write_unlock();
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, clock::now() - start);
        r
    }

    fn check_quiescent(&self, _mem: &htm_sim::SimMemory) -> Result<(), String> {
        if self.global.is_locked() {
            return Err("BRLock: global mutex still held at quiescence".into());
        }
        for (tid, m) in self.per_thread.iter().enumerate() {
            if m.0.is_locked() {
                return Err(format!(
                    "BRLock: per-thread mutex {tid} still held at quiescence"
                ));
            }
        }
        if let Some(bias) = &self.bias {
            bias.check_quiescent().map_err(|e| format!("BRLock: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_use_disjoint_mutexes() {
        let l = BrLock::new(4);
        let p0 = l.read_lock(0);
        let p1 = l.read_lock(1); // no interference
        l.read_unlock(0, p0);
        l.read_unlock(1, p1);
    }

    #[test]
    fn writer_excludes_all_readers() {
        let l = std::sync::Arc::new(BrLock::new(3));
        let data = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        {
            let l = l.clone();
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    l.write_lock();
                    let v = data.load(std::sync::atomic::Ordering::Relaxed);
                    data.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    l.write_unlock();
                }
            }));
        }
        for tid in 0..3 {
            let l = l.clone();
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    let pass = l.read_lock(tid);
                    let _ = data.load(std::sync::atomic::Ordering::Relaxed);
                    l.read_unlock(tid, pass);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(std::sync::atomic::Ordering::Relaxed), 300);
    }

    #[test]
    fn concurrent_writers_serialize() {
        let l = std::sync::Arc::new(BrLock::new(2));
        let data = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = l.clone();
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    l.write_lock();
                    let v = data.load(std::sync::atomic::Ordering::Relaxed);
                    data.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    l.write_unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }

    #[test]
    #[should_panic]
    fn out_of_range_tid_panics() {
        BrLock::new(2).read_lock(5);
    }

    #[test]
    fn biased_readers_take_the_fast_path_until_a_writer_revokes() {
        let l = BrLock::with_bias(2, crate::policy::BiasPolicy::default());
        assert_eq!(
            l.bias().unwrap().bias_state(),
            crate::visible::BIAS_ON,
            "bias starts armed"
        );
        let pass = l.read_lock(0);
        assert!(
            matches!(pass, ReadPass::Visible(_)),
            "armed bias → visible-table fast path, got {pass:?}"
        );
        l.read_unlock(0, pass);
        l.write_lock();
        assert_eq!(l.bias().unwrap().bias_state(), crate::visible::BIAS_OFF);
        l.write_unlock();
        // Inside the cooldown the fast path is closed; the classic path
        // still works and the lock stays correct.
        let pass = l.read_lock(0);
        assert_eq!(pass, ReadPass::Mutex);
        l.read_unlock(0, pass);
        l.check_quiescent(&htm_sim::SimMemory::new(64, 8)).unwrap();
    }

    #[test]
    fn biased_writer_excludes_fast_path_readers() {
        let l = std::sync::Arc::new(BrLock::with_bias(
            4,
            // Zero cooldown so readers re-arm aggressively and the
            // revocation machinery is exercised on every writer turn.
            crate::policy::BiasPolicy {
                rearm_cooldown_ns: 0,
                ..crate::policy::BiasPolicy::default()
            },
        ));
        let data = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        {
            let l = l.clone();
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    l.write_lock();
                    // Torn-state canary: odd while the writer is inside.
                    let v = data.load(std::sync::atomic::Ordering::Relaxed);
                    data.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    data.store(v + 2, std::sync::atomic::Ordering::Relaxed);
                    l.write_unlock();
                }
            }));
        }
        for tid in 1..4 {
            let l = l.clone();
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    let pass = l.read_lock(tid);
                    let v = data.load(std::sync::atomic::Ordering::Relaxed);
                    assert_eq!(v % 2, 0, "reader overlapped a writer's section");
                    l.read_unlock(tid, pass);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(std::sync::atomic::Ordering::Relaxed), 600);
        l.check_quiescent(&htm_sim::SimMemory::new(64, 8)).unwrap();
    }
}
