//! A minimal spin mutex with explicit `lock`/`unlock` (no guards), used by
//! lock algorithms that acquire many locks in patterns RAII guards cannot
//! express conveniently (e.g. BRLock's "writer takes every per-thread
//! lock").

use std::sync::atomic::{AtomicBool, Ordering};

use htm_sim::clock::SpinWait;

/// A test-and-test-and-set spin lock that yields under contention.
#[derive(Debug, Default)]
pub struct SpinMutex {
    locked: AtomicBool,
}

impl SpinMutex {
    /// Creates an unlocked mutex.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning (with OS yields) until available.
    pub fn lock(&self) {
        let mut wait = SpinWait::new();
        loop {
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            wait.snooze();
        }
    }

    /// Attempts to acquire without blocking.
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Debug-asserts the lock was held; releasing an unheld `SpinMutex` is
    /// a logic error in the calling algorithm.
    pub fn unlock(&self) {
        debug_assert!(self.locked.load(Ordering::Relaxed), "unlock of free mutex");
        self.locked.store(false, Ordering::Release);
    }

    /// Whether the lock is currently held (racy; for diagnostics/tests).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_roundtrip() {
        let m = SpinMutex::new();
        assert!(!m.is_locked());
        m.lock();
        assert!(m.is_locked());
        assert!(!m.try_lock());
        m.unlock();
        assert!(m.try_lock());
        m.unlock();
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let m = SpinMutex::new();
        let counter = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        m.unlock();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
