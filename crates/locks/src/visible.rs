//! A BRAVO-style visible-readers table over plain `std` atomics, for the
//! OS-lock baselines.
//!
//! This is the same three-state bias protocol as the SpRWL core's
//! `reader_table` module (bias word `OFF`/`ON`/`REVOKING`, hashed
//! single-CAS reader publish, writer-side drain proportional to *active*
//! readers), but expressed over host atomics instead of simulated-memory
//! cells — so the pessimistic baselines ([`crate::BrLock`] in its biased
//! flavour) can be compared against the speculative lock with the same
//! reader-admission machinery on both sides.
//!
//! The safety argument is identical: `OFF` is only ever published by a
//! revoker that finished draining the table, and a reader whose publish
//! races a revocation re-checks the bias word under the SeqCst total order
//! — it either stays visible (and the drain waits on its slot) or
//! withdraws to the slow path the writer also excludes. Every atomic here
//! is SeqCst, so that total order covers the table's own protocol; a
//! caller that additionally Dekker-pairs a slot publish against one of its
//! *own* non-SeqCst atomics (as [`crate::BrLock`] does against its
//! Acquire/Release global mutex) must supply SeqCst fences on both sides
//! of that pair itself.

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::clock;

use crate::policy::BiasPolicy;

/// Bias word values.
pub const BIAS_OFF: u64 = 0;
/// Readers may take the fast path.
pub const BIAS_ON: u64 = 1;
/// A writer is draining the table; readers must withdraw.
pub const BIAS_REVOKING: u64 = 2;

/// Pads a slot to a cache line so concurrent publishes never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedSlot(AtomicU64);

/// The visible-readers table plus its bias word.
#[derive(Debug)]
pub struct VisibleReaders {
    bias: AtomicU64,
    slots: Box<[PaddedSlot]>,
    /// Earliest instant (ns) readers may re-arm after a revocation.
    rearm_at: AtomicU64,
    policy: BiasPolicy,
}

impl VisibleReaders {
    /// A table for `n_threads` participants under `policy` (bias starts
    /// armed).
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn new(n_threads: usize, policy: BiasPolicy) -> Self {
        assert!(n_threads > 0, "visible-readers table needs threads");
        let len = (n_threads * policy.slots_per_thread.max(1)).next_power_of_two();
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, PaddedSlot::default);
        Self {
            bias: AtomicU64::new(BIAS_ON),
            slots: v.into_boxed_slice(),
            rearm_at: AtomicU64::new(0),
            policy,
        }
    }

    /// Table length (a power of two).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no slots (never true — `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot `tid` hashes to (Fibonacci hashing).
    #[inline]
    fn slot_of(&self, tid: usize) -> usize {
        ((tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.slots.len() - 1)
    }

    /// The current bias word.
    pub fn bias_state(&self) -> u64 {
        self.bias.load(Ordering::SeqCst)
    }

    /// Fast-path reader arrival: publish into the hashed slot while bias is
    /// armed (re-arming it first if allowed and the cooldown has passed).
    /// Returns the occupied slot on success; `None` means the caller must
    /// take the slow path (its per-thread lock) instead.
    pub fn arrive(&self, tid: usize) -> Option<usize> {
        let mut armed = self.bias.load(Ordering::SeqCst) == BIAS_ON;
        if !armed
            && self.policy.enabled
            && clock::now() >= self.rearm_at.load(Ordering::SeqCst)
            && self
                .bias
                .compare_exchange(BIAS_OFF, BIAS_ON, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            armed = true;
        }
        if !armed {
            return None;
        }
        let slot = self.slot_of(tid);
        if self.slots[slot]
            .0
            .compare_exchange(0, tid as u64 + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return None;
        }
        if self.bias.load(Ordering::SeqCst) == BIAS_ON {
            return Some(slot);
        }
        // A revocation began between our publish and the re-check; its
        // drain may already have passed our slot. Withdraw.
        self.slots[slot].0.store(0, Ordering::SeqCst);
        None
    }

    /// Releases a slot returned by [`VisibleReaders::arrive`].
    pub fn depart(&self, slot: usize) {
        self.slots[slot].0.store(0, Ordering::SeqCst);
    }

    /// Writer-side revocation: flip `ON → REVOKING`, wait for every
    /// occupied slot to drain, publish `OFF`, start the cooldown. Returns
    /// `(occupied, scanned)` when this caller's own revocation ran, `None`
    /// when bias was already off — or when another revocation was in
    /// flight, in which case the call blocks until that winner publishes
    /// `OFF` before returning.
    ///
    /// Concurrent calls are safe: only the thread that wins the
    /// `ON → REVOKING` transition scans the table. A joiner must not run
    /// its own drain (as the core's `reader_table::revoke_bias` also
    /// doesn't) — if the winner published `OFF` and a reader re-armed
    /// mid-scan, the joiner would return with bias `ON` and fresh
    /// fast-path readers occupying slots it had already passed.
    pub fn revoke(&self) -> Option<(u64, u64)> {
        // Win the revocation, or wait out one already in flight.
        loop {
            match self.bias.compare_exchange(
                BIAS_ON,
                BIAS_REVOKING,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(BIAS_OFF) => return None,
                Err(_) => {
                    let mut spin = clock::SpinWait::new();
                    while self.bias.load(Ordering::SeqCst) == BIAS_REVOKING {
                        spin.snooze();
                    }
                    // The winner published OFF. A reader may already have
                    // re-armed; the next loop turn then wins a fresh
                    // revocation of its own.
                }
            }
        }
        let mut occupied = 0u64;
        for s in self.slots.iter() {
            if s.0.load(Ordering::SeqCst) != 0 {
                occupied += 1;
                let mut spin = clock::SpinWait::new();
                while s.0.load(Ordering::SeqCst) != 0 {
                    spin.snooze();
                }
            }
        }
        self.rearm_at.store(
            clock::now() + self.policy.rearm_cooldown_ns,
            Ordering::SeqCst,
        );
        // Only the CAS winner reaches here, and readers re-arm only from
        // OFF, so nobody else can have touched the bias word since we
        // published REVOKING — a plain store cannot stomp anything.
        self.bias.store(BIAS_OFF, Ordering::SeqCst);
        Some((occupied, self.slots.len() as u64))
    }

    /// Quiescence invariants: no occupied slots, no revocation in flight.
    pub fn check_quiescent(&self) -> Result<(), String> {
        for (i, s) in self.slots.iter().enumerate() {
            let v = s.0.load(Ordering::SeqCst);
            if v != 0 {
                return Err(format!(
                    "visible[{i}] still holds reader {} at quiescence",
                    v - 1
                ));
            }
        }
        if self.bias.load(Ordering::SeqCst) == BIAS_REVOKING {
            return Err("bias revocation still in flight at quiescence".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> VisibleReaders {
        VisibleReaders::new(n, BiasPolicy::default())
    }

    #[test]
    fn arrive_depart_cycle_under_armed_bias() {
        let t = table(4);
        assert_eq!(t.bias_state(), BIAS_ON);
        let slot = t.arrive(2).expect("bias armed → fast path");
        t.check_quiescent().unwrap_err();
        t.depart(slot);
        t.check_quiescent().unwrap();
    }

    #[test]
    fn revoke_turns_bias_off_and_blocks_fast_path() {
        let t = table(4);
        let (occupied, scanned) = t.revoke().expect("first revocation runs");
        assert_eq!(occupied, 0);
        assert_eq!(scanned, t.len() as u64);
        assert_eq!(t.bias_state(), BIAS_OFF);
        assert!(t.revoke().is_none(), "already off → no drain");
        // Inside the cooldown the fast path stays closed.
        assert!(t.arrive(0).is_none());
    }

    #[test]
    fn revoke_waits_for_active_reader() {
        let t = std::sync::Arc::new(table(2));
        let slot = t.arrive(1).unwrap();
        let t2 = std::sync::Arc::clone(&t);
        let h = std::thread::spawn(move || t2.revoke().expect("revocation runs"));
        std::thread::sleep(std::time::Duration::from_millis(5));
        // The revoker is stuck on our slot until we depart.
        assert_eq!(t.bias_state(), BIAS_REVOKING);
        t.depart(slot);
        let (occupied, _) = h.join().unwrap();
        assert_eq!(occupied, 1);
        assert_eq!(t.bias_state(), BIAS_OFF);
    }

    #[test]
    fn concurrent_revokers_produce_one_drain() {
        // Whichever thread wins ON → REVOKING runs the (single) drain; the
        // other must wait it out and return None rather than scanning a
        // table the winner already swept.
        let t = std::sync::Arc::new(table(2));
        let slot = t.arrive(1).unwrap();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || t.revoke()));
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.depart(slot);
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            results.iter().filter(|r| r.is_some()).count(),
            1,
            "exactly one revoker drains, got {results:?}"
        );
        assert_eq!(t.bias_state(), BIAS_OFF);
        t.check_quiescent().unwrap();
    }

    #[test]
    fn disabled_policy_never_rearms() {
        let t = VisibleReaders::new(
            2,
            BiasPolicy {
                enabled: false,
                rearm_cooldown_ns: 0,
                ..BiasPolicy::default()
            },
        );
        t.revoke().unwrap();
        for tid in 0..2 {
            assert!(t.arrive(tid).is_none());
        }
        assert_eq!(t.bias_state(), BIAS_OFF);
    }

    #[test]
    fn zero_cooldown_rearms_immediately() {
        let t = VisibleReaders::new(
            2,
            BiasPolicy {
                rearm_cooldown_ns: 0,
                ..BiasPolicy::default()
            },
        );
        t.revoke().unwrap();
        let slot = t.arrive(0).expect("re-arm with zero cooldown");
        assert_eq!(t.bias_state(), BIAS_ON);
        t.depart(slot);
        t.check_quiescent().unwrap();
    }
}
