//! Phase-fair read-write lock (Brandenburg & Anderson's ticket-based PF-T
//! algorithm, ECRTS'09/RTSJ'10): readers and writers alternate in phases,
//! giving writers a bounded wait even under a constant stream of readers —
//! the pessimistic cousin of SpRWL's reader-synchronization scheme.
//!
//! Layout (following the published algorithm):
//!
//! * `rin`  — reader entry counter in the high bits (`RINC` per reader),
//!   plus two low *writer* bits: `PRES` (a writer is present) and `PHID`
//!   (the parity of the writer's ticket, so a blocked reader can detect
//!   that one full writer phase has passed).
//! * `rout` — reader exit counter (multiples of `RINC` only).
//! * `win`/`wout` — writer tickets serializing writers FIFO.

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::clock::{self, SpinWait};

use crate::api::{run_untracked, LockThread, RwSync, SectionBody, SectionId};
use crate::stats::{CommitMode, Role};

const RINC: u64 = 0x100;
const WBITS: u64 = 0x3;
const PRES: u64 = 0x2;
const PHID: u64 = 0x1;

/// Ticket-based phase-fair read-write lock.
#[derive(Debug, Default)]
pub struct PhaseFairRwLock {
    rin: AtomicU64,
    rout: AtomicU64,
    win: AtomicU64,
    wout: AtomicU64,
}

impl PhaseFairRwLock {
    /// Creates an unlocked phase-fair lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared acquisition: free when no writer is present; otherwise wait
    /// for exactly one writer phase to pass.
    pub fn read_lock(&self) {
        let w = self.rin.fetch_add(RINC, Ordering::SeqCst) & WBITS;
        if w != 0 {
            // A writer is present; wait until the writer bits change (the
            // writer left, or a different-parity writer took over — either
            // way one full phase elapsed).
            let mut wait = SpinWait::new();
            while self.rin.load(Ordering::SeqCst) & WBITS == w {
                wait.snooze();
            }
        }
    }

    /// Shared release.
    pub fn read_unlock(&self) {
        self.rout.fetch_add(RINC, Ordering::SeqCst);
    }

    /// Exclusive acquisition: take a ticket, wait FIFO turn, announce
    /// presence to readers, then wait for in-flight readers to drain.
    pub fn write_lock(&self) {
        let ticket = self.win.fetch_add(1, Ordering::SeqCst);
        let mut wait = SpinWait::new();
        while self.wout.load(Ordering::SeqCst) != ticket {
            wait.snooze();
        }
        let w = PRES | (ticket & PHID);
        // Announce presence; the returned value snapshots how many readers
        // have entered so far (their RINC multiples).
        let entered = self.rin.fetch_add(w, Ordering::SeqCst) & !WBITS;
        let mut wait = SpinWait::new();
        while self.rout.load(Ordering::SeqCst) != entered {
            wait.snooze();
        }
    }

    /// Exclusive release: clear the writer bits (unblocking the next reader
    /// phase) and pass the baton to the next writer ticket.
    pub fn write_unlock(&self) {
        // Our two low bits are exactly `PRES | (ticket & PHID)`; remove them.
        let w = PRES | ((self.wout.load(Ordering::SeqCst)) & PHID);
        self.rin.fetch_sub(w, Ordering::SeqCst);
        self.wout.fetch_add(1, Ordering::SeqCst);
    }
}

impl RwSync for PhaseFairRwLock {
    fn name(&self) -> &'static str {
        "PF-RWL"
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.read_lock();
        let r = run_untracked(t, f);
        self.read_unlock();
        t.stats
            .record_commit(Role::Reader, CommitMode::Gl, clock::now() - start);
        r
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.write_lock();
        let r = run_untracked(t, f);
        self.write_unlock();
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, clock::now() - start);
        r
    }

    fn check_quiescent(&self, _mem: &htm_sim::SimMemory) -> Result<(), String> {
        let rin = self.rin.load(Ordering::SeqCst);
        let rout = self.rout.load(Ordering::SeqCst);
        let win = self.win.load(Ordering::SeqCst);
        let wout = self.wout.load(Ordering::SeqCst);
        if rin & WBITS != 0 {
            return Err(format!(
                "PF-RWL: writer presence bits set at quiescence (rin={rin:#x})"
            ));
        }
        if rin != rout {
            return Err(format!(
                "PF-RWL: reader counters unbalanced at quiescence (rin={rin:#x}, rout={rout:#x})"
            ));
        }
        if win != wout {
            return Err(format!(
                "PF-RWL: writer tickets unbalanced at quiescence (win={win}, wout={wout})"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrips() {
        let l = PhaseFairRwLock::new();
        l.read_lock();
        l.read_lock();
        l.read_unlock();
        l.read_unlock();
        l.write_lock();
        l.write_unlock();
        l.read_lock();
        l.read_unlock();
    }

    #[test]
    fn writers_mutually_exclude_and_exclude_readers() {
        let l = Arc::new(PhaseFairRwLock::new());
        let inside = Arc::new(Counter::new(0)); // bit 0..: reader count, bit 32: writer
        let violations = Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let (l, inside, violations) = (l.clone(), inside.clone(), violations.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..400 {
                    l.write_lock();
                    let prev = inside.fetch_add(1 << 32, Ordering::SeqCst);
                    if prev != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    inside.fetch_sub(1 << 32, Ordering::SeqCst);
                    l.write_unlock();
                }
            }));
        }
        for _ in 0..3 {
            let (l, inside, violations) = (l.clone(), inside.clone(), violations.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..400 {
                    l.read_lock();
                    let prev = inside.fetch_add(1, Ordering::SeqCst);
                    if prev >> 32 != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    inside.fetch_sub(1, Ordering::SeqCst);
                    l.read_unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn writer_not_starved_by_reader_stream() {
        // Phase fairness: a writer must get in even while readers keep
        // arriving. We bound the test by total reader iterations.
        let l = Arc::new(PhaseFairRwLock::new());
        let writer_done = Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let (l, writer_done) = (l.clone(), writer_done.clone());
            handles.push(std::thread::spawn(move || {
                while writer_done.load(Ordering::SeqCst) == 0 {
                    l.read_lock();
                    std::hint::spin_loop();
                    l.read_unlock();
                }
            }));
        }
        {
            let (l, writer_done) = (l.clone(), writer_done.clone());
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                l.write_lock();
                writer_done.store(1, Ordering::SeqCst);
                l.write_unlock();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(writer_done.load(Ordering::SeqCst), 1);
    }
}
