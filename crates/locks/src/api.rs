//! The common interface all read-write synchronization schemes implement.
//!
//! A *critical section* is a closure over [`htm_sim::MemAccess`]; the same
//! closure body can therefore run speculatively (inside a hardware
//! transaction), uninstrumented, or under a pessimistic lock — whichever
//! execution mode the scheme chooses. This mirrors how SpRWL elides
//! existing lock-based code without changing it.

use htm_sim::{MemAccess, SimMemory, ThreadCtx, TxResult};
use sprwl_trace::{TraceBuffer, TraceConfig};

use crate::stats::SessionStats;

/// Identifies a critical-section *kind* for duration statistics.
///
/// SpRWL's scheduling layer estimates per-section durations (the paper has
/// programmers pass a unique id to the lock/unlock API; a compiler could
/// derive it from the call site). Use one id per distinct critical-section
/// body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SectionId(pub u32);

impl SectionId {
    /// The raw id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A critical-section body: re-runnable (it may be retried many times) and
/// abortable (`Err` propagates a hardware abort).
///
/// The `u64` return value travels back through [`RwSync`]; pack richer
/// results into simulated memory or fold them into the word.
pub type SectionBody<'b> = &'b mut dyn FnMut(&mut dyn MemAccess) -> TxResult<u64>;

/// Per-thread state bundle: the HTM thread context plus this thread's
/// statistics and (optional) lock-lifecycle trace. Create one per OS
/// thread, pass it to every section call.
#[derive(Debug)]
pub struct LockThread<'h> {
    /// The simulated hardware-thread context.
    pub ctx: ThreadCtx<'h>,
    /// Commit/abort/latency bookkeeping for this thread.
    pub stats: SessionStats,
    /// Lock-lifecycle event ring (disabled by default; see
    /// [`LockThread::with_trace`]). Owned by this thread only, so
    /// recording adds no shared-memory traffic.
    pub trace: TraceBuffer,
}

impl<'h> LockThread<'h> {
    /// Bundles a thread context with fresh statistics and tracing off.
    pub fn new(ctx: ThreadCtx<'h>) -> Self {
        Self::with_trace(ctx, TraceConfig::Off)
    }

    /// Bundles a thread context with fresh statistics and the given
    /// tracing policy.
    pub fn with_trace(ctx: ThreadCtx<'h>, trace: TraceConfig) -> Self {
        let tid = ctx.tid() as u32;
        Self {
            ctx,
            stats: SessionStats::default(),
            trace: TraceBuffer::new(tid, trace),
        }
    }

    /// The simulated hardware thread id.
    pub fn tid(&self) -> usize {
        self.ctx.tid()
    }

    /// Folds the trace buffer's loss counters into this thread's stats so
    /// cross-thread [`SessionStats`] merges carry them alongside the
    /// commit/abort tallies. Call once, at the end of the session, before
    /// handing `stats` to the aggregator.
    pub fn fold_trace_counters(&mut self) {
        self.stats.trace_dropped += self.trace.dropped();
        self.stats.trace_unsampled += self.trace.unsampled();
    }
}

/// A read-write synchronization scheme: protects critical sections with
/// reader-reader concurrency and (scheme-dependent) speculation.
///
/// Object-safe on purpose: benchmark harnesses iterate over
/// `&dyn RwSync` to compare schemes.
pub trait RwSync: Sync {
    /// Short human-readable name used in benchmark output (e.g. `"TLE"`).
    fn name(&self) -> &'static str;

    /// Executes `f` as a *read* critical section.
    ///
    /// The implementation decides the execution mode (speculative,
    /// uninstrumented, pessimistic) and records the outcome in `t.stats`.
    fn read_section(&self, t: &mut LockThread<'_>, sec: SectionId, f: SectionBody<'_>) -> u64;

    /// Executes `f` as a *write* critical section.
    fn write_section(&self, t: &mut LockThread<'_>, sec: SectionId, f: SectionBody<'_>) -> u64;

    /// Oracle hook for stress harnesses: verifies the scheme is *quiescent*
    /// — no reader or writer registered anywhere, every internal lock free.
    /// Only meaningful while no thread is inside a section; the torture
    /// harness calls it after joining all worker threads to catch leaked
    /// registrations (unbalanced SNZI arrives, stale flags, a fallback lock
    /// never released).
    ///
    /// The default implementation checks nothing; schemes override it to
    /// expose their invariants.
    ///
    /// # Errors
    ///
    /// A description of the first piece of non-quiescent state found.
    fn check_quiescent(&self, mem: &SimMemory) -> Result<(), String> {
        let _ = mem;
        Ok(())
    }
}

/// Convenience: run an untracked (never-aborting) body and unwrap.
pub(crate) fn run_untracked(t: &mut LockThread<'_>, f: SectionBody<'_>) -> u64 {
    let mut d = t.ctx.direct();
    f(&mut d).expect("untracked critical sections cannot abort")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_id_roundtrip() {
        assert_eq!(SectionId(7).index(), 7);
        assert_eq!(SectionId(7), SectionId(7));
        assert_ne!(SectionId(7), SectionId(8));
    }

    #[test]
    fn lock_thread_exposes_tid() {
        let htm = htm_sim::Htm::new(htm_sim::HtmConfig::default(), 64);
        let t = LockThread::new(htm.thread(3));
        assert_eq!(t.tid(), 3);
    }
}
