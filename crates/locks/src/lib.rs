//! # sprwl-locks — read-write-lock baselines and lock-elision machinery
//!
//! Everything the SpRWL paper compares against, implemented from scratch
//! over the [`htm_sim`] substrate:
//!
//! * **Pessimistic RWLocks** — [`PthreadRwLock`] (mutex + condvar counters,
//!   like glibc), [`BrLock`] (per-thread "big reader" locks, once used in
//!   the Linux kernel), [`PhaseFairRwLock`] (Brandenburg & Anderson's
//!   PF-T ticket algorithm) and [`PassiveRwLock`] (version-consensus
//!   reader-writer lock inspired by PRWL).
//! * **HTM lock elision** — [`Tle`] (plain transactional lock elision of a
//!   single global lock) and [`RwLe`] (hardware read-write lock elision,
//!   the POWER8-only baseline that runs readers uninstrumented and writers
//!   as HTM/rollback-only transactions with a quiescence wait).
//! * The shared [`RwSync`] interface, the single-global-lock fallback
//!   ([`GlobalLock`], [`VersionedLock`]), retry policies, and the
//!   commit/abort/latency bookkeeping every implementation reports
//!   ([`SessionStats`]).
//!
//! SpRWL itself lives in the `sprwl` crate and implements the same
//! [`RwSync`] trait, so benchmarks and applications can swap
//! implementations freely.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod api;
pub mod brlock;
pub mod mcs;
pub mod passive;
pub mod phase_fair;
pub mod policy;
pub mod pthread_rw;
pub mod rwle;
pub mod sgl;
pub mod spin;
pub mod stats;
pub mod tle;
pub mod visible;

pub use api::{LockThread, RwSync, SectionBody, SectionId};
pub use brlock::BrLock;
pub use mcs::McsRwLock;
pub use passive::PassiveRwLock;
pub use phase_fair::PhaseFairRwLock;
pub use policy::{BiasPolicy, RetryPolicy};
pub use pthread_rw::PthreadRwLock;
pub use rwle::RwLe;
pub use sgl::{GlobalLock, VersionedLock, ABORT_LOCKED, ABORT_READER};
pub use spin::SpinMutex;
pub use stats::{
    AbortCause, CommitMode, ConflictLine, ConflictTable, LatencyRecorder, Reservoir, Role,
    SessionStats,
};
pub use tle::Tle;
pub use visible::VisibleReaders;
