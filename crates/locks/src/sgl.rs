//! The single-global-lock fallback used by every HTM elision scheme, plus
//! the versioned variant SpRWL's anti-starvation extension needs.
//!
//! The lock word lives in simulated memory so hardware transactions can
//! *subscribe* to it: the transaction reads the word right after it begins
//! (adding the line to its read-set) and aborts explicitly if the lock is
//! taken. If the lock is acquired later, the untracked CAS dooms every
//! subscribed transaction — the standard eager-subscription SGL pattern.

use htm_sim::clock::SpinWait;
use htm_sim::{CellId, Direct, SimMemory, Tx, TxResult};

/// Explicit-abort code: transaction observed the fallback lock taken.
pub const ABORT_LOCKED: u32 = 1;
/// Explicit-abort code: SpRWL writer found an active reader at commit.
pub const ABORT_READER: u32 = 2;

/// A plain test-and-set global lock in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct GlobalLock {
    cell: CellId,
}

impl GlobalLock {
    /// Allocates the lock word on its own cache line.
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn new(mem: &SimMemory) -> Self {
        Self {
            cell: mem.alloc_line_aligned(1).cell(0),
        }
    }

    /// The lock word's cell (for footprint accounting in tests).
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// Cheap lock-state probe for spin loops (no conflict side effects —
    /// safe because the word is only ever written untracked).
    pub fn is_locked_peek(&self, mem: &SimMemory) -> bool {
        mem.peek(self.cell) != 0
    }

    /// Spins until the lock is observed free.
    pub fn wait_until_free(&self, mem: &SimMemory) {
        let mut w = SpinWait::new();
        while self.is_locked_peek(mem) {
            w.snooze();
        }
    }

    /// Single acquisition attempt (untracked CAS; dooms subscribers on
    /// success).
    pub fn try_acquire(&self, d: &Direct<'_>) -> bool {
        d.compare_exchange(self.cell, 0, 1).is_ok()
    }

    /// Blocking acquisition.
    pub fn acquire(&self, d: &Direct<'_>) {
        let mut w = SpinWait::new();
        loop {
            if !self.is_locked_peek(d.htm().memory()) && self.try_acquire(d) {
                return;
            }
            w.snooze();
        }
    }

    /// Releases the lock.
    pub fn release(&self, d: &Direct<'_>) {
        d.store(self.cell, 0);
    }

    /// Subscribes the running transaction to the lock: reads the word into
    /// the transaction's read-set and aborts explicitly if taken.
    ///
    /// # Errors
    ///
    /// `Abort::Explicit(ABORT_LOCKED)` when the lock is held; any
    /// transactional abort from the read itself.
    pub fn subscribe(&self, tx: &mut Tx<'_>) -> TxResult<()> {
        if tx.read(self.cell)? != 0 {
            return tx.abort(ABORT_LOCKED);
        }
        Ok(())
    }
}

/// A versioned global lock: the word holds `2·version + locked_bit`.
///
/// Each acquisition increments the version, so waiters can implement
/// bounded-bypass fairness — SpRWL §3.3 sketches (and omits) this to stop
/// readers starving behind a stream of fallback writers; we implement it.
#[derive(Debug, Clone, Copy)]
pub struct VersionedLock {
    cell: CellId,
}

impl VersionedLock {
    /// Allocates the lock word on its own cache line.
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn new(mem: &SimMemory) -> Self {
        Self {
            cell: mem.alloc_line_aligned(1).cell(0),
        }
    }

    /// The lock word's cell.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    #[inline]
    fn decode(word: u64) -> (u64, bool) {
        (word >> 1, word & 1 == 1)
    }

    /// Current `(version, locked)` snapshot via a cheap probe.
    pub fn peek(&self, mem: &SimMemory) -> (u64, bool) {
        Self::decode(mem.peek(self.cell))
    }

    /// Whether the lock is currently held (probe).
    pub fn is_locked_peek(&self, mem: &SimMemory) -> bool {
        self.peek(mem).1
    }

    /// Single acquisition attempt; on success the version advances.
    pub fn try_acquire(&self, d: &Direct<'_>) -> bool {
        let word = d.htm().memory().peek(self.cell);
        if word & 1 == 1 {
            return false;
        }
        d.compare_exchange(self.cell, word, word + 1).is_ok()
    }

    /// Blocking acquisition; returns the version this acquisition holds.
    pub fn acquire(&self, d: &Direct<'_>) -> u64 {
        let mut w = SpinWait::new();
        loop {
            let word = d.htm().memory().peek(self.cell);
            if word & 1 == 0 && d.compare_exchange(self.cell, word, word + 1).is_ok() {
                return (word + 1) >> 1;
            }
            w.snooze();
        }
    }

    /// Releases the lock (version moves to the next even state).
    pub fn release(&self, d: &Direct<'_>) {
        let word = d.htm().memory().peek(self.cell);
        debug_assert_eq!(word & 1, 1, "release of free versioned lock");
        d.store(self.cell, word + 1);
    }

    /// Subscribes the running transaction; aborts if locked.
    ///
    /// # Errors
    ///
    /// `Abort::Explicit(ABORT_LOCKED)` when held; transactional aborts from
    /// the read.
    pub fn subscribe(&self, tx: &mut Tx<'_>) -> TxResult<()> {
        if tx.read(self.cell)? & 1 == 1 {
            return tx.abort(ABORT_LOCKED);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{Abort, Htm, HtmConfig, TxKind};

    fn setup() -> Htm {
        Htm::new(HtmConfig::default(), 256)
    }

    #[test]
    fn global_lock_acquire_release() {
        let htm = setup();
        let gl = GlobalLock::new(htm.memory());
        let d = htm.direct(0);
        assert!(!gl.is_locked_peek(htm.memory()));
        assert!(gl.try_acquire(&d));
        assert!(gl.is_locked_peek(htm.memory()));
        assert!(!gl.try_acquire(&d));
        gl.release(&d);
        assert!(!gl.is_locked_peek(htm.memory()));
    }

    #[test]
    fn subscription_aborts_when_locked() {
        let htm = setup();
        let gl = GlobalLock::new(htm.memory());
        gl.acquire(&htm.direct(1));
        let mut ctx = htm.thread(0);
        let err = ctx
            .txn(TxKind::Htm, |tx| gl.subscribe(tx).map(|_| 0))
            .unwrap_err();
        assert_eq!(err, Abort::Explicit(ABORT_LOCKED));
    }

    #[test]
    fn acquisition_dooms_subscribed_transactions() {
        let htm = setup();
        let gl = GlobalLock::new(htm.memory());
        let mut ctx = htm.thread(0);
        let err = ctx
            .txn(TxKind::Htm, |tx| {
                gl.subscribe(tx)?;
                // Fallback writer arrives mid-flight.
                assert!(gl.try_acquire(&htm.direct(1)));
                tx.read(gl.cell())?; // observe the doom
                Ok(0)
            })
            .unwrap_err();
        assert_eq!(err, Abort::Conflict);
        gl.release(&htm.direct(1));
    }

    #[test]
    fn versioned_lock_tracks_versions() {
        let htm = setup();
        let vl = VersionedLock::new(htm.memory());
        let d = htm.direct(0);
        assert_eq!(vl.peek(htm.memory()), (0, false));
        let v1 = vl.acquire(&d);
        assert_eq!(vl.peek(htm.memory()), (v1, true));
        vl.release(&d);
        let (v_after, locked) = vl.peek(htm.memory());
        assert!(!locked);
        assert!(v_after > v1, "version advances past the held acquisition");
        let v2 = vl.acquire(&d);
        assert!(v2 > v1, "each acquisition observes a larger version");
        vl.release(&d);
    }

    #[test]
    fn versioned_subscribe_aborts_when_locked() {
        let htm = setup();
        let vl = VersionedLock::new(htm.memory());
        vl.acquire(&htm.direct(1));
        let mut ctx = htm.thread(0);
        let err = ctx
            .txn(TxKind::Htm, |tx| vl.subscribe(tx).map(|_| 0))
            .unwrap_err();
        assert_eq!(err, Abort::Explicit(ABORT_LOCKED));
        vl.release(&htm.direct(1));
        ctx.txn(TxKind::Htm, |tx| vl.subscribe(tx).map(|_| 0))
            .unwrap();
    }

    #[test]
    fn contended_global_lock_is_exclusive() {
        let htm = Htm::new(
            HtmConfig {
                max_threads: 4,
                ..HtmConfig::default()
            },
            256,
        );
        let gl = GlobalLock::new(htm.memory());
        let counter = htm.memory().alloc(1).cell(0);
        std::thread::scope(|s| {
            for tid in 0..4 {
                let htm = &htm;
                let gl = &gl;
                s.spawn(move || {
                    let d = htm.direct(tid);
                    for _ in 0..250 {
                        gl.acquire(&d);
                        let v = d.load(counter);
                        d.store(counter, v + 1);
                        gl.release(&d);
                    }
                });
            }
        });
        assert_eq!(htm.direct(0).load(counter), 1000);
    }
}
