//! Commit-mode, abort-cause and latency bookkeeping — the same breakdowns
//! the paper's evaluation plots (commits: HTM/ROT/GL/Unins; aborts:
//! conflict/capacity/explicit/reader, with ROT variants; per-role latency).

use htm_sim::{Abort, TxKind};

use crate::sgl::{ABORT_LOCKED, ABORT_READER};

/// Whether a critical section was requested in read or write mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Read-only critical section (a *reader*).
    Reader,
    /// Updating critical section (a *writer*).
    Writer,
}

/// How a critical section ultimately committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommitMode {
    /// Successfully committed as a plain hardware transaction.
    Htm,
    /// Successfully committed as a rollback-only transaction (POWER8).
    Rot,
    /// Executed under the pessimistic fallback (the global lock) — or, for
    /// purely pessimistic schemes, under the lock itself.
    Gl,
    /// Executed uninstrumented (SpRWL and RW-LE readers).
    Unins,
}

impl CommitMode {
    /// All modes, in the order the paper's plots stack them.
    pub const ALL: [CommitMode; 4] = [
        CommitMode::Htm,
        CommitMode::Rot,
        CommitMode::Gl,
        CommitMode::Unins,
    ];

    /// Stable index into counter arrays.
    pub fn index(self) -> usize {
        match self {
            CommitMode::Htm => 0,
            CommitMode::Rot => 1,
            CommitMode::Gl => 2,
            CommitMode::Unins => 3,
        }
    }

    /// Label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            CommitMode::Htm => "HTM",
            CommitMode::Rot => "ROT",
            CommitMode::Gl => "GL",
            CommitMode::Unins => "Unins",
        }
    }
}

/// Why a speculative attempt aborted, in the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Data conflict in a plain HTM transaction.
    Conflict,
    /// Capacity overflow in a plain HTM transaction.
    Capacity,
    /// Explicit abort (fallback lock observed taken, application logic).
    Explicit,
    /// SpRWL-specific: a writer found an active reader at commit time.
    Reader,
    /// Data conflict in a rollback-only transaction.
    ConflictRot,
    /// Capacity overflow in a rollback-only transaction.
    CapacityRot,
    /// Injected timer interrupt.
    Interrupt,
}

impl AbortCause {
    /// All causes, in plot order.
    pub const ALL: [AbortCause; 7] = [
        AbortCause::Conflict,
        AbortCause::Capacity,
        AbortCause::Explicit,
        AbortCause::Reader,
        AbortCause::ConflictRot,
        AbortCause::CapacityRot,
        AbortCause::Interrupt,
    ];

    /// Stable index into counter arrays.
    pub fn index(self) -> usize {
        match self {
            AbortCause::Conflict => 0,
            AbortCause::Capacity => 1,
            AbortCause::Explicit => 2,
            AbortCause::Reader => 3,
            AbortCause::ConflictRot => 4,
            AbortCause::CapacityRot => 5,
            AbortCause::Interrupt => 6,
        }
    }

    /// Label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::Explicit => "explicit",
            AbortCause::Reader => "reader",
            AbortCause::ConflictRot => "conflict-rot",
            AbortCause::CapacityRot => "capacity-rot",
            AbortCause::Interrupt => "interrupt",
        }
    }

    /// Maps a substrate abort to the paper's taxonomy, given the
    /// transaction kind it occurred under.
    pub fn classify(abort: Abort, kind: TxKind) -> AbortCause {
        match (abort, kind) {
            (Abort::Conflict, TxKind::Htm) => AbortCause::Conflict,
            (Abort::Conflict, TxKind::Rot) => AbortCause::ConflictRot,
            (Abort::CapacityRead | Abort::CapacityWrite, TxKind::Htm) => AbortCause::Capacity,
            (Abort::CapacityRead | Abort::CapacityWrite, TxKind::Rot) => AbortCause::CapacityRot,
            (Abort::Explicit(ABORT_READER), _) => AbortCause::Reader,
            (Abort::Explicit(ABORT_LOCKED), _) => AbortCause::Explicit,
            (Abort::Explicit(_), _) => AbortCause::Explicit,
            (Abort::Interrupt, _) => AbortCause::Interrupt,
        }
    }
}

/// Number of logarithmic histogram buckets (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` ns; bucket 0 additionally holds 0-ns samples).
const LAT_BUCKETS: usize = 48;

/// Capacity of the per-recorder latency [`Reservoir`].
const RESERVOIR_CAP: usize = 512;

/// Fixed-capacity uniform sample of a latency stream (algorithm R), for
/// percentile estimates sharper than the power-of-two histogram's ≤2×
/// bound — the `BENCH_*.json` results pipeline reports these.
///
/// Replacement decisions come from a self-contained xorshift64 generator
/// seeded with a fixed constant, so two runs that record the same sample
/// sequence (e.g. under the deterministic scheduler) produce bit-identical
/// reservoirs, and merging is reproducible too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservoir {
    samples: Vec<u64>,
    seen: u64,
    rng: u64,
}

impl Default for Reservoir {
    fn default() -> Self {
        Self {
            samples: Vec::new(),
            seen: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl Reservoir {
    fn next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Records one sample (kept with probability `cap / seen`).
    pub fn record(&mut self, ns: u64) {
        self.seen += 1;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(ns);
        } else {
            let j = self.next() % self.seen;
            if (j as usize) < RESERVOIR_CAP {
                self.samples[j as usize] = ns;
            }
        }
    }

    /// Total samples offered (not the retained count).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of retained samples (≤ the reservoir capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the reservoir holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank `p`-th percentile (0 < p ≤ 100) over the retained
    /// sample, in nanoseconds; 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Merges another reservoir into this one: retained samples are pooled
    /// and deterministically subsampled back down to capacity. Per-thread
    /// streams of similar length (the benchmark harness's case) keep
    /// near-uniform weight; wildly unequal streams are approximated.
    pub fn merge(&mut self, other: &Reservoir) {
        self.seen += other.seen;
        self.samples.extend_from_slice(&other.samples);
        while self.samples.len() > RESERVOIR_CAP {
            let j = (self.next() % self.samples.len() as u64) as usize;
            self.samples.swap_remove(j);
        }
    }
}

/// Streaming latency aggregate: count, sum, max, plus a power-of-two
/// histogram for percentile estimates — all in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyRecorder {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples, ns.
    pub sum_ns: u64,
    /// Largest sample, ns.
    pub max_ns: u64,
    buckets: [u64; LAT_BUCKETS],
    /// Uniform subsample of the stream for sharp percentile estimates.
    pub reservoir: Reservoir,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: [0; LAT_BUCKETS],
            reservoir: Reservoir::default(),
        }
    }
}

impl LatencyRecorder {
    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - ns.leading_zeros() as usize).saturating_sub(1);
        self.buckets[bucket.min(LAT_BUCKETS - 1)] += 1;
        self.reservoir.record(ns);
    }

    /// Reservoir-sampled `p`-th percentile: nearest-rank over the retained
    /// uniform subsample — exact while the stream fits the reservoir,
    /// a sampling estimate beyond it (vs. [`Self::percentile_ns`]'s ≤2×
    /// histogram bound).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn sampled_percentile_ns(&self, p: f64) -> u64 {
        self.reservoir.percentile_ns(p)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated `p`-th percentile (0 < p ≤ 100) in nanoseconds: the upper
    /// bound of the histogram bucket containing that rank, capped by the
    /// observed maximum. Power-of-two buckets give a ≤2× estimate — plenty
    /// for the order-of-magnitude latency plots the paper draws.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // The final bucket is open-ended (it absorbs everything at
                // or above 2^(LAT_BUCKETS-1) ns), so its only meaningful
                // upper bound is the observed maximum.
                let upper = if i + 1 >= LAT_BUCKETS {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        for i in 0..LAT_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.reservoir.merge(&other.reservoir);
    }
}

/// One contended cache line's aggregate in a [`ConflictTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictLine {
    /// The cache line index (as attributed by the substrate).
    pub line: u64,
    /// How many conflict aborts were attributed to this line.
    pub count: u64,
    /// The peer thread id attributed most recently.
    pub last_peer: u32,
}

/// Per-line conflict-abort aggregation: which cache lines this session's
/// conflict aborts were attributed to, and by whom. The evaluation's
/// "which line is hot" question, answered without a full trace.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ConflictTable {
    lines: std::collections::HashMap<u64, (u64, u32)>,
}

impl ConflictTable {
    /// Records one attributed conflict abort.
    pub fn record(&mut self, line: u64, peer: u32) {
        let e = self.lines.entry(line).or_insert((0, peer));
        e.0 += 1;
        e.1 = peer;
    }

    /// The `k` most contended lines, most aborts first (ties by line index
    /// for deterministic output).
    pub fn top_k(&self, k: usize) -> Vec<ConflictLine> {
        let mut v: Vec<ConflictLine> = self
            .lines
            .iter()
            .map(|(&line, &(count, last_peer))| ConflictLine {
                line,
                count,
                last_peer,
            })
            .collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.line.cmp(&b.line)));
        v.truncate(k);
        v
    }

    /// Total attributed conflict aborts.
    pub fn total(&self) -> u64 {
        self.lines.values().map(|&(c, _)| c).sum()
    }

    /// Whether any conflict has been attributed.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Merges another table into this one (cross-thread aggregation).
    pub fn merge(&mut self, other: &ConflictTable) {
        for (&line, &(count, peer)) in &other.lines {
            let e = self.lines.entry(line).or_insert((0, peer));
            e.0 += count;
        }
    }
}

/// Per-thread statistics for one benchmark session: commit-mode breakdown
/// per role, abort-cause breakdown, per-role latency, and per-line
/// conflict attribution.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SessionStats {
    reader_commits: [u64; 4],
    writer_commits: [u64; 4],
    aborts: [u64; 7],
    /// Reader critical-section latency (lock request → unlock).
    pub reader_latency: LatencyRecorder,
    /// Writer critical-section latency (lock request → unlock).
    pub writer_latency: LatencyRecorder,
    /// Which cache lines conflict aborts were attributed to.
    pub conflict_lines: ConflictTable,
    /// Trace events lost to ring-buffer wrap-around (see
    /// `LockThread::fold_trace_counters`).
    pub trace_dropped: u64,
    /// Events suppressed by sampled tracing (not lost — deliberately
    /// unrecorded; rescale with the capture's sampling metadata).
    pub trace_unsampled: u64,
}

impl SessionStats {
    /// Records a committed critical section: role, mode, end-to-end latency.
    pub fn record_commit(&mut self, role: Role, mode: CommitMode, latency_ns: u64) {
        match role {
            Role::Reader => {
                self.reader_commits[mode.index()] += 1;
                self.reader_latency.record(latency_ns);
            }
            Role::Writer => {
                self.writer_commits[mode.index()] += 1;
                self.writer_latency.record(latency_ns);
            }
        }
    }

    /// Records one speculative abort.
    pub fn record_abort(&mut self, cause: AbortCause) {
        self.aborts[cause.index()] += 1;
    }

    /// Records the attribution of a conflict abort: the contended cache
    /// line and the peer thread that won it.
    pub fn record_conflict(&mut self, line: u64, peer: u32) {
        self.conflict_lines.record(line, peer);
    }

    /// Commits of `mode` across both roles.
    pub fn commits_in(&self, mode: CommitMode) -> u64 {
        self.reader_commits[mode.index()] + self.writer_commits[mode.index()]
    }

    /// Commits of `mode` for one role.
    pub fn commits_by(&self, role: Role, mode: CommitMode) -> u64 {
        match role {
            Role::Reader => self.reader_commits[mode.index()],
            Role::Writer => self.writer_commits[mode.index()],
        }
    }

    /// Total committed critical sections.
    pub fn total_commits(&self) -> u64 {
        self.reader_commits.iter().sum::<u64>() + self.writer_commits.iter().sum::<u64>()
    }

    /// Aborts of `cause`.
    pub fn aborts_of(&self, cause: AbortCause) -> u64 {
        self.aborts[cause.index()]
    }

    /// Total aborts of any cause.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Fraction of speculative attempts that aborted (0 when idle).
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.total_commits() + self.total_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }

    /// Merges `other` into `self` (cross-thread aggregation).
    pub fn merge(&mut self, other: &SessionStats) {
        for i in 0..4 {
            self.reader_commits[i] += other.reader_commits[i];
            self.writer_commits[i] += other.writer_commits[i];
        }
        for i in 0..7 {
            self.aborts[i] += other.aborts[i];
        }
        self.reader_latency.merge(&other.reader_latency);
        self.writer_latency.merge(&other.writer_latency);
        self.conflict_lines.merge(&other.conflict_lines);
        self.trace_dropped += other.trace_dropped;
        self.trace_unsampled += other.trace_unsampled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_the_paper_taxonomy() {
        assert_eq!(
            AbortCause::classify(Abort::Conflict, TxKind::Htm),
            AbortCause::Conflict
        );
        assert_eq!(
            AbortCause::classify(Abort::Conflict, TxKind::Rot),
            AbortCause::ConflictRot
        );
        assert_eq!(
            AbortCause::classify(Abort::CapacityRead, TxKind::Htm),
            AbortCause::Capacity
        );
        assert_eq!(
            AbortCause::classify(Abort::CapacityWrite, TxKind::Rot),
            AbortCause::CapacityRot
        );
        assert_eq!(
            AbortCause::classify(Abort::Explicit(ABORT_READER), TxKind::Htm),
            AbortCause::Reader
        );
        assert_eq!(
            AbortCause::classify(Abort::Explicit(ABORT_LOCKED), TxKind::Htm),
            AbortCause::Explicit
        );
        assert_eq!(
            AbortCause::classify(Abort::Interrupt, TxKind::Htm),
            AbortCause::Interrupt
        );
    }

    #[test]
    fn commit_bookkeeping_by_role_and_mode() {
        let mut s = SessionStats::default();
        s.record_commit(Role::Reader, CommitMode::Unins, 100);
        s.record_commit(Role::Reader, CommitMode::Unins, 300);
        s.record_commit(Role::Writer, CommitMode::Htm, 50);
        assert_eq!(s.commits_by(Role::Reader, CommitMode::Unins), 2);
        assert_eq!(s.commits_by(Role::Writer, CommitMode::Htm), 1);
        assert_eq!(s.commits_in(CommitMode::Unins), 2);
        assert_eq!(s.total_commits(), 3);
        assert_eq!(s.reader_latency.mean_ns(), 200);
        assert_eq!(s.reader_latency.max_ns, 300);
        assert_eq!(s.writer_latency.count, 1);
    }

    #[test]
    fn abort_ratio_and_merge() {
        let mut a = SessionStats::default();
        a.record_commit(Role::Writer, CommitMode::Htm, 10);
        a.record_abort(AbortCause::Conflict);
        a.record_abort(AbortCause::Reader);
        assert!((a.abort_ratio() - 2.0 / 3.0).abs() < 1e-9);

        let mut b = SessionStats::default();
        b.record_commit(Role::Reader, CommitMode::Gl, 20);
        b.record_abort(AbortCause::Capacity);
        a.merge(&b);
        assert_eq!(a.total_commits(), 2);
        assert_eq!(a.total_aborts(), 3);
        assert_eq!(a.aborts_of(AbortCause::Capacity), 1);
    }

    #[test]
    fn latency_recorder_defaults() {
        let l = LatencyRecorder::default();
        assert_eq!(l.mean_ns(), 0);
        assert_eq!(l.count, 0);
        assert_eq!(l.percentile_ns(99.0), 0);
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let mut l = LatencyRecorder::default();
        // 99 fast samples around 1 µs, one slow 1 ms outlier.
        for _ in 0..99 {
            l.record(1_000);
        }
        l.record(1_000_000);
        let p50 = l.percentile_ns(50.0);
        let p99 = l.percentile_ns(99.0);
        let p100 = l.percentile_ns(100.0);
        assert!((1_000..=2_047).contains(&p50), "p50 = {p50}");
        assert!(p99 <= 2_047, "p99 = {p99} should ignore the outlier");
        assert_eq!(p100, 1_000_000, "p100 is the max");
        assert!(p50 <= p99 && p99 <= p100, "monotone percentiles");
    }

    #[test]
    fn percentile_merge_combines_histograms() {
        let mut a = LatencyRecorder::default();
        let mut b = LatencyRecorder::default();
        for _ in 0..10 {
            a.record(100);
            b.record(100_000);
        }
        a.merge(&b);
        assert_eq!(a.count, 20);
        assert!(a.percentile_ns(25.0) < 1_000);
        assert!(a.percentile_ns(90.0) > 50_000);
    }

    #[test]
    fn zero_and_huge_samples_do_not_panic() {
        let mut l = LatencyRecorder::default();
        l.record(0);
        l.record(u64::MAX / 2);
        assert_eq!(l.count, 2);
        let _ = l.percentile_ns(50.0);
        let _ = l.percentile_ns(100.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        LatencyRecorder::default().percentile_ns(0.0);
    }

    #[test]
    fn last_bucket_percentile_reports_the_true_maximum() {
        // Regression: samples at or above 2^47 ns all land in the final
        // histogram bucket, which is open-ended. The old guard (`i + 1 >=
        // 63`) never fired with 48 buckets, so the bucket's upper bound was
        // computed as 2^48 - 1 and percentiles silently under-reported any
        // larger sample.
        let mut l = LatencyRecorder::default();
        l.record(1u64 << 50);
        assert_eq!(l.percentile_ns(50.0), 1u64 << 50);
        assert_eq!(l.percentile_ns(100.0), 1u64 << 50);

        let mut huge = LatencyRecorder::default();
        huge.record(u64::MAX - 1);
        assert_eq!(huge.percentile_ns(99.0), u64::MAX - 1);

        // Mixed: the big sample defines the tail, small ones the body.
        let mut m = LatencyRecorder::default();
        for _ in 0..9 {
            m.record(1_000);
        }
        m.record(1u64 << 49);
        assert!(m.percentile_ns(50.0) <= 2_047);
        assert_eq!(m.percentile_ns(100.0), 1u64 << 49);
    }

    #[test]
    fn reservoir_is_exact_below_capacity() {
        let mut r = Reservoir::default();
        for ns in 1..=100u64 {
            r.record(ns);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.seen(), 100);
        assert_eq!(r.percentile_ns(50.0), 50);
        assert_eq!(r.percentile_ns(99.0), 99);
        assert_eq!(r.percentile_ns(100.0), 100);
        assert_eq!(Reservoir::default().percentile_ns(50.0), 0);
    }

    #[test]
    fn reservoir_subsamples_deterministically_past_capacity() {
        let run = || {
            let mut r = Reservoir::default();
            for i in 0..10_000u64 {
                r.record(i % 1_000);
            }
            r
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same stream, same reservoir");
        assert_eq!(a.len(), RESERVOIR_CAP);
        assert_eq!(a.seen(), 10_000);
        // The stream is uniform over 0..1000; the sampled median should
        // land well inside the middle half.
        let p50 = a.percentile_ns(50.0);
        assert!((250..=750).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn reservoir_merge_is_deterministic_and_pools_samples() {
        let mk = |lo: u64, n: u64| {
            let mut r = Reservoir::default();
            for i in 0..n {
                r.record(lo + i);
            }
            r
        };
        let mut a = mk(0, 400);
        a.merge(&mk(10_000, 400));
        let mut b = mk(0, 400);
        b.merge(&mk(10_000, 400));
        assert_eq!(a, b, "merge must be reproducible");
        assert_eq!(a.seen(), 800);
        assert_eq!(a.len(), RESERVOIR_CAP);
        // Both halves survive the subsample.
        assert!(a.percentile_ns(25.0) < 10_000);
        assert!(a.percentile_ns(90.0) >= 10_000);
    }

    #[test]
    fn sampled_percentiles_flow_through_the_recorder() {
        let mut l = LatencyRecorder::default();
        for ns in [100u64, 200, 300, 400] {
            l.record(ns);
        }
        assert_eq!(l.sampled_percentile_ns(50.0), 200);
        assert_eq!(l.sampled_percentile_ns(100.0), 400);
        let mut o = LatencyRecorder::default();
        o.record(1_000);
        l.merge(&o);
        assert_eq!(l.reservoir.seen(), 5);
        assert_eq!(l.sampled_percentile_ns(100.0), 1_000);
    }

    #[test]
    fn conflict_table_tracks_top_lines() {
        let mut t = ConflictTable::default();
        assert!(t.is_empty());
        t.record(5, 1);
        t.record(5, 2);
        t.record(9, 0);
        assert_eq!(t.total(), 3);
        let top = t.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].line, 5);
        assert_eq!(top[0].count, 2);
        assert_eq!(top[0].last_peer, 2, "most recent peer wins");
        assert_eq!(top[1].line, 9);

        let mut u = ConflictTable::default();
        u.record(9, 3);
        u.record(9, 3);
        t.merge(&u);
        assert_eq!(t.top_k(1)[0].line, 9, "merge re-ranks");
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn session_stats_surface_conflict_attribution() {
        let mut s = SessionStats::default();
        s.record_conflict(42, 7);
        s.record_conflict(42, 7);
        let mut o = SessionStats::default();
        o.record_conflict(8, 1);
        s.merge(&o);
        assert_eq!(s.conflict_lines.total(), 3);
        assert_eq!(s.conflict_lines.top_k(1)[0].line, 42);
    }

    #[test]
    fn mode_and_cause_indices_are_bijective() {
        for (i, m) in CommitMode::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
            assert!(!m.label().is_empty());
        }
        for (i, c) in AbortCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.label().is_empty());
        }
    }
}
