//! Retry policy for speculative execution.

/// How many times a critical section is attempted in hardware before the
/// pessimistic fallback.
///
/// The paper uses 10 attempts and an *immediate* fallback on capacity
/// aborts ("except upon capacity aborts, in which case the fallback path
/// is immediately activated"), and a 5-attempt budget for RW-LE's ROTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum speculative attempts before falling back.
    pub max_attempts: u32,
    /// Whether a capacity abort exhausts the budget immediately.
    pub capacity_fallback_immediate: bool,
}

impl RetryPolicy {
    /// The paper's default: 10 attempts, capacity falls back at once.
    pub const PAPER_DEFAULT: RetryPolicy = RetryPolicy {
        max_attempts: 10,
        capacity_fallback_immediate: true,
    };

    /// The paper's RW-LE ROT budget: 5 attempts.
    pub const RWLE_ROT: RetryPolicy = RetryPolicy {
        max_attempts: 5,
        capacity_fallback_immediate: true,
    };

    /// Decides whether to keep retrying after `attempts` tries, the last of
    /// which aborted with `abort`.
    pub fn should_retry(&self, attempts: u32, abort: htm_sim::Abort) -> bool {
        if self.capacity_fallback_immediate && abort.is_capacity() {
            return false;
        }
        attempts < self.max_attempts
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

/// BRAVO-style reader-bias policy (see [`crate::visible`]): when and how
/// readers may take the single-CAS visible-table fast path instead of
/// their per-thread lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiasPolicy {
    /// Whether readers may (re-)arm the bias at all. Off makes `BIAS_OFF`
    /// sticky after the first revocation — the writer-pressure response.
    pub enabled: bool,
    /// How long after a revocation readers wait before re-arming, ns.
    pub rearm_cooldown_ns: u64,
    /// Visible-table slots per registered thread (rounded up to a power of
    /// two overall); oversizing keeps hash collisions rare.
    pub slots_per_thread: usize,
}

impl BiasPolicy {
    /// Matches the SpRWL core's BRAVO defaults.
    pub const DEFAULT: BiasPolicy = BiasPolicy {
        enabled: true,
        rearm_cooldown_ns: 200_000,
        slots_per_thread: 4,
    };
}

impl Default for BiasPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::Abort;

    #[test]
    fn capacity_falls_back_immediately() {
        let p = RetryPolicy::PAPER_DEFAULT;
        assert!(!p.should_retry(1, Abort::CapacityRead));
        assert!(!p.should_retry(1, Abort::CapacityWrite));
        assert!(p.should_retry(1, Abort::Conflict));
    }

    #[test]
    fn budget_is_exhausted_at_max_attempts() {
        let p = RetryPolicy::PAPER_DEFAULT;
        assert!(p.should_retry(9, Abort::Conflict));
        assert!(!p.should_retry(10, Abort::Conflict));
    }

    #[test]
    fn capacity_retry_when_configured() {
        let p = RetryPolicy {
            max_attempts: 3,
            capacity_fallback_immediate: false,
        };
        assert!(p.should_retry(1, Abort::CapacityRead));
        assert!(!p.should_retry(3, Abort::CapacityRead));
    }
}
