//! A pthread-style read-write lock: two counters protected by an internal
//! mutex, with condition variables for blocking — the `RWL` baseline of the
//! paper's evaluation.
//!
//! Like the classic glibc implementation, the default policy prefers
//! readers (a stream of readers can starve writers); a writer-preferring
//! policy is available for experiments.

use parking_lot::{Condvar, Mutex};

use htm_sim::clock;

use crate::api::{run_untracked, LockThread, RwSync, SectionBody, SectionId};
use crate::stats::{CommitMode, Role};

/// Which role may overtake the other while both wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preference {
    /// Readers enter whenever no writer is *active* (glibc default).
    #[default]
    Readers,
    /// Readers defer to *waiting* writers too.
    Writers,
}

#[derive(Debug, Default)]
struct State {
    active_readers: u32,
    writer_active: bool,
    writers_waiting: u32,
}

/// Mutex-and-condvar read-write lock (`pthread_rwlock_t` work-alike).
#[derive(Debug, Default)]
pub struct PthreadRwLock {
    state: Mutex<State>,
    readers_cv: Condvar,
    writers_cv: Condvar,
    pref: Preference,
}

impl PthreadRwLock {
    /// Creates a reader-preferring lock (the glibc default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a lock with an explicit preference policy.
    pub fn with_preference(pref: Preference) -> Self {
        Self {
            pref,
            ..Self::default()
        }
    }

    /// Acquires the lock in shared mode.
    pub fn read_lock(&self) {
        let mut st = self.state.lock();
        loop {
            let blocked =
                st.writer_active || (self.pref == Preference::Writers && st.writers_waiting > 0);
            if !blocked {
                break;
            }
            self.readers_cv.wait(&mut st);
        }
        st.active_readers += 1;
    }

    /// Releases a shared acquisition.
    ///
    /// # Panics
    ///
    /// Panics if no reader holds the lock.
    pub fn read_unlock(&self) {
        let mut st = self.state.lock();
        assert!(st.active_readers > 0, "read_unlock without read_lock");
        st.active_readers -= 1;
        if st.active_readers == 0 && st.writers_waiting > 0 {
            self.writers_cv.notify_one();
        }
    }

    /// Acquires the lock exclusively.
    pub fn write_lock(&self) {
        let mut st = self.state.lock();
        st.writers_waiting += 1;
        while st.writer_active || st.active_readers > 0 {
            self.writers_cv.wait(&mut st);
        }
        st.writers_waiting -= 1;
        st.writer_active = true;
    }

    /// Releases an exclusive acquisition.
    ///
    /// # Panics
    ///
    /// Panics if no writer holds the lock.
    pub fn write_unlock(&self) {
        let mut st = self.state.lock();
        assert!(st.writer_active, "write_unlock without write_lock");
        st.writer_active = false;
        if st.writers_waiting > 0 {
            self.writers_cv.notify_one();
        }
        self.readers_cv.notify_all();
    }
}

impl RwSync for PthreadRwLock {
    fn name(&self) -> &'static str {
        "RWL"
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.read_lock();
        let r = run_untracked(t, f);
        self.read_unlock();
        t.stats
            .record_commit(Role::Reader, CommitMode::Gl, clock::now() - start);
        r
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.write_lock();
        let r = run_untracked(t, f);
        self.write_unlock();
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, clock::now() - start);
        r
    }

    fn check_quiescent(&self, _mem: &htm_sim::SimMemory) -> Result<(), String> {
        let st = self.state.lock();
        if st.active_readers != 0 {
            return Err(format!(
                "RWL: {} active reader(s) leaked at quiescence",
                st.active_readers
            ));
        }
        if st.writer_active {
            return Err("RWL: writer still active at quiescence".into());
        }
        if st.writers_waiting != 0 {
            return Err(format!(
                "RWL: {} writer(s) still queued at quiescence",
                st.writers_waiting
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_share_writers_exclude() {
        let l = PthreadRwLock::new();
        l.read_lock();
        l.read_lock(); // second reader enters
        l.read_unlock();
        l.read_unlock();
        l.write_lock();
        l.write_unlock();
    }

    #[test]
    #[should_panic(expected = "read_unlock without read_lock")]
    fn unbalanced_read_unlock_panics() {
        PthreadRwLock::new().read_unlock();
    }

    #[test]
    fn writers_are_mutually_exclusive_with_readers() {
        let l = std::sync::Arc::new(PthreadRwLock::new());
        let shared = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = l.clone();
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    l.write_lock();
                    let v = shared.load(std::sync::atomic::Ordering::Relaxed);
                    shared.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    l.write_unlock();
                }
            }));
        }
        for _ in 0..2 {
            let l = l.clone();
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    l.read_lock();
                    let _ = shared.load(std::sync::atomic::Ordering::Relaxed);
                    l.read_unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }

    #[test]
    fn writer_preference_policy_constructs() {
        let l = PthreadRwLock::with_preference(Preference::Writers);
        l.read_lock();
        l.read_unlock();
        l.write_lock();
        l.write_unlock();
    }
}
