//! A queue-based fair read-write lock in the style of Mellor-Crummey &
//! Scott (PPoPP '91) — the classic algorithm the paper's related-work
//! section contrasts with counter-based RWLocks: arrivals enqueue and wait
//! on their *predecessor's* progress instead of a shared counter, so
//! handoff is FIFO-fair. Consecutive readers overlap; writers wait for
//! every earlier holder.
//!
//! This implementation uses safe Rust: nodes live in a fixed per-thread
//! arena and every polled word carries a **round counter**, which closes
//! the classic node-reuse hazard — if a successor samples its predecessor
//! after that predecessor finished and re-enqueued, the changed round reads
//! as "that round is over", never as a fresh wait.

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::clock::{self, SpinWait};

use crate::api::{run_untracked, LockThread, RwSync, SectionBody, SectionId};
use crate::stats::{CommitMode, Role};

const KIND_READER: u64 = 0;
const KIND_WRITER: u64 = 1;

/// Node word states (low 2 bits; the round lives above them).
const ST_WAITING: u64 = 0;
const ST_ACTIVE: u64 = 1;
const ST_RELEASED: u64 = 2;

#[inline]
fn word(round: u64, state: u64) -> u64 {
    (round << 2) | state
}

/// Tail encoding: `(round << 12) | (kind << 9) | (node + 1)`; 0 = empty.
#[inline]
fn tail_entry(round: u64, kind: u64, node: usize) -> u64 {
    (round << 12) | (kind << 9) | (node as u64 + 1)
}

#[inline]
fn tail_node(t: u64) -> usize {
    ((t & 0x1FF) - 1) as usize
}

#[inline]
fn tail_kind(t: u64) -> u64 {
    (t >> 9) & 0x7
}

#[inline]
fn tail_round(t: u64) -> u64 {
    t >> 12
}

#[derive(Debug)]
#[repr(align(64))]
struct Node {
    /// `(round << 2) | state` — written by the owner, polled by successors.
    word: AtomicU64,
    /// The owner's current round (owner-private, bumped per acquisition).
    round: AtomicU64,
}

impl Default for Node {
    fn default() -> Self {
        Self {
            word: AtomicU64::new(word(0, ST_RELEASED)),
            round: AtomicU64::new(0),
        }
    }
}

/// Queue-based fair read-write lock for a fixed set of threads.
///
/// Each thread may hold at most one acquisition at a time (no recursion) —
/// the standard MCS restriction, matching how the `RwSync` harness uses
/// locks.
#[derive(Debug)]
pub struct McsRwLock {
    /// Queue tail: see [`tail_entry`]; 0 = empty.
    tail: AtomicU64,
    /// Readers currently inside (lets a writer drain the reader group
    /// admitted before it).
    active_readers: AtomicU64,
    nodes: Box<[Node]>,
}

impl McsRwLock {
    /// Creates a lock for `n_threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero or above the 511-thread tail-encoding
    /// limit.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0, "McsRwLock needs at least one thread");
        assert!(n_threads < 511, "tail encoding supports up to 510 threads");
        let mut nodes = Vec::with_capacity(n_threads);
        nodes.resize_with(n_threads, Node::default);
        Self {
            tail: AtomicU64::new(0),
            active_readers: AtomicU64::new(0),
            nodes: nodes.into_boxed_slice(),
        }
    }

    /// Number of thread slots.
    pub fn threads(&self) -> usize {
        self.nodes.len()
    }

    /// Enqueues and returns the displaced tail entry (0 = was empty) plus
    /// this acquisition's round.
    fn enqueue(&self, tid: usize, kind: u64) -> (u64, u64) {
        let me = &self.nodes[tid];
        let round = me.round.load(Ordering::Relaxed) + 1;
        me.round.store(round, Ordering::Relaxed);
        me.word.store(word(round, ST_WAITING), Ordering::SeqCst);
        let prev = self
            .tail
            .swap(tail_entry(round, kind, tid), Ordering::SeqCst);
        (prev, round)
    }

    /// Waits until the predecessor encoded in `prev` leaves `blocking`
    /// states *for its recorded round*; a changed round means that round
    /// completed long ago.
    fn await_predecessor(&self, prev: u64, pass_on_active: bool) {
        let p = &self.nodes[tail_node(prev)];
        let p_round = tail_round(prev);
        let mut spin = SpinWait::new();
        loop {
            let w = p.word.load(Ordering::SeqCst);
            if w >> 2 != p_round {
                return; // stale round: it finished and moved on
            }
            match w & 0b11 {
                ST_RELEASED => return,
                ST_ACTIVE if pass_on_active => return,
                _ => spin.snooze(),
            }
        }
    }

    /// Shared acquisition.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn read_lock(&self, tid: usize) {
        let (prev, round) = self.enqueue(tid, KIND_READER);
        if prev != 0 {
            // Reader predecessor: enter as soon as it is active (readers
            // overlap); writer predecessor: wait for its release.
            let overlap = tail_kind(prev) == KIND_READER;
            self.await_predecessor(prev, overlap);
        }
        // Count ourselves before publishing ACTIVE: a successor reader may
        // pass on our ACTIVE word, and any writer behind it must then see
        // a non-zero reader count.
        self.active_readers.fetch_add(1, Ordering::SeqCst);
        self.nodes[tid]
            .word
            .store(word(round, ST_ACTIVE), Ordering::SeqCst);
    }

    /// Shared release.
    pub fn read_unlock(&self, tid: usize) {
        let round = self.nodes[tid].round.load(Ordering::Relaxed);
        self.nodes[tid]
            .word
            .store(word(round, ST_RELEASED), Ordering::SeqCst);
        let prev = self.active_readers.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "read_unlock without read_lock");
        self.try_reset_tail(tid, round, KIND_READER);
    }

    /// Exclusive acquisition.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn write_lock(&self, tid: usize) {
        let (prev, round) = self.enqueue(tid, KIND_WRITER);
        if prev != 0 {
            self.await_predecessor(prev, false);
        }
        // Drain the reader group admitted before us. Readers behind us
        // cannot inflate the counter: they wait for our release first.
        let mut spin = SpinWait::new();
        while self.active_readers.load(Ordering::SeqCst) > 0 {
            spin.snooze();
        }
        self.nodes[tid]
            .word
            .store(word(round, ST_ACTIVE), Ordering::SeqCst);
    }

    /// Exclusive release.
    pub fn write_unlock(&self, tid: usize) {
        let round = self.nodes[tid].round.load(Ordering::Relaxed);
        self.nodes[tid]
            .word
            .store(word(round, ST_RELEASED), Ordering::SeqCst);
        self.try_reset_tail(tid, round, KIND_WRITER);
    }

    /// If we are still the queue tail (same node, same round), reset the
    /// queue to empty; the round in the tail entry makes this ABA-safe.
    fn try_reset_tail(&self, tid: usize, round: u64, kind: u64) {
        let _ = self.tail.compare_exchange(
            tail_entry(round, kind, tid),
            0,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }
}

impl RwSync for McsRwLock {
    fn name(&self) -> &'static str {
        "MCS-RWL"
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.read_lock(t.tid());
        let r = run_untracked(t, f);
        self.read_unlock(t.tid());
        t.stats
            .record_commit(Role::Reader, CommitMode::Gl, clock::now() - start);
        r
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.write_lock(t.tid());
        let r = run_untracked(t, f);
        self.write_unlock(t.tid());
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, clock::now() - start);
        r
    }

    fn check_quiescent(&self, _mem: &htm_sim::SimMemory) -> Result<(), String> {
        let tail = self.tail.load(Ordering::SeqCst);
        if tail != 0 {
            return Err(format!(
                "MCS-RWL: queue tail not reset at quiescence (entry {tail:#x})"
            ));
        }
        let readers = self.active_readers.load(Ordering::SeqCst);
        if readers != 0 {
            return Err(format!(
                "MCS-RWL: {readers} active reader(s) leaked at quiescence"
            ));
        }
        for (tid, node) in self.nodes.iter().enumerate() {
            if node.word.load(Ordering::SeqCst) & 0b11 != ST_RELEASED {
                return Err(format!(
                    "MCS-RWL: node {tid} not in RELEASED state at quiescence"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrips() {
        let l = McsRwLock::new(2);
        l.read_lock(0);
        l.read_unlock(0);
        l.write_lock(0);
        l.write_unlock(0);
        l.read_lock(1);
        l.read_unlock(1);
    }

    #[test]
    fn repeated_rounds_by_one_thread_are_reuse_safe() {
        let l = McsRwLock::new(2);
        for _ in 0..1000 {
            l.read_lock(0);
            l.read_unlock(0);
            l.write_lock(0);
            l.write_unlock(0);
        }
    }

    #[test]
    fn consecutive_readers_overlap() {
        let l = McsRwLock::new(3);
        l.read_lock(0);
        l.read_lock(1); // must not block behind reader 0
        l.read_unlock(0);
        l.read_unlock(1);
    }

    #[test]
    fn writer_excludes_everyone() {
        let l = Arc::new(McsRwLock::new(4));
        let inside = Arc::new(Counter::new(0));
        let violations = Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for tid in 0..2 {
            let (l, inside, violations) = (l.clone(), inside.clone(), violations.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..400 {
                    l.write_lock(tid);
                    if inside.fetch_add(1 << 32, Ordering::SeqCst) != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    inside.fetch_sub(1 << 32, Ordering::SeqCst);
                    l.write_unlock(tid);
                }
            }));
        }
        for tid in 2..4 {
            let (l, inside, violations) = (l.clone(), inside.clone(), violations.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..400 {
                    l.read_lock(tid);
                    if inside.fetch_add(1, Ordering::SeqCst) >> 32 != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    inside.fetch_sub(1, Ordering::SeqCst);
                    l.read_unlock(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn no_lost_updates_under_write_contention() {
        let l = Arc::new(McsRwLock::new(4));
        let data = Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for tid in 0..4 {
            let (l, data) = (l.clone(), data.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    l.write_lock(tid);
                    let v = data.load(Ordering::Relaxed);
                    data.store(v + 1, Ordering::Relaxed);
                    l.write_unlock(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(Ordering::Relaxed), 1200);
    }

    #[test]
    fn heavy_mixed_churn_terminates() {
        // The regression test for the node-reuse hazard: rapid re-rounds
        // under mixed load used to deadlock a polling successor.
        let l = Arc::new(McsRwLock::new(4));
        let mut handles = Vec::new();
        for tid in 0..4 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000 {
                    if (tid + i) % 3 == 0 {
                        l.write_lock(tid);
                        l.write_unlock(tid);
                    } else {
                        l.read_lock(tid);
                        l.read_unlock(tid);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fifo_fairness_writer_not_starved() {
        // A writer enqueued behind the current reader group must get in
        // before readers that arrive after it.
        let l = Arc::new(McsRwLock::new(3));
        l.read_lock(0);
        let order = Arc::new(Counter::new(0));
        let w = {
            let (l, order) = (l.clone(), order.clone());
            std::thread::spawn(move || {
                l.write_lock(1);
                let _ = order.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);
                l.write_unlock(1);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r = {
            let (l, order) = (l.clone(), order.clone());
            std::thread::spawn(move || {
                l.read_lock(2); // must queue behind the writer
                let _ = order.compare_exchange(0, 2, Ordering::SeqCst, Ordering::SeqCst);
                l.read_unlock(2);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        l.read_unlock(0); // release the initial reader; the queue drains
        w.join().unwrap();
        r.join().unwrap();
        assert_eq!(
            order.load(Ordering::SeqCst),
            1,
            "late reader overtook the writer"
        );
    }
}
