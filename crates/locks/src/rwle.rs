//! Hardware Read-Write Lock Elision (RW-LE — Felber, Issa, Matveev,
//! Romano, EuroSys'16): the POWER8-only baseline the paper compares
//! against.
//!
//! Readers run **uninstrumented**, publishing per-thread sequence numbers
//! (odd = inside a read critical section). Writers run speculatively —
//! first as plain HTM transactions, then as rollback-only transactions
//! (ROTs, which track no reads and so fit large write sections) — and,
//! before committing, *suspend* the transaction and wait for every reader
//! that was active at that point to drain (the quiescence phase). Safety
//! against readers that slip in during the race window comes from strong
//! isolation: an uninstrumented read of a line the transaction wrote dooms
//! the transaction.
//!
//! Both the ROT flavour and suspend/resume exist only on POWER8, which is
//! exactly why RW-LE — unlike SpRWL — cannot run on Intel machines; the
//! constructor enforces the same restriction against the capacity profile.

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::clock::{self, SpinWait};
use htm_sim::{Htm, Suspended, TxKind};

use crate::api::{run_untracked, LockThread, RwSync, SectionBody, SectionId};
use crate::policy::RetryPolicy;
use crate::sgl::{GlobalLock, ABORT_LOCKED};
use crate::stats::{AbortCause, CommitMode, Role};

#[derive(Debug)]
#[repr(align(64))]
struct SeqSlot(AtomicU64);

impl Default for SeqSlot {
    fn default() -> Self {
        Self(AtomicU64::new(0))
    }
}

/// The RW-LE elision scheme.
#[derive(Debug)]
pub struct RwLe {
    gl: GlobalLock,
    seq: Box<[SeqSlot]>,
    htm_policy: RetryPolicy,
    rot_policy: RetryPolicy,
}

impl RwLe {
    /// Creates the scheme for up to `htm.max_threads()` threads.
    ///
    /// # Panics
    ///
    /// Panics if the capacity profile does not support ROTs (RW-LE is
    /// POWER8-only, exactly as in the paper) or the simulated memory is
    /// exhausted.
    pub fn new(htm: &Htm) -> Self {
        assert!(
            htm.config().capacity.supports_rot(),
            "RW-LE requires POWER8 ROTs; profile `{}` lacks them",
            htm.config().capacity.name
        );
        let mut seq = Vec::with_capacity(htm.max_threads());
        seq.resize_with(htm.max_threads(), SeqSlot::default);
        Self {
            gl: GlobalLock::new(htm.memory()),
            seq: seq.into_boxed_slice(),
            htm_policy: RetryPolicy::RWLE_ROT,
            rot_policy: RetryPolicy::RWLE_ROT,
        }
    }

    /// The fallback lock (exposed for tests).
    pub fn global_lock(&self) -> &GlobalLock {
        &self.gl
    }

    /// Quiescence: wait until every reader active *now* (other than `me`)
    /// has finished its current read critical section.
    fn wait_readers_drain(&self, me: usize) {
        let snapshot: Vec<(usize, u64)> = self
            .seq
            .iter()
            .enumerate()
            .filter(|&(tid, s)| tid != me && s.0.load(Ordering::SeqCst) % 2 == 1)
            .map(|(tid, s)| (tid, s.0.load(Ordering::SeqCst)))
            .collect();
        for (tid, seen) in snapshot {
            if seen % 2 == 0 {
                continue;
            }
            let mut wait = SpinWait::new();
            while self.seq[tid].0.load(Ordering::SeqCst) == seen {
                wait.snooze();
            }
        }
    }

    fn quiesce_suspended(&self, s: &Suspended<'_>) -> bool {
        self.wait_readers_drain(s.tid());
        // The global lock is read untracked here (ROTs track no reads), so
        // report its state for an explicit abort instead of relying on
        // subscription dooming.
        !self.gl.is_locked_peek(s.htm().memory())
    }
}

impl RwSync for RwLe {
    fn name(&self) -> &'static str {
        "RW-LE"
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        let tid = t.tid();
        let slot = &self.seq[tid].0;
        loop {
            slot.fetch_add(1, Ordering::SeqCst); // odd: active
            if !self.gl.is_locked_peek(t.ctx.htm().memory()) {
                break;
            }
            // A pessimistic writer holds the lock: withdraw and wait.
            slot.fetch_add(1, Ordering::SeqCst); // even: idle
            self.gl.wait_until_free(t.ctx.htm().memory());
        }
        let r = run_untracked(t, f);
        slot.fetch_add(1, Ordering::SeqCst); // even: idle
        t.stats
            .record_commit(Role::Reader, CommitMode::Unins, clock::now() - start);
        r
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        let mem = t.ctx.htm().memory();

        // Phase 1: plain HTM with lock subscription + quiescence.
        let mut attempts = 0u32;
        loop {
            self.gl.wait_until_free(mem);
            attempts += 1;
            let gl = self.gl;
            let this = self;
            match t.ctx.txn(TxKind::Htm, |tx| {
                gl.subscribe(tx)?;
                let r = f(tx)?;
                let lock_free = tx.suspend(|s| this.quiesce_suspended(s))?;
                if !lock_free {
                    return tx.abort(ABORT_LOCKED);
                }
                Ok(r)
            }) {
                Ok(r) => {
                    t.stats
                        .record_commit(Role::Writer, CommitMode::Htm, clock::now() - start);
                    return r;
                }
                Err(abort) => {
                    t.stats
                        .record_abort(AbortCause::classify(abort, TxKind::Htm));
                    if !self.htm_policy.should_retry(attempts, abort) {
                        break;
                    }
                }
            }
        }

        // Phase 2: rollback-only transactions (no read-set ⇒ no read
        // capacity, no conflict aborts from reader metadata).
        let mut attempts = 0u32;
        loop {
            self.gl.wait_until_free(mem);
            attempts += 1;
            let this = self;
            match t.ctx.txn(TxKind::Rot, |tx| {
                let r = f(tx)?;
                let lock_free = tx.suspend(|s| this.quiesce_suspended(s))?;
                if !lock_free {
                    return tx.abort(ABORT_LOCKED);
                }
                Ok(r)
            }) {
                Ok(r) => {
                    t.stats
                        .record_commit(Role::Writer, CommitMode::Rot, clock::now() - start);
                    return r;
                }
                Err(abort) => {
                    t.stats
                        .record_abort(AbortCause::classify(abort, TxKind::Rot));
                    if !self.rot_policy.should_retry(attempts, abort) {
                        break;
                    }
                }
            }
        }

        // Phase 3: pessimistic fallback — take the lock, wait for readers,
        // run uninstrumented.
        let d = t.ctx.direct();
        self.gl.acquire(&d);
        self.wait_readers_drain(t.tid());
        let r = run_untracked(t, f);
        self.gl.release(&t.ctx.direct());
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, clock::now() - start);
        r
    }

    fn check_quiescent(&self, mem: &htm_sim::SimMemory) -> Result<(), String> {
        if self.gl.is_locked_peek(mem) {
            return Err("RW-LE: fallback lock still held at quiescence".into());
        }
        for (tid, slot) in self.seq.iter().enumerate() {
            let v = slot.0.load(Ordering::SeqCst);
            if v % 2 == 1 {
                return Err(format!(
                    "RW-LE: reader {tid} still registered (seq={v}) at quiescence"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SectionId;
    use htm_sim::{CapacityProfile, HtmConfig};

    fn setup() -> Htm {
        Htm::new(
            HtmConfig {
                capacity: CapacityProfile::POWER8_SIM,
                max_threads: 8,
                ..HtmConfig::default()
            },
            16 * 1024,
        )
    }

    #[test]
    #[should_panic(expected = "POWER8")]
    fn rejects_intel_profiles() {
        let htm = Htm::new(
            HtmConfig {
                capacity: CapacityProfile::BROADWELL_SIM,
                ..HtmConfig::default()
            },
            1024,
        );
        let _ = RwLe::new(&htm);
    }

    #[test]
    fn readers_run_uninstrumented() {
        let htm = setup();
        let rwle = RwLe::new(&htm);
        let region = htm.memory().alloc_line_aligned(8 * 512); // 512 lines >> capacity
        let mut t = LockThread::new(htm.thread(0));
        let r = rwle.read_section(&mut t, SectionId(0), &mut |a| {
            let mut sum = 0;
            for i in 0..512 {
                sum += a.read(region.cell(i * 8))?;
            }
            Ok(sum)
        });
        assert_eq!(r, 0);
        assert_eq!(t.stats.commits_by(Role::Reader, CommitMode::Unins), 1);
        assert_eq!(t.stats.total_aborts(), 0, "no speculation on the read path");
    }

    #[test]
    fn small_writers_commit_in_htm() {
        let htm = setup();
        let rwle = RwLe::new(&htm);
        let cell = htm.memory().alloc(1).cell(0);
        let mut t = LockThread::new(htm.thread(0));
        rwle.write_section(&mut t, SectionId(1), &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1)?;
            Ok(0)
        });
        assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Htm), 1);
        assert_eq!(htm.direct(0).load(cell), 1);
    }

    #[test]
    fn read_heavy_writers_fall_through_to_rots() {
        let htm = setup();
        let rwle = RwLe::new(&htm);
        // 256 lines of reads: over POWER8's 128-line read capacity, so the
        // HTM phase hits capacity and the ROT phase (untracked reads) wins.
        let region = htm.memory().alloc_line_aligned(8 * 256);
        let target = htm.memory().alloc(1).cell(0);
        let mut t = LockThread::new(htm.thread(0));
        rwle.write_section(&mut t, SectionId(2), &mut |a| {
            let mut sum = 0;
            for i in 0..256 {
                sum += a.read(region.cell(i * 8))?;
            }
            a.write(target, sum + 1)?;
            Ok(0)
        });
        assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Rot), 1);
        assert_eq!(t.stats.aborts_of(AbortCause::Capacity), 1);
        assert_eq!(htm.direct(0).load(target), 1);
    }

    #[test]
    fn writer_quiesces_behind_active_reader() {
        let htm = setup();
        let rwle = RwLe::new(&htm);
        let cell = htm.memory().alloc(1).cell(0);
        let reader_inside = std::sync::atomic::AtomicBool::new(false);
        let release_reader = std::sync::atomic::AtomicBool::new(false);
        let writer_done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let (htm_r, rwle_r) = (&htm, &rwle);
            let (ri, rr) = (&reader_inside, &release_reader);
            s.spawn(move || {
                let mut t = LockThread::new(htm_r.thread(0));
                rwle_r.read_section(&mut t, SectionId(0), &mut |a| {
                    ri.store(true, Ordering::SeqCst);
                    while !rr.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    a.read(cell)
                });
            });
            while !reader_inside.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let (htm_w, rwle_w, wd) = (&htm, &rwle, &writer_done);
            s.spawn(move || {
                let mut t = LockThread::new(htm_w.thread(1));
                rwle_w.write_section(&mut t, SectionId(1), &mut |a| {
                    a.write(cell, 7)?;
                    Ok(0)
                });
                wd.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(15));
            assert!(
                !writer_done.load(Ordering::SeqCst),
                "writer committed over an active reader"
            );
            assert_eq!(htm.direct(2).load(cell), 0, "no write visible yet");
            release_reader.store(true, Ordering::SeqCst);
        });
        assert!(writer_done.load(Ordering::SeqCst));
        assert_eq!(htm.direct(2).load(cell), 7);
    }

    #[test]
    fn concurrent_mix_preserves_invariants() {
        const THREADS: usize = 4;
        let htm = setup();
        let rwle = RwLe::new(&htm);
        let cells = htm.memory().alloc(4);
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let (htm, rwle, cells) = (&htm, &rwle, &cells);
                s.spawn(move || {
                    let mut t = LockThread::new(htm.thread(tid));
                    for i in 0..150 {
                        if i % 3 == 0 {
                            // Writer: increment all cells by 1 (keeps them equal).
                            rwle.write_section(&mut t, SectionId(1), &mut |a| {
                                for c in 0..4 {
                                    let v = a.read(cells.cell(c))?;
                                    a.write(cells.cell(c), v + 1)?;
                                }
                                Ok(0)
                            });
                        } else {
                            // Reader: all cells must be equal (snapshot).
                            let eq = rwle.read_section(&mut t, SectionId(0), &mut |a| {
                                let v0 = a.read(cells.cell(0))?;
                                let mut ok = 1;
                                for c in 1..4 {
                                    if a.read(cells.cell(c))? != v0 {
                                        ok = 0;
                                    }
                                }
                                Ok(ok)
                            });
                            assert_eq!(eq, 1, "reader saw a torn update");
                        }
                    }
                });
            }
        });
    }
}
