//! A passive reader-writer lock in the spirit of PRWL (Liu, Zhang, Chen —
//! USENIX ATC'14): the reader fast path is a per-thread version
//! announcement (one store, one fence-equivalent, one load — no shared
//! counter contention); writers drive a version-based consensus, waiting
//! for every reader either to go idle or to acknowledge the new version.
//!
//! Simplifications versus the full PRWL (documented; the shape of the cost
//! model is preserved): a single writer spin-mutex instead of PRWL's
//! distributed writer queue, and spin waits instead of sleep/wake.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use htm_sim::clock::{self, SpinWait};

use crate::api::{run_untracked, LockThread, RwSync, SectionBody, SectionId};
use crate::spin::SpinMutex;
use crate::stats::{CommitMode, Role};

const IDLE: u64 = u64::MAX;

#[derive(Debug)]
#[repr(align(64))]
struct ReaderSlot(AtomicU64);

impl Default for ReaderSlot {
    fn default() -> Self {
        Self(AtomicU64::new(IDLE))
    }
}

/// Version-consensus passive read-write lock for a fixed set of threads.
#[derive(Debug)]
pub struct PassiveRwLock {
    writer_mutex: SpinMutex,
    writer_present: AtomicBool,
    version: AtomicU64,
    readers: Box<[ReaderSlot]>,
}

impl PassiveRwLock {
    /// Creates a lock for `n_threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0, "PassiveRwLock needs at least one thread");
        let mut v = Vec::with_capacity(n_threads);
        v.resize_with(n_threads, ReaderSlot::default);
        Self {
            writer_mutex: SpinMutex::new(),
            writer_present: AtomicBool::new(false),
            version: AtomicU64::new(0),
            readers: v.into_boxed_slice(),
        }
    }

    /// Shared acquisition (passive fast path).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn read_lock(&self, tid: usize) {
        let slot = &self.readers[tid].0;
        let mut wait = SpinWait::new();
        loop {
            while self.writer_present.load(Ordering::SeqCst) {
                wait.snooze();
            }
            let v = self.version.load(Ordering::SeqCst);
            slot.store(v, Ordering::SeqCst);
            // Recheck: a writer may have arrived between the check and the
            // announcement; if so, withdraw and retry (writer preference).
            if !self.writer_present.load(Ordering::SeqCst) {
                return;
            }
            slot.store(IDLE, Ordering::SeqCst);
        }
    }

    /// Shared release.
    pub fn read_unlock(&self, tid: usize) {
        self.readers[tid].0.store(IDLE, Ordering::SeqCst);
    }

    /// Exclusive acquisition: bump the version, then wait for every reader
    /// to be idle or to have announced at least the new version.
    pub fn write_lock(&self) {
        self.writer_mutex.lock();
        self.writer_present.store(true, Ordering::SeqCst);
        let v = self.version.fetch_add(1, Ordering::SeqCst) + 1;
        for slot in self.readers.iter() {
            let mut wait = SpinWait::new();
            loop {
                let rv = slot.0.load(Ordering::SeqCst);
                if rv == IDLE || rv >= v {
                    break;
                }
                wait.snooze();
            }
        }
    }

    /// Exclusive release.
    pub fn write_unlock(&self) {
        self.writer_present.store(false, Ordering::SeqCst);
        self.writer_mutex.unlock();
    }
}

impl RwSync for PassiveRwLock {
    fn name(&self) -> &'static str {
        "PRWL"
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.read_lock(t.tid());
        let r = run_untracked(t, f);
        self.read_unlock(t.tid());
        t.stats
            .record_commit(Role::Reader, CommitMode::Gl, clock::now() - start);
        r
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        self.write_lock();
        let r = run_untracked(t, f);
        self.write_unlock();
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, clock::now() - start);
        r
    }

    fn check_quiescent(&self, _mem: &htm_sim::SimMemory) -> Result<(), String> {
        if self.writer_present.load(Ordering::SeqCst) {
            return Err("PRWL: writer_present still raised at quiescence".into());
        }
        if self.writer_mutex.is_locked() {
            return Err("PRWL: writer mutex still held at quiescence".into());
        }
        for (tid, slot) in self.readers.iter().enumerate() {
            if slot.0.load(Ordering::SeqCst) != IDLE {
                return Err(format!("PRWL: reader {tid} still announced at quiescence"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrips() {
        let l = PassiveRwLock::new(2);
        l.read_lock(0);
        l.read_lock(1);
        l.read_unlock(0);
        l.read_unlock(1);
        l.write_lock();
        l.write_unlock();
    }

    #[test]
    fn writer_waits_for_prior_readers_only() {
        let l = PassiveRwLock::new(2);
        l.read_lock(0);
        // Writer in another thread blocks until reader 0 leaves.
        let l = Arc::new(l);
        let entered = Arc::new(AtomicBool::new(false));
        let h = {
            let l = l.clone();
            let entered = entered.clone();
            std::thread::spawn(move || {
                l.write_lock();
                entered.store(true, Ordering::SeqCst);
                l.write_unlock();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(!entered.load(Ordering::SeqCst), "writer ran over a reader");
        l.read_unlock(0);
        h.join().unwrap();
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn mixed_contention_has_no_lost_updates() {
        const WRITERS: usize = 2;
        const READERS: usize = 2;
        let l = Arc::new(PassiveRwLock::new(WRITERS + READERS));
        let data = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..WRITERS {
            let (l, data) = (l.clone(), data.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..400 {
                    l.write_lock();
                    let v = data.load(Ordering::Relaxed);
                    data.store(v + 1, Ordering::Relaxed);
                    l.write_unlock();
                }
            }));
        }
        for tid in 0..READERS {
            let (l, data) = (l.clone(), data.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..400 {
                    l.read_lock(WRITERS + tid);
                    let _ = data.load(Ordering::Relaxed);
                    l.read_unlock(WRITERS + tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(Ordering::Relaxed), 800);
    }
}
