//! Plain transactional lock elision (TLE): every critical section —
//! read-only or updating — is attempted as a hardware transaction that
//! subscribes a single global lock; after the retry budget (or immediately
//! on capacity aborts) it falls back to acquiring the lock pessimistically.
//!
//! This is the paper's `TLE` baseline: great when everything fits in HTM,
//! and exactly the scheme whose long-reader collapse motivates SpRWL.

use htm_sim::clock;
use htm_sim::{Htm, TxKind};

use crate::api::{run_untracked, LockThread, RwSync, SectionBody, SectionId};
use crate::policy::RetryPolicy;
use crate::sgl::GlobalLock;
use crate::stats::{AbortCause, CommitMode, Role};

/// Transactional lock elision over a single global lock.
#[derive(Debug)]
pub struct Tle {
    gl: GlobalLock,
    policy: RetryPolicy,
}

impl Tle {
    /// Creates the elision scheme, allocating its fallback lock from the
    /// runtime's simulated memory.
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn new(htm: &Htm) -> Self {
        Self::with_policy(htm, RetryPolicy::PAPER_DEFAULT)
    }

    /// Creates the scheme with an explicit retry policy.
    pub fn with_policy(htm: &Htm, policy: RetryPolicy) -> Self {
        Self {
            gl: GlobalLock::new(htm.memory()),
            policy,
        }
    }

    /// The fallback lock (exposed for tests).
    pub fn global_lock(&self) -> &GlobalLock {
        &self.gl
    }

    fn section(&self, t: &mut LockThread<'_>, role: Role, f: SectionBody<'_>) -> u64 {
        let start = clock::now();
        let mut attempts = 0u32;
        loop {
            // Wait until the lock is free before (re)trying in hardware —
            // beginning while it is held would abort immediately.
            self.gl.wait_until_free(t.ctx.htm().memory());
            attempts += 1;
            let gl = self.gl;
            match t.ctx.txn(TxKind::Htm, |tx| {
                gl.subscribe(tx)?;
                f(tx)
            }) {
                Ok(r) => {
                    t.stats
                        .record_commit(role, CommitMode::Htm, clock::now() - start);
                    return r;
                }
                Err(abort) => {
                    t.stats
                        .record_abort(AbortCause::classify(abort, TxKind::Htm));
                    if let Some(info) = t.ctx.last_conflict() {
                        t.stats.record_conflict(info.line.index() as u64, info.peer);
                    }
                    if !self.policy.should_retry(attempts, abort) {
                        break;
                    }
                }
            }
        }
        // Pessimistic fallback: take the lock, run uninstrumented.
        let d = t.ctx.direct();
        self.gl.acquire(&d);
        let r = run_untracked(t, f);
        self.gl.release(&t.ctx.direct());
        t.stats
            .record_commit(role, CommitMode::Gl, clock::now() - start);
        r
    }
}

impl RwSync for Tle {
    fn name(&self) -> &'static str {
        "TLE"
    }

    fn read_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        self.section(t, Role::Reader, f)
    }

    fn write_section(&self, t: &mut LockThread<'_>, _sec: SectionId, f: SectionBody<'_>) -> u64 {
        self.section(t, Role::Writer, f)
    }

    fn check_quiescent(&self, mem: &htm_sim::SimMemory) -> Result<(), String> {
        if self.gl.is_locked_peek(mem) {
            return Err("TLE: fallback lock still held at quiescence".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SectionId;
    use htm_sim::{CapacityProfile, HtmConfig};

    fn setup(profile: CapacityProfile) -> Htm {
        Htm::new(
            HtmConfig {
                capacity: profile,
                max_threads: 8,
                ..HtmConfig::default()
            },
            8192,
        )
    }

    #[test]
    fn small_sections_commit_in_htm() {
        let htm = setup(CapacityProfile::BROADWELL_SIM);
        let tle = Tle::new(&htm);
        let cell = htm.memory().alloc(1).cell(0);
        let mut t = LockThread::new(htm.thread(0));
        let r = tle.write_section(&mut t, SectionId(0), &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1)?;
            Ok(v + 1)
        });
        assert_eq!(r, 1);
        assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Htm), 1);
        assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Gl), 0);
    }

    #[test]
    fn oversized_sections_fall_back_to_the_lock() {
        let htm = setup(CapacityProfile::TINY); // 4 read lines
        let tle = Tle::new(&htm);
        let region = htm.memory().alloc_line_aligned(8 * 8);
        let mut t = LockThread::new(htm.thread(0));
        let r = tle.read_section(&mut t, SectionId(0), &mut |a| {
            let mut sum = 0;
            for i in 0..8 {
                sum += a.read(region.cell(i * 8))?;
            }
            Ok(sum)
        });
        assert_eq!(r, 0);
        assert_eq!(t.stats.commits_by(Role::Reader, CommitMode::Gl), 1);
        assert_eq!(
            t.stats.aborts_of(AbortCause::Capacity),
            1,
            "immediate fallback"
        );
    }

    #[test]
    fn concurrent_elision_preserves_counter() {
        const THREADS: usize = 4;
        let htm = setup(CapacityProfile::BROADWELL_SIM);
        let tle = Tle::new(&htm);
        let cell = htm.memory().alloc(1).cell(0);
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let htm = &htm;
                let tle = &tle;
                s.spawn(move || {
                    let mut t = LockThread::new(htm.thread(tid));
                    for _ in 0..200 {
                        tle.write_section(&mut t, SectionId(0), &mut |a| {
                            let v = a.read(cell)?;
                            a.write(cell, v + 1)?;
                            Ok(v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(htm.direct(0).load(cell), (THREADS * 200) as u64);
    }

    #[test]
    fn fallback_holder_excludes_htm_commits() {
        let htm = setup(CapacityProfile::BROADWELL_SIM);
        let tle = Tle::new(&htm);
        let cell = htm.memory().alloc(1).cell(0);
        // Hold the fallback lock; an eliding thread must wait, not commit.
        let holder = htm.direct(1);
        tle.global_lock().acquire(&holder);
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let htm_ref = &htm;
            let tle_ref = &tle;
            let done_ref = &done;
            s.spawn(move || {
                let mut t = LockThread::new(htm_ref.thread(0));
                tle_ref.write_section(&mut t, SectionId(0), &mut |a| {
                    a.write(cell, 1)?;
                    Ok(0)
                });
                done_ref.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert!(!done.load(std::sync::atomic::Ordering::SeqCst));
            assert_eq!(htm.direct(2).load(cell), 0);
            tle.global_lock().release(&holder);
        });
        assert!(done.load(std::sync::atomic::Ordering::SeqCst));
        assert_eq!(htm.direct(2).load(cell), 1);
    }
}
