//! Round-trip validation of the Chrome trace-event exporter against the
//! parts of the trace-event schema Perfetto actually enforces: a JSON
//! document with a `traceEvents` array whose entries carry `name`, a known
//! `ph`, `pid`, `tid`, and a numeric `ts`; per-thread `B`/`E` balance; and
//! per-thread nondecreasing timestamps.
//!
//! The build environment is offline, so this file carries its own minimal
//! recursive-descent JSON parser (objects, arrays, strings, numbers,
//! literals — no escapes beyond `\"`/`\\`, which the exporter never emits
//! anyway since all labels are workspace-chosen `&'static str`s).

use sprwl_trace::export::{chrome_trace_json, jsonl};
use sprwl_trace::{EventKind, TraceBuffer, TraceConfig, TraceRole};

// ---------------------------------------------------------------------------
// Minimal JSON model + parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} (found {:?})",
                b as char,
                self.pos,
                self.s.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        self.ws();
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.s.get(self.pos) {
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.s.get(self.pos).ok_or("eof in escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        self.ws();
        let start = self.pos;
        while let Some(&c) = self.s.get(self.pos) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {:?}: {}", text, e))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] (found {:?})", other)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} (found {:?})", other)),
            }
        }
    }
}

fn parse(s: &str) -> Json {
    let mut p = Parser::new(s);
    let v = p.value().expect("document parses");
    p.ws();
    assert_eq!(p.pos, p.s.len(), "trailing garbage after document");
    v
}

// ---------------------------------------------------------------------------
// Synthetic trace covering the taxonomy
// ---------------------------------------------------------------------------

fn synthetic_traces() -> Vec<sprwl_trace::ThreadTrace> {
    let mut t0 = TraceBuffer::new(0, TraceConfig::ring(64));
    t0.push(EventKind::SectionBegin {
        role: TraceRole::Writer,
        sec: 3,
    });
    t0.push(EventKind::TxAttempt {
        role: TraceRole::Writer,
        attempt: 1,
    });
    t0.push(EventKind::TxAbort {
        cause: "conflict",
        line: 17,
        peer: 1,
    });
    t0.push(EventKind::SchedDeltaStart { start_at: 12_345 });
    t0.push(EventKind::TxAttempt {
        role: TraceRole::Writer,
        attempt: 2,
    });
    t0.push(EventKind::TxCommit {
        mode: "HTM",
        read_fp: 3,
        write_fp: 2,
    });
    t0.push(EventKind::SectionEnd {
        role: TraceRole::Writer,
        sec: 3,
        mode: "HTM",
        latency_ns: 900,
    });

    let mut t1 = TraceBuffer::new(1, TraceConfig::ring(64));
    t1.push(EventKind::SectionBegin {
        role: TraceRole::Reader,
        sec: 0,
    });
    t1.push(EventKind::SchedWaitWriter {
        writer: 0,
        deadline: 50_000,
    });
    t1.push(EventKind::ReaderArrive);
    t1.push(EventKind::SglBypassEnter { registered: 4 });
    t1.push(EventKind::ReaderDepart);
    t1.push(EventKind::SectionEnd {
        role: TraceRole::Reader,
        sec: 0,
        mode: "Unins",
        latency_ns: 400,
    });
    t1.push(EventKind::Mark {
        label: "torture-op",
        a: 9,
        b: 1,
    });

    vec![t0.snapshot(), t1.snapshot()]
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

const KNOWN_PHASES: &[&str] = &["B", "E", "i", "s", "f", "M", "X"];

#[test]
fn chrome_export_round_trips_against_schema() {
    let traces = synthetic_traces();
    let doc = parse(&chrome_trace_json(&traces));

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must not be empty");

    // Per-tid slice balance and timestamp monotonicity.
    let mut depth: std::collections::HashMap<i64, i64> = Default::default();
    let mut last_ts: std::collections::HashMap<i64, f64> = Default::default();
    for ev in events {
        let name = ev.get("name").and_then(Json::as_str).expect("name");
        assert!(!name.is_empty());
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        assert!(KNOWN_PHASES.contains(&ph), "unknown phase {:?}", ph);
        let pid = ev.get("pid").and_then(Json::as_num).expect("pid");
        assert_eq!(pid, 1.0);
        let tid = ev.get("tid").and_then(Json::as_num).expect("tid") as i64;
        if ph != "M" {
            let ts = ev.get("ts").and_then(Json::as_num).expect("numeric ts");
            let last = last_ts.entry(tid).or_insert(0.0);
            assert!(
                ts >= *last,
                "non-monotone ts on tid {}: {} after {}",
                tid,
                ts,
                last
            );
            *last = ts;
        }
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "unmatched E on tid {}", tid);
            }
            _ => {}
        }
    }
    for (tid, d) in depth {
        assert_eq!(d, 0, "unbalanced slices on tid {}", tid);
    }

    // The conflict abort's flow arrow has both ends.
    let flows: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("retry"))
        .collect();
    assert_eq!(flows.len(), 2, "one s + one f");
    assert!(flows
        .iter()
        .any(|e| e.get("ph").and_then(Json::as_str) == Some("s")));
    assert!(flows
        .iter()
        .any(|e| e.get("ph").and_then(Json::as_str) == Some("f")));

    // Both threads got named tracks.
    let meta: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .collect();
    assert_eq!(meta.len(), 2);

    // Conflict attribution survives export.
    let abort = events
        .iter()
        .find(|e| {
            e.get("args")
                .and_then(|a| a.get("cause"))
                .and_then(Json::as_str)
                == Some("conflict")
        })
        .expect("conflict abort exported");
    let args = abort.get("args").unwrap();
    assert_eq!(args.get("line").and_then(Json::as_num), Some(17.0));
    assert_eq!(args.get("peer").and_then(Json::as_num), Some(1.0));
}

#[test]
fn jsonl_lines_all_parse_as_objects() {
    let traces = synthetic_traces();
    let out = jsonl(&traces);
    let mut n = 0;
    for line in out.lines() {
        let v = parse(line);
        assert!(matches!(v, Json::Obj(_)), "line is an object: {}", line);
        assert!(v.get("tid").is_some());
        assert!(v.get("ev").is_some());
        n += 1;
    }
    assert_eq!(n, 14, "one line per event across both threads");
}

#[test]
fn ring_truncation_keeps_chrome_export_well_formed() {
    // A tiny ring drops section/attempt openers; the exporter must still
    // produce balanced, parseable output.
    let mut b = TraceBuffer::new(0, TraceConfig::ring(3));
    for i in 0..5u32 {
        b.push(EventKind::SectionBegin {
            role: TraceRole::Reader,
            sec: i,
        });
        b.push(EventKind::TxAttempt {
            role: TraceRole::Reader,
            attempt: 1,
        });
        b.push(EventKind::TxCommit {
            mode: "HTM",
            read_fp: 1,
            write_fp: 0,
        });
        b.push(EventKind::SectionEnd {
            role: TraceRole::Reader,
            sec: i,
            mode: "HTM",
            latency_ns: 10,
        });
    }
    let snap = b.snapshot();
    assert!(snap.dropped > 0);
    let doc = parse(&chrome_trace_json(&[snap]));
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut depth = 0i64;
    for ev in events {
        match ev.get("ph").and_then(Json::as_str) {
            Some("B") => depth += 1,
            Some("E") => {
                depth -= 1;
                assert!(depth >= 0);
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0);
}
