//! History extraction: iterating the [`EventKind::Mark`] records a harness
//! embeds in its traces, from in-memory [`ThreadTrace`]s or from the JSONL
//! dumps the exporter and the torture postmortems write.
//!
//! This is the bridge between observability and *checking*: a harness logs
//! one mark stream per thread describing what its operations observed, and
//! an offline checker (e.g. `sprwl-lincheck`) replays those marks against a
//! sequential model. The module is deliberately label-agnostic — it
//! surfaces every mark (any event carrying the generic `a`/`b` payload
//! words) plus the per-thread drop counts, and leaves the label vocabulary
//! to the consumer.
//!
//! The JSONL parser is a minimal hand-rolled field scanner, matching the
//! hand-rolled writer in [`crate::export`]: every value it needs is an
//! unsigned integer or a label chosen by this workspace, so no JSON
//! framework is required (and none is available offline). Lines it does
//! not recognize (run metadata, lifecycle events without `a`/`b` payloads)
//! are skipped, so a torture postmortem feeds straight in.

use crate::{EventKind, ThreadTrace};

/// One mark, normalized: the owning thread, its timestamp, and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkRecord {
    /// The recording thread.
    pub tid: u32,
    /// Timestamp ([`htm_sim::clock::now`] at push time).
    pub ts: u64,
    /// The mark's label (owned, so JSONL and in-memory sources unify).
    pub label: String,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// All marks harvested from a set of traces, in per-thread chronological
/// order, plus the ring-overwrite drop counts a checker needs to decide
/// whether the history is complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MarkHistory {
    /// Every mark, grouped by source: within one `tid`, records appear in
    /// chronological (ring) order. Thread groups appear in trace order.
    pub marks: Vec<MarkRecord>,
    /// `(tid, dropped_events)` for every thread that lost events to ring
    /// overwrite. A non-empty list means the mark streams have holes.
    pub dropped: Vec<(u32, u64)>,
}

impl MarkHistory {
    /// Total events dropped across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().map(|&(_, d)| d).sum()
    }

    /// The distinct thread ids present, in first-appearance order.
    pub fn tids(&self) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for m in &self.marks {
            if !out.contains(&m.tid) {
                out.push(m.tid);
            }
        }
        out
    }

    /// The marks of one thread, in chronological order.
    pub fn of_thread(&self, tid: u32) -> impl Iterator<Item = &MarkRecord> {
        self.marks.iter().filter(move |m| m.tid == tid)
    }
}

/// Extracts every mark from in-memory traces.
pub fn marks_of(traces: &[ThreadTrace]) -> MarkHistory {
    let mut h = MarkHistory::default();
    for t in traces {
        if t.dropped > 0 {
            h.dropped.push((t.tid, t.dropped));
        }
        for e in &t.events {
            if let EventKind::Mark { label, a, b } = e.kind {
                h.marks.push(MarkRecord {
                    tid: t.tid,
                    ts: e.ts,
                    label: label.to_string(),
                    a,
                    b,
                });
            }
        }
    }
    h
}

/// Scans `line` for `"key":<uint>` and parses the integer. Shared with the
/// contention analyzer ([`crate::analyze`]), which reads the same JSONL.
pub(crate) fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Scans `line` for `"key":"<value>"` and returns the raw string value.
pub(crate) fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts marks from a JSONL trace dump ([`crate::export::jsonl`] output
/// or a torture postmortem, whose extra leading metadata line is skipped).
///
/// A line counts as a mark when it carries `tid`, `ts`, `ev`, `a`, and `b`
/// fields — which, in the exporter's vocabulary, is exactly the
/// [`EventKind::Mark`] encoding. `trace-meta` lines populate
/// [`MarkHistory::dropped`]; anything else is ignored.
///
/// # Errors
///
/// Returns a description of the first malformed line: one that names an
/// `ev` but lacks a parsable `tid` where one is required.
pub fn marks_from_jsonl(text: &str) -> Result<MarkHistory, String> {
    let mut h = MarkHistory::default();
    for (n, line) in text.lines().enumerate() {
        let Some(ev) = json_str(line, "ev") else {
            // Run-metadata lines (postmortem header) carry no "ev" field.
            continue;
        };
        let tid = match json_u64(line, "tid") {
            Some(t) => t as u32,
            None => return Err(format!("line {}: event {ev:?} without tid", n + 1)),
        };
        if ev == "trace-meta" {
            if let Some(d) = json_u64(line, "dropped") {
                h.dropped.push((tid, d));
            }
            continue;
        }
        let (Some(ts), Some(a), Some(b)) = (
            json_u64(line, "ts"),
            json_u64(line, "a"),
            json_u64(line, "b"),
        ) else {
            continue; // lifecycle event, not a mark
        };
        h.marks.push(MarkRecord {
            tid,
            ts,
            label: ev.to_string(),
            a,
            b,
        });
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, TraceRole};

    fn trace(tid: u32, dropped: u64, events: Vec<Event>) -> ThreadTrace {
        ThreadTrace::full(tid, events, dropped)
    }

    fn mark(ts: u64, label: &'static str, a: u64, b: u64) -> Event {
        Event {
            ts,
            kind: EventKind::Mark { label, a, b },
        }
    }

    #[test]
    fn marks_of_filters_and_orders() {
        let traces = vec![
            trace(
                0,
                0,
                vec![
                    mark(1, "op", 7, 0),
                    Event {
                        ts: 2,
                        kind: EventKind::ReaderArrive,
                    },
                    mark(3, "op", 8, 1),
                ],
            ),
            trace(1, 5, vec![mark(2, "op", 9, 0)]),
        ];
        let h = marks_of(&traces);
        assert_eq!(h.marks.len(), 3);
        assert_eq!(h.dropped, vec![(1, 5)]);
        assert_eq!(h.total_dropped(), 5);
        assert_eq!(h.tids(), vec![0, 1]);
        let t0: Vec<u64> = h.of_thread(0).map(|m| m.a).collect();
        assert_eq!(t0, vec![7, 8]);
    }

    #[test]
    fn jsonl_roundtrip_through_exporter() {
        let traces = vec![trace(
            2,
            0,
            vec![
                mark(10, "lin-inv", 0, 1),
                Event {
                    ts: 11,
                    kind: EventKind::SectionBegin {
                        role: TraceRole::Writer,
                        sec: 1,
                    },
                },
                mark(20, "lin-ret", 0, 0),
            ],
        )];
        let text = crate::export::jsonl(&traces);
        let h = marks_from_jsonl(&text).expect("well-formed");
        assert_eq!(h, marks_of(&traces));
    }

    #[test]
    fn jsonl_skips_metadata_and_collects_dropped() {
        let text = concat!(
            "{\"case\":\"demo\",\"replay\":\"TORTURE_SEED=0x1 cargo test\"}\n",
            "{\"tid\":3,\"ev\":\"trace-meta\",\"dropped\":17}\n",
            "{\"tid\":3,\"ts\":5,\"ev\":\"lin-inv\",\"a\":0,\"b\":1}\n",
            "{\"tid\":3,\"ts\":6,\"ev\":\"tx-commit\",\"mode\":\"HTM\",\"read_fp\":1,\"write_fp\":1}\n",
        );
        let h = marks_from_jsonl(text).expect("well-formed");
        assert_eq!(h.dropped, vec![(3, 17)]);
        assert_eq!(h.marks.len(), 1);
        assert_eq!(h.marks[0].label, "lin-inv");
        assert_eq!(h.marks[0].ts, 5);
    }

    #[test]
    fn jsonl_rejects_event_without_tid() {
        let text = "{\"ts\":5,\"ev\":\"lin-inv\",\"a\":0,\"b\":1}\n";
        assert!(marks_from_jsonl(text).is_err());
    }
}
