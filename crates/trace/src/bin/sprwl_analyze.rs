//! `sprwl-analyze` — contention analysis over a JSONL trace capture.
//!
//! ```text
//! sprwl-analyze <capture.jsonl> [--top K] [--buckets N] [--out report.json]
//! ```
//!
//! Ingests a capture written by the JSONL exporter (a bench `--capture`
//! file, a torture postmortem, or any [`sprwl_trace::export::jsonl`]
//! output, full or sampled) and prints the [`sprwl_trace::analyze`] report
//! as JSON — to stdout, or to `--out` with a one-line summary on stdout.
//!
//! ## Exit codes (pinned contract, relied on by `scripts/ci.sh`)
//!
//! * `0` — report produced; the capture contained section lifecycles.
//! * `1` — capture parsed cleanly but contains no section lifecycle
//!   events (vacuous: wrong file, or tracing was off). The report is
//!   still written so callers can inspect what *was* there.
//! * `2` — usage, I/O, or parse error.

use sprwl_trace::analyze::{analyze_with, AnalyzeConfig};

const USAGE: &str =
    "usage: sprwl-analyze <capture.jsonl> [--top K] [--buckets N] [--out report.json]";

fn fail(msg: &str) -> ! {
    eprintln!("sprwl-analyze: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut cfg = AnalyzeConfig::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(k)) if k > 0 => cfg.top_k = k,
                _ => fail("--top wants a positive integer"),
            },
            "--buckets" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => cfg.timeline_buckets = n,
                _ => fail("--buckets wants a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => fail("--out wants a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => fail(&format!("unknown flag {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    fail("more than one capture path");
                }
            }
        }
    }
    let Some(path) = path else {
        fail("missing capture path");
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let report = match analyze_with(&text, &cfg) {
        Ok(r) => r,
        Err(e) => fail(&format!("{path}: {e}")),
    };

    let json = report.to_json();
    match &out {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &json) {
                fail(&format!("cannot write {p}: {e}"));
            }
            println!(
                "sprwl-analyze: {} events, {} threads, {} sections, {} pairs -> {}",
                report.events,
                report.threads,
                report.sections.len(),
                report.top_pairs.len(),
                p
            );
        }
        None => print!("{json}"),
    }

    if !report.has_sections() {
        eprintln!("sprwl-analyze: vacuous capture (no section lifecycle events)");
        std::process::exit(1);
    }
}
