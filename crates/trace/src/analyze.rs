//! Contention analysis over JSONL trace captures.
//!
//! The exporters answer "what happened on thread T"; production debugging
//! needs the cross-thread view: *which sections fight*, *which cache lines
//! are hot and who hammers them*, *when do readers and writers interfere*,
//! and *how does each section behave* (abort rate, commit-mode mix,
//! latency tail). This module ingests a [`crate::export::jsonl`] capture —
//! full-firehose or [`crate::TraceConfig::Sampled`] — and distills those
//! four views into one machine-readable report the `sprwl-analyze` CLI
//! prints and `scripts/summarize_bench.py` renders.
//!
//! ## Attribution model
//!
//! Events are merged across threads and replayed in timestamp order while
//! tracking each thread's currently open section. A `tx-abort` is charged
//! to the victim's open section; when the substrate attributed a peer
//! thread, the *peer's* open section at that instant completes the
//! conflicting pair. This is the same last-conflict attribution the
//! simulated HTM exposes via `ThreadCtx::last_conflict`, lifted from
//! "thread ↔ thread" to "section ↔ section" — the granularity at which
//! SpRWL's per-section knobs (tracking mode, δ-start, skip budgets) act.
//!
//! ## Sampling soundness
//!
//! A sampled capture records 1-in-N whole sections per thread. Counters
//! derived from recorded events are therefore per-thread underestimates
//! with a known factor: every count this module accumulates is weighted by
//! the recording thread's `sample_rate` from its `trace-meta` line, so the
//! report's counts are unbiased estimates of the full-trace counts.
//! Latency percentiles are computed from the recorded (unweighted)
//! samples: section selection is oblivious to duration, so the sampled
//! distribution estimates the true one. `dropped > 0` (ring overwrite)
//! cannot be corrected the same way and is surfaced verbatim so consumers
//! can distrust truncated captures.

use crate::history::{json_str, json_u64};
use std::collections::BTreeMap;

/// Analysis knobs.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeConfig {
    /// How many conflicting pairs / hot lines to keep (top-K).
    pub top_k: usize,
    /// Interference-timeline resolution (bucket count over the capture).
    pub timeline_buckets: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        Self {
            top_k: 10,
            timeline_buckets: 24,
        }
    }
}

/// Per-section behaviour rollup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SectionRollup {
    /// Rate-weighted reader executions (section-end events).
    pub reader_execs: u64,
    /// Rate-weighted writer executions.
    pub writer_execs: u64,
    /// Rate-weighted commit-mode counts, by stable mode label.
    pub modes: BTreeMap<String, u64>,
    /// Rate-weighted abort counts, by stable cause label.
    pub aborts: BTreeMap<String, u64>,
    /// Recorded (unweighted) section latencies, nanoseconds.
    latencies: Vec<u64>,
}

impl SectionRollup {
    /// Total rate-weighted executions.
    pub fn execs(&self) -> u64 {
        self.reader_execs + self.writer_execs
    }

    /// Total rate-weighted aborts.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Aborts per completed execution (0 when nothing completed).
    pub fn abort_rate(&self) -> f64 {
        if self.execs() == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.execs() as f64
        }
    }

    /// Nearest-rank percentile over the recorded latencies.
    pub fn latency_pct(&self, pct: u64) -> u64 {
        percentile(&self.latencies, pct)
    }
}

fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * pct / 100) as usize]
}

/// One section↔section conflict entry (unordered pair, `a <= b`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairEntry {
    /// Lower section id of the pair.
    pub a: u32,
    /// Higher section id (equal to `a` for self-conflicts).
    pub b: u32,
    /// Rate-weighted conflict count.
    pub count: u64,
    /// Breakdown by abort-cause label.
    pub causes: BTreeMap<String, u64>,
}

/// One hot-cache-line entry with peer attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineEntry {
    /// The conflicting cache line index.
    pub line: u64,
    /// Rate-weighted aborts attributed to this line.
    pub count: u64,
    /// Rate-weighted counts per peer thread that owned/doomed the line.
    pub peers: BTreeMap<u32, u64>,
}

/// Reader/writer interference over time: fixed-width buckets spanning the
/// capture, each counting rate-weighted section starts and aborts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// First timestamp covered.
    pub start_ts: u64,
    /// Bucket width, nanoseconds (0 for an empty/degenerate capture).
    pub bucket_ns: u64,
    /// Reader section starts per bucket.
    pub reader_begins: Vec<u64>,
    /// Writer section starts per bucket.
    pub writer_begins: Vec<u64>,
    /// Writer aborts caused by readers (`cause == "reader"`) per bucket.
    pub reader_caused_aborts: Vec<u64>,
    /// Data-conflict aborts (`cause` starting with `"conflict"`) per bucket.
    pub conflict_aborts: Vec<u64>,
    /// Capacity-overflow aborts (`cause` starting with `"capacity"`, both
    /// plain-HTM and ROT) per bucket. Writer capacity pressure used to be
    /// invisible here — it fell through to the per-section rollups only —
    /// which made stretched-writer captures look conflict-free.
    pub capacity_aborts: Vec<u64>,
}

/// Per-thread sampling summary lifted from the `trace-meta` lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SamplingSummary {
    /// Threads that recorded under a sampled config.
    pub sampled_threads: u64,
    /// The largest per-thread stride seen.
    pub max_rate: u64,
    /// Total outermost sections observed across sampled threads.
    pub sections_seen: u64,
    /// Total outermost sections recorded across sampled threads.
    pub sections_sampled: u64,
    /// Total events suppressed by sampling.
    pub unsampled: u64,
}

/// The analyzer's output: everything `sprwl-analyze` prints as JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Event lines parsed (excluding `trace-meta`).
    pub events: u64,
    /// Distinct recording threads seen.
    pub threads: u64,
    /// Total ring-overwrite drops across threads (capture truncation).
    pub dropped: u64,
    /// Sampling summary when any thread recorded under `Sampled`.
    pub sampling: Option<SamplingSummary>,
    /// Per-section rollups, keyed by section id.
    pub sections: BTreeMap<u32, SectionRollup>,
    /// Top-K conflicting section pairs, most conflicts first.
    pub top_pairs: Vec<PairEntry>,
    /// Top-K hot cache lines, most aborts first.
    pub line_heat: Vec<LineEntry>,
    /// Reader/writer interference timeline.
    pub timeline: Timeline,
    /// Self-tuner decisions observed, in timestamp order:
    /// `(ts, tid, knob, sec, value)`.
    pub tune_decisions: Vec<(u64, u32, String, u32, u64)>,
}

impl Report {
    /// Whether the capture contained any section lifecycle at all — the
    /// CLI's exit-1 ("vacuous capture") predicate.
    pub fn has_sections(&self) -> bool {
        !self.sections.is_empty()
    }
}

/// One parsed capture line, reduced to what the replay needs.
#[derive(Debug)]
enum Rec {
    Begin {
        tid: u32,
        ts: u64,
        sec: u32,
        writer: bool,
    },
    End {
        tid: u32,
        ts: u64,
        sec: u32,
        writer: bool,
        mode: String,
        latency: u64,
    },
    Abort {
        tid: u32,
        ts: u64,
        cause: String,
        line: Option<u64>,
        peer: Option<u32>,
    },
    Tune {
        tid: u32,
        ts: u64,
        knob: String,
        sec: u32,
        value: u64,
    },
    Other {
        tid: u32,
        ts: u64,
    },
}

impl Rec {
    fn ts(&self) -> u64 {
        match self {
            Rec::Begin { ts, .. }
            | Rec::End { ts, .. }
            | Rec::Abort { ts, .. }
            | Rec::Tune { ts, .. }
            | Rec::Other { ts, .. } => *ts,
        }
    }

    fn tid(&self) -> u32 {
        match self {
            Rec::Begin { tid, .. }
            | Rec::End { tid, .. }
            | Rec::Abort { tid, .. }
            | Rec::Tune { tid, .. }
            | Rec::Other { tid, .. } => *tid,
        }
    }
}

/// Analyzes a JSONL capture with the given knobs.
///
/// # Errors
///
/// Returns a description of the first malformed line: one that names an
/// `ev` but lacks the fields that event requires. Lines without an `ev`
/// field (postmortem run-metadata headers) are skipped.
pub fn analyze_with(text: &str, cfg: &AnalyzeConfig) -> Result<Report, String> {
    let mut recs: Vec<Rec> = Vec::new();
    let mut rates: BTreeMap<u32, u64> = BTreeMap::new();
    let mut report = Report::default();
    let mut tids: Vec<u32> = Vec::new();

    for (n, line) in text.lines().enumerate() {
        let bad = |what: &str| format!("line {}: {}", n + 1, what);
        let Some(ev) = json_str(line, "ev") else {
            continue; // run-metadata header (postmortems) — no "ev" field
        };
        let tid = json_u64(line, "tid").ok_or_else(|| bad("event without tid"))? as u32;
        if ev == "trace-meta" {
            report.dropped += json_u64(line, "dropped").unwrap_or(0);
            if let Some(rate) = json_u64(line, "sample_rate") {
                rates.insert(tid, rate.max(1));
                let s = report.sampling.get_or_insert_with(SamplingSummary::default);
                s.sampled_threads += 1;
                s.max_rate = s.max_rate.max(rate);
                s.sections_seen += json_u64(line, "sections_seen").unwrap_or(0);
                s.sections_sampled += json_u64(line, "sections_sampled").unwrap_or(0);
                s.unsampled += json_u64(line, "unsampled").unwrap_or(0);
            }
            continue;
        }
        let ts = json_u64(line, "ts").ok_or_else(|| bad("event without ts"))?;
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        report.events += 1;
        let rec = match ev {
            "section-begin" => Rec::Begin {
                tid,
                ts,
                sec: json_u64(line, "sec").ok_or_else(|| bad("section-begin without sec"))? as u32,
                writer: json_str(line, "role") == Some("writer"),
            },
            "section-end" => Rec::End {
                tid,
                ts,
                sec: json_u64(line, "sec").ok_or_else(|| bad("section-end without sec"))? as u32,
                writer: json_str(line, "role") == Some("writer"),
                mode: json_str(line, "mode").unwrap_or("?").to_string(),
                latency: json_u64(line, "latency_ns").unwrap_or(0),
            },
            "tx-abort" => Rec::Abort {
                tid,
                ts,
                cause: json_str(line, "cause").unwrap_or("?").to_string(),
                line: json_u64(line, "line"),
                peer: json_u64(line, "peer").map(|p| p as u32),
            },
            "tune-decision" => Rec::Tune {
                tid,
                ts,
                knob: json_str(line, "knob").unwrap_or("?").to_string(),
                sec: json_u64(line, "sec").unwrap_or(0) as u32,
                value: json_u64(line, "value").unwrap_or(0),
            },
            _ => Rec::Other { tid, ts },
        };
        recs.push(rec);
    }
    report.threads = tids.len() as u64;

    // Merge across threads: stable sort keeps the per-thread (causal)
    // order for equal timestamps, so same capture → same report.
    recs.sort_by_key(|r| r.ts());

    let rate = |tid: u32| rates.get(&tid).copied().unwrap_or(1);
    let mut open: BTreeMap<u32, (u32, bool)> = BTreeMap::new(); // tid → (sec, writer)
    let mut pairs: BTreeMap<(u32, u32), (u64, BTreeMap<String, u64>)> = BTreeMap::new();
    let mut lines: BTreeMap<u64, (u64, BTreeMap<u32, u64>)> = BTreeMap::new();

    let (min_ts, max_ts) = recs.iter().fold((u64::MAX, 0u64), |(lo, hi), r| {
        (lo.min(r.ts()), hi.max(r.ts()))
    });
    let buckets = cfg.timeline_buckets.max(1);
    let span = max_ts.saturating_sub(min_ts);
    let bucket_ns = (span / buckets as u64).max(1);
    let mut tl = Timeline {
        start_ts: if recs.is_empty() { 0 } else { min_ts },
        bucket_ns: if recs.is_empty() { 0 } else { bucket_ns },
        reader_begins: vec![0; buckets],
        writer_begins: vec![0; buckets],
        reader_caused_aborts: vec![0; buckets],
        conflict_aborts: vec![0; buckets],
        capacity_aborts: vec![0; buckets],
    };
    let bucket_of = |ts: u64| (((ts - min_ts) / bucket_ns) as usize).min(buckets - 1);

    for r in &recs {
        let w = rate(r.tid());
        match r {
            Rec::Begin {
                tid,
                ts,
                sec,
                writer,
            } => {
                open.insert(*tid, (*sec, *writer));
                let arr = if *writer {
                    &mut tl.writer_begins
                } else {
                    &mut tl.reader_begins
                };
                arr[bucket_of(*ts)] += w;
            }
            Rec::End {
                tid,
                sec,
                writer,
                mode,
                latency,
                ..
            } => {
                open.remove(tid);
                let roll = report.sections.entry(*sec).or_default();
                if *writer {
                    roll.writer_execs += w;
                } else {
                    roll.reader_execs += w;
                }
                *roll.modes.entry(mode.clone()).or_default() += w;
                roll.latencies.push(*latency);
            }
            Rec::Abort {
                tid,
                ts,
                cause,
                line,
                peer,
            } => {
                if cause == "reader" {
                    tl.reader_caused_aborts[bucket_of(*ts)] += w;
                } else if cause.starts_with("conflict") {
                    tl.conflict_aborts[bucket_of(*ts)] += w;
                } else if cause.starts_with("capacity") {
                    tl.capacity_aborts[bucket_of(*ts)] += w;
                }
                let victim = open.get(tid).map(|&(sec, _)| sec);
                if let Some(vsec) = victim {
                    let roll = report.sections.entry(vsec).or_default();
                    *roll.aborts.entry(cause.clone()).or_default() += w;
                    // Peer attribution completes the section↔section pair.
                    if let Some(p) = peer {
                        if let Some(&(psec, _)) = open.get(p) {
                            let key = (vsec.min(psec), vsec.max(psec));
                            let e = pairs.entry(key).or_default();
                            e.0 += w;
                            *e.1.entry(cause.clone()).or_default() += w;
                        }
                    }
                }
                if let Some(l) = line {
                    let e = lines.entry(*l).or_default();
                    e.0 += w;
                    if let Some(p) = peer {
                        *e.1.entry(*p).or_default() += w;
                    }
                }
            }
            Rec::Tune {
                tid,
                ts,
                knob,
                sec,
                value,
            } => {
                report
                    .tune_decisions
                    .push((*ts, *tid, knob.clone(), *sec, *value));
            }
            Rec::Other { .. } => {}
        }
    }

    for roll in report.sections.values_mut() {
        roll.latencies.sort_unstable();
    }

    // Top-K, ties broken by key so equal-count entries order stably.
    let mut top_pairs: Vec<PairEntry> = pairs
        .into_iter()
        .map(|((a, b), (count, causes))| PairEntry {
            a,
            b,
            count,
            causes,
        })
        .collect();
    top_pairs.sort_by(|x, y| y.count.cmp(&x.count).then((x.a, x.b).cmp(&(y.a, y.b))));
    top_pairs.truncate(cfg.top_k);
    report.top_pairs = top_pairs;

    let mut line_heat: Vec<LineEntry> = lines
        .into_iter()
        .map(|(line, (count, peers))| LineEntry { line, count, peers })
        .collect();
    line_heat.sort_by(|x, y| y.count.cmp(&x.count).then(x.line.cmp(&y.line)));
    line_heat.truncate(cfg.top_k);
    report.line_heat = line_heat;

    report.timeline = tl;
    Ok(report)
}

/// [`analyze_with`] under the default knobs.
pub fn analyze(text: &str) -> Result<Report, String> {
    analyze_with(text, &AnalyzeConfig::default())
}

fn push_count_map<K: std::fmt::Display>(out: &mut String, map: &BTreeMap<K, u64>) {
    use std::fmt::Write;
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", k, v);
    }
    out.push('}');
}

fn push_u64_array(out: &mut String, vals: &[u64]) {
    use std::fmt::Write;
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", v);
    }
    out.push(']');
}

impl Report {
    /// Serializes the report as one pretty-enough JSON document (stable
    /// field and entry order, so equal reports render byte-identically).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": 1,");
        let _ = writeln!(s, "  \"events\": {},", self.events);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"dropped\": {},", self.dropped);
        match &self.sampling {
            Some(m) => {
                let _ = writeln!(
                    s,
                    "  \"sampling\": {{\"sampled_threads\":{},\"max_rate\":{},\"sections_seen\":{},\"sections_sampled\":{},\"unsampled\":{}}},",
                    m.sampled_threads, m.max_rate, m.sections_seen, m.sections_sampled, m.unsampled
                );
            }
            None => {
                let _ = writeln!(s, "  \"sampling\": null,");
            }
        }
        s.push_str("  \"sections\": [\n");
        for (i, (sec, r)) in self.sections.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"sec\":{},\"reader_execs\":{},\"writer_execs\":{},\"abort_rate\":{:.4},\"modes\":",
                sec,
                r.reader_execs,
                r.writer_execs,
                r.abort_rate()
            );
            push_count_map(&mut s, &r.modes);
            s.push_str(",\"aborts\":");
            push_count_map(&mut s, &r.aborts);
            let _ = write!(
                s,
                ",\"latency_ns\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"samples\":{}}}}}",
                r.latency_pct(50),
                r.latency_pct(95),
                r.latency_pct(99),
                r.latencies.len()
            );
            s.push_str(if i + 1 < self.sections.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"top_pairs\": [\n");
        for (i, p) in self.top_pairs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"a\":{},\"b\":{},\"count\":{},\"causes\":",
                p.a, p.b, p.count
            );
            push_count_map(&mut s, &p.causes);
            s.push('}');
            s.push_str(if i + 1 < self.top_pairs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"line_heat\": [\n");
        for (i, l) in self.line_heat.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"line\":{},\"count\":{},\"peers\":",
                l.line, l.count
            );
            push_count_map(&mut s, &l.peers);
            s.push('}');
            s.push_str(if i + 1 < self.line_heat.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        let _ = write!(
            s,
            "  \"timeline\": {{\"start_ts\":{},\"bucket_ns\":{},\"reader_begins\":",
            self.timeline.start_ts, self.timeline.bucket_ns
        );
        push_u64_array(&mut s, &self.timeline.reader_begins);
        s.push_str(",\"writer_begins\":");
        push_u64_array(&mut s, &self.timeline.writer_begins);
        s.push_str(",\"reader_caused_aborts\":");
        push_u64_array(&mut s, &self.timeline.reader_caused_aborts);
        s.push_str(",\"conflict_aborts\":");
        push_u64_array(&mut s, &self.timeline.conflict_aborts);
        s.push_str(",\"capacity_aborts\":");
        push_u64_array(&mut s, &self.timeline.capacity_aborts);
        s.push_str("},\n");
        s.push_str("  \"tune_decisions\": [\n");
        for (i, (ts, tid, knob, sec, value)) in self.tune_decisions.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"ts\":{},\"tid\":{},\"knob\":\"{}\",\"sec\":{},\"value\":{}}}",
                ts, tid, knob, sec, value
            );
            s.push_str(if i + 1 < self.tune_decisions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{export, Event, EventKind, ThreadTrace, TraceRole};

    fn ev(ts: u64, kind: EventKind) -> Event {
        Event { ts, kind }
    }

    /// Two writers fighting over section 0/1 on line 42, one quiet reader.
    fn capture() -> String {
        let t0 = ThreadTrace::full(
            0,
            vec![
                ev(
                    10,
                    EventKind::SectionBegin {
                        role: TraceRole::Writer,
                        sec: 0,
                    },
                ),
                ev(
                    30,
                    EventKind::TxAbort {
                        cause: "conflict",
                        line: 42,
                        peer: 1,
                    },
                ),
                ev(
                    60,
                    EventKind::SectionEnd {
                        role: TraceRole::Writer,
                        sec: 0,
                        mode: "HTM",
                        latency_ns: 50,
                    },
                ),
            ],
            0,
        );
        let t1 = ThreadTrace::full(
            1,
            vec![
                ev(
                    5,
                    EventKind::SectionBegin {
                        role: TraceRole::Writer,
                        sec: 1,
                    },
                ),
                ev(
                    40,
                    EventKind::TxAbort {
                        cause: "reader",
                        line: crate::NO_LINE,
                        peer: crate::NO_PEER,
                    },
                ),
                ev(
                    70,
                    EventKind::SectionEnd {
                        role: TraceRole::Writer,
                        sec: 1,
                        mode: "GL",
                        latency_ns: 65,
                    },
                ),
            ],
            0,
        );
        let t2 = ThreadTrace::full(
            2,
            vec![
                ev(
                    20,
                    EventKind::SectionBegin {
                        role: TraceRole::Reader,
                        sec: 0,
                    },
                ),
                ev(
                    25,
                    EventKind::SectionEnd {
                        role: TraceRole::Reader,
                        sec: 0,
                        mode: "Unins",
                        latency_ns: 5,
                    },
                ),
            ],
            0,
        );
        export::jsonl(&[t0, t1, t2])
    }

    #[test]
    fn attributes_pairs_lines_and_rollups() {
        let r = analyze(&capture()).unwrap();
        assert!(r.has_sections());
        assert_eq!(r.threads, 3);
        assert_eq!(r.events, 8);
        // The conflict abort on tid 0 (open: sec 0) names peer 1 (open:
        // sec 1) → pair (0, 1).
        assert_eq!(r.top_pairs.len(), 1);
        assert_eq!((r.top_pairs[0].a, r.top_pairs[0].b), (0, 1));
        assert_eq!(r.top_pairs[0].count, 1);
        assert_eq!(r.top_pairs[0].causes.get("conflict"), Some(&1));
        // Line heat: line 42 hammered by peer 1.
        assert_eq!(r.line_heat.len(), 1);
        assert_eq!(r.line_heat[0].line, 42);
        assert_eq!(r.line_heat[0].peers.get(&1), Some(&1));
        // Rollups: sec 0 ran a writer and a reader; sec 1 took the
        // reader-caused abort.
        let s0 = &r.sections[&0];
        assert_eq!((s0.reader_execs, s0.writer_execs), (1, 1));
        assert_eq!(s0.modes.get("HTM"), Some(&1));
        assert_eq!(s0.modes.get("Unins"), Some(&1));
        assert_eq!(s0.aborts.get("conflict"), Some(&1));
        let s1 = &r.sections[&1];
        assert_eq!(s1.aborts.get("reader"), Some(&1));
        assert!((s1.abort_rate() - 1.0).abs() < 1e-9);
        // Timeline: one reader begin, two writer begins, one of each abort.
        assert_eq!(r.timeline.reader_begins.iter().sum::<u64>(), 1);
        assert_eq!(r.timeline.writer_begins.iter().sum::<u64>(), 2);
        assert_eq!(r.timeline.reader_caused_aborts.iter().sum::<u64>(), 1);
        assert_eq!(r.timeline.conflict_aborts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn sampled_captures_rescale_counts() {
        // Same capture, but tid 0 recorded at 1-in-8: its counts weigh 8x.
        let mut text = String::from(
            "{\"tid\":0,\"ev\":\"trace-meta\",\"dropped\":0,\"sample_rate\":8,\"sections_seen\":80,\"sections_sampled\":10,\"unsampled\":300}\n",
        );
        text.push_str(&capture());
        let r = analyze(&text).unwrap();
        let m = r.sampling.as_ref().expect("sampling meta surfaced");
        assert_eq!((m.sampled_threads, m.max_rate), (1, 8));
        assert_eq!(m.unsampled, 300);
        // tid 0's writer exec on sec 0 now estimates 8 executions; the
        // unsampled reader exec still counts 1.
        let s0 = &r.sections[&0];
        assert_eq!((s0.reader_execs, s0.writer_execs), (1, 8));
        assert_eq!(r.top_pairs[0].count, 8);
        assert_eq!(r.line_heat[0].count, 8);
    }

    #[test]
    fn report_is_deterministic_and_json_parses_shape() {
        let a = analyze(&capture()).unwrap();
        let b = analyze(&capture()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let j = a.to_json();
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"top_pairs\""));
        assert!(j.contains("\"line_heat\""));
        assert!(j.contains("\"timeline\""));
        assert!(j.contains("\"tune_decisions\""));
    }

    #[test]
    fn vacuous_capture_has_no_sections() {
        // Marks only — parses fine, but nothing lifecycle-shaped.
        let text = "{\"tid\":0,\"ts\":1,\"ev\":\"torture-op\",\"a\":1,\"b\":2}\n";
        let r = analyze(text).unwrap();
        assert!(!r.has_sections());
        assert_eq!(r.events, 1);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(analyze("{\"ts\":1,\"ev\":\"tx-abort\"}\n").is_err());
        assert!(analyze("{\"tid\":1,\"ev\":\"tx-abort\"}\n").is_err());
        // Headers without "ev" are metadata, not errors.
        assert!(analyze("{\"case\":\"demo\"}\n").unwrap().events == 0);
    }

    #[test]
    fn tune_decisions_are_surfaced() {
        let t = ThreadTrace::full(
            0,
            vec![
                ev(
                    10,
                    EventKind::SectionBegin {
                        role: TraceRole::Writer,
                        sec: 2,
                    },
                ),
                ev(
                    20,
                    EventKind::SectionEnd {
                        role: TraceRole::Writer,
                        sec: 2,
                        mode: "HTM",
                        latency_ns: 10,
                    },
                ),
                ev(
                    21,
                    EventKind::TuneDecision {
                        knob: "delta-boost",
                        sec: 2,
                        value: 800,
                    },
                ),
            ],
            0,
        );
        let r = analyze(&export::jsonl(&[t])).unwrap();
        assert_eq!(r.tune_decisions.len(), 1);
        assert_eq!(r.tune_decisions[0].2, "delta-boost");
        assert_eq!(r.tune_decisions[0].4, 800);
    }
}
