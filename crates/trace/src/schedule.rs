//! Decision-trace (schedule) serialization and behaviour fingerprints.
//!
//! The deterministic scheduler records every branch point of a run — who
//! ran, out of whom — as a decision trace. This module gives that trace a
//! stable on-disk form so a violating schedule found by the explorer can
//! be handed back to `DetScheduler` for bit-exact reproduction
//! (`torture explore --replay-schedule <file>`), plus the *behaviour
//! fingerprint* the explorer deduplicates candidate schedules by.
//!
//! # File format
//!
//! A schedule file is line-oriented UTF-8:
//!
//! ```text
//! # sprwl-schedule v1 participants=2
//! # case=explore-injected-reader-bug
//! # base_seed=0x1f2e3d
//! 0 1 1 0 1 ...
//! ```
//!
//! Header lines start with `#`; the first must be the magic line carrying
//! the participant count. Remaining `# key=value` lines are free-form
//! metadata (values may contain anything but newlines, which are escaped).
//! Non-comment lines hold the chosen tids, one per branch point,
//! whitespace-separated across any number of lines. The format is
//! hand-rolled because the workspace is offline (no serde) — and a
//! schedule is just a list of small integers anyway.

use std::fmt::Write as _;

use crate::{EventKind, ThreadTrace};

/// Magic first-line prefix of a schedule file.
const MAGIC: &str = "# sprwl-schedule v1 participants=";

/// A serialized decision trace: enough to re-run one deterministic
/// schedule exactly, plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Thread count the schedule was recorded against (replay must match).
    pub participants: u32,
    /// Provenance: case name, seeds, violation detail, trace hash…
    /// ordered `(key, value)` pairs, written as `# key=value` lines.
    pub meta: Vec<(String, String)>,
    /// The chosen tid at each branch point, in order.
    pub decisions: Vec<u32>,
}

impl ScheduleTrace {
    /// An empty schedule for `participants` threads.
    pub fn new(participants: u32) -> Self {
        Self {
            participants,
            meta: Vec::new(),
            decisions: Vec::new(),
        }
    }

    /// First metadata value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Appends a metadata pair (later pairs do not overwrite earlier ones;
    /// `get` returns the first).
    pub fn set(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Renders the schedule file.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}{}", self.participants);
        for (k, v) in &self.meta {
            let _ = writeln!(out, "# {k}={}", escape(v));
        }
        for (i, d) in self.decisions.iter().enumerate() {
            let sep = if i % 16 == 15 { '\n' } else { ' ' };
            let _ = write!(out, "{d}{sep}");
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }

    /// Parses a schedule file.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let first = lines.next().ok_or("empty schedule file")?;
        let participants: u32 = first
            .strip_prefix(MAGIC)
            .ok_or_else(|| format!("bad magic line: {first:?}"))?
            .trim()
            .parse()
            .map_err(|e| format!("bad participant count: {e}"))?;
        let mut st = Self::new(participants);
        for line in lines {
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim_start();
                if let Some((k, v)) = rest.split_once('=') {
                    st.meta.push((k.to_string(), unescape(v)));
                }
                continue;
            }
            for tok in line.split_whitespace() {
                let tid: u32 = tok
                    .parse()
                    .map_err(|e| format!("bad decision {tok:?}: {e}"))?;
                if tid >= participants {
                    return Err(format!(
                        "decision tid {tid} out of range for {participants} participants"
                    ));
                }
                st.decisions.push(tid);
            }
        }
        Ok(st)
    }
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// 64-bit FNV-1a over a stream of words.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one 64-bit word in, byte by byte.
    pub fn push(&mut self, word: u64) {
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds a string in.
    pub fn push_str(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        self.push(0x5eed); // length-extension guard between fields
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes *what happened* in a run, ignoring *when*: per-thread event
/// kinds and their semantically meaningful payloads, with every
/// virtual-clock-derived field (timestamps, latencies, deadlines, δ start
/// instants) normalized away.
///
/// This is the explorer's dedup key. Raw trace bytes would make every
/// schedule look unique — two interleavings that differ only in where the
/// virtual clock paused produce different timestamps but the same lock
/// behaviour — while the decision trace alone can't tell whether a
/// *different* schedule caused *different* behaviour. Two runs with equal
/// fingerprints executed the same sections in the same per-thread order
/// with the same commit modes, aborts, conflict attributions, and marker
/// payloads.
pub fn behavior_fingerprint(traces: &[ThreadTrace]) -> u64 {
    let mut fp = Fingerprint::new();
    for t in traces {
        fp.push(u64::from(t.tid));
        fp.push(t.events.len() as u64);
        for e in &t.events {
            fp.push_str(e.kind.name());
            match &e.kind {
                EventKind::SectionBegin { role, sec } => {
                    fp.push_str(role.label());
                    fp.push(u64::from(*sec));
                }
                EventKind::SectionEnd {
                    role,
                    sec,
                    mode,
                    latency_ns: _,
                } => {
                    fp.push_str(role.label());
                    fp.push(u64::from(*sec));
                    fp.push_str(mode);
                }
                EventKind::TxAttempt { role, attempt } => {
                    fp.push_str(role.label());
                    fp.push(u64::from(*attempt));
                }
                EventKind::TxCommit {
                    mode,
                    read_fp,
                    write_fp,
                } => {
                    fp.push_str(mode);
                    fp.push(u64::from(*read_fp));
                    fp.push(u64::from(*write_fp));
                }
                EventKind::TxAbort { cause, line, peer } => {
                    fp.push_str(cause);
                    fp.push(*line);
                    fp.push(u64::from(*peer));
                }
                EventKind::SchedJoinWaiter { target } => fp.push(u64::from(*target)),
                EventKind::SchedWaitWriter {
                    writer,
                    deadline: _,
                } => fp.push(u64::from(*writer)),
                EventKind::SchedDeltaStart { start_at: _ } => {}
                EventKind::FallbackAcquire { version } => fp.push(*version),
                EventKind::SglBypassEnter { registered } => fp.push(*registered),
                EventKind::SglWaitSenior { my_version } => fp.push(*my_version),
                EventKind::TuneDecision { knob, sec, value } => {
                    fp.push_str(knob);
                    fp.push(u64::from(*sec));
                    fp.push(*value);
                }
                EventKind::Mark { label: _, a, b } => {
                    fp.push(*a);
                    fp.push(*b);
                }
                EventKind::BiasRevoke { occupied, scanned } => {
                    fp.push(*occupied);
                    fp.push(*scanned);
                }
                EventKind::SlotAcquire { slot } | EventKind::SlotRelease { slot } => {
                    fp.push(u64::from(*slot));
                }
                EventKind::StretchRot { attempt } => fp.push(u64::from(*attempt)),
                EventKind::StretchSplit { chunks } => fp.push(u64::from(*chunks)),
                EventKind::StretchChunk { index, lines } => {
                    fp.push(u64::from(*index));
                    fp.push(u64::from(*lines));
                }
                EventKind::ReaderArrive
                | EventKind::ReaderDepart
                | EventKind::FallbackRelease
                | EventKind::BiasRearm => {}
            }
        }
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, TraceRole};

    fn sched() -> ScheduleTrace {
        let mut s = ScheduleTrace::new(3);
        s.set("case", "unit-case");
        s.set("detail", "line one\nline two = with equals");
        s.decisions = (0..40).map(|i| i % 3).collect();
        s
    }

    #[test]
    fn schedule_round_trips_through_text() {
        let s = sched();
        let text = s.to_text();
        let back = ScheduleTrace::from_text(&text).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.get("case"), Some("unit-case"));
        assert_eq!(back.get("detail"), Some("line one\nline two = with equals"));
    }

    #[test]
    fn bad_magic_and_out_of_range_tids_are_rejected() {
        assert!(ScheduleTrace::from_text("").is_err());
        assert!(ScheduleTrace::from_text("not a schedule\n").is_err());
        let err =
            ScheduleTrace::from_text("# sprwl-schedule v1 participants=2\n0 1 2\n").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    fn ev(ts: u64, kind: EventKind) -> Event {
        Event { ts, kind }
    }

    #[test]
    fn fingerprint_ignores_time_but_not_behaviour() {
        let base = vec![ThreadTrace::full(
            0,
            vec![
                ev(
                    10,
                    EventKind::SectionBegin {
                        role: TraceRole::Reader,
                        sec: 1,
                    },
                ),
                ev(
                    20,
                    EventKind::SectionEnd {
                        role: TraceRole::Reader,
                        sec: 1,
                        mode: "Unins",
                        latency_ns: 999,
                    },
                ),
            ],
            0,
        )];
        let mut shifted = base.clone();
        shifted[0].events[0].ts = 500;
        shifted[0].events[1].ts = 700;
        if let EventKind::SectionEnd { latency_ns, .. } = &mut shifted[0].events[1].kind {
            *latency_ns = 123_456;
        }
        assert_eq!(
            behavior_fingerprint(&base),
            behavior_fingerprint(&shifted),
            "timestamps and latencies are normalized away"
        );
        let mut other_mode = base.clone();
        if let EventKind::SectionEnd { mode, .. } = &mut other_mode[0].events[1].kind {
            *mode = "GL";
        }
        assert_ne!(
            behavior_fingerprint(&base),
            behavior_fingerprint(&other_mode),
            "a different commit mode is different behaviour"
        );
    }

    #[test]
    fn fingerprint_distinguishes_threads_and_marks() {
        let a = vec![ThreadTrace::full(
            0,
            vec![ev(
                1,
                EventKind::Mark {
                    label: "op",
                    a: 7,
                    b: 9,
                },
            )],
            0,
        )];
        let mut b = a.clone();
        b[0].tid = 1;
        assert_ne!(behavior_fingerprint(&a), behavior_fingerprint(&b));
        let mut c = a.clone();
        if let EventKind::Mark { a: pa, .. } = &mut c[0].events[0].kind {
            *pa = 8;
        }
        assert_ne!(behavior_fingerprint(&a), behavior_fingerprint(&c));
    }
}
