//! Trace exporters: JSONL (grep-friendly) and Chrome trace-event JSON
//! (Perfetto-loadable).
//!
//! Both formats are written by hand — every payload field is a primitive
//! or a `&'static str` label chosen by this workspace, so no escaping or
//! serialization framework is needed (and none is available offline).
//!
//! The Chrome exporter follows the [trace-event format]: `"B"`/`"E"` pairs
//! turn sections and speculative attempts into nested slices on one track
//! per thread, scheduler decisions and reader arrival/departure become
//! `"i"` instants, and each conflict abort opens a `"s"` flow arrow that
//! lands (`"f"`) on the same thread's next commit so retry chains are
//! visible at a glance. Open the file at <https://ui.perfetto.dev>.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{Event, EventKind, ThreadTrace, NO_LINE, NO_PEER};

/// The `pid` all tracks share (one simulated process).
const PID: u32 = 1;

fn push_kind_fields(out: &mut String, kind: &EventKind) {
    use std::fmt::Write;
    match kind {
        EventKind::SectionBegin { role, sec } => {
            let _ = write!(out, r#""role":"{}","sec":{}"#, role.label(), sec);
        }
        EventKind::SectionEnd {
            role,
            sec,
            mode,
            latency_ns,
        } => {
            let _ = write!(
                out,
                r#""role":"{}","sec":{},"mode":"{}","latency_ns":{}"#,
                role.label(),
                sec,
                mode,
                latency_ns
            );
        }
        EventKind::TxAttempt { role, attempt } => {
            let _ = write!(out, r#""role":"{}","attempt":{}"#, role.label(), attempt);
        }
        EventKind::TxCommit {
            mode,
            read_fp,
            write_fp,
        } => {
            let _ = write!(
                out,
                r#""mode":"{}","read_fp":{},"write_fp":{}"#,
                mode, read_fp, write_fp
            );
        }
        EventKind::TxAbort { cause, line, peer } => {
            let _ = write!(out, r#""cause":"{}""#, cause);
            if *line != NO_LINE {
                let _ = write!(out, r#","line":{}"#, line);
            }
            if *peer != NO_PEER {
                let _ = write!(out, r#","peer":{}"#, peer);
            }
        }
        EventKind::ReaderArrive | EventKind::ReaderDepart | EventKind::FallbackRelease => {}
        EventKind::SchedJoinWaiter { target } => {
            let _ = write!(out, r#""target":{}"#, target);
        }
        EventKind::SchedWaitWriter { writer, deadline } => {
            let _ = write!(out, r#""writer":{},"deadline":{}"#, writer, deadline);
        }
        EventKind::SchedDeltaStart { start_at } => {
            let _ = write!(out, r#""start_at":{}"#, start_at);
        }
        EventKind::FallbackAcquire { version } => {
            let _ = write!(out, r#""version":{}"#, version);
        }
        EventKind::SglBypassEnter { registered } => {
            let _ = write!(out, r#""registered":{}"#, registered);
        }
        EventKind::SglWaitSenior { my_version } => {
            let _ = write!(out, r#""my_version":{}"#, my_version);
        }
        EventKind::TuneDecision { knob, sec, value } => {
            let _ = write!(out, r#""knob":"{}","sec":{},"value":{}"#, knob, sec, value);
        }
        EventKind::BiasRevoke { occupied, scanned } => {
            let _ = write!(out, r#""occupied":{},"scanned":{}"#, occupied, scanned);
        }
        EventKind::BiasRearm => {}
        EventKind::StretchRot { attempt } => {
            let _ = write!(out, r#""attempt":{}"#, attempt);
        }
        EventKind::StretchSplit { chunks } => {
            let _ = write!(out, r#""chunks":{}"#, chunks);
        }
        EventKind::StretchChunk { index, lines } => {
            let _ = write!(out, r#""index":{},"lines":{}"#, index, lines);
        }
        EventKind::SlotAcquire { slot } | EventKind::SlotRelease { slot } => {
            let _ = write!(out, r#""slot":{}"#, slot);
        }
        EventKind::Mark { label: _, a, b } => {
            let _ = write!(out, r#""a":{},"b":{}"#, a, b);
        }
    }
}

/// Renders traces as JSON Lines: one `{"tid":..,"ts":..,"ev":..,...}`
/// object per line, in per-thread chronological order. Threads with
/// dropped (ring-overwritten) events, or harvested from a sampled buffer,
/// get a leading `trace-meta` line carrying the counters an analyzer
/// needs to rescale or distrust the capture.
pub fn jsonl(traces: &[ThreadTrace]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for t in traces {
        if t.dropped > 0 || t.sampling.is_some() {
            let _ = write!(
                out,
                r#"{{"tid":{},"ev":"trace-meta","dropped":{}"#,
                t.tid, t.dropped
            );
            if let Some(s) = &t.sampling {
                let _ = write!(
                    out,
                    r#","sample_rate":{},"sections_seen":{},"sections_sampled":{},"unsampled":{}"#,
                    s.rate, s.sections_seen, s.sections_sampled, s.unsampled
                );
            }
            out.push_str("}\n");
        }
        for e in &t.events {
            let _ = write!(
                out,
                r#"{{"tid":{},"ts":{},"ev":"{}""#,
                t.tid,
                e.ts,
                e.kind.name()
            );
            let mut fields = String::new();
            push_kind_fields(&mut fields, &e.kind);
            if !fields.is_empty() {
                out.push(',');
                out.push_str(&fields);
            }
            out.push_str("}\n");
        }
    }
    out
}

/// Microseconds with nanosecond precision, as the trace-event format's
/// `ts` field expects.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn chrome_event(
    out: &mut String,
    first: &mut bool,
    ph: char,
    name: &str,
    tid: u32,
    ts: u64,
    extra: &str,
) {
    use std::fmt::Write;
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        r#"{{"name":"{}","ph":"{}","pid":{},"tid":{},"ts":{}{}}}"#,
        name,
        ph,
        PID,
        tid,
        ts_us(ts),
        extra
    );
}

fn args_json(kind: &EventKind) -> String {
    let mut fields = String::new();
    push_kind_fields(&mut fields, kind);
    if fields.is_empty() {
        String::new()
    } else {
        format!(r#","args":{{{}}}"#, fields)
    }
}

/// Which commit events (by per-thread event index) terminate a flow arrow
/// opened by an earlier conflict abort. Pre-scanned so no `"s"` flow event
/// is ever emitted without its matching `"f"` — Perfetto rejects dangling
/// flows.
fn flow_targets(events: &[Event]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut open_abort: Option<usize> = None;
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::TxAbort {
                cause: "conflict", ..
            } => open_abort = Some(i),
            EventKind::TxCommit { .. } => {
                if let Some(a) = open_abort.take() {
                    pairs.push((a, i));
                }
            }
            _ => {}
        }
    }
    pairs
}

/// Renders traces as a Chrome trace-event JSON document: one track per
/// thread, nested `section`/`attempt` slices, instant markers for
/// scheduler decisions, and abort→commit flow arrows. Load the result in
/// Perfetto or `chrome://tracing`.
pub fn chrome_trace_json(traces: &[ThreadTrace]) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    for t in traces {
        // Track metadata: name each tid's track.
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            r#"{{"name":"thread_name","ph":"M","pid":{},"tid":{},"args":{{"name":"thread {}"}}}}"#,
            PID, t.tid, t.tid
        );
        // Sampled tracks carry their rescaling metadata as a second "M"
        // record; viewers that don't know the name simply ignore it.
        if let Some(s) = &t.sampling {
            out.push_str(",\n");
            let _ = write!(
                out,
                r#"{{"name":"sampling","ph":"M","pid":{},"tid":{},"args":{{"rate":{},"sections_seen":{},"sections_sampled":{},"unsampled":{}}}}}"#,
                PID, t.tid, s.rate, s.sections_seen, s.sections_sampled, s.unsampled
            );
        }
        let flows = flow_targets(&t.events);
        let flow_id = |i: usize| -> Option<usize> {
            flows
                .iter()
                .position(|&(a, c)| a == i || c == i)
                .map(|p| p + 1 + (t.tid as usize) * 100_000)
        };
        // Slice stack depth so we never emit an unmatched "E".
        let mut depth: u32 = 0;
        let mut last_ts: u64 = 0;
        for (i, e) in t.events.iter().enumerate() {
            last_ts = e.ts;
            match e.kind {
                EventKind::SectionBegin { role, .. } => {
                    chrome_event(
                        &mut out,
                        &mut first,
                        'B',
                        &format!("{}-section", role.label()),
                        t.tid,
                        e.ts,
                        &args_json(&e.kind),
                    );
                    depth += 1;
                }
                EventKind::TxAttempt { .. } => {
                    chrome_event(
                        &mut out,
                        &mut first,
                        'B',
                        "attempt",
                        t.tid,
                        e.ts,
                        &args_json(&e.kind),
                    );
                    depth += 1;
                }
                EventKind::TxCommit { .. } | EventKind::TxAbort { .. } => {
                    let name = if matches!(e.kind, EventKind::TxCommit { .. }) {
                        "attempt"
                    } else {
                        "attempt(abort)"
                    };
                    if depth > 0 {
                        chrome_event(
                            &mut out,
                            &mut first,
                            'E',
                            name,
                            t.tid,
                            e.ts,
                            &args_json(&e.kind),
                        );
                        depth -= 1;
                    } else {
                        // Ring overwrite ate the matching "B": degrade to an
                        // instant rather than corrupt the slice stack.
                        chrome_event(
                            &mut out,
                            &mut first,
                            'i',
                            e.kind.name(),
                            t.tid,
                            e.ts,
                            &format!(r#","s":"t"{}"#, args_json(&e.kind)),
                        );
                    }
                    if let Some(id) = flow_id(i) {
                        let ph = if matches!(e.kind, EventKind::TxAbort { .. }) {
                            'B'
                        } else {
                            'E'
                        };
                        // Flow arrows: "s" at the abort, "f" (binding to the
                        // enclosing slice end) at the retry's commit.
                        let (fph, bp) = if ph == 'B' {
                            ('s', "")
                        } else {
                            ('f', r#","bp":"e""#)
                        };
                        if !first {
                            out.push_str(",\n");
                        }
                        first = false;
                        let _ = write!(
                            out,
                            r#"{{"name":"retry","ph":"{}","id":{},"pid":{},"tid":{},"ts":{}{}}}"#,
                            fph,
                            id,
                            PID,
                            t.tid,
                            ts_us(e.ts),
                            bp
                        );
                    }
                }
                EventKind::SectionEnd { .. } if depth > 0 => {
                    chrome_event(
                        &mut out,
                        &mut first,
                        'E',
                        "section",
                        t.tid,
                        e.ts,
                        &args_json(&e.kind),
                    );
                    depth -= 1;
                }
                // Orphan end (its begin was overwritten by the ring):
                // demote to an instant so B/E stay balanced.
                EventKind::SectionEnd { .. } => {
                    chrome_event(
                        &mut out,
                        &mut first,
                        'i',
                        e.kind.name(),
                        t.tid,
                        e.ts,
                        &format!(r#","s":"t"{}"#, args_json(&e.kind)),
                    );
                }
                _ => {
                    chrome_event(
                        &mut out,
                        &mut first,
                        'i',
                        e.kind.name(),
                        t.tid,
                        e.ts,
                        &format!(r#","s":"t"{}"#, args_json(&e.kind)),
                    );
                }
            }
        }
        // Close any slices left open (section in flight when the run
        // stopped, or attempt whose outcome fell outside the ring).
        while depth > 0 {
            chrome_event(&mut out, &mut first, 'E', "truncated", t.tid, last_ts, "");
            depth -= 1;
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`jsonl`] output to `path`.
pub fn write_jsonl_file(path: &std::path::Path, traces: &[ThreadTrace]) -> std::io::Result<()> {
    std::fs::write(path, jsonl(traces))
}

/// Writes [`chrome_trace_json`] output to `path`.
pub fn write_chrome_file(path: &std::path::Path, traces: &[ThreadTrace]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRole;

    fn ev(ts: u64, kind: EventKind) -> Event {
        Event { ts, kind }
    }

    fn sample() -> Vec<ThreadTrace> {
        vec![ThreadTrace::full(
            0,
            vec![
                ev(
                    100,
                    EventKind::SectionBegin {
                        role: TraceRole::Writer,
                        sec: 7,
                    },
                ),
                ev(
                    150,
                    EventKind::TxAttempt {
                        role: TraceRole::Writer,
                        attempt: 1,
                    },
                ),
                ev(
                    200,
                    EventKind::TxAbort {
                        cause: "conflict",
                        line: 42,
                        peer: 3,
                    },
                ),
                ev(
                    250,
                    EventKind::TxAttempt {
                        role: TraceRole::Writer,
                        attempt: 2,
                    },
                ),
                ev(
                    300,
                    EventKind::TxCommit {
                        mode: "HTM",
                        read_fp: 4,
                        write_fp: 2,
                    },
                ),
                ev(
                    320,
                    EventKind::SectionEnd {
                        role: TraceRole::Writer,
                        sec: 7,
                        mode: "HTM",
                        latency_ns: 220,
                    },
                ),
            ],
            0,
        )]
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let s = jsonl(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains(r#""ev":"section-begin""#));
        assert!(lines[2].contains(r#""cause":"conflict""#));
        assert!(lines[2].contains(r#""line":42"#));
        assert!(lines[2].contains(r#""peer":3"#));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn jsonl_omits_unattributed_conflicts() {
        let t = vec![ThreadTrace::full(
            1,
            vec![ev(
                5,
                EventKind::TxAbort {
                    cause: "capacity",
                    line: NO_LINE,
                    peer: NO_PEER,
                },
            )],
            0,
        )];
        let s = jsonl(&t);
        assert!(!s.contains("\"line\""));
        assert!(!s.contains("\"peer\""));
    }

    #[test]
    fn jsonl_reports_dropped() {
        let t = vec![ThreadTrace::full(
            2,
            vec![ev(1, EventKind::ReaderArrive)],
            9,
        )];
        let s = jsonl(&t);
        assert!(s.lines().next().unwrap().contains(r#""dropped":9"#));
    }

    #[test]
    fn jsonl_reports_sampling_meta() {
        let t = vec![ThreadTrace {
            tid: 3,
            dropped: 0,
            events: vec![ev(1, EventKind::ReaderArrive)],
            sampling: Some(crate::SampleMeta {
                rate: 16,
                sections_seen: 160,
                sections_sampled: 10,
                unsampled: 600,
            }),
        }];
        let s = jsonl(&t);
        let meta = s.lines().next().unwrap();
        assert!(meta.contains(r#""ev":"trace-meta""#));
        assert!(meta.contains(r#""sample_rate":16"#));
        assert!(meta.contains(r#""sections_seen":160"#));
        assert!(meta.contains(r#""sections_sampled":10"#));
        assert!(meta.contains(r#""unsampled":600"#));
        // The meta line parses as one JSON object per the JSONL contract.
        assert!(meta.starts_with('{') && meta.ends_with('}'));
        // And the chrome exporter carries the same counters as an M record.
        let c = chrome_trace_json(&t);
        assert!(c.contains(r#""name":"sampling","ph":"M""#));
        assert!(c.contains(r#""rate":16"#));
    }

    #[test]
    fn jsonl_tune_decision_fields() {
        let t = vec![ThreadTrace::full(
            0,
            vec![ev(
                7,
                EventKind::TuneDecision {
                    knob: "delta-boost",
                    sec: 3,
                    value: 1500,
                },
            )],
            0,
        )];
        let s = jsonl(&t);
        assert!(s.contains(r#""ev":"tune-decision""#));
        assert!(s.contains(r#""knob":"delta-boost""#));
        assert!(s.contains(r#""sec":3"#));
        assert!(s.contains(r#""value":1500"#));
    }

    #[test]
    fn chrome_slices_balance_and_flows_pair() {
        let s = chrome_trace_json(&sample());
        let b = s.matches(r#""ph":"B""#).count();
        let e = s.matches(r#""ph":"E""#).count();
        assert_eq!(b, e, "every B has a matching E:\n{}", s);
        assert_eq!(s.matches(r#""ph":"s""#).count(), 1);
        assert_eq!(s.matches(r#""ph":"f""#).count(), 1);
        assert!(s.contains(r#""displayTimeUnit":"ns""#));
        assert!(s.contains(r#""name":"thread_name""#));
    }

    #[test]
    fn chrome_truncated_ring_still_balances() {
        // Ring overwrite ate the SectionBegin/TxAttempt: the orphan commit
        // must not emit an unmatched "E".
        let t = vec![ThreadTrace::full(
            0,
            vec![
                ev(
                    10,
                    EventKind::TxCommit {
                        mode: "HTM",
                        read_fp: 1,
                        write_fp: 1,
                    },
                ),
                ev(
                    20,
                    EventKind::SectionBegin {
                        role: TraceRole::Reader,
                        sec: 0,
                    },
                ),
            ],
            3,
        )];
        let s = chrome_trace_json(&t);
        let b = s.matches(r#""ph":"B""#).count();
        let e = s.matches(r#""ph":"E""#).count();
        assert_eq!(b, e, "trailing open slice closed, orphan E demoted:\n{}", s);
    }

    #[test]
    fn ts_is_microseconds() {
        assert_eq!(ts_us(1_234_567), "1234.567");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_000), "1.000");
    }
}
