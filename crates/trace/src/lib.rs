//! # sprwl-trace — lock-lifecycle event tracing
//!
//! The paper's evaluation (Figs. 3–7) explains SpRWL's behaviour by
//! *decomposing* it: commit-mode stacks, abort-cause breakdowns, per-role
//! latency. Aggregated counters ([`sprwl_locks::SessionStats`]-style) can
//! say *how often* a writer aborted; they cannot say *which cache line*
//! conflicted, *which scheduler decision* fired, or *in what order*. This
//! crate records the full critical-section lifecycle as a stream of
//! timestamped events so a misbehaving run can be replayed decision by
//! decision — the same lens BRVO-style reader-scalability studies and the
//! POWER8 capacity-stretching work rely on.
//!
//! ## Design
//!
//! * **Per-thread, fixed-capacity ring buffers** ([`TraceBuffer`]): each
//!   simulated hardware thread owns its buffer exclusively, so recording is
//!   a wait-free bump-and-store with **zero shared-memory traffic** — the
//!   uninstrumented-reader fast path stays uninstrumented. When the ring
//!   fills, the oldest events are overwritten (postmortems want the last-N
//!   events, not the first-N).
//! * **Zero-cost when off**: [`TraceConfig::Off`] (the default) reduces
//!   [`TraceBuffer::push`] to one branch on thread-local state; disabling
//!   the `record` cargo feature removes even that at compile time.
//! * **Timestamps** come from [`htm_sim::clock`], the same monotonic
//!   nanosecond clock the scheduling layer uses, so trace timelines line up
//!   with `clock_r`/`clock_w` adverts exactly.
//! * **Layering**: this crate sits between `htm-sim` and `sprwl-locks`, so
//!   event payloads use primitive types and `&'static str` labels (e.g.
//!   `AbortCause::label()`), not the lock layer's enums.
//!
//! ## Event taxonomy
//!
//! See [`EventKind`]: transaction lifecycle (`SectionBegin`/`TxAttempt`/
//! `TxCommit`/`TxAbort`/`SectionEnd`), the uninstrumented reader path
//! (`ReaderArrive`/`ReaderDepart`), every scheduler decision SpRWL makes
//! (join-the-waiter, timed reader waits, δ-timed writer starts, fallback
//! acquisition, versioned-SGL bypass), and free-form [`EventKind::Mark`]s
//! for harnesses. Conflict aborts carry the conflicting cache line and the
//! peer thread id when the substrate attributed them.
//!
//! ## Exporters
//!
//! [`export`] renders collected [`ThreadTrace`]s as JSONL (one event per
//! line, grep-friendly) or as Chrome trace-event JSON — load the latter in
//! [Perfetto](https://ui.perfetto.dev) to get one track per thread with
//! nested section/attempt slices and abort→retry-commit flow arrows.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analyze;
pub mod export;
pub mod history;
pub mod schedule;

/// Sentinel for "no conflicting line attributed" in [`EventKind::TxAbort`].
pub const NO_LINE: u64 = u64::MAX;

/// Sentinel for "no peer thread attributed" in [`EventKind::TxAbort`].
pub const NO_PEER: u32 = u32::MAX;

/// Whether the traced critical section was requested in read or write mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceRole {
    /// Read-only critical section.
    Reader,
    /// Updating critical section.
    Writer,
}

impl TraceRole {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            TraceRole::Reader => "reader",
            TraceRole::Writer => "writer",
        }
    }
}

/// One lock-lifecycle event. Payload fields are primitives so the crate
/// stays below the lock layer; commit modes and abort causes travel as the
/// `&'static str` labels the stats layer already defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A critical section was requested (before any attempt).
    SectionBegin {
        /// Read or write mode.
        role: TraceRole,
        /// The section id the caller passed to the lock.
        sec: u32,
    },
    /// The critical section completed (whatever the execution mode).
    SectionEnd {
        /// Read or write mode.
        role: TraceRole,
        /// The section id.
        sec: u32,
        /// Commit-mode label (`"HTM"`, `"ROT"`, `"GL"`, `"Unins"`).
        mode: &'static str,
        /// End-to-end latency (request → completion), nanoseconds.
        latency_ns: u64,
    },
    /// One speculative attempt began.
    TxAttempt {
        /// Read or write mode.
        role: TraceRole,
        /// 1-based attempt number within this section execution.
        attempt: u32,
    },
    /// The speculative attempt committed.
    TxCommit {
        /// Commit-mode label (`"HTM"` or `"ROT"`).
        mode: &'static str,
        /// Distinct cache lines in the read-set at commit.
        read_fp: u32,
        /// Distinct cache lines in the write-set at commit.
        write_fp: u32,
    },
    /// The speculative attempt aborted.
    TxAbort {
        /// Abort-cause label (the stats layer's taxonomy, e.g.
        /// `"conflict"`, `"capacity"`, `"reader"`).
        cause: &'static str,
        /// Conflicting cache line index, or [`NO_LINE`] when the substrate
        /// could not attribute the abort.
        line: u64,
        /// Peer thread that owned/doomed the line, or [`NO_PEER`].
        peer: u32,
    },
    /// An uninstrumented reader announced itself (state-flag store and/or
    /// SNZI arrive) and entered its critical section.
    ReaderArrive,
    /// The uninstrumented reader withdrew its announcement.
    ReaderDepart,
    /// Reader synchronization took the join-the-waiter shortcut: instead of
    /// scanning for the last-finishing writer, this reader aligned its
    /// start with the writer `target` another reader already waits for.
    SchedJoinWaiter {
        /// The writer thread id being waited for (inherited from the
        /// joined reader's registration).
        target: u32,
    },
    /// Reader synchronization decided to wait for an active writer
    /// (`Readers_Wait`, Alg. 2), bounded by `deadline`.
    SchedWaitWriter {
        /// The writer thread id expected to finish last.
        writer: u32,
        /// Absolute deadline (ns) bounding the wait.
        deadline: u64,
    },
    /// Writer synchronization (Alg. 3) delayed a reader-aborted writer's
    /// retry so its re-execution ends δ after the last reader.
    SchedDeltaStart {
        /// Absolute instant (ns) the retry was scheduled to start at.
        start_at: u64,
    },
    /// The writer gave up on speculation and acquired the fallback lock.
    FallbackAcquire {
        /// The fallback version held (0 for a plain, unversioned SGL).
        version: u64,
    },
    /// The fallback lock was released.
    FallbackRelease,
    /// §3.3 versioned SGL: a blocked reader's registered version was
    /// overtaken, so it bypassed the current fallback holder and entered.
    SglBypassEnter {
        /// The fallback version the reader had registered under.
        registered: u64,
    },
    /// §3.3 versioned SGL: a fallback writer deferred to senior readers
    /// (registrations with versions older than its own) before executing.
    SglWaitSenior {
        /// The version this writer holds the lock under.
        my_version: u64,
    },
    /// The runtime self-tuner adjusted one per-section policy knob. Emitted
    /// outside any critical section so the decision survives sampling.
    TuneDecision {
        /// Static knob name (e.g. `"delta-boost"`, `"htm-skip"`,
        /// `"tracking-mode"`).
        knob: &'static str,
        /// The section the knob applies to.
        sec: u32,
        /// The new knob value.
        value: u64,
    },
    /// A writer revoked BRAVO reader bias: it flipped the bias word to
    /// `REVOKING`, drained the visible-readers table, and published
    /// `BIAS_OFF` — after which reader tracking falls back to the SNZI.
    BiasRevoke {
        /// Visible-reader slots found occupied (waited on) during the drain
        /// — the *active* readers the revocation actually paid for.
        occupied: u64,
        /// Total visible-reader slots scanned (the table size).
        scanned: u64,
    },
    /// A reader re-armed BRAVO bias (`BIAS_OFF` → `BIAS_ON`) after the
    /// post-revocation cooldown, restoring the single-store reader fast
    /// path.
    BiasRearm,
    /// A capacity-stretched writer escalated to a POWER8-style
    /// rollback-only transaction (reads untracked, writes buffered), with
    /// the commit-time reader check run from suspended state.
    StretchRot {
        /// 1-based ROT attempt number within this section execution.
        attempt: u32,
    },
    /// A writer that overflowed even the rollback-only budget split its
    /// section into ordered sub-transactions under the fallback ticket.
    StretchSplit {
        /// Number of sub-transactions the buffered write-set was split into.
        chunks: u32,
    },
    /// One sub-transaction of a split writer flushed its write chunk.
    StretchChunk {
        /// 0-based chunk index within the split.
        index: u32,
        /// Distinct cache lines the chunk wrote.
        lines: u32,
    },
    /// A thread context was claimed from the dynamic slot registry.
    SlotAcquire {
        /// The hardware-thread slot claimed.
        slot: u32,
    },
    /// A thread context released its slot back to the registry.
    SlotRelease {
        /// The hardware-thread slot released.
        slot: u32,
    },
    /// Free-form harness marker (used by the torture driver to log the
    /// operation stream independently of the lock under test).
    Mark {
        /// Static label naming the marker.
        label: &'static str,
        /// First payload word (meaning is label-defined).
        a: u64,
        /// Second payload word.
        b: u64,
    },
}

impl EventKind {
    /// Stable event-type name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SectionBegin { .. } => "section-begin",
            EventKind::SectionEnd { .. } => "section-end",
            EventKind::TxAttempt { .. } => "tx-attempt",
            EventKind::TxCommit { .. } => "tx-commit",
            EventKind::TxAbort { .. } => "tx-abort",
            EventKind::ReaderArrive => "reader-arrive",
            EventKind::ReaderDepart => "reader-depart",
            EventKind::SchedJoinWaiter { .. } => "sched-join-waiter",
            EventKind::SchedWaitWriter { .. } => "sched-wait-writer",
            EventKind::SchedDeltaStart { .. } => "sched-delta-start",
            EventKind::FallbackAcquire { .. } => "fallback-acquire",
            EventKind::FallbackRelease => "fallback-release",
            EventKind::SglBypassEnter { .. } => "sgl-bypass-enter",
            EventKind::SglWaitSenior { .. } => "sgl-wait-senior",
            EventKind::TuneDecision { .. } => "tune-decision",
            EventKind::BiasRevoke { .. } => "bias-revoke",
            EventKind::BiasRearm => "bias-rearm",
            EventKind::StretchRot { .. } => "stretch-rot",
            EventKind::StretchSplit { .. } => "stretch-split",
            EventKind::StretchChunk { .. } => "stretch-chunk",
            EventKind::SlotAcquire { .. } => "slot-acquire",
            EventKind::SlotRelease { .. } => "slot-release",
            EventKind::Mark { label, .. } => label,
        }
    }
}

/// One recorded event: a nanosecond timestamp from [`htm_sim::clock`] plus
/// the payload. The owning thread is implied by the buffer it sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since process start ([`htm_sim::clock::now`]).
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Runtime tracing policy for one thread (and, by convention, a session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// Record nothing. `push` is a single branch on thread-local state.
    #[default]
    Off,
    /// Record into a fixed-capacity ring, overwriting the oldest events.
    Ring {
        /// Maximum events retained per thread (the "last N").
        capacity: usize,
    },
    /// Record a deterministic 1-in-`rate` subset of critical sections into
    /// a fixed-capacity ring. Whole sections are sampled atomically — every
    /// event of a sampled section (attempts, aborts, scheduler decisions)
    /// is kept, every event of an unsampled one is counted and discarded —
    /// so retry chains stay intact and downstream analysis can rescale
    /// counts by `rate`. Events outside any section (harness marks, tuner
    /// decisions) are always recorded.
    Sampled {
        /// Record every `rate`-th section (1 = everything).
        rate: u32,
        /// Maximum events retained per thread (the "last N").
        capacity: usize,
    },
}

impl TraceConfig {
    /// Ring-buffer tracing with the given per-thread capacity.
    pub fn ring(capacity: usize) -> Self {
        TraceConfig::Ring {
            capacity: capacity.max(1),
        }
    }

    /// Sampled tracing: every `rate`-th section, `capacity` events retained.
    pub fn sampled(rate: u32, capacity: usize) -> Self {
        TraceConfig::Sampled {
            rate: rate.max(1),
            capacity: capacity.max(1),
        }
    }

    /// Whether this configuration records anything.
    pub fn is_on(&self) -> bool {
        !matches!(self, TraceConfig::Off)
    }

    /// Stable textual form: `off`, `ring:<capacity>`, or
    /// `sampled:<rate>:<capacity>`. Round-trips through [`Self::parse`].
    pub fn label(&self) -> String {
        match self {
            TraceConfig::Off => "off".to_string(),
            TraceConfig::Ring { capacity } => format!("ring:{capacity}"),
            TraceConfig::Sampled { rate, capacity } => format!("sampled:{rate}:{capacity}"),
        }
    }

    /// Parses the [`Self::label`] form (used by the bench CLI and the
    /// torture `TORTURE_TRACE` environment knob). Returns `None` on
    /// malformed input rather than guessing.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("off") {
            return Some(TraceConfig::Off);
        }
        if let Some(cap) = s.strip_prefix("ring:") {
            return cap.parse::<usize>().ok().map(TraceConfig::ring);
        }
        if let Some(rest) = s.strip_prefix("sampled:") {
            let (rate, cap) = rest.split_once(':')?;
            return Some(TraceConfig::sampled(
                rate.parse::<u32>().ok()?,
                cap.parse::<usize>().ok()?,
            ));
        }
        None
    }
}

/// A per-thread, single-writer, fixed-capacity event ring.
///
/// Owned exclusively by its thread: pushes never touch shared memory, so
/// tracing cannot perturb the cache-coherence behaviour under study (no
/// extra conflict aborts, no reader-fast-path traffic). Harvest with
/// [`TraceBuffer::snapshot`] after the thread quiesces.
#[derive(Debug)]
pub struct TraceBuffer {
    tid: u32,
    capacity: usize,
    enabled: bool,
    events: Vec<Event>,
    /// Next overwrite position once the ring is full.
    next: usize,
    /// Events ever pushed (recorded + overwritten).
    total: u64,
    /// Section sampling stride (0 = not sampling, record everything).
    sample_rate: u32,
    /// Nesting depth of open sections (composed locks nest sections).
    section_depth: u32,
    /// Whether the outermost open section was selected for recording.
    section_sampled: bool,
    /// Events suppressed because their section was not sampled.
    unsampled: u64,
    /// Outermost sections observed (sampled + skipped).
    sections_seen: u64,
    /// Outermost sections selected for recording.
    sections_sampled: u64,
}

impl TraceBuffer {
    /// Creates a buffer for hardware thread `tid` under `cfg`.
    pub fn new(tid: u32, cfg: TraceConfig) -> Self {
        match cfg {
            TraceConfig::Off => Self::disabled(tid),
            TraceConfig::Ring { capacity } => Self {
                capacity: capacity.max(1),
                enabled: true,
                events: Vec::with_capacity(capacity.clamp(1, 4096)),
                ..Self::disabled(tid)
            },
            TraceConfig::Sampled { rate, capacity } => Self {
                capacity: capacity.max(1),
                enabled: true,
                events: Vec::with_capacity(capacity.clamp(1, 4096)),
                sample_rate: rate.max(1),
                ..Self::disabled(tid)
            },
        }
    }

    /// A recording-disabled buffer (allocates nothing).
    pub fn disabled(tid: u32) -> Self {
        Self {
            tid,
            capacity: 0,
            enabled: false,
            events: Vec::new(),
            next: 0,
            total: 0,
            sample_rate: 0,
            section_depth: 0,
            section_sampled: false,
            unsampled: 0,
            sections_seen: 0,
            sections_sampled: 0,
        }
    }

    /// Whether pushes are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The owning hardware thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Records one event, timestamped now. Wait-free; overwrites the oldest
    /// event once the ring is full; no-op when tracing is off.
    ///
    /// Timestamps come from the recording thread's scheduler clock
    /// (`htm_sim::clock::now`): wall nanoseconds on free-running threads,
    /// virtual time on threads bound to the deterministic scheduler — which
    /// is what makes two same-seed deterministic runs export byte-identical
    /// JSONL. The clock is only consulted *after* the enabled check, so
    /// `TraceConfig::Off` never touches it.
    #[cfg(feature = "record")]
    #[inline]
    pub fn push(&mut self, kind: EventKind) {
        if !self.enabled {
            return;
        }
        // Section-granular sampling: the keep/skip decision is made once at
        // the *outermost* SectionBegin and applies to every event until the
        // matching SectionEnd, so retry chains are never torn. Suppressed
        // events return before the clock read below — on the deterministic
        // scheduler each `clock::now` advances virtual time, so an
        // unsampled section must not perturb the schedule.
        if self.sample_rate > 0 {
            match kind {
                EventKind::SectionBegin { .. } => {
                    if self.section_depth == 0 {
                        self.section_sampled = self
                            .sections_seen
                            .is_multiple_of(u64::from(self.sample_rate));
                        self.sections_seen += 1;
                        if self.section_sampled {
                            self.sections_sampled += 1;
                        }
                    }
                    self.section_depth += 1;
                    if !self.section_sampled {
                        self.unsampled += 1;
                        return;
                    }
                }
                EventKind::SectionEnd { .. } => {
                    self.section_depth = self.section_depth.saturating_sub(1);
                    if !self.section_sampled {
                        self.unsampled += 1;
                        return;
                    }
                }
                _ => {
                    if self.section_depth > 0 && !self.section_sampled {
                        self.unsampled += 1;
                        return;
                    }
                }
            }
        }
        let ev = Event {
            ts: htm_sim::clock::now(),
            kind,
        };
        self.total += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Compiled-out stub: with the `record` feature disabled the entire
    /// event path vanishes at compile time.
    #[cfg(not(feature = "record"))]
    #[inline(always)]
    pub fn push(&mut self, _kind: EventKind) {}

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events ever pushed, including those the ring has since overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost so far to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.total - self.events.len() as u64
    }

    /// Events suppressed so far because their section was not sampled
    /// (always 0 outside [`TraceConfig::Sampled`]).
    pub fn unsampled(&self) -> u64 {
        self.unsampled
    }

    /// The retained events in chronological order, plus bookkeeping.
    pub fn snapshot(&self) -> ThreadTrace {
        let mut events = Vec::with_capacity(self.events.len());
        if self.events.len() < self.capacity || self.next == 0 {
            events.extend_from_slice(&self.events);
        } else {
            events.extend_from_slice(&self.events[self.next..]);
            events.extend_from_slice(&self.events[..self.next]);
        }
        ThreadTrace {
            tid: self.tid,
            dropped: self.total - events.len() as u64,
            events,
            sampling: (self.sample_rate > 0).then_some(SampleMeta {
                rate: self.sample_rate,
                sections_seen: self.sections_seen,
                sections_sampled: self.sections_sampled,
                unsampled: self.unsampled,
            }),
        }
    }
}

/// Sampling bookkeeping attached to a [`ThreadTrace`] harvested from a
/// [`TraceConfig::Sampled`] buffer. Lets downstream analysis rescale
/// sampled counts (`seen / sampled`) and detect starved captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleMeta {
    /// The configured stride (every `rate`-th section recorded).
    pub rate: u32,
    /// Outermost sections observed, sampled or not.
    pub sections_seen: u64,
    /// Outermost sections selected for recording.
    pub sections_sampled: u64,
    /// Events suppressed because their section was skipped.
    pub unsampled: u64,
}

/// One thread's harvested trace, in chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The hardware thread id (one Perfetto track each).
    pub tid: u32,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring overwrite (0 when the ring never filled).
    pub dropped: u64,
    /// Sampling metadata when the buffer ran under [`TraceConfig::Sampled`].
    pub sampling: Option<SampleMeta>,
}

impl ThreadTrace {
    /// A trace with no sampling metadata (the common full-capture case).
    pub fn full(tid: u32, events: Vec<Event>, dropped: u64) -> Self {
        Self {
            tid,
            events,
            dropped,
            sampling: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_buffer_records_nothing() {
        let mut b = TraceBuffer::new(3, TraceConfig::Off);
        assert!(!b.is_enabled());
        b.push(EventKind::ReaderArrive);
        b.push(EventKind::ReaderDepart);
        assert!(b.is_empty());
        assert_eq!(b.total_recorded(), 0);
        assert_eq!(b.snapshot().events.len(), 0);
    }

    #[cfg(feature = "record")]
    #[test]
    fn ring_keeps_the_last_n_in_order() {
        let mut b = TraceBuffer::new(0, TraceConfig::ring(4));
        for i in 0..10u32 {
            b.push(EventKind::TxAttempt {
                role: TraceRole::Writer,
                attempt: i,
            });
        }
        let snap = b.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        let attempts: Vec<u32> = snap
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::TxAttempt { attempt, .. } => attempt,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(attempts, vec![6, 7, 8, 9], "oldest overwritten first");
        let mut last = 0;
        for e in &snap.events {
            assert!(e.ts >= last, "timestamps monotone");
            last = e.ts;
        }
    }

    #[cfg(feature = "record")]
    #[test]
    fn partial_ring_snapshot_preserves_order() {
        let mut b = TraceBuffer::new(1, TraceConfig::ring(8));
        b.push(EventKind::ReaderArrive);
        b.push(EventKind::ReaderDepart);
        let snap = b.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events[0].kind, EventKind::ReaderArrive);
        assert_eq!(snap.events[1].kind, EventKind::ReaderDepart);
        assert_eq!(snap.tid, 1);
    }

    #[test]
    fn config_defaults_to_off() {
        assert_eq!(TraceConfig::default(), TraceConfig::Off);
        assert!(!TraceConfig::Off.is_on());
        assert!(TraceConfig::ring(16).is_on());
        assert!(TraceConfig::sampled(8, 16).is_on());
        // ring(0) clamps to a usable capacity instead of panicking.
        assert_eq!(TraceConfig::ring(0), TraceConfig::Ring { capacity: 1 });
        // sampled(0, 0) likewise clamps both knobs.
        assert_eq!(
            TraceConfig::sampled(0, 0),
            TraceConfig::Sampled {
                rate: 1,
                capacity: 1
            }
        );
    }

    #[test]
    fn config_labels_round_trip() {
        for cfg in [
            TraceConfig::Off,
            TraceConfig::ring(512),
            TraceConfig::sampled(16, 4096),
        ] {
            assert_eq!(TraceConfig::parse(&cfg.label()), Some(cfg));
        }
        assert_eq!(TraceConfig::parse("OFF"), Some(TraceConfig::Off));
        assert_eq!(TraceConfig::parse("ring:"), None);
        assert_eq!(TraceConfig::parse("sampled:4"), None);
        assert_eq!(TraceConfig::parse("sampled:x:4"), None);
        assert_eq!(TraceConfig::parse("firehose"), None);
    }

    #[cfg(feature = "record")]
    fn push_section(b: &mut TraceBuffer, role: TraceRole, sec: u32) {
        b.push(EventKind::SectionBegin { role, sec });
        b.push(EventKind::TxAttempt { role, attempt: 1 });
        b.push(EventKind::TxCommit {
            mode: "HTM",
            read_fp: 1,
            write_fp: 1,
        });
        b.push(EventKind::SectionEnd {
            role,
            sec,
            mode: "HTM",
            latency_ns: 10,
        });
    }

    #[cfg(feature = "record")]
    #[test]
    fn sampling_keeps_whole_sections() {
        let mut b = TraceBuffer::new(0, TraceConfig::sampled(3, 64));
        for i in 0..9 {
            push_section(&mut b, TraceRole::Writer, i % 2);
        }
        let snap = b.snapshot();
        // Sections 0, 3 and 6 are kept — 4 events each, nothing torn.
        assert_eq!(snap.events.len(), 12);
        let meta = snap.sampling.expect("sampled buffer carries meta");
        assert_eq!(meta.rate, 3);
        assert_eq!(meta.sections_seen, 9);
        assert_eq!(meta.sections_sampled, 3);
        assert_eq!(meta.unsampled, 24);
        assert_eq!(snap.dropped, 0);
        // Every kept section begins and ends: begin/end counts balance.
        let begins = snap
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SectionBegin { .. }))
            .count();
        let ends = snap
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SectionEnd { .. }))
            .count();
        assert_eq!((begins, ends), (3, 3));
    }

    #[cfg(feature = "record")]
    #[test]
    fn sampling_is_deterministic_and_first_section_is_kept() {
        let runs: Vec<Vec<Event>> = (0..2)
            .map(|_| {
                let mut b = TraceBuffer::new(0, TraceConfig::sampled(4, 64));
                for i in 0..8 {
                    push_section(&mut b, TraceRole::Reader, i);
                }
                b.snapshot().events
            })
            .collect();
        let kinds = |evs: &[Event]| evs.iter().map(|e| e.kind).collect::<Vec<_>>();
        assert_eq!(kinds(&runs[0]), kinds(&runs[1]));
        assert!(matches!(
            runs[0][0].kind,
            EventKind::SectionBegin { sec: 0, .. }
        ));
    }

    #[cfg(feature = "record")]
    #[test]
    fn sampling_records_out_of_section_events() {
        let mut b = TraceBuffer::new(0, TraceConfig::sampled(1000, 64));
        push_section(&mut b, TraceRole::Writer, 0); // sampled (first)
        push_section(&mut b, TraceRole::Writer, 1); // skipped
        b.push(EventKind::TuneDecision {
            knob: "delta-boost",
            sec: 1,
            value: 500,
        });
        push_section(&mut b, TraceRole::Writer, 2); // skipped
        let snap = b.snapshot();
        assert!(
            snap.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::TuneDecision { .. })),
            "out-of-section events must survive sampling"
        );
        assert_eq!(snap.events.len(), 5);
        assert_eq!(snap.sampling.unwrap().unsampled, 8);
    }

    #[cfg(feature = "record")]
    #[test]
    fn ring_snapshot_has_no_sampling_meta() {
        let mut b = TraceBuffer::new(0, TraceConfig::ring(8));
        b.push(EventKind::ReaderArrive);
        assert_eq!(b.snapshot().sampling, None);
        assert_eq!(b.unsampled(), 0);
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(
            EventKind::SectionBegin {
                role: TraceRole::Reader,
                sec: 0
            }
            .name(),
            "section-begin"
        );
        assert_eq!(
            EventKind::Mark {
                label: "torture-op",
                a: 0,
                b: 0
            }
            .name(),
            "torture-op"
        );
        assert_eq!(
            EventKind::TuneDecision {
                knob: "delta-boost",
                sec: 0,
                value: 0
            }
            .name(),
            "tune-decision"
        );
        assert_eq!(TraceRole::Reader.label(), "reader");
        assert_eq!(TraceRole::Writer.label(), "writer");
    }
}
