//! Property tests for the redis-shaped workload generator: wire-form
//! round-trip, keyspace bounds, mix ratios over many draws, and zipfian
//! determinism under a fixed seed.

use proptest::prelude::*;
use sprwl_workloads::redis::{
    format_key, parse_key, KeyDist, PayloadDist, RedisGen, RedisOp, RedisSpec,
};

fn spec_strategy() -> impl Strategy<Value = RedisSpec> {
    (
        1u64..50_000,
        0u32..=100,
        0u32..=100,
        1usize..8,
        0u32..64,
        0u32..64,
        prop_oneof![Just(None), (0.1f64..0.99).prop_map(Some)],
    )
        .prop_map(|(keyspace, a, b, mset_keys, pmin, pspan, theta)| {
            // Split 100% into get/set/mset shares without overflow.
            let get_pct = a.min(100);
            let set_pct = b.min(100 - get_pct);
            RedisSpec {
                keyspace,
                get_pct,
                set_pct,
                mset_keys,
                payload: PayloadDist {
                    min_bytes: pmin,
                    max_bytes: pmin + pspan,
                },
                key_dist: match theta {
                    None => KeyDist::Uniform,
                    Some(t) => KeyDist::Zipfian { theta: t },
                },
            }
        })
}

fn op_keys(op: &RedisOp) -> Vec<u64> {
    match op {
        RedisOp::Get { key } => vec![*key],
        RedisOp::Set { key, .. } => vec![*key],
        RedisOp::MSet { keys, .. } => keys.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn key_format_round_trips(id in 0u64..1_000_000_000_000) {
        let wire = format_key(id);
        prop_assert_eq!(wire.len(), 4 + 12);
        prop_assert_eq!(parse_key(&wire), Some(id));
    }

    #[test]
    fn draws_stay_inside_the_keyspace(spec in spec_strategy(), seed in 0u64..1_000) {
        let keyspace = spec.keyspace;
        let mut g = RedisGen::new(spec, seed);
        for _ in 0..200 {
            for key in op_keys(&g.next_op()) {
                prop_assert!(key < keyspace, "key {key} >= keyspace {keyspace}");
            }
        }
    }

    #[test]
    fn payload_sizes_respect_the_distribution(spec in spec_strategy(), seed in 0u64..1_000) {
        let payload = spec.payload;
        let mut g = RedisGen::new(spec, seed);
        for _ in 0..200 {
            let bytes = match g.next_op() {
                RedisOp::Get { .. } => continue,
                RedisOp::Set { payload_bytes, .. } => payload_bytes,
                RedisOp::MSet { payload_bytes, .. } => payload_bytes,
            };
            prop_assert!(
                (payload.min_bytes..=payload.max_bytes).contains(&bytes),
                "payload {bytes} outside [{}, {}]",
                payload.min_bytes,
                payload.max_bytes
            );
        }
    }

    #[test]
    fn same_seed_same_stream(spec in spec_strategy(), seed in 0u64..1_000) {
        let mut a = RedisGen::new(spec.clone(), seed);
        let mut b = RedisGen::new(spec, seed);
        for _ in 0..300 {
            prop_assert_eq!(a.next_op(), b.next_op());
        }
    }
}

/// Mix ratios over 10k draws stay within tolerance of the spec. Not a
/// proptest: the tolerance argument needs a fixed, known mix.
#[test]
fn mix_ratios_within_tolerance_over_10k_draws() {
    let spec = RedisSpec {
        keyspace: 10_000,
        get_pct: 80,
        set_pct: 15,
        mset_keys: 4,
        payload: PayloadDist::fixed(16),
        key_dist: KeyDist::Uniform,
    };
    let mut g = RedisGen::new(spec, 42);
    let (mut gets, mut sets, mut msets) = (0u64, 0u64, 0u64);
    const N: u64 = 10_000;
    for _ in 0..N {
        match g.next_op() {
            RedisOp::Get { .. } => gets += 1,
            RedisOp::Set { .. } => sets += 1,
            RedisOp::MSet { .. } => msets += 1,
        }
    }
    let pct = |n: u64| 100.0 * n as f64 / N as f64;
    assert!((pct(gets) - 80.0).abs() < 2.0, "GET {}%", pct(gets));
    assert!((pct(sets) - 15.0).abs() < 2.0, "SET {}%", pct(sets));
    assert!((pct(msets) - 5.0).abs() < 2.0, "MSET {}%", pct(msets));
}

/// Zipfian draws are deterministic under a fixed seed and skewed: the top
/// 1% of keys absorbs far more than 1% of draws.
#[test]
fn zipfian_draws_are_deterministic_and_skewed() {
    let spec = RedisSpec {
        keyspace: 1_000,
        get_pct: 100,
        set_pct: 0,
        mset_keys: 1,
        payload: PayloadDist::fixed(3),
        key_dist: KeyDist::Zipfian { theta: 0.99 },
    };
    let draw_all = || {
        let mut g = RedisGen::new(spec.clone(), 7);
        (0..10_000).map(|_| g.draw_key()).collect::<Vec<u64>>()
    };
    let a = draw_all();
    assert_eq!(a, draw_all(), "fixed seed must reproduce the draw sequence");

    let mut counts = std::collections::HashMap::new();
    for k in &a {
        *counts.entry(*k).or_insert(0u64) += 1;
    }
    let mut freq: Vec<u64> = counts.values().copied().collect();
    freq.sort_unstable_by(|x, y| y.cmp(x));
    let top1pct: u64 = freq.iter().take(10).sum();
    assert!(
        top1pct > a.len() as u64 / 5,
        "top-1% keys drew only {top1pct}/10000 — not zipfian"
    );
}
