//! A redis-benchmark-shaped workload generator for the sharded KV
//! service (`sprwl-server`).
//!
//! `redis-benchmark` drives a server with `GET`/`SET`/`MSET` commands over
//! keys of the form `key:<12-digit random integer>` drawn from a
//! configurable keyspace (`-r`), with a configurable payload size (`-d`).
//! This module reproduces that shape deterministically: a seeded
//! [`RedisGen`] yields an operation stream with a configurable GET/SET/MSET
//! mix, a payload-size distribution, and either uniform or zipfian key
//! popularity (service traffic is rarely uniform; the zipfian option is the
//! YCSB-style skew every KV study leans on).
//!
//! Key ids stay `u64` internally — [`format_key`]/[`parse_key`] give the
//! wire form for exports and round-trip exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of digits in the wire form of a key (`key:000000000042`),
/// matching redis-benchmark's 12-digit random-key substitution.
pub const KEY_DIGITS: usize = 12;

/// Renders a key id in redis-benchmark wire form: `key:{rand}` with the id
/// zero-padded to [`KEY_DIGITS`] digits.
pub fn format_key(id: u64) -> String {
    format!("key:{id:012}")
}

/// Parses the [`format_key`] wire form back to a key id. Returns `None`
/// for anything but an exactly-12-digit `key:` string (no sign, no spaces,
/// no overlong ids) — the generator never emits those, so a round-trip
/// failure means corruption, not leniency.
pub fn parse_key(s: &str) -> Option<u64> {
    let digits = s.strip_prefix("key:")?;
    if digits.len() != KEY_DIGITS || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse::<u64>().ok()
}

/// Payload-size distribution: uniform over `[min_bytes, max_bytes]`
/// (inclusive). `min == max` models redis-benchmark's fixed `-d` size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadDist {
    /// Smallest payload, bytes.
    pub min_bytes: u32,
    /// Largest payload, bytes (inclusive).
    pub max_bytes: u32,
}

impl PayloadDist {
    /// A fixed payload size (redis-benchmark `-d`).
    pub fn fixed(bytes: u32) -> Self {
        Self {
            min_bytes: bytes,
            max_bytes: bytes,
        }
    }

    /// Draws one payload size.
    pub fn draw(&self, rng: &mut StdRng) -> u32 {
        if self.min_bytes >= self.max_bytes {
            return self.min_bytes;
        }
        rng.gen_range(self.min_bytes..=self.max_bytes)
    }
}

impl Default for PayloadDist {
    /// redis-benchmark's default `-d 3`.
    fn default() -> Self {
        Self::fixed(3)
    }
}

/// How keys are drawn from the keyspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the keyspace (redis-benchmark `-r`).
    Uniform,
    /// YCSB-style zipfian with the given exponent `theta` in `(0, 1)`;
    /// rank 0 is the hottest key.
    Zipfian {
        /// Skew exponent (0.99 is the YCSB default).
        theta: f64,
    },
}

/// The full workload shape: keyspace, mix, payloads, key popularity.
#[derive(Debug, Clone, PartialEq)]
pub struct RedisSpec {
    /// Distinct keys (ids `0..keyspace`); services run this in the
    /// millions, tests keep it small.
    pub keyspace: u64,
    /// Percent of operations that are `GET`.
    pub get_pct: u32,
    /// Percent of operations that are `SET` (the remainder are `MSET`).
    pub set_pct: u32,
    /// Keys per `MSET`.
    pub mset_keys: usize,
    /// Payload-size distribution for `SET`/`MSET` values.
    pub payload: PayloadDist,
    /// Key-popularity distribution.
    pub key_dist: KeyDist,
}

impl RedisSpec {
    /// The redis-benchmark default shape scaled to service traffic:
    /// read-dominated (90/9/1 GET/SET/MSET) over a million-key uniform
    /// keyspace with 3-byte payloads.
    pub fn service_default() -> Self {
        Self {
            keyspace: 1_000_000,
            get_pct: 90,
            set_pct: 9,
            mset_keys: 4,
            payload: PayloadDist::default(),
            key_dist: KeyDist::Uniform,
        }
    }

    /// A skewed variant: same mix over a zipfian(0.99) draw.
    pub fn service_zipf() -> Self {
        Self {
            key_dist: KeyDist::Zipfian { theta: 0.99 },
            ..Self::service_default()
        }
    }

    /// Validates the shape; generator construction asserts this.
    pub fn validate(&self) -> Result<(), String> {
        if self.keyspace == 0 {
            return Err("keyspace must be non-zero".into());
        }
        if self.get_pct + self.set_pct > 100 {
            return Err(format!(
                "mix overflows 100%: get {}% + set {}%",
                self.get_pct, self.set_pct
            ));
        }
        if self.mset_keys == 0 && self.get_pct + self.set_pct < 100 {
            return Err("MSET share is non-zero but mset_keys is 0".into());
        }
        if let KeyDist::Zipfian { theta } = self.key_dist {
            if !(0.0..1.0).contains(&theta) {
                return Err(format!("zipfian theta {theta} outside (0, 1)"));
            }
        }
        Ok(())
    }
}

impl Default for RedisSpec {
    fn default() -> Self {
        Self::service_default()
    }
}

/// One generated operation. Key ids are `0..keyspace`; render with
/// [`format_key`] when a wire form is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedisOp {
    /// Read one key.
    Get {
        /// The key id.
        key: u64,
    },
    /// Write one key with a payload of the given size.
    Set {
        /// The key id.
        key: u64,
        /// Payload size, bytes.
        payload_bytes: u32,
    },
    /// Write several keys atomically, all with the same payload size.
    MSet {
        /// The key ids (may repeat; consumers dedup per atomicity domain).
        keys: Vec<u64>,
        /// Payload size, bytes.
        payload_bytes: u32,
    },
}

impl RedisOp {
    /// Stable label for mix accounting.
    pub fn label(&self) -> &'static str {
        match self {
            RedisOp::Get { .. } => "GET",
            RedisOp::Set { .. } => "SET",
            RedisOp::MSet { .. } => "MSET",
        }
    }
}

/// Deterministic operation-stream generator: same `(spec, seed)` → same
/// stream, on any host (the RNG is the workspace's seeded xoshiro shim).
#[derive(Debug, Clone)]
pub struct RedisGen {
    spec: RedisSpec,
    rng: StdRng,
    zipf: Option<Zipf>,
}

impl RedisGen {
    /// Builds a generator for `spec` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics when the spec fails [`RedisSpec::validate`].
    pub fn new(spec: RedisSpec, seed: u64) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid RedisSpec: {e}");
        }
        let zipf = match spec.key_dist {
            KeyDist::Uniform => None,
            KeyDist::Zipfian { theta } => Some(Zipf::new(spec.keyspace, theta)),
        };
        Self {
            spec,
            rng: StdRng::seed_from_u64(seed),
            zipf,
        }
    }

    /// The spec this generator draws from.
    pub fn spec(&self) -> &RedisSpec {
        &self.spec
    }

    /// Draws one key id in `0..keyspace` under the configured popularity.
    /// The zipfian rank is decorrelated from the key id (rank 0 must not
    /// always be key 0, or every skewed run would hammer shard 0).
    pub fn draw_key(&mut self) -> u64 {
        match &self.zipf {
            None => self.rng.gen_range(0..self.spec.keyspace),
            Some(z) => {
                let rank = z.draw(&mut self.rng);
                // Scramble rank → id so hot ranks scatter across the
                // keyspace (and thus the shards). The +1 keeps rank 0 off
                // the multiplicative fixed point at id 0.
                (rank + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.spec.keyspace
            }
        }
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> RedisOp {
        let roll = self.rng.gen_range(0..100u32);
        if roll < self.spec.get_pct {
            RedisOp::Get {
                key: self.draw_key(),
            }
        } else if roll < self.spec.get_pct + self.spec.set_pct {
            let payload_bytes = self.spec.payload.draw(&mut self.rng);
            RedisOp::Set {
                key: self.draw_key(),
                payload_bytes,
            }
        } else {
            let payload_bytes = self.spec.payload.draw(&mut self.rng);
            let keys = (0..self.spec.mset_keys).map(|_| self.draw_key()).collect();
            RedisOp::MSet {
                keys,
                payload_bytes,
            }
        }
    }
}

/// YCSB-style zipfian sampler (Gray et al.): draws ranks in `0..n` with
/// `P(rank) ∝ 1/(rank+1)^theta`. The zeta normalizer is computed once at
/// construction — O(n), paid off over millions of draws.
#[derive(Debug, Clone)]
struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        let mut zetan = 0.0;
        for i in 1..=n {
            zetan += 1.0 / (i as f64).powf(theta);
        }
        let zeta2 = 1.0 + 1.0 / 2f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn draw(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_wire_form_round_trips() {
        for id in [0u64, 1, 42, 999_999_999_999] {
            assert_eq!(parse_key(&format_key(id)), Some(id));
        }
        assert_eq!(format_key(42), "key:000000000042");
        assert_eq!(parse_key("key:42"), None, "unpadded");
        assert_eq!(parse_key("k:000000000042"), None, "wrong prefix");
        assert_eq!(parse_key("key:00000000004x"), None, "non-digit");
        assert_eq!(parse_key("key:0000000000042"), None, "overlong");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        for spec in [RedisSpec::service_default(), RedisSpec::service_zipf()] {
            let mut a = RedisGen::new(spec.clone(), 7);
            let mut b = RedisGen::new(spec.clone(), 7);
            for _ in 0..500 {
                assert_eq!(a.next_op(), b.next_op());
            }
            let mut c = RedisGen::new(spec, 8);
            let differ = (0..500).any(|_| a.next_op() != c.next_op());
            assert!(differ, "different seeds must diverge");
        }
    }

    #[test]
    fn zipfian_skews_toward_hot_keys() {
        let spec = RedisSpec {
            keyspace: 1_000,
            key_dist: KeyDist::Zipfian { theta: 0.99 },
            ..RedisSpec::service_default()
        };
        let mut g = RedisGen::new(spec, 42);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.draw_key()).or_insert(0u64) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // Under theta=0.99 the hottest key takes a few percent of all
        // draws; uniform would give 0.1%.
        assert!(freq[0] > 1_000, "hottest key drew only {}", freq[0]);
        // But it must not be key 0 every run shape — the scramble spreads
        // hot ranks across the id space (probabilistic, but the hottest id
        // is fixed by the scramble constant, so just check it's non-zero).
        let hottest = counts.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_ne!(*hottest.0, 0, "hot rank must scatter away from id 0");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = RedisSpec::service_default();
        s.get_pct = 70;
        s.set_pct = 40;
        assert!(s.validate().is_err());
        let mut s = RedisSpec::service_default();
        s.keyspace = 0;
        assert!(s.validate().is_err());
        let mut s = RedisSpec::service_default();
        s.key_dist = KeyDist::Zipfian { theta: 1.5 };
        assert!(s.validate().is_err());
        let mut s = RedisSpec::service_default();
        s.get_pct = 50;
        s.set_pct = 40;
        s.mset_keys = 0;
        assert!(s.validate().is_err());
    }
}
