//! Workload specifications: the knobs §4 of the paper sweeps, scaled to
//! the simulated capacity profiles.

use htm_sim::{CapacityProfile, MemAccess, TxResult};

use crate::hashmap::SimHashMap;

/// Shape of the hashmap micro-benchmark.
///
/// The paper populates 5000-bucket tables with 8 M (Broadwell) / 3 M
/// (POWER8) items so that 10-lookup readers overflow HTM capacity while
/// 1-lookup readers fit. Our populations are scaled ×~128 down together
/// with the capacity profiles (DESIGN.md §2), preserving the same
/// fits/overflows relations:
///
/// * long readers (10 lookups): footprint > read capacity on both profiles;
/// * short readers (1 lookup): footprint < read capacity on both profiles;
/// * writers (1 insert/delete): always fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashmapSpec {
    /// Bucket count (paper: 5000; scaled: 512).
    pub buckets: usize,
    /// Initial items (half of `key_space`, the random-walk equilibrium).
    pub population: u64,
    /// Keys are drawn uniformly from `0..key_space`.
    pub key_space: u64,
    /// Lookups per read critical section (paper: 1 or 10).
    pub lookups_per_read: usize,
    /// Percentage of write critical sections (paper: 10/50/90).
    pub update_pct: u32,
}

impl HashmapSpec {
    /// The paper's configuration for a given capacity profile and reader
    /// size.
    pub fn paper(profile: &CapacityProfile, long_readers: bool, update_pct: u32) -> Self {
        let buckets = 512;
        // Average chain length ≈ population / buckets; chosen per profile
        // so 10-lookup readers overflow and 1-lookup readers fit.
        let population: u64 = match profile.name {
            "power8-sim" => 24 * 1024,
            _ => 64 * 1024,
        };
        Self {
            buckets,
            population,
            key_space: population * 2,
            lookups_per_read: if long_readers { 10 } else { 1 },
            update_pct,
        }
    }

    /// Slab capacity with drift headroom.
    pub fn slab_capacity(&self) -> u32 {
        (self.key_space + self.key_space / 8) as u32
    }

    /// Simulated-memory cells this workload needs (plus harness slack).
    pub fn cells_needed(&self, n_threads: usize) -> usize {
        SimHashMap::cells_needed(self.buckets, self.slab_capacity(), n_threads) + 4096
    }

    /// Builds and populates the map (call before spawning threads).
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn build(&self, mem: &htm_sim::SimMemory, n_threads: usize) -> SimHashMap {
        let map = SimHashMap::new(mem, self.buckets, self.slab_capacity(), n_threads);
        // Populate even keys: exactly `population` present, spread across
        // the key space so lookups hit ~50%.
        let mut setup = InitAccess { mem };
        map.populate(&mut setup, (0..self.population).map(|k| k * 2))
            .expect("untracked population cannot abort");
        map
    }
}

/// Setup-time accessor: raw init stores, raw peeks (single-threaded only).
struct InitAccess<'m> {
    mem: &'m htm_sim::SimMemory,
}

impl MemAccess for InitAccess<'_> {
    fn read(&mut self, cell: htm_sim::CellId) -> TxResult<u64> {
        Ok(self.mem.peek(cell))
    }

    fn write(&mut self, cell: htm_sim::CellId, val: u64) -> TxResult<()> {
        self.mem.init_store(cell, val);
        Ok(())
    }

    fn mode(&self) -> htm_sim::AccessMode {
        htm_sim::AccessMode::Untracked
    }
}

/// Executes one read critical section: look up each key, return hit count.
///
/// # Errors
///
/// Propagates transactional aborts.
pub fn hashmap_read_cs(map: &SimHashMap, a: &mut dyn MemAccess, keys: &[u64]) -> TxResult<u64> {
    let mut hits = 0;
    for &k in keys {
        if map.lookup(a, k)?.is_some() {
            hits += 1;
        }
    }
    Ok(hits)
}

/// Executes one write critical section: insert or delete `key`.
///
/// # Errors
///
/// Propagates transactional aborts.
pub fn hashmap_write_cs(
    map: &SimHashMap,
    a: &mut dyn MemAccess,
    tid: usize,
    key: u64,
    insert: bool,
) -> TxResult<u64> {
    Ok(if insert {
        map.insert(a, tid, key, key ^ 0xF00D)? as u64
    } else {
        map.delete(a, tid, key)? as u64
    })
}

/// The TPC-C transaction mix the paper uses (percent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Stock-Level (read-only, long).
    pub stock_level: u32,
    /// Delivery (update).
    pub delivery: u32,
    /// Order-Status (read-only).
    pub order_status: u32,
    /// Payment (update, short).
    pub payment: u32,
    /// New-Order (update, long-ish).
    pub new_order: u32,
}

impl Mix {
    /// The paper's mix: Stock-Level 31 %, Delivery 4 %, Order-Status 4 %,
    /// Payment 43 %, New-Order 18 % (≈35 % read-only).
    pub const PAPER: Mix = Mix {
        stock_level: 31,
        delivery: 4,
        order_status: 4,
        payment: 43,
        new_order: 18,
    };

    /// Sum of the shares (must be 100).
    pub fn total(&self) -> u32 {
        self.stock_level + self.delivery + self.order_status + self.payment + self.new_order
    }

    /// Picks a transaction type from a uniform draw in `0..100`.
    ///
    /// # Panics
    ///
    /// Panics if the mix does not sum to 100 or `roll >= 100`.
    pub fn pick(&self, roll: u32) -> TpccTxKind {
        assert_eq!(self.total(), 100, "mix must sum to 100");
        assert!(roll < 100);
        let mut r = roll;
        for (share, kind) in [
            (self.stock_level, TpccTxKind::StockLevel),
            (self.delivery, TpccTxKind::Delivery),
            (self.order_status, TpccTxKind::OrderStatus),
            (self.payment, TpccTxKind::Payment),
            (self.new_order, TpccTxKind::NewOrder),
        ] {
            if r < share {
                return kind;
            }
            r -= share;
        }
        unreachable!("mix sums to 100")
    }
}

/// The five TPC-C transaction profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpccTxKind {
    /// Warehouse-wide stock scan below a threshold (read-only, long).
    StockLevel,
    /// Deliver the oldest undelivered orders of every district (update).
    Delivery,
    /// A customer's latest order and its lines (read-only).
    OrderStatus,
    /// Record a customer payment (update, short).
    Payment,
    /// Place a 5–15-line order (update).
    NewOrder,
}

impl TpccTxKind {
    /// Whether this profile is read-only (runs as a read critical section).
    pub fn is_read_only(self) -> bool {
        matches!(self, TpccTxKind::StockLevel | TpccTxKind::OrderStatus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_sums_to_100() {
        assert_eq!(Mix::PAPER.total(), 100);
    }

    #[test]
    fn mix_pick_boundaries() {
        let m = Mix::PAPER;
        assert_eq!(m.pick(0), TpccTxKind::StockLevel);
        assert_eq!(m.pick(30), TpccTxKind::StockLevel);
        assert_eq!(m.pick(31), TpccTxKind::Delivery);
        assert_eq!(m.pick(34), TpccTxKind::Delivery);
        assert_eq!(m.pick(35), TpccTxKind::OrderStatus);
        assert_eq!(m.pick(38), TpccTxKind::OrderStatus);
        assert_eq!(m.pick(39), TpccTxKind::Payment);
        assert_eq!(m.pick(81), TpccTxKind::Payment);
        assert_eq!(m.pick(82), TpccTxKind::NewOrder);
        assert_eq!(m.pick(99), TpccTxKind::NewOrder);
    }

    #[test]
    fn read_only_classification() {
        assert!(TpccTxKind::StockLevel.is_read_only());
        assert!(TpccTxKind::OrderStatus.is_read_only());
        assert!(!TpccTxKind::Payment.is_read_only());
        assert!(!TpccTxKind::NewOrder.is_read_only());
        assert!(!TpccTxKind::Delivery.is_read_only());
    }

    #[test]
    fn hashmap_spec_scales_with_profile() {
        let b = HashmapSpec::paper(&CapacityProfile::BROADWELL_SIM, true, 10);
        let p = HashmapSpec::paper(&CapacityProfile::POWER8_SIM, true, 10);
        assert!(b.population > p.population, "Broadwell holds more items");
        assert_eq!(b.lookups_per_read, 10);
        assert_eq!(
            HashmapSpec::paper(&CapacityProfile::BROADWELL_SIM, false, 10).lookups_per_read,
            1
        );
    }

    #[test]
    fn build_populates_even_keys() {
        let spec = HashmapSpec {
            buckets: 16,
            population: 100,
            key_space: 200,
            lookups_per_read: 1,
            update_pct: 10,
        };
        let htm = htm_sim::Htm::new(htm_sim::HtmConfig::default(), spec.cells_needed(4));
        let map = spec.build(htm.memory(), 4);
        let mut d = htm.direct(0);
        assert!(map.lookup(&mut d, 2).unwrap().is_some());
        assert!(map.lookup(&mut d, 3).unwrap().is_none());
    }
}
