//! Workload specifications: the knobs §4 of the paper sweeps, scaled to
//! the simulated capacity profiles.

use htm_sim::{CapacityProfile, MemAccess, TxResult};

use crate::hashmap::SimHashMap;
use crate::sortedlist::SortedList;

/// Shape of the hashmap micro-benchmark.
///
/// The paper populates 5000-bucket tables with 8 M (Broadwell) / 3 M
/// (POWER8) items so that 10-lookup readers overflow HTM capacity while
/// 1-lookup readers fit. Our populations are scaled ×~128 down together
/// with the capacity profiles (DESIGN.md §2), preserving the same
/// fits/overflows relations:
///
/// * long readers (10 lookups): footprint > read capacity on both profiles;
/// * short readers (1 lookup): footprint < read capacity on both profiles;
/// * writers (1 insert/delete): always fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashmapSpec {
    /// Bucket count (paper: 5000; scaled: 512).
    pub buckets: usize,
    /// Initial items (half of `key_space`, the random-walk equilibrium).
    pub population: u64,
    /// Keys are drawn uniformly from `0..key_space`.
    pub key_space: u64,
    /// Lookups per read critical section (paper: 1 or 10).
    pub lookups_per_read: usize,
    /// Percentage of write critical sections (paper: 10/50/90).
    pub update_pct: u32,
}

impl HashmapSpec {
    /// The paper's configuration for a given capacity profile and reader
    /// size.
    pub fn paper(profile: &CapacityProfile, long_readers: bool, update_pct: u32) -> Self {
        let buckets = 512;
        // Average chain length ≈ population / buckets; chosen per profile
        // so 10-lookup readers overflow and 1-lookup readers fit.
        let population: u64 = match profile.name {
            "power8-sim" => 24 * 1024,
            _ => 64 * 1024,
        };
        Self {
            buckets,
            population,
            key_space: population * 2,
            lookups_per_read: if long_readers { 10 } else { 1 },
            update_pct,
        }
    }

    /// Slab capacity with drift headroom.
    pub fn slab_capacity(&self) -> u32 {
        (self.key_space + self.key_space / 8) as u32
    }

    /// Simulated-memory cells this workload needs (plus harness slack).
    pub fn cells_needed(&self, n_threads: usize) -> usize {
        SimHashMap::cells_needed(self.buckets, self.slab_capacity(), n_threads) + 4096
    }

    /// Builds and populates the map (call before spawning threads).
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn build(&self, mem: &htm_sim::SimMemory, n_threads: usize) -> SimHashMap {
        let map = SimHashMap::new(mem, self.buckets, self.slab_capacity(), n_threads);
        // Populate even keys: exactly `population` present, spread across
        // the key space so lookups hit ~50%.
        let mut setup = InitAccess { mem };
        map.populate(&mut setup, (0..self.population).map(|k| k * 2))
            .expect("untracked population cannot abort");
        map
    }
}

/// Setup-time accessor: raw init stores, raw peeks (single-threaded only).
struct InitAccess<'m> {
    mem: &'m htm_sim::SimMemory,
}

impl MemAccess for InitAccess<'_> {
    fn read(&mut self, cell: htm_sim::CellId) -> TxResult<u64> {
        Ok(self.mem.peek(cell))
    }

    fn write(&mut self, cell: htm_sim::CellId, val: u64) -> TxResult<()> {
        self.mem.init_store(cell, val);
        Ok(())
    }

    fn mode(&self) -> htm_sim::AccessMode {
        htm_sim::AccessMode::Untracked
    }
}

/// Executes one read critical section: look up each key, return hit count.
///
/// # Errors
///
/// Propagates transactional aborts.
pub fn hashmap_read_cs(map: &SimHashMap, a: &mut dyn MemAccess, keys: &[u64]) -> TxResult<u64> {
    let mut hits = 0;
    for &k in keys {
        if map.lookup(a, k)?.is_some() {
            hits += 1;
        }
    }
    Ok(hits)
}

/// Executes one write critical section: insert or delete `key`.
///
/// # Errors
///
/// Propagates transactional aborts.
pub fn hashmap_write_cs(
    map: &SimHashMap,
    a: &mut dyn MemAccess,
    tid: usize,
    key: u64,
    insert: bool,
) -> TxResult<u64> {
    Ok(if insert {
        map.insert(a, tid, key, key ^ 0xF00D)? as u64
    } else {
        map.delete(a, tid, key)? as u64
    })
}

/// Size of the contended key set in [`SweepWorkload::HotKey`].
pub const HOT_KEY_SET: u64 = 16;

/// Fraction (percent) of hot-key draws that hit the hot set.
pub const HOT_KEY_PCT: u32 = 90;

/// The four workload shapes of the thread-sweep concurrency harness (the
/// `BENCH_*.json` results pipeline): each isolates one scaling regime of a
/// read-write lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepWorkload {
    /// 100 % readers, uniform keys — the embarrassingly-parallel ceiling;
    /// SpRWL's uninstrumented readers should scale linearly here.
    ReadOnly,
    /// 100 % writers, each thread confined to its own disjoint key
    /// partition — write throughput without data conflicts, isolating
    /// lock-protocol overhead (writer admission, commit-time reader scan).
    IndependentWrite,
    /// Mixed readers/writers all hammering a tiny hot key set — the
    /// conflict-dominated regime where abort handling and scheduling earn
    /// their keep.
    HotKey,
    /// The classic 90 % read / 10 % write mix over uniform keys.
    Mixed90_10,
}

impl SweepWorkload {
    /// All four shapes, in reporting order.
    pub const ALL: [SweepWorkload; 4] = [
        SweepWorkload::ReadOnly,
        SweepWorkload::IndependentWrite,
        SweepWorkload::HotKey,
        SweepWorkload::Mixed90_10,
    ];

    /// Stable name used in `BENCH_*.json` points and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            SweepWorkload::ReadOnly => "read-only",
            SweepWorkload::IndependentWrite => "independent-write",
            SweepWorkload::HotKey => "hot-key",
            SweepWorkload::Mixed90_10 => "mixed-90-10",
        }
    }

    /// Parses a [`Self::name`] back (CLI flags).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|w| w.name() == s)
    }

    /// Percentage of write critical sections.
    pub fn update_pct(self) -> u32 {
        match self {
            SweepWorkload::ReadOnly => 0,
            SweepWorkload::IndependentWrite => 100,
            SweepWorkload::HotKey => 20,
            SweepWorkload::Mixed90_10 => 10,
        }
    }

    /// Lookups per read critical section.
    pub fn lookups_per_read(self) -> usize {
        match self {
            SweepWorkload::ReadOnly => 8,
            SweepWorkload::IndependentWrite => 1,
            SweepWorkload::HotKey => 2,
            SweepWorkload::Mixed90_10 => 4,
        }
    }

    /// The hashmap shape backing a sweep point — deliberately smaller than
    /// the paper's figure configurations so deterministic (serialized)
    /// sweeps stay fast, while readers still fit HTM capacity and the
    /// hot-key set still spans several buckets.
    pub fn spec(self) -> HashmapSpec {
        HashmapSpec {
            buckets: 256,
            population: 4 * 1024,
            key_space: 8 * 1024,
            lookups_per_read: self.lookups_per_read(),
            update_pct: self.update_pct(),
        }
    }

    /// Draws the key for one lookup of a read critical section.
    pub fn read_key<R: rand::Rng>(self, rng: &mut R, key_space: u64) -> u64 {
        match self {
            SweepWorkload::HotKey => hot_or_uniform(rng, key_space),
            _ => rng.gen_range(0..key_space),
        }
    }

    /// Draws the key for a write critical section. `tid`/`threads` carve
    /// the disjoint per-thread partitions of
    /// [`SweepWorkload::IndependentWrite`].
    pub fn write_key<R: rand::Rng>(
        self,
        rng: &mut R,
        tid: usize,
        threads: usize,
        key_space: u64,
    ) -> u64 {
        match self {
            SweepWorkload::IndependentWrite => {
                let span = (key_space / threads as u64).max(1);
                let lo = span * tid as u64;
                lo + rng.gen_range(0..span)
            }
            SweepWorkload::HotKey => hot_or_uniform(rng, key_space),
            _ => rng.gen_range(0..key_space),
        }
    }
}

/// `HOT_KEY_PCT` % of draws land in the hot set, the rest are uniform.
fn hot_or_uniform<R: rand::Rng>(rng: &mut R, key_space: u64) -> u64 {
    if rng.gen_range(0..100u32) < HOT_KEY_PCT {
        rng.gen_range(0..HOT_KEY_SET.min(key_space))
    } else {
        rng.gen_range(0..key_space)
    }
}

/// Shape of the range-scan workload over a [`SortedList`]: long range
/// readers (the paper's motivating traversal) mixed with *big-footprint
/// range writers* — each write critical section traverses the list and
/// bumps every value in a key window, so its read-set grows with the
/// window position while its write-set stays bounded by the window size.
/// This is the capacity-stretching shape: on POWER8-like profiles the
/// traversal overflows the plain HTM read budget but the write-set fits a
/// rollback-only transaction; on TINY nothing fits and the writer must
/// split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeScanSpec {
    /// Slab capacity (nodes).
    pub capacity: u32,
    /// Initial population: even keys `0, 2, …, 2·(population−1)`.
    pub population: u64,
    /// Keys a read critical section's range query spans.
    pub scan_keys: u64,
    /// Keys a write critical section's range update spans.
    pub update_keys: u64,
    /// Percentage of write critical sections.
    pub update_pct: u32,
}

impl RangeScanSpec {
    /// The capacity-sweep configuration: 1024 nodes (≈ 384 cache lines of
    /// traversal, past the POWER8 128-line read budget by construction),
    /// 32-key update windows anchored in the back half of the list so
    /// every writer's traversal overflows plain HTM while its write-set
    /// fits the POWER8 ROT budget.
    pub fn capacity_sweep() -> Self {
        Self {
            capacity: 1536,
            population: 1024,
            scan_keys: 256,
            update_keys: 32,
            update_pct: 20,
        }
    }

    /// Largest valid key (population is `0, 2, …`).
    pub fn max_key(&self) -> u64 {
        (self.population - 1) * 2
    }

    /// Simulated-memory cells this workload needs (plus harness slack).
    pub fn cells_needed(&self, n_threads: usize) -> usize {
        SortedList::cells_needed(self.capacity, n_threads) + 4096
    }

    /// Builds and populates the list (call before spawning threads).
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn build(&self, mem: &htm_sim::SimMemory, n_threads: usize) -> SortedList {
        let list = SortedList::new(mem, self.capacity, n_threads);
        let mut setup = InitAccess { mem };
        list.populate(&mut setup, self.population)
            .expect("untracked population cannot abort");
        list
    }

    /// Draws a write window `[lo, hi]` anchored in the back half of the
    /// key space, so the traversal to reach it reads at least half the
    /// list — the big-footprint writer shape.
    pub fn write_window<R: rand::Rng>(&self, rng: &mut R) -> (u64, u64) {
        let half = self.max_key() / 2;
        let lo = half + rng.gen_range(0..half.max(1));
        (lo, lo + self.update_keys * 2)
    }

    /// Draws a read window `[lo, hi]` uniformly over the key space.
    pub fn read_window<R: rand::Rng>(&self, rng: &mut R) -> (u64, u64) {
        let lo = rng.gen_range(0..self.max_key().max(1));
        (lo, lo + self.scan_keys * 2)
    }
}

/// The TPC-C transaction mix the paper uses (percent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Stock-Level (read-only, long).
    pub stock_level: u32,
    /// Delivery (update).
    pub delivery: u32,
    /// Order-Status (read-only).
    pub order_status: u32,
    /// Payment (update, short).
    pub payment: u32,
    /// New-Order (update, long-ish).
    pub new_order: u32,
}

impl Mix {
    /// The paper's mix: Stock-Level 31 %, Delivery 4 %, Order-Status 4 %,
    /// Payment 43 %, New-Order 18 % (≈35 % read-only).
    pub const PAPER: Mix = Mix {
        stock_level: 31,
        delivery: 4,
        order_status: 4,
        payment: 43,
        new_order: 18,
    };

    /// The delivery-pressure mix of the capacity sweep: New-Order dominates
    /// so every district keeps a backlog of undelivered orders, and each
    /// (rarer) Delivery then walks *all* districts doing full work — the
    /// biggest write footprint TPC-C can produce, overflowing the POWER8
    /// budgets once the sweep's scale raises the district count.
    pub const DELIVERY_SWEEP: Mix = Mix {
        stock_level: 4,
        delivery: 3,
        order_status: 2,
        payment: 15,
        new_order: 76,
    };

    /// Sum of the shares (must be 100).
    pub fn total(&self) -> u32 {
        self.stock_level + self.delivery + self.order_status + self.payment + self.new_order
    }

    /// Picks a transaction type from a uniform draw in `0..100`.
    ///
    /// # Panics
    ///
    /// Panics if the mix does not sum to 100 or `roll >= 100`.
    pub fn pick(&self, roll: u32) -> TpccTxKind {
        assert_eq!(self.total(), 100, "mix must sum to 100");
        assert!(roll < 100);
        let mut r = roll;
        for (share, kind) in [
            (self.stock_level, TpccTxKind::StockLevel),
            (self.delivery, TpccTxKind::Delivery),
            (self.order_status, TpccTxKind::OrderStatus),
            (self.payment, TpccTxKind::Payment),
            (self.new_order, TpccTxKind::NewOrder),
        ] {
            if r < share {
                return kind;
            }
            r -= share;
        }
        unreachable!("mix sums to 100")
    }
}

/// The five TPC-C transaction profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpccTxKind {
    /// Warehouse-wide stock scan below a threshold (read-only, long).
    StockLevel,
    /// Deliver the oldest undelivered orders of every district (update).
    Delivery,
    /// A customer's latest order and its lines (read-only).
    OrderStatus,
    /// Record a customer payment (update, short).
    Payment,
    /// Place a 5–15-line order (update).
    NewOrder,
}

impl TpccTxKind {
    /// Whether this profile is read-only (runs as a read critical section).
    pub fn is_read_only(self) -> bool {
        matches!(self, TpccTxKind::StockLevel | TpccTxKind::OrderStatus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_sums_to_100() {
        assert_eq!(Mix::PAPER.total(), 100);
    }

    #[test]
    fn delivery_sweep_mix_sums_to_100_and_feeds_delivery() {
        let m = Mix::DELIVERY_SWEEP;
        assert_eq!(m.total(), 100);
        // New-Order must outpace Delivery by a wide margin so districts
        // keep a backlog and every delivery does full-footprint work.
        assert!(m.new_order >= 10 * m.delivery / 2);
        assert!(m.delivery > 0);
    }

    #[test]
    fn range_scan_spec_builds_and_windows_stay_in_range() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let spec = RangeScanSpec {
            capacity: 64,
            population: 32,
            scan_keys: 8,
            update_keys: 4,
            update_pct: 20,
        };
        let htm = htm_sim::Htm::new(htm_sim::HtmConfig::default(), spec.cells_needed(4));
        let list = spec.build(htm.memory(), 4);
        let mut d = htm.direct(0);
        let (len, _) = list.checksum(&mut d).unwrap();
        assert_eq!(len, 32);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let (lo, hi) = spec.write_window(&mut rng);
            assert!(lo >= spec.max_key() / 2, "writer anchored in back half");
            assert!(hi > lo);
            let (rlo, rhi) = spec.read_window(&mut rng);
            assert!(rlo <= spec.max_key() && rhi > rlo);
        }
    }

    #[test]
    fn capacity_sweep_spec_overflows_power8_reads_but_fits_rot_writes() {
        let spec = RangeScanSpec::capacity_sweep();
        // ~3 cells per node → traversing half the list touches well past
        // the 128-line POWER8 read budget…
        let half_traversal_lines = (spec.population / 2) * 3 / 8;
        assert!(half_traversal_lines > 128, "{half_traversal_lines}");
        // …while the update window's write-set fits the ROT budget.
        assert!(spec.update_keys < 128);
    }

    #[test]
    fn mix_pick_boundaries() {
        let m = Mix::PAPER;
        assert_eq!(m.pick(0), TpccTxKind::StockLevel);
        assert_eq!(m.pick(30), TpccTxKind::StockLevel);
        assert_eq!(m.pick(31), TpccTxKind::Delivery);
        assert_eq!(m.pick(34), TpccTxKind::Delivery);
        assert_eq!(m.pick(35), TpccTxKind::OrderStatus);
        assert_eq!(m.pick(38), TpccTxKind::OrderStatus);
        assert_eq!(m.pick(39), TpccTxKind::Payment);
        assert_eq!(m.pick(81), TpccTxKind::Payment);
        assert_eq!(m.pick(82), TpccTxKind::NewOrder);
        assert_eq!(m.pick(99), TpccTxKind::NewOrder);
    }

    #[test]
    fn read_only_classification() {
        assert!(TpccTxKind::StockLevel.is_read_only());
        assert!(TpccTxKind::OrderStatus.is_read_only());
        assert!(!TpccTxKind::Payment.is_read_only());
        assert!(!TpccTxKind::NewOrder.is_read_only());
        assert!(!TpccTxKind::Delivery.is_read_only());
    }

    #[test]
    fn sweep_workload_names_round_trip() {
        for w in SweepWorkload::ALL {
            assert_eq!(SweepWorkload::parse(w.name()), Some(w));
        }
        assert_eq!(SweepWorkload::parse("nope"), None);
        assert_eq!(SweepWorkload::ReadOnly.update_pct(), 0);
        assert_eq!(SweepWorkload::IndependentWrite.update_pct(), 100);
    }

    #[test]
    fn independent_write_partitions_are_disjoint() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let w = SweepWorkload::IndependentWrite;
        let key_space = 8 * 1024;
        let threads = 4;
        let span = key_space / threads as u64;
        for tid in 0..threads {
            let mut rng = StdRng::seed_from_u64(9 + tid as u64);
            for _ in 0..200 {
                let k = w.write_key(&mut rng, tid, threads, key_space);
                assert!(
                    (span * tid as u64..span * (tid as u64 + 1)).contains(&k),
                    "tid {tid} escaped its partition: {k}"
                );
            }
        }
    }

    #[test]
    fn hot_key_draws_concentrate_on_the_hot_set() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let w = SweepWorkload::HotKey;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2_000;
        let hot = (0..n)
            .filter(|_| w.read_key(&mut rng, 8 * 1024) < HOT_KEY_SET)
            .count();
        // ~90 % + the uniform tail's tiny contribution; 1 % floor noise.
        assert!(
            (n * 80 / 100..=n * 98 / 100).contains(&hot),
            "hot fraction {hot}/{n}"
        );
        let uniform = SweepWorkload::Mixed90_10;
        let mut rng = StdRng::seed_from_u64(3);
        let hot_uniform = (0..n)
            .filter(|_| uniform.read_key(&mut rng, 8 * 1024) < HOT_KEY_SET)
            .count();
        assert!(hot_uniform < n / 10, "uniform draws are not concentrated");
    }

    #[test]
    fn sweep_specs_are_buildable() {
        for w in SweepWorkload::ALL {
            let spec = w.spec();
            assert_eq!(spec.update_pct, w.update_pct());
            assert!(spec.key_space >= 2 * spec.population);
            assert!(spec.cells_needed(8) > 0);
        }
    }

    #[test]
    fn hashmap_spec_scales_with_profile() {
        let b = HashmapSpec::paper(&CapacityProfile::BROADWELL_SIM, true, 10);
        let p = HashmapSpec::paper(&CapacityProfile::POWER8_SIM, true, 10);
        assert!(b.population > p.population, "Broadwell holds more items");
        assert_eq!(b.lookups_per_read, 10);
        assert_eq!(
            HashmapSpec::paper(&CapacityProfile::BROADWELL_SIM, false, 10).lookups_per_read,
            1
        );
    }

    #[test]
    fn build_populates_even_keys() {
        let spec = HashmapSpec {
            buckets: 16,
            population: 100,
            key_space: 200,
            lookups_per_read: 1,
            update_pct: 10,
        };
        let htm = htm_sim::Htm::new(htm_sim::HtmConfig::default(), spec.cells_needed(4));
        let map = spec.build(htm.memory(), 4);
        let mut d = htm.direct(0);
        assert!(map.lookup(&mut d, 2).unwrap().is_some());
        assert!(map.lookup(&mut d, 3).unwrap().is_none());
    }
}
