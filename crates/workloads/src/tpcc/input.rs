//! TPC-C input generation: the non-uniform random (NURand) distribution
//! and per-transaction input records, generated *outside* critical
//! sections so retried transactions replay identical inputs.

use rand::Rng;

use super::TpccScale;

/// TPC-C NURand(A, x, y): non-uniform random over `[x, y]`.
///
/// `A` follows the spec's rule of thumb (a power-of-two-ish constant about
/// a quarter of the range); `c` is the per-run constant.
pub fn nurand(rng: &mut impl Rng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

fn nurand_a_for(range: u64) -> u64 {
    // Spec uses A=1023 for 3000 customers and A=8191 for 100k items —
    // roughly range/3 rounded to 2^k - 1.
    let mut a = 1u64;
    while a * 3 < range {
        a = a * 2 + 1;
    }
    a
}

/// Picks a customer id (1-based) with the spec's skew.
pub fn pick_customer(rng: &mut impl Rng, scale: &TpccScale) -> u32 {
    let n = scale.customers_per_district as u64;
    nurand(rng, nurand_a_for(n), 7, 1, n) as u32
}

/// Picks an item id (1-based) with the spec's skew.
pub fn pick_item(rng: &mut impl Rng, scale: &TpccScale) -> u32 {
    let n = scale.items as u64;
    nurand(rng, nurand_a_for(n), 11, 1, n) as u32
}

/// One order line request of a New-Order transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderLineInput {
    /// Requested item (1-based).
    pub item: u32,
    /// Supplying warehouse (1 % remote, per spec).
    pub supply_w: u32,
    /// Quantity 1–10.
    pub quantity: u32,
}

/// Inputs of one New-Order transaction.
#[derive(Debug, Clone)]
pub struct NewOrderInput {
    /// Home warehouse (0-based).
    pub w: u32,
    /// District (0-based).
    pub d: u32,
    /// Customer (1-based).
    pub c: u32,
    /// 5–15 order lines.
    pub lines: Vec<OrderLineInput>,
    /// Entry timestamp.
    pub entry_d: u64,
    /// Spec: 1 % of New-Orders carry an invalid item and roll back.
    pub rollback: bool,
}

/// How a transaction names its customer (spec: 60 % by last name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustomerSelect {
    /// Direct customer id (1-based).
    ById(u32),
    /// Last-name code; resolved to the median matching customer.
    ByLastName(u32),
}

/// Inputs of one Payment transaction.
#[derive(Debug, Clone, Copy)]
pub struct PaymentInput {
    /// Warehouse whose district receives the payment (0-based).
    pub w: u32,
    /// District (0-based).
    pub d: u32,
    /// Customer's warehouse (15 % remote, per spec).
    pub c_w: u32,
    /// Customer's district.
    pub c_d: u32,
    /// Customer selection (60 % by last name, per spec).
    pub select: CustomerSelect,
    /// Amount in cents (100–500000).
    pub amount: u64,
}

/// Inputs of one Order-Status transaction.
#[derive(Debug, Clone, Copy)]
pub struct OrderStatusInput {
    /// Warehouse (0-based).
    pub w: u32,
    /// District (0-based).
    pub d: u32,
    /// Customer selection (60 % by last name, per spec).
    pub select: CustomerSelect,
}

/// Inputs of one Delivery transaction.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryInput {
    /// Warehouse (0-based).
    pub w: u32,
    /// Carrier id 1–10.
    pub carrier: u32,
    /// Delivery timestamp.
    pub delivery_d: u64,
}

/// Inputs of one Stock-Level transaction.
#[derive(Debug, Clone, Copy)]
pub struct StockLevelInput {
    /// Warehouse (0-based).
    pub w: u32,
    /// District (0-based).
    pub d: u32,
    /// Stock threshold 10–20.
    pub threshold: u64,
}

/// Generates New-Order inputs per the spec's distributions.
pub fn gen_new_order(
    rng: &mut impl Rng,
    scale: &TpccScale,
    home_w: u32,
    now: u64,
) -> NewOrderInput {
    let n_lines = rng.gen_range(5..=15);
    let lines = (0..n_lines)
        .map(|_| OrderLineInput {
            item: pick_item(rng, scale),
            supply_w: if scale.warehouses > 1 && rng.gen_range(0..100) == 0 {
                let mut w = rng.gen_range(0..scale.warehouses);
                if w == home_w {
                    w = (w + 1) % scale.warehouses;
                }
                w
            } else {
                home_w
            },
            quantity: rng.gen_range(1..=10),
        })
        .collect();
    NewOrderInput {
        w: home_w,
        d: rng.gen_range(0..scale.districts),
        c: pick_customer(rng, scale),
        lines,
        entry_d: now,
        rollback: rng.gen_range(0..100) == 0,
    }
}

/// Generates Payment inputs (15 % remote customers, per spec).
pub fn gen_payment(rng: &mut impl Rng, scale: &TpccScale, home_w: u32) -> PaymentInput {
    let d = rng.gen_range(0..scale.districts);
    let (c_w, c_d) = if scale.warehouses > 1 && rng.gen_range(0..100) < 15 {
        let mut w = rng.gen_range(0..scale.warehouses);
        if w == home_w {
            w = (w + 1) % scale.warehouses;
        }
        (w, rng.gen_range(0..scale.districts))
    } else {
        (home_w, d)
    };
    PaymentInput {
        w: home_w,
        d,
        c_w,
        c_d,
        select: pick_customer_select(rng, scale),
        amount: rng.gen_range(100..=500_000),
    }
}

/// The spec's 60/40 split between by-last-name and by-id selection.
pub fn pick_customer_select(rng: &mut impl Rng, scale: &TpccScale) -> CustomerSelect {
    if rng.gen_range(0..100) < 60 {
        CustomerSelect::ByLastName(rng.gen_range(0..super::NAME_CODES))
    } else {
        CustomerSelect::ById(pick_customer(rng, scale))
    }
}

/// Generates Order-Status inputs.
pub fn gen_order_status(rng: &mut impl Rng, scale: &TpccScale, home_w: u32) -> OrderStatusInput {
    OrderStatusInput {
        w: home_w,
        d: rng.gen_range(0..scale.districts),
        select: pick_customer_select(rng, scale),
    }
}

/// Generates Delivery inputs.
pub fn gen_delivery(rng: &mut impl Rng, home_w: u32, now: u64) -> DeliveryInput {
    DeliveryInput {
        w: home_w,
        carrier: rng.gen_range(1..=10),
        delivery_d: now,
    }
}

/// Generates Stock-Level inputs.
pub fn gen_stock_level(rng: &mut impl Rng, scale: &TpccScale, home_w: u32) -> StockLevelInput {
    StockLevelInput {
        w: home_w,
        d: rng.gen_range(0..scale.districts),
        threshold: rng.gen_range(10..=20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn scale() -> TpccScale {
        TpccScale {
            warehouses: 4,
            ..TpccScale::default()
        }
    }

    #[test]
    fn nurand_stays_in_range() {
        let mut r = rng();
        for _ in 0..10_000 {
            let v = nurand(&mut r, 255, 7, 1, 300);
            assert!((1..=300).contains(&v));
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // Non-uniformity: the most popular decile should receive clearly
        // more than 10% of draws.
        let mut r = rng();
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            let v = nurand(&mut r, 255, 7, 1, 300);
            counts[((v - 1) * 10 / 300) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 2_000 * 13 / 10, "distribution too flat: {counts:?}");
    }

    #[test]
    fn new_order_inputs_respect_spec_ranges() {
        let mut r = rng();
        let sc = scale();
        for _ in 0..500 {
            let i = gen_new_order(&mut r, &sc, 2, 123);
            assert!((5..=15).contains(&i.lines.len()));
            assert!(i.d < sc.districts);
            assert!((1..=sc.customers_per_district).contains(&i.c));
            for l in &i.lines {
                assert!((1..=sc.items).contains(&l.item));
                assert!((1..=10).contains(&l.quantity));
                assert!(l.supply_w < sc.warehouses);
            }
        }
    }

    #[test]
    fn remote_payments_are_about_15_percent() {
        let mut r = rng();
        let sc = scale();
        let remote = (0..10_000)
            .filter(|_| {
                let p = gen_payment(&mut r, &sc, 1);
                p.c_w != p.w
            })
            .count();
        assert!(
            (1_000..2_200).contains(&remote),
            "remote rate {remote}/10000"
        );
    }

    #[test]
    fn single_warehouse_never_remote() {
        let mut r = rng();
        let sc = TpccScale {
            warehouses: 1,
            ..TpccScale::default()
        };
        for _ in 0..200 {
            let p = gen_payment(&mut r, &sc, 0);
            assert_eq!(p.c_w, 0);
            let o = gen_new_order(&mut r, &sc, 0, 1);
            assert!(o.lines.iter().all(|l| l.supply_w == 0));
        }
    }
}
