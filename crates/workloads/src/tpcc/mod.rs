//! An in-memory TPC-C port over simulated memory (§4.2 of the paper).
//!
//! All nine logical tables are materialized as fixed-width field arrays
//! (the `schema` module); ORDER / ORDER-LINE live in per-district ring buffers and
//! the NEW-ORDER queue is the `[D_NEXT_DELIV_O_ID, D_NEXT_O_ID)` window of
//! each district — behaviourally the per-district FIFO the spec describes.
//! HISTORY rows carry no behaviour and are folded into running counters.
//!
//! As in the paper, the whole database is protected by **one read-write
//! lock**: Stock-Level and Order-Status run as read critical sections,
//! New-Order / Payment / Delivery as write critical sections. Stock-Level
//! scans 20 orders' lines plus their stock rows — the long read-only
//! transaction whose HTM-capacity overflow motivates SpRWL.

pub mod input;
mod schema;
mod txns;

use htm_sim::SimMemory;

use schema::*;

pub use input::{
    gen_delivery, gen_new_order, gen_order_status, gen_payment, gen_stock_level, CustomerSelect,
    DeliveryInput, NewOrderInput, OrderLineInput, OrderStatusInput, PaymentInput, StockLevelInput,
};

/// Scaled-down TPC-C population parameters.
///
/// The spec's 100 k items / 3 k customers per district are scaled by the
/// same ×~128 factor as the capacity profiles, preserving which
/// transactions fit in HTM (Payment, New-Order) and which overflow
/// (Stock-Level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpccScale {
    /// Warehouses (the paper sets this to the maximum thread count).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts: u32,
    /// Customers per district (spec: 3000; scaled).
    pub customers_per_district: u32,
    /// Catalogue items (spec: 100 000; scaled).
    pub items: u32,
    /// Order-ring capacity per district (old orders are reclaimed).
    pub order_ring: u32,
    /// Orders pre-loaded per district (delivered; seeds Stock-Level scans).
    pub initial_orders: u32,
}

impl Default for TpccScale {
    fn default() -> Self {
        Self {
            warehouses: 1,
            districts: 10,
            customers_per_district: 96,
            items: 1024,
            order_ring: 64,
            initial_orders: 30,
        }
    }
}

impl TpccScale {
    /// A scale with the given warehouse count and defaults elsewhere.
    pub fn with_warehouses(warehouses: u32) -> Self {
        Self {
            warehouses,
            ..Self::default()
        }
    }

    /// Simulated-memory cells a database of this scale needs.
    pub fn cells_needed(&self) -> usize {
        let cpl = 8;
        let w = self.warehouses;
        let wd = w * self.districts;
        Table::cells_for(cpl, w, W_FIELDS)
            + Table::cells_for(cpl, wd, D_FIELDS)
            + Table::cells_for(cpl, wd * self.customers_per_district, C_FIELDS)
            + Table::cells_for(cpl, self.items, I_FIELDS)
            + Table::cells_for(cpl, w * self.items, S_FIELDS)
            + Table::cells_for(cpl, wd * self.order_ring, O_FIELDS)
            + Table::cells_for(cpl, wd * self.order_ring * MAX_OL, OL_FIELDS)
            + 4096
    }
}

/// Number of distinct last-name codes (the spec's 1000-value last-name
/// space collapsed to its selectivity-relevant cardinality at our scale).
pub const NAME_CODES: u32 = 100;

/// The TPC-C database.
#[derive(Debug)]
pub struct TpccDb {
    scale: TpccScale,
    warehouse: Table,
    district: Table,
    customer: Table,
    item: Table,
    stock: Table,
    orders: Table,
    order_lines: Table,
    /// Immutable secondary index: customers of each district grouped by
    /// last-name code, sorted by id — names never change in TPC-C, so the
    /// index lives outside the transactional domain, like a precompiled
    /// index structure.
    name_index: Vec<Vec<u32>>,
}

impl TpccDb {
    /// Allocates and populates a database (single-threaded setup).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate scale or if the simulated memory is
    /// exhausted.
    pub fn new(mem: &SimMemory, scale: TpccScale) -> Self {
        assert!(scale.warehouses >= 1 && scale.districts >= 1);
        assert!(scale.initial_orders <= scale.order_ring);
        let wd = scale.warehouses * scale.districts;
        let mut db = Self {
            warehouse: Table::new(mem, scale.warehouses, W_FIELDS),
            district: Table::new(mem, wd, D_FIELDS),
            customer: Table::new(mem, wd * scale.customers_per_district, C_FIELDS),
            item: Table::new(mem, scale.items, I_FIELDS),
            stock: Table::new(mem, scale.warehouses * scale.items, S_FIELDS),
            orders: Table::new(mem, wd * scale.order_ring, O_FIELDS),
            order_lines: Table::new(mem, wd * scale.order_ring * MAX_OL, OL_FIELDS),
            name_index: Vec::new(),
            scale,
        };
        db.load(mem);
        db.build_name_index();
        db
    }

    /// Deterministic last-name code of a customer (immutable attribute).
    pub fn last_name_code(&self, c: u32) -> u32 {
        // A multiplicative scramble so codes are spread, deterministic and
        // independent of district.
        (c.wrapping_mul(2654435761)) % NAME_CODES
    }

    fn build_name_index(&mut self) {
        let wd = self.scale.warehouses * self.scale.districts;
        let mut index = vec![Vec::new(); (wd * NAME_CODES) as usize];
        for dr in 0..wd {
            for c in 1..=self.scale.customers_per_district {
                let code = self.last_name_code(c);
                index[(dr * NAME_CODES + code) as usize].push(c);
            }
        }
        self.name_index = index;
    }

    /// The spec's select-by-last-name rule: take the customer at position
    /// ⌈n/2⌉ (median) of the name-sorted match list; `None` when no
    /// customer of that district bears the name.
    pub fn customer_by_last_name(&self, w: u32, d: u32, code: u32) -> Option<u32> {
        let matches =
            &self.name_index[(self.d_row(w, d) * NAME_CODES + code % NAME_CODES) as usize];
        if matches.is_empty() {
            None
        } else {
            Some(matches[matches.len() / 2])
        }
    }

    /// The scale this database was built with.
    pub fn scale(&self) -> &TpccScale {
        &self.scale
    }

    // ---- row indexing ----

    pub(crate) fn d_row(&self, w: u32, d: u32) -> u32 {
        debug_assert!(w < self.scale.warehouses && d < self.scale.districts);
        w * self.scale.districts + d
    }

    pub(crate) fn c_row(&self, w: u32, d: u32, c: u32) -> u32 {
        debug_assert!((1..=self.scale.customers_per_district).contains(&c));
        self.d_row(w, d) * self.scale.customers_per_district + (c - 1)
    }

    pub(crate) fn s_row(&self, w: u32, i: u32) -> u32 {
        debug_assert!((1..=self.scale.items).contains(&i));
        w * self.scale.items + (i - 1)
    }

    /// Ring slot of order `o_id` in district `(w, d)`.
    pub(crate) fn o_row(&self, w: u32, d: u32, o_id: u64) -> u32 {
        self.d_row(w, d) * self.scale.order_ring + (o_id % self.scale.order_ring as u64) as u32
    }

    pub(crate) fn ol_row(&self, o_row: u32, line: u32) -> u32 {
        debug_assert!(line < MAX_OL);
        o_row * MAX_OL + line
    }

    // ---- population (TPC-C clause 4.3, scaled) ----

    fn load(&self, mem: &SimMemory) {
        let sc = &self.scale;
        let mut seed = 0x7C0F_FEE5u64;
        let mut rnd = move |bound: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % bound
        };
        for i in 1..=sc.items {
            self.item
                .cell(i - 1, I_PRICE)
                .pipe(|c| mem.init_store(c, 100 + rnd(9901))); // $1.00–$100.00
            self.item
                .cell(i - 1, I_DATA)
                .pipe(|c| mem.init_store(c, rnd(10_000)));
        }
        for w in 0..sc.warehouses {
            mem.init_store(self.warehouse.cell(w, W_YTD), 0);
            mem.init_store(self.warehouse.cell(w, W_TAX), rnd(2001)); // 0–20.00 %
            for i in 1..=sc.items {
                let s = self.s_row(w, i);
                mem.init_store(self.stock.cell(s, S_QUANTITY), 10 + rnd(91));
                mem.init_store(self.stock.cell(s, S_YTD), 0);
                mem.init_store(self.stock.cell(s, S_ORDER_CNT), 0);
                mem.init_store(self.stock.cell(s, S_REMOTE_CNT), 0);
            }
            for d in 0..sc.districts {
                let dr = self.d_row(w, d);
                mem.init_store(self.district.cell(dr, D_YTD), 0);
                mem.init_store(self.district.cell(dr, D_TAX), rnd(2001));
                for c in 1..=sc.customers_per_district {
                    let cr = self.c_row(w, d, c);
                    mem.init_store(self.customer.cell(cr, C_BALANCE), BALANCE_OFFSET);
                    mem.init_store(self.customer.cell(cr, C_YTD_PAYMENT), 0);
                    mem.init_store(self.customer.cell(cr, C_PAYMENT_CNT), 0);
                    mem.init_store(self.customer.cell(cr, C_DELIVERY_CNT), 0);
                    mem.init_store(self.customer.cell(cr, C_DISCOUNT), rnd(5001)); // 0–50 %
                    mem.init_store(self.customer.cell(cr, C_LAST_ORDER), 0);
                }
                // Seed delivered orders so Stock-Level has lines to scan.
                for o_id in 1..=sc.initial_orders as u64 {
                    let or = self.o_row(w, d, o_id);
                    let n_lines = 5 + rnd(11) as u32;
                    let c_id = 1 + rnd(sc.customers_per_district as u64);
                    mem.init_store(self.orders.cell(or, O_ID), o_id);
                    mem.init_store(self.orders.cell(or, O_C_ID), c_id);
                    mem.init_store(self.orders.cell(or, O_CARRIER_ID), 1 + rnd(10));
                    mem.init_store(self.orders.cell(or, O_OL_CNT), n_lines as u64);
                    mem.init_store(self.orders.cell(or, O_ENTRY_D), 0);
                    for l in 0..n_lines {
                        let olr = self.ol_row(or, l);
                        mem.init_store(
                            self.order_lines.cell(olr, OL_I_ID),
                            1 + rnd(sc.items as u64),
                        );
                        mem.init_store(self.order_lines.cell(olr, OL_SUPPLY_W_ID), w as u64);
                        mem.init_store(self.order_lines.cell(olr, OL_QUANTITY), 1 + rnd(10));
                        mem.init_store(self.order_lines.cell(olr, OL_AMOUNT), rnd(10_000));
                        mem.init_store(self.order_lines.cell(olr, OL_DELIVERY_D), 1);
                    }
                    mem.init_store(
                        self.customer
                            .cell(self.c_row(w, d, c_id as u32), C_LAST_ORDER),
                        o_id,
                    );
                }
                mem.init_store(
                    self.district.cell(dr, D_NEXT_O_ID),
                    sc.initial_orders as u64 + 1,
                );
                mem.init_store(
                    self.district.cell(dr, D_NEXT_DELIV_O_ID),
                    sc.initial_orders as u64 + 1,
                );
            }
        }
    }

    // ---- consistency probes (TPC-C clause 3.3, used by tests) ----

    /// Consistency condition 1: `W_YTD == Σ D_YTD` for every warehouse.
    pub fn audit_ytd(&self, mem: &SimMemory) -> bool {
        (0..self.scale.warehouses).all(|w| {
            let w_ytd = mem.peek(self.warehouse.cell(w, W_YTD));
            let d_sum: u64 = (0..self.scale.districts)
                .map(|d| mem.peek(self.district.cell(self.d_row(w, d), D_YTD)))
                .sum();
            w_ytd == d_sum
        })
    }

    /// Consistency condition 2-ish: `D_NEXT_DELIV_O_ID <= D_NEXT_O_ID`.
    pub fn audit_order_queues(&self, mem: &SimMemory) -> bool {
        (0..self.scale.warehouses).all(|w| {
            (0..self.scale.districts).all(|d| {
                let dr = self.d_row(w, d);
                mem.peek(self.district.cell(dr, D_NEXT_DELIV_O_ID))
                    <= mem.peek(self.district.cell(dr, D_NEXT_O_ID))
            })
        })
    }
}

/// Tiny pipe helper for the loader.
trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}

impl<T> Pipe for T {}
