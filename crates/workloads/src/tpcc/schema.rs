//! TPC-C table layouts over simulated memory.
//!
//! Rows are fixed-width arrays of 64-bit fields, line-aligned so that
//! transactional footprints count one cache line per row touched — the
//! same granularity real HTM sees. Monetary amounts are in cents, tax
//! rates in basis points; strings (names, addresses) carry no behaviour
//! and are not materialized.

use htm_sim::{CellId, Region, SimMemory};

/// A fixed-width table: `rows × fields`, row stride rounded up to whole
/// cache lines.
#[derive(Debug)]
pub(crate) struct Table {
    region: Region,
    stride: u32,
    fields: u32,
    rows: u32,
}

impl Table {
    pub(crate) fn new(mem: &SimMemory, rows: u32, fields: u32) -> Self {
        let cpl = mem.cells_per_line();
        let stride = fields.div_ceil(cpl) * cpl;
        let region = mem.alloc_line_aligned(rows as usize * stride as usize);
        Self {
            region,
            stride,
            fields,
            rows,
        }
    }

    pub(crate) fn cells_for(mem_cells_per_line: u32, rows: u32, fields: u32) -> usize {
        let stride = fields.div_ceil(mem_cells_per_line) * mem_cells_per_line;
        rows as usize * stride as usize + mem_cells_per_line as usize
    }

    #[inline]
    pub(crate) fn cell(&self, row: u32, field: u32) -> CellId {
        debug_assert!(row < self.rows, "row {row} out of {}", self.rows);
        debug_assert!(field < self.fields, "field {field} out of {}", self.fields);
        self.region
            .cell(row as usize * self.stride as usize + field as usize)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn rows(&self) -> u32 {
        self.rows
    }
}

// ---- field indices ----

/// WAREHOUSE: year-to-date balance (cents).
pub(crate) const W_YTD: u32 = 0;
/// WAREHOUSE: tax rate (basis points).
pub(crate) const W_TAX: u32 = 1;
pub(crate) const W_FIELDS: u32 = 2;

/// DISTRICT: next order id to assign.
pub(crate) const D_NEXT_O_ID: u32 = 0;
/// DISTRICT: oldest undelivered order id (the NEW-ORDER queue head).
pub(crate) const D_NEXT_DELIV_O_ID: u32 = 1;
/// DISTRICT: year-to-date balance (cents).
pub(crate) const D_YTD: u32 = 2;
/// DISTRICT: tax rate (basis points).
pub(crate) const D_TAX: u32 = 3;
pub(crate) const D_FIELDS: u32 = 4;

/// CUSTOMER: balance, offset-encoded (`BALANCE_OFFSET` + cents) so credits
/// and debits stay in unsigned arithmetic.
pub(crate) const C_BALANCE: u32 = 0;
/// CUSTOMER: year-to-date payment total (cents).
pub(crate) const C_YTD_PAYMENT: u32 = 1;
/// CUSTOMER: number of payments.
pub(crate) const C_PAYMENT_CNT: u32 = 2;
/// CUSTOMER: number of deliveries.
pub(crate) const C_DELIVERY_CNT: u32 = 3;
/// CUSTOMER: discount (basis points).
pub(crate) const C_DISCOUNT: u32 = 4;
/// CUSTOMER: the customer's most recent order id (0 = none).
pub(crate) const C_LAST_ORDER: u32 = 5;
pub(crate) const C_FIELDS: u32 = 6;

/// Balance offset keeping customer balances unsigned.
pub(crate) const BALANCE_OFFSET: u64 = 1 << 40;

/// ITEM: price (cents).
pub(crate) const I_PRICE: u32 = 0;
/// ITEM: data signature (for the 1 % "unused/original" flag).
pub(crate) const I_DATA: u32 = 1;
pub(crate) const I_FIELDS: u32 = 2;

/// STOCK: quantity on hand.
pub(crate) const S_QUANTITY: u32 = 0;
/// STOCK: year-to-date quantity sold.
pub(crate) const S_YTD: u32 = 1;
/// STOCK: orders that touched this stock.
pub(crate) const S_ORDER_CNT: u32 = 2;
/// STOCK: remote orders that touched this stock.
pub(crate) const S_REMOTE_CNT: u32 = 3;
pub(crate) const S_FIELDS: u32 = 4;

/// ORDER: order id (to detect ring-slot reuse).
pub(crate) const O_ID: u32 = 0;
/// ORDER: ordering customer.
pub(crate) const O_C_ID: u32 = 1;
/// ORDER: carrier (0 = undelivered).
pub(crate) const O_CARRIER_ID: u32 = 2;
/// ORDER: number of order lines (5–15).
pub(crate) const O_OL_CNT: u32 = 3;
/// ORDER: entry timestamp.
pub(crate) const O_ENTRY_D: u32 = 4;
pub(crate) const O_FIELDS: u32 = 5;

/// ORDER-LINE: item id.
pub(crate) const OL_I_ID: u32 = 0;
/// ORDER-LINE: supplying warehouse.
pub(crate) const OL_SUPPLY_W_ID: u32 = 1;
/// ORDER-LINE: quantity.
pub(crate) const OL_QUANTITY: u32 = 2;
/// ORDER-LINE: amount (cents).
pub(crate) const OL_AMOUNT: u32 = 3;
/// ORDER-LINE: delivery timestamp (0 = undelivered).
pub(crate) const OL_DELIVERY_D: u32 = 4;
pub(crate) const OL_FIELDS: u32 = 5;

/// Maximum order lines per order (TPC-C: 15).
pub(crate) const MAX_OL: u32 = 15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_line_aligned_and_disjoint() {
        let mem = SimMemory::new(4096, 8);
        let t = Table::new(&mem, 10, 5);
        assert_eq!(t.rows(), 10);
        let a = t.cell(0, 0);
        let b = t.cell(1, 0);
        assert_ne!(mem.line_of(a), mem.line_of(b), "rows share a line");
        assert_eq!(mem.line_of(t.cell(3, 0)), mem.line_of(t.cell(3, 4)));
    }

    #[test]
    fn wide_rows_span_multiple_lines() {
        let mem = SimMemory::new(4096, 8);
        let t = Table::new(&mem, 4, 12); // 12 fields -> 2 lines stride
        assert_ne!(mem.line_of(t.cell(0, 0)), mem.line_of(t.cell(0, 11)));
        assert_ne!(mem.line_of(t.cell(0, 11)), mem.line_of(t.cell(1, 0)));
    }

    #[test]
    fn cells_for_matches_actual_allocation() {
        let mem = SimMemory::new(100_000, 8);
        let before = mem.remaining();
        let _t = Table::new(&mem, 100, 5);
        let used = before - mem.remaining();
        assert!(used <= Table::cells_for(8, 100, 5));
    }
}
