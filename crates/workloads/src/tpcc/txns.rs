//! The five TPC-C transaction profiles, written once against
//! [`htm_sim::MemAccess`] so they run speculatively, uninstrumented or
//! under a pessimistic lock — whatever the enclosing `RwSync` scheme picks.

use htm_sim::{MemAccess, TxResult};

use super::input::{
    CustomerSelect, DeliveryInput, NewOrderInput, OrderStatusInput, PaymentInput, StockLevelInput,
};
use super::schema::*;
use super::TpccDb;

impl TpccDb {
    /// Resolves a customer selection: direct id, or the spec's
    /// median-of-matches last-name rule via the immutable name index.
    fn resolve_customer(&self, w: u32, d: u32, select: CustomerSelect) -> Option<u32> {
        match select {
            CustomerSelect::ById(c) => Some(c),
            CustomerSelect::ByLastName(code) => self.customer_by_last_name(w, d, code),
        }
    }

    /// New-Order (update, ~45 reads + ~35 writes): assigns the next order
    /// id, inserts the order and its 5–15 lines, updates stock.
    ///
    /// Returns the order total in cents (0 for the spec's 1 % rollbacks,
    /// which are detected before any write and leave no trace).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn new_order(&self, a: &mut dyn MemAccess, inp: &NewOrderInput) -> TxResult<u64> {
        // The spec's invalid-item case aborts the transaction; validating
        // items first (reads only) lets the rollback leave no trace even
        // on the uninstrumented path.
        if inp.rollback {
            for l in &inp.lines {
                let _ = a.read(self.item.cell(l.item - 1, I_PRICE))?;
            }
            return Ok(0);
        }
        let w_tax = a.read(self.warehouse.cell(inp.w, W_TAX))?;
        let dr = self.d_row(inp.w, inp.d);
        let d_tax = a.read(self.district.cell(dr, D_TAX))?;
        let o_id = a.read(self.district.cell(dr, D_NEXT_O_ID))?;
        a.write(self.district.cell(dr, D_NEXT_O_ID), o_id + 1)?;

        let or = self.o_row(inp.w, inp.d, o_id);
        a.write(self.orders.cell(or, O_ID), o_id)?;
        a.write(self.orders.cell(or, O_C_ID), inp.c as u64)?;
        a.write(self.orders.cell(or, O_CARRIER_ID), 0)?;
        a.write(self.orders.cell(or, O_OL_CNT), inp.lines.len() as u64)?;
        a.write(self.orders.cell(or, O_ENTRY_D), inp.entry_d)?;

        let mut total = 0u64;
        for (idx, l) in inp.lines.iter().enumerate() {
            let price = a.read(self.item.cell(l.item - 1, I_PRICE))?;
            let s = self.s_row(l.supply_w, l.item);
            let qty = a.read(self.stock.cell(s, S_QUANTITY))?;
            let new_qty = if qty >= l.quantity as u64 + 10 {
                qty - l.quantity as u64
            } else {
                qty + 91 - l.quantity as u64
            };
            a.write(self.stock.cell(s, S_QUANTITY), new_qty)?;
            let ytd = a.read(self.stock.cell(s, S_YTD))?;
            a.write(self.stock.cell(s, S_YTD), ytd + l.quantity as u64)?;
            let cnt = a.read(self.stock.cell(s, S_ORDER_CNT))?;
            a.write(self.stock.cell(s, S_ORDER_CNT), cnt + 1)?;
            if l.supply_w != inp.w {
                let rc = a.read(self.stock.cell(s, S_REMOTE_CNT))?;
                a.write(self.stock.cell(s, S_REMOTE_CNT), rc + 1)?;
            }
            let amount = price * l.quantity as u64;
            total += amount;
            let olr = self.ol_row(or, idx as u32);
            a.write(self.order_lines.cell(olr, OL_I_ID), l.item as u64)?;
            a.write(
                self.order_lines.cell(olr, OL_SUPPLY_W_ID),
                l.supply_w as u64,
            )?;
            a.write(self.order_lines.cell(olr, OL_QUANTITY), l.quantity as u64)?;
            a.write(self.order_lines.cell(olr, OL_AMOUNT), amount)?;
            a.write(self.order_lines.cell(olr, OL_DELIVERY_D), 0)?;
        }

        let cr = self.c_row(inp.w, inp.d, inp.c);
        let discount = a.read(self.customer.cell(cr, C_DISCOUNT))?;
        a.write(self.customer.cell(cr, C_LAST_ORDER), o_id)?;
        // total × (1 + w_tax + d_tax) × (1 − discount), in basis points.
        let taxed = total * (10_000 + w_tax + d_tax) / 10_000;
        Ok(taxed * (10_000 - discount) / 10_000)
    }

    /// Payment (update, short): warehouse/district YTD, customer balance.
    /// Returns the customer's new balance (offset-encoded).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn payment(&self, a: &mut dyn MemAccess, inp: &PaymentInput) -> TxResult<u64> {
        let w_ytd = a.read(self.warehouse.cell(inp.w, W_YTD))?;
        a.write(self.warehouse.cell(inp.w, W_YTD), w_ytd + inp.amount)?;
        let dr = self.d_row(inp.w, inp.d);
        let d_ytd = a.read(self.district.cell(dr, D_YTD))?;
        a.write(self.district.cell(dr, D_YTD), d_ytd + inp.amount)?;

        let Some(c) = self.resolve_customer(inp.c_w, inp.c_d, inp.select) else {
            // No customer bears that last name in the district: the
            // payment applies only the warehouse/district legs (the spec
            // guarantees a match at full scale; at reduced scale we keep
            // YTD consistency and return 0).
            return Ok(0);
        };
        let cr = self.c_row(inp.c_w, inp.c_d, c);
        let bal = a.read(self.customer.cell(cr, C_BALANCE))?;
        let new_bal = bal - inp.amount;
        a.write(self.customer.cell(cr, C_BALANCE), new_bal)?;
        let ytd = a.read(self.customer.cell(cr, C_YTD_PAYMENT))?;
        a.write(self.customer.cell(cr, C_YTD_PAYMENT), ytd + inp.amount)?;
        let cnt = a.read(self.customer.cell(cr, C_PAYMENT_CNT))?;
        a.write(self.customer.cell(cr, C_PAYMENT_CNT), cnt + 1)?;
        Ok(new_bal)
    }

    /// Order-Status (read-only): the customer's balance plus their latest
    /// order's lines. Returns `balance + Σ line amounts` as a checksum.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn order_status(&self, a: &mut dyn MemAccess, inp: &OrderStatusInput) -> TxResult<u64> {
        let Some(c) = self.resolve_customer(inp.w, inp.d, inp.select) else {
            return Ok(0);
        };
        let cr = self.c_row(inp.w, inp.d, c);
        let bal = a.read(self.customer.cell(cr, C_BALANCE))?;
        let o_id = a.read(self.customer.cell(cr, C_LAST_ORDER))?;
        if o_id == 0 {
            return Ok(bal);
        }
        let or = self.o_row(inp.w, inp.d, o_id);
        if a.read(self.orders.cell(or, O_ID))? != o_id {
            // The ring slot was reclaimed by a newer order.
            return Ok(bal);
        }
        let n = a.read(self.orders.cell(or, O_OL_CNT))?;
        let mut sum = 0;
        for l in 0..n.min(MAX_OL as u64) as u32 {
            sum += a.read(self.order_lines.cell(self.ol_row(or, l), OL_AMOUNT))?;
        }
        Ok(bal + sum)
    }

    /// Delivery (update): delivers the oldest undelivered order of every
    /// district — sets the carrier, stamps the lines, credits the customer.
    /// Returns the number of orders delivered.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn delivery(&self, a: &mut dyn MemAccess, inp: &DeliveryInput) -> TxResult<u64> {
        let mut delivered = 0;
        for d in 0..self.scale.districts {
            let dr = self.d_row(inp.w, d);
            let next_deliv = a.read(self.district.cell(dr, D_NEXT_DELIV_O_ID))?;
            let next_o = a.read(self.district.cell(dr, D_NEXT_O_ID))?;
            if next_deliv >= next_o {
                continue; // no undelivered orders in this district
            }
            let or = self.o_row(inp.w, d, next_deliv);
            if a.read(self.orders.cell(or, O_ID))? != next_deliv {
                // Slot reclaimed before delivery caught up: skip past it.
                a.write(self.district.cell(dr, D_NEXT_DELIV_O_ID), next_deliv + 1)?;
                continue;
            }
            a.write(self.orders.cell(or, O_CARRIER_ID), inp.carrier as u64)?;
            let n = a.read(self.orders.cell(or, O_OL_CNT))?;
            let mut sum = 0;
            for l in 0..n.min(MAX_OL as u64) as u32 {
                let olr = self.ol_row(or, l);
                sum += a.read(self.order_lines.cell(olr, OL_AMOUNT))?;
                a.write(self.order_lines.cell(olr, OL_DELIVERY_D), inp.delivery_d)?;
            }
            let c = a.read(self.orders.cell(or, O_C_ID))? as u32;
            let cr = self.c_row(inp.w, d, c);
            let bal = a.read(self.customer.cell(cr, C_BALANCE))?;
            a.write(self.customer.cell(cr, C_BALANCE), bal + sum)?;
            let cnt = a.read(self.customer.cell(cr, C_DELIVERY_CNT))?;
            a.write(self.customer.cell(cr, C_DELIVERY_CNT), cnt + 1)?;
            a.write(self.district.cell(dr, D_NEXT_DELIV_O_ID), next_deliv + 1)?;
            delivered += 1;
        }
        Ok(delivered)
    }

    /// Stock-Level (read-only, **long**): scans the last 20 orders of a
    /// district and counts distinct items whose stock is below the
    /// threshold. Its footprint — hundreds of cache lines — is exactly the
    /// kind of reader that overflows HTM capacity and motivates SpRWL.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn stock_level(&self, a: &mut dyn MemAccess, inp: &StockLevelInput) -> TxResult<u64> {
        let dr = self.d_row(inp.w, inp.d);
        let next_o = a.read(self.district.cell(dr, D_NEXT_O_ID))?;
        let first = next_o.saturating_sub(20).max(1);
        let mut seen: Vec<u32> = Vec::with_capacity(20 * MAX_OL as usize);
        let mut low = 0;
        for o_id in first..next_o {
            let or = self.o_row(inp.w, inp.d, o_id);
            if a.read(self.orders.cell(or, O_ID))? != o_id {
                continue; // reclaimed slot
            }
            let n = a.read(self.orders.cell(or, O_OL_CNT))?;
            for l in 0..n.min(MAX_OL as u64) as u32 {
                let item = a.read(self.order_lines.cell(self.ol_row(or, l), OL_I_ID))? as u32;
                if item == 0 || seen.contains(&item) {
                    continue;
                }
                seen.push(item);
                let qty = a.read(self.stock.cell(self.s_row(inp.w, item), S_QUANTITY))?;
                if qty < inp.threshold {
                    low += 1;
                }
            }
        }
        Ok(low)
    }
}

#[cfg(test)]
mod tests {
    use super::super::input::*;
    use super::super::{TpccDb, TpccScale};
    #[allow(unused_imports)]
    use super::CustomerSelect as _;
    use htm_sim::{CapacityProfile, Htm, HtmConfig};
    use rand::SeedableRng;

    fn setup(warehouses: u32) -> (Htm, TpccDb) {
        let scale = TpccScale::with_warehouses(warehouses);
        let htm = Htm::new(
            HtmConfig {
                max_threads: 8,
                capacity: CapacityProfile::UNBOUNDED,
                ..HtmConfig::default()
            },
            scale.cells_needed(),
        );
        let db = TpccDb::new(htm.memory(), scale);
        (htm, db)
    }

    #[test]
    fn loaded_database_is_consistent() {
        let (htm, db) = setup(2);
        assert!(db.audit_ytd(htm.memory()));
        assert!(db.audit_order_queues(htm.memory()));
    }

    #[test]
    fn payment_maintains_ytd_consistency() {
        let (htm, db) = setup(1);
        let mut d = htm.direct(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let inp = gen_payment(&mut rng, db.scale(), 0);
            db.payment(&mut d, &inp).unwrap();
        }
        assert!(db.audit_ytd(htm.memory()));
    }

    #[test]
    fn new_order_assigns_sequential_ids_and_totals() {
        let (htm, db) = setup(1);
        let mut d = htm.direct(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut totals = 0;
        for _ in 0..30 {
            let mut inp = gen_new_order(&mut rng, db.scale(), 0, 7);
            inp.rollback = false;
            totals += db.new_order(&mut d, &inp).unwrap();
        }
        assert!(totals > 0);
        assert!(db.audit_order_queues(htm.memory()));
    }

    #[test]
    fn rollback_new_orders_leave_no_trace() {
        let (htm, db) = setup(1);
        let mut d = htm.direct(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let before: Vec<u64> = (0..db.scale().districts)
            .map(|dd| {
                htm.memory().peek(
                    db.district
                        .cell(db.d_row(0, dd), super::super::schema::D_NEXT_O_ID),
                )
            })
            .collect();
        let mut inp = gen_new_order(&mut rng, db.scale(), 0, 7);
        inp.rollback = true;
        assert_eq!(db.new_order(&mut d, &inp).unwrap(), 0);
        let after: Vec<u64> = (0..db.scale().districts)
            .map(|dd| {
                htm.memory().peek(
                    db.district
                        .cell(db.d_row(0, dd), super::super::schema::D_NEXT_O_ID),
                )
            })
            .collect();
        assert_eq!(before, after, "rolled-back order consumed an id");
    }

    #[test]
    fn payment_by_last_name_hits_the_median_match() {
        let (htm, db) = setup(1);
        let mut d = htm.direct(0);
        // Find a code with at least one match in district 0.
        let code = (0..super::super::NAME_CODES)
            .find(|&code| db.customer_by_last_name(0, 0, code).is_some())
            .expect("some code must match");
        let c = db.customer_by_last_name(0, 0, code).unwrap();
        let inp = PaymentInput {
            w: 0,
            d: 0,
            c_w: 0,
            c_d: 0,
            select: CustomerSelect::ByLastName(code),
            amount: 1000,
        };
        let bal_before = htm.memory().peek(
            db.customer
                .cell(db.c_row(0, 0, c), super::super::schema::C_BALANCE),
        );
        db.payment(&mut d, &inp).unwrap();
        let bal_after = htm.memory().peek(
            db.customer
                .cell(db.c_row(0, 0, c), super::super::schema::C_BALANCE),
        );
        assert_eq!(bal_before - bal_after, 1000, "median match was debited");
        assert!(db.audit_ytd(htm.memory()));
    }

    #[test]
    fn name_index_is_consistent_with_codes() {
        let (_htm, db) = setup(1);
        for code in 0..super::super::NAME_CODES {
            if let Some(c) = db.customer_by_last_name(0, 3, code) {
                assert_eq!(db.last_name_code(c), code);
            }
        }
        // Every customer is reachable through their own code's list.
        for c in 1..=db.scale().customers_per_district {
            let code = db.last_name_code(c);
            assert!(
                db.customer_by_last_name(0, 0, code).is_some(),
                "customer {c}'s code {code} has no matches"
            );
        }
    }

    #[test]
    fn order_status_reads_the_last_order() {
        let (htm, db) = setup(1);
        let mut d = htm.direct(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut inp = gen_new_order(&mut rng, db.scale(), 0, 7);
        inp.rollback = false;
        db.new_order(&mut d, &inp).unwrap();
        let os = OrderStatusInput {
            w: 0,
            d: inp.d,
            select: super::super::input::CustomerSelect::ById(inp.c),
        };
        let checksum = db.order_status(&mut d, &os).unwrap();
        assert!(checksum > 0);
    }

    #[test]
    fn delivery_credits_customers_and_advances_the_queue() {
        let (htm, db) = setup(1);
        let mut d = htm.direct(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // Create undelivered orders in every district.
        for dd in 0..db.scale().districts {
            let mut inp = gen_new_order(&mut rng, db.scale(), 0, 7);
            inp.d = dd;
            inp.rollback = false;
            db.new_order(&mut d, &inp).unwrap();
        }
        let delivered = db.delivery(&mut d, &gen_delivery(&mut rng, 0, 8)).unwrap();
        assert_eq!(delivered, db.scale().districts as u64);
        // A second delivery finds nothing new.
        let again = db.delivery(&mut d, &gen_delivery(&mut rng, 0, 9)).unwrap();
        assert_eq!(again, 0);
        assert!(db.audit_order_queues(htm.memory()));
    }

    #[test]
    fn stock_level_counts_low_stock_items() {
        let (htm, db) = setup(1);
        let mut d = htm.direct(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let inp = gen_stock_level(&mut rng, db.scale(), 0);
        let low = db.stock_level(&mut d, &inp).unwrap();
        // The loader seeds quantities in 10..=100 and thresholds are
        // 10..=20, so the count is bounded by the distinct items scanned.
        assert!(low <= 20 * super::super::schema::MAX_OL as u64);
        let _ = htm;
    }

    #[test]
    fn stock_level_footprint_exceeds_htm_capacity() {
        // The motivating property: Stock-Level overflows both simulated
        // capacity profiles when run as a hardware transaction.
        let scale = TpccScale::with_warehouses(1);
        let htm = Htm::new(
            HtmConfig {
                max_threads: 2,
                capacity: CapacityProfile::POWER8_SIM,
                ..HtmConfig::default()
            },
            scale.cells_needed(),
        );
        let db = TpccDb::new(htm.memory(), scale);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let inp = gen_stock_level(&mut rng, db.scale(), 0);
        let mut ctx = htm.thread(0);
        let err = ctx
            .txn(htm_sim::TxKind::Htm, |tx| db.stock_level(tx, &inp))
            .unwrap_err();
        assert_eq!(err, htm_sim::Abort::CapacityRead);
    }

    #[test]
    fn mixed_workload_preserves_invariants() {
        let (htm, db) = setup(2);
        let mut d = htm.direct(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        use sprwl_workloads_mix_shim::*;
        run_mix(&htm, &db, &mut d, &mut rng, 300);
        assert!(db.audit_ytd(htm.memory()));
        assert!(db.audit_order_queues(htm.memory()));
    }

    /// Local helper emulating the harness's transaction dispatch.
    mod sprwl_workloads_mix_shim {
        use super::super::super::{input::*, TpccDb};
        use crate::spec::{Mix, TpccTxKind};
        use htm_sim::Htm;
        use rand::Rng;

        pub fn run_mix(
            htm: &Htm,
            db: &TpccDb,
            d: &mut htm_sim::Direct<'_>,
            rng: &mut impl Rng,
            ops: usize,
        ) {
            let _ = htm;
            for _ in 0..ops {
                let w = rng.gen_range(0..db.scale().warehouses);
                match Mix::PAPER.pick(rng.gen_range(0..100)) {
                    TpccTxKind::StockLevel => {
                        let i = gen_stock_level(rng, db.scale(), w);
                        db.stock_level(d, &i).unwrap();
                    }
                    TpccTxKind::Delivery => {
                        let i = gen_delivery(rng, w, 1);
                        db.delivery(d, &i).unwrap();
                    }
                    TpccTxKind::OrderStatus => {
                        let i = gen_order_status(rng, db.scale(), w);
                        db.order_status(d, &i).unwrap();
                    }
                    TpccTxKind::Payment => {
                        let i = gen_payment(rng, db.scale(), w);
                        db.payment(d, &i).unwrap();
                    }
                    TpccTxKind::NewOrder => {
                        let i = gen_new_order(rng, db.scale(), w, 1);
                        db.new_order(d, &i).unwrap();
                    }
                }
            }
        }
    }
}
