//! # sprwl-workloads — benchmarks the SpRWL paper evaluates on
//!
//! Two workloads, both built from scratch over [`htm_sim`]'s simulated
//! memory so that transactional footprints behave like the originals:
//!
//! * [`hashmap::SimHashMap`] — the §4.1 sensitivity-analysis
//!   micro-benchmark: a chained hashmap under one read-write lock, with
//!   configurable reader size (1 or 10 lookups per read critical section)
//!   and update percentage.
//! * [`sortedlist::SortedList`] — a sorted linked list with range queries,
//!   the purest form of the "long traversals" the paper's introduction
//!   motivates SpRWL with.
//! * [`tpcc`] — an in-memory TPC-C port (§4.2): all nine tables, all five
//!   transaction profiles, the standard mix, adapted — exactly as the
//!   paper did — to run each transaction under a single global read-write
//!   lock (read-only Stock-Level/Order-Status as read critical sections).
//!
//! Plus the [`alloc::Slab`] node allocator both build on, the [`spec`]
//! module describing workload mixes for the benchmark harness, and the
//! [`redis`] module: a deterministic redis-benchmark-shaped operation
//! generator (GET/SET/MSET mix, `key:{rand}` keyspace, payload sizes,
//! uniform or zipfian popularity) driving the `sprwl-server` KV service.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod alloc;
pub mod hashmap;
pub mod redis;
pub mod sortedlist;
pub mod spec;
pub mod tpcc;

pub use hashmap::SimHashMap;
pub use redis::{RedisGen, RedisOp, RedisSpec};
pub use sortedlist::SortedList;
pub use spec::{HashmapSpec, Mix, RangeScanSpec, SweepWorkload};
