//! The concurrent-hashmap micro-benchmark of the paper's sensitivity
//! analysis (§4.1): a bucketed, chained hashmap protected by one read-write
//! lock, with `lookup` / `insert` / `delete` operations. Read critical
//! sections execute 1 or 10 lookups; write critical sections one
//! insert-or-delete.
//!
//! Everything — bucket heads, chain nodes, the node allocator — lives in
//! simulated memory so that transactional footprints (and therefore HTM
//! capacity aborts) scale with chain length exactly as the real benchmark's
//! footprints scale with table population.

use htm_sim::{MemAccess, Region, SimMemory, TxResult};

use crate::alloc::{NodeRef, Slab};

/// Node layout: `[next, key, value]`.
const F_NEXT: u32 = 0;
const F_KEY: u32 = 1;
const F_VALUE: u32 = 2;
const NODE_CELLS: u32 = 3;

/// A chained hashmap in simulated memory.
#[derive(Debug)]
pub struct SimHashMap {
    buckets: Region,
    n_buckets: u64,
    slab: Slab,
    n_threads: usize,
}

impl SimHashMap {
    /// Creates a map with `n_buckets` chains and room for `capacity` items,
    /// shared by `n_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes or if the simulated memory is exhausted.
    pub fn new(mem: &SimMemory, n_buckets: usize, capacity: u32, n_threads: usize) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        let buckets = mem.alloc_line_aligned(n_buckets);
        for c in buckets.iter() {
            mem.init_store(c, 0);
        }
        Self {
            buckets,
            n_buckets: n_buckets as u64,
            slab: Slab::new(mem, NODE_CELLS, capacity, n_threads),
            n_threads,
        }
    }

    /// Cells needed for a map of the given shape (for sizing `SimMemory`).
    pub fn cells_needed(n_buckets: usize, capacity: u32, n_threads: usize) -> usize {
        // buckets (line aligned) + nodes + free-list heads (padded) + slack
        n_buckets + 8 + capacity as usize * NODE_CELLS as usize + 8 + n_threads * 8 + 64
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n_buckets) as usize
    }

    /// Looks up `key`; `Ok(Some(value))` when present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn lookup(&self, a: &mut dyn MemAccess, key: u64) -> TxResult<Option<u64>> {
        let mut cur = NodeRef::decode(a.read(self.buckets.cell(self.bucket_of(key)))?);
        while let Some(node) = cur {
            if a.read(self.slab.cell(node, F_KEY))? == key {
                return Ok(Some(a.read(self.slab.cell(node, F_VALUE))?));
            }
            cur = NodeRef::decode(a.read(self.slab.cell(node, F_NEXT))?);
        }
        Ok(None)
    }

    /// Non-transactional lookup through [`SimMemory::peek`], for post-run
    /// oracles (e.g. dumping a KV store's final contents after every
    /// worker joined). Only meaningful while no thread is mutating the map.
    pub fn lookup_peek(&self, mem: &SimMemory, key: u64) -> Option<u64> {
        let mut cur = NodeRef::decode(mem.peek(self.buckets.cell(self.bucket_of(key))));
        while let Some(node) = cur {
            if mem.peek(self.slab.cell(node, F_KEY)) == key {
                return Some(mem.peek(self.slab.cell(node, F_VALUE)));
            }
            cur = NodeRef::decode(mem.peek(self.slab.cell(node, F_NEXT)));
        }
        None
    }

    /// Inserts `key → value`; updates in place when present. Returns `true`
    /// when a new node was added, `false` on update or when the slab is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert(
        &self,
        a: &mut dyn MemAccess,
        tid: usize,
        key: u64,
        value: u64,
    ) -> TxResult<bool> {
        let head = self.buckets.cell(self.bucket_of(key));
        // Update in place if present.
        let mut cur = NodeRef::decode(a.read(head)?);
        while let Some(node) = cur {
            if a.read(self.slab.cell(node, F_KEY))? == key {
                a.write(self.slab.cell(node, F_VALUE), value)?;
                return Ok(false);
            }
            cur = NodeRef::decode(a.read(self.slab.cell(node, F_NEXT))?);
        }
        // Head insertion.
        let Some(node) = self.slab.alloc(a, tid, self.n_threads)? else {
            return Ok(false);
        };
        let old_head = a.read(head)?;
        a.write(self.slab.cell(node, F_KEY), key)?;
        a.write(self.slab.cell(node, F_VALUE), value)?;
        a.write(self.slab.cell(node, F_NEXT), old_head)?;
        a.write(head, node.encode())?;
        Ok(true)
    }

    /// Removes `key`; returns `true` when it was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn delete(&self, a: &mut dyn MemAccess, tid: usize, key: u64) -> TxResult<bool> {
        let head = self.buckets.cell(self.bucket_of(key));
        let mut prev: Option<NodeRef> = None;
        let mut cur = NodeRef::decode(a.read(head)?);
        while let Some(node) = cur {
            let next = a.read(self.slab.cell(node, F_NEXT))?;
            if a.read(self.slab.cell(node, F_KEY))? == key {
                match prev {
                    None => a.write(head, next)?,
                    Some(p) => a.write(self.slab.cell(p, F_NEXT), next)?,
                }
                self.slab.free(a, tid, node)?;
                return Ok(true);
            }
            prev = Some(node);
            cur = NodeRef::decode(next);
        }
        Ok(false)
    }

    /// Pre-populates the map (single-threaded, untracked via `a`).
    ///
    /// # Errors
    ///
    /// Propagates aborts if `a` is transactional (use an untracked
    /// accessor during setup).
    ///
    /// # Panics
    ///
    /// Panics if the slab cannot hold `keys`.
    pub fn populate(&self, a: &mut dyn MemAccess, keys: impl Iterator<Item = u64>) -> TxResult<()> {
        for key in keys {
            let added = self.insert(a, 0, key, key ^ 0xABCD)?;
            assert!(added, "slab exhausted during population");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{CapacityProfile, Htm, HtmConfig, TxKind};

    fn setup(buckets: usize, cap: u32) -> (Htm, SimHashMap) {
        let cells = SimHashMap::cells_needed(buckets, cap, 4) + 1024;
        let htm = Htm::new(
            HtmConfig {
                max_threads: 4,
                capacity: CapacityProfile::UNBOUNDED,
                ..HtmConfig::default()
            },
            cells,
        );
        let map = SimHashMap::new(htm.memory(), buckets, cap, 4);
        (htm, map)
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let (htm, map) = setup(8, 64);
        let mut d = htm.direct(0);
        assert_eq!(map.lookup(&mut d, 5).unwrap(), None);
        assert!(map.insert(&mut d, 0, 5, 500).unwrap());
        assert_eq!(map.lookup(&mut d, 5).unwrap(), Some(500));
        assert!(!map.insert(&mut d, 0, 5, 501).unwrap(), "update in place");
        assert_eq!(map.lookup(&mut d, 5).unwrap(), Some(501));
        assert!(map.delete(&mut d, 0, 5).unwrap());
        assert_eq!(map.lookup(&mut d, 5).unwrap(), None);
        assert!(!map.delete(&mut d, 0, 5).unwrap());
    }

    #[test]
    fn colliding_keys_chain_correctly() {
        let (htm, map) = setup(1, 64); // everything collides
        let mut d = htm.direct(0);
        for k in 0..20u64 {
            assert!(map.insert(&mut d, 0, k, k * 10).unwrap());
        }
        for k in 0..20u64 {
            assert_eq!(map.lookup(&mut d, k).unwrap(), Some(k * 10));
        }
        // Delete middle, head-chain and tail-chain entries.
        for k in [10u64, 19, 0] {
            assert!(map.delete(&mut d, 0, k).unwrap());
            assert_eq!(map.lookup(&mut d, k).unwrap(), None);
        }
        for k in (1..19u64).filter(|k| *k != 10) {
            assert_eq!(map.lookup(&mut d, k).unwrap(), Some(k * 10), "key {k}");
        }
    }

    #[test]
    fn matches_std_hashmap_model() {
        let (htm, map) = setup(16, 256);
        let mut d = htm.direct(0);
        let mut model = std::collections::HashMap::new();
        let mut seed = 0xDEADBEEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..2000 {
            let k = next() % 64;
            match next() % 3 {
                0 => {
                    let v = next();
                    map.insert(&mut d, 0, k, v).unwrap();
                    model.insert(k, v);
                }
                1 => {
                    assert_eq!(
                        map.delete(&mut d, 0, k).unwrap(),
                        model.remove(&k).is_some()
                    );
                }
                _ => {
                    assert_eq!(map.lookup(&mut d, k).unwrap(), model.get(&k).copied());
                }
            }
        }
    }

    #[test]
    fn population_seeds_expected_values() {
        let (htm, map) = setup(32, 128);
        let mut d = htm.direct(0);
        map.populate(&mut d, 0..100).unwrap();
        for k in 0..100u64 {
            assert_eq!(map.lookup(&mut d, k).unwrap(), Some(k ^ 0xABCD));
        }
    }

    #[test]
    fn aborted_insert_leaves_no_trace() {
        let (htm, map) = setup(8, 16);
        let mut ctx = htm.thread(0);
        let _ = ctx.txn(TxKind::Htm, |tx| {
            map.insert(tx, 0, 7, 70)?;
            tx.abort::<()>(1)
        });
        let mut d = htm.direct(0);
        assert_eq!(map.lookup(&mut d, 7).unwrap(), None);
        // Slab capacity intact.
        let mut added = 0;
        for k in 0..16 {
            if map.insert(&mut d, 0, k, 0).unwrap() {
                added += 1;
            }
        }
        assert_eq!(added, 16);
    }

    #[test]
    fn concurrent_transactional_updates_keep_model_consistency() {
        const THREADS: usize = 4;
        let (htm, map) = setup(16, 4096);
        // Each thread owns a disjoint key range; at the end all its keys
        // must be present with its value.
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let (htm, map) = (&htm, &map);
                s.spawn(move || {
                    let mut ctx = htm.thread(tid);
                    for k in 0..100u64 {
                        let key = (tid as u64) << 32 | k;
                        loop {
                            let done = ctx.txn(TxKind::Htm, |tx| {
                                map.insert(tx, tid, key, tid as u64)?;
                                Ok(())
                            });
                            if done.is_ok() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let mut d = htm.direct(0);
        for tid in 0..THREADS {
            for k in 0..100u64 {
                let key = (tid as u64) << 32 | k;
                assert_eq!(map.lookup(&mut d, key).unwrap(), Some(tid as u64));
            }
        }
    }
}
