//! A slab allocator over simulated memory.
//!
//! Dynamic structures (hashmap chains) need nodes allocated and freed from
//! inside critical sections. The allocator state lives in simulated memory
//! cells, so allocation is part of the transactional footprint — exactly as
//! on real hardware. Free lists are per-thread to avoid manufacturing
//! contention the paper's workloads (which use per-thread `malloc` arenas)
//! would not have.

use htm_sim::{CellId, MemAccess, Region, SimMemory, TxResult};

/// A handle to one slab node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(u32);

impl NodeRef {
    /// Encoded form for storing in cells: index + 1, so 0 means "null".
    pub fn encode(self) -> u64 {
        self.0 as u64 + 1
    }

    /// Decodes a cell value; 0 is `None`.
    pub fn decode(word: u64) -> Option<NodeRef> {
        if word == 0 {
            None
        } else {
            Some(NodeRef((word - 1) as u32))
        }
    }
}

/// Fixed-size-node slab with per-thread free lists, all in simulated memory.
#[derive(Debug)]
pub struct Slab {
    nodes: Region,
    node_cells: u32,
    capacity: u32,
    /// Per-thread free-list heads, each on its own line.
    heads: Vec<CellId>,
}

impl Slab {
    /// Creates a slab of `capacity` nodes of `node_cells` cells each, with
    /// free lists for `n_threads` threads, and links every node onto the
    /// free lists round-robin.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes or if the simulated memory is exhausted.
    pub fn new(mem: &SimMemory, node_cells: u32, capacity: u32, n_threads: usize) -> Self {
        assert!(node_cells >= 1, "nodes need at least one cell");
        assert!(capacity >= 1, "capacity must be positive");
        assert!(n_threads >= 1, "need at least one thread");
        let nodes = mem.alloc_line_aligned(capacity as usize * node_cells as usize);
        let heads = mem.alloc_padded(n_threads);
        let slab = Self {
            nodes,
            node_cells,
            capacity,
            heads,
        };
        // Build the free lists with raw initialization stores (pre-sharing).
        let mut list_heads = vec![0u64; n_threads];
        for i in (0..capacity).rev() {
            let t = (i as usize) % n_threads;
            let node = NodeRef(i);
            // The next pointer lives in the node's first cell while free.
            mem.init_store(slab.next_cell(node), list_heads[t]);
            list_heads[t] = node.encode();
        }
        for (t, &h) in list_heads.iter().enumerate() {
            mem.init_store(slab.heads[t], h);
        }
        slab
    }

    /// Total node capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The `field`-th cell of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `field >= node_cells`.
    pub fn cell(&self, node: NodeRef, field: u32) -> CellId {
        assert!(field < self.node_cells, "field {field} out of node");
        self.nodes
            .cell(node.0 as usize * self.node_cells as usize + field as usize)
    }

    fn next_cell(&self, node: NodeRef) -> CellId {
        self.cell(node, 0)
    }

    /// Allocates a node from `tid`'s free list, stealing from other lists
    /// when empty. Returns `None` only when the whole slab is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn alloc(
        &self,
        a: &mut dyn MemAccess,
        tid: usize,
        n_threads: usize,
    ) -> TxResult<Option<NodeRef>> {
        for k in 0..n_threads {
            let head = self.heads[(tid + k) % n_threads];
            let h = a.read(head)?;
            if let Some(node) = NodeRef::decode(h) {
                let next = a.read(self.next_cell(node))?;
                a.write(head, next)?;
                return Ok(Some(node));
            }
        }
        Ok(None)
    }

    /// Returns `node` to `tid`'s free list.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn free(&self, a: &mut dyn MemAccess, tid: usize, node: NodeRef) -> TxResult<()> {
        let head = self.heads[tid % self.heads.len()];
        let h = a.read(head)?;
        a.write(self.next_cell(node), h)?;
        a.write(head, node.encode())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{Htm, HtmConfig, TxKind};

    fn setup(capacity: u32, threads: usize) -> (Htm, Slab) {
        let htm = Htm::new(
            HtmConfig {
                max_threads: threads.max(2),
                capacity: htm_sim::CapacityProfile::UNBOUNDED,
                ..HtmConfig::default()
            },
            256 * 1024,
        );
        let slab = Slab::new(htm.memory(), 3, capacity, threads);
        (htm, slab)
    }

    #[test]
    fn noderef_encoding_roundtrips() {
        assert_eq!(NodeRef::decode(0), None);
        let n = NodeRef(7);
        assert_eq!(NodeRef::decode(n.encode()), Some(n));
    }

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let (htm, slab) = setup(8, 2);
        let mut d = htm.direct(0);
        let mut nodes = Vec::new();
        for _ in 0..8 {
            nodes.push(slab.alloc(&mut d, 0, 2).unwrap().expect("capacity left"));
        }
        assert_eq!(slab.alloc(&mut d, 0, 2).unwrap(), None, "exhausted");
        for n in nodes {
            slab.free(&mut d, 0, n).unwrap();
        }
        // All capacity available again.
        for _ in 0..8 {
            assert!(slab.alloc(&mut d, 0, 2).unwrap().is_some());
        }
    }

    #[test]
    fn allocations_are_distinct() {
        let (htm, slab) = setup(16, 4);
        let mut d = htm.direct(0);
        let mut seen = std::collections::HashSet::new();
        while let Some(n) = slab.alloc(&mut d, 0, 4).unwrap() {
            assert!(seen.insert(n), "double allocation of {n:?}");
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn node_fields_are_disjoint_cells() {
        let (_htm, slab) = setup(4, 1);
        let a = NodeRef(0);
        let b = NodeRef(1);
        let mut cells = std::collections::HashSet::new();
        for f in 0..3 {
            assert!(cells.insert(slab.cell(a, f)));
            assert!(cells.insert(slab.cell(b, f)));
        }
    }

    #[test]
    fn transactional_alloc_rolls_back_on_abort() {
        let (htm, slab) = setup(4, 1);
        let mut ctx = htm.thread(0);
        let err = ctx
            .txn(TxKind::Htm, |tx| {
                let n = slab.alloc(tx, 0, 1)?.unwrap();
                let _ = n;
                tx.abort::<()>(9)
            })
            .unwrap_err();
        assert_eq!(err, htm_sim::Abort::Explicit(9));
        // The node is still free: we can allocate all 4.
        let mut d = htm.direct(0);
        for _ in 0..4 {
            assert!(slab.alloc(&mut d, 0, 1).unwrap().is_some());
        }
    }

    #[test]
    fn stealing_crosses_thread_lists() {
        let (htm, slab) = setup(4, 4); // one node per thread list
        let mut d = htm.direct(0);
        // Thread 0 can allocate all 4 nodes by stealing.
        for _ in 0..4 {
            assert!(slab.alloc(&mut d, 0, 4).unwrap().is_some());
        }
        assert_eq!(slab.alloc(&mut d, 0, 4).unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "out of node")]
    fn field_bounds_are_checked() {
        let (_htm, slab) = setup(2, 1);
        let _ = slab.cell(NodeRef(0), 3);
    }
}
