//! A sorted singly-linked list with range queries — the paper's
//! introduction motivates SpRWL with "long read-only operations, such as
//! range queries and long traversals", and this structure is their purest
//! form: a range query traverses a prefix of the list (unbounded
//! footprint), while inserts and removes touch a handful of nodes.
//!
//! Like the hashmap, everything lives in simulated memory so footprints
//! drive real capacity aborts.

use htm_sim::{MemAccess, Region, SimMemory, TxResult};

use crate::alloc::{NodeRef, Slab};

/// Node layout: `[next, key, value]`.
const F_NEXT: u32 = 0;
const F_KEY: u32 = 1;
const F_VALUE: u32 = 2;
const NODE_CELLS: u32 = 3;

/// A sorted linked list (ascending keys, no duplicates) in simulated
/// memory.
#[derive(Debug)]
pub struct SortedList {
    /// Head pointer cell (encoded `NodeRef`).
    head: Region,
    slab: Slab,
    n_threads: usize,
}

impl SortedList {
    /// Creates an empty list with room for `capacity` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn new(mem: &SimMemory, capacity: u32, n_threads: usize) -> Self {
        let head = mem.alloc_line_aligned(1);
        mem.init_store(head.cell(0), 0);
        Self {
            head,
            slab: Slab::new(mem, NODE_CELLS, capacity, n_threads),
            n_threads,
        }
    }

    /// Cells needed for a list of the given capacity (for sizing memory).
    pub fn cells_needed(capacity: u32, n_threads: usize) -> usize {
        16 + capacity as usize * NODE_CELLS as usize + 8 + n_threads * 8 + 64
    }

    /// Inserts `key → value` keeping order; updates in place on duplicate.
    /// Returns `true` if a new node was linked (false on update or slab
    /// exhaustion).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert(
        &self,
        a: &mut dyn MemAccess,
        tid: usize,
        key: u64,
        value: u64,
    ) -> TxResult<bool> {
        let head = self.head.cell(0);
        let mut prev: Option<NodeRef> = None;
        let mut cur = NodeRef::decode(a.read(head)?);
        while let Some(node) = cur {
            let k = a.read(self.slab.cell(node, F_KEY))?;
            if k == key {
                a.write(self.slab.cell(node, F_VALUE), value)?;
                return Ok(false);
            }
            if k > key {
                break;
            }
            prev = Some(node);
            cur = NodeRef::decode(a.read(self.slab.cell(node, F_NEXT))?);
        }
        let Some(node) = self.slab.alloc(a, tid, self.n_threads)? else {
            return Ok(false);
        };
        a.write(self.slab.cell(node, F_KEY), key)?;
        a.write(self.slab.cell(node, F_VALUE), value)?;
        let next_enc = match cur {
            Some(n) => n.encode(),
            None => 0,
        };
        a.write(self.slab.cell(node, F_NEXT), next_enc)?;
        match prev {
            None => a.write(head, node.encode())?,
            Some(p) => a.write(self.slab.cell(p, F_NEXT), node.encode())?,
        }
        Ok(true)
    }

    /// Removes `key`; returns `true` when present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove(&self, a: &mut dyn MemAccess, tid: usize, key: u64) -> TxResult<bool> {
        let head = self.head.cell(0);
        let mut prev: Option<NodeRef> = None;
        let mut cur = NodeRef::decode(a.read(head)?);
        while let Some(node) = cur {
            let k = a.read(self.slab.cell(node, F_KEY))?;
            if k > key {
                return Ok(false);
            }
            let next = a.read(self.slab.cell(node, F_NEXT))?;
            if k == key {
                match prev {
                    None => a.write(head, next)?,
                    Some(p) => a.write(self.slab.cell(p, F_NEXT), next)?,
                }
                self.slab.free(a, tid, node)?;
                return Ok(true);
            }
            prev = Some(node);
            cur = NodeRef::decode(next);
        }
        Ok(false)
    }

    /// Point lookup.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get(&self, a: &mut dyn MemAccess, key: u64) -> TxResult<Option<u64>> {
        let mut cur = NodeRef::decode(a.read(self.head.cell(0))?);
        while let Some(node) = cur {
            let k = a.read(self.slab.cell(node, F_KEY))?;
            if k == key {
                return Ok(Some(a.read(self.slab.cell(node, F_VALUE))?));
            }
            if k > key {
                return Ok(None);
            }
            cur = NodeRef::decode(a.read(self.slab.cell(node, F_NEXT))?);
        }
        Ok(None)
    }

    /// Range query: sums the values of keys in `[lo, hi]` and counts them.
    /// This is the long traversal of the paper's motivation — its
    /// footprint grows with the range and quickly exceeds HTM capacity.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn range_sum(&self, a: &mut dyn MemAccess, lo: u64, hi: u64) -> TxResult<(u64, u64)> {
        let mut cur = NodeRef::decode(a.read(self.head.cell(0))?);
        let mut count = 0;
        let mut sum = 0;
        while let Some(node) = cur {
            let k = a.read(self.slab.cell(node, F_KEY))?;
            if k > hi {
                break;
            }
            if k >= lo {
                count += 1;
                sum += a.read(self.slab.cell(node, F_VALUE))?;
            }
            cur = NodeRef::decode(a.read(self.slab.cell(node, F_NEXT))?);
        }
        Ok((count, sum))
    }

    /// Range update: adds `delta` to the value of every key in `[lo, hi]`,
    /// returning the number of nodes updated. This is the big-footprint
    /// *writer* of the paper's motivation mirrored onto the write path: the
    /// traversal's read-set grows with `hi` (overflowing plain HTM read
    /// budgets) while the write-set is bounded by the window — exactly the
    /// shape a rollback-only stretched transaction absorbs (reads
    /// untracked, writes within the ROT budget).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn range_update(
        &self,
        a: &mut dyn MemAccess,
        lo: u64,
        hi: u64,
        delta: u64,
    ) -> TxResult<u64> {
        let mut cur = NodeRef::decode(a.read(self.head.cell(0))?);
        let mut updated = 0;
        while let Some(node) = cur {
            let k = a.read(self.slab.cell(node, F_KEY))?;
            if k > hi {
                break;
            }
            if k >= lo {
                let v = a.read(self.slab.cell(node, F_VALUE))?;
                a.write(self.slab.cell(node, F_VALUE), v.wrapping_add(delta))?;
                updated += 1;
            }
            cur = NodeRef::decode(a.read(self.slab.cell(node, F_NEXT))?);
        }
        Ok(updated)
    }

    /// Full-list checksum: `(length, Σ keys)`. Keys must come out in
    /// strictly ascending order or the structure is corrupt.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts; panics on ordering violations
    /// (structure corruption, which tests hunt for).
    pub fn checksum(&self, a: &mut dyn MemAccess) -> TxResult<(u64, u64)> {
        let mut cur = NodeRef::decode(a.read(self.head.cell(0))?);
        let mut last: Option<u64> = None;
        let mut len = 0;
        let mut sum = 0;
        while let Some(node) = cur {
            let k = a.read(self.slab.cell(node, F_KEY))?;
            assert!(last.is_none_or(|l| l < k), "list order violated");
            last = Some(k);
            len += 1;
            sum += k;
            cur = NodeRef::decode(a.read(self.slab.cell(node, F_NEXT))?);
        }
        Ok((len, sum))
    }

    /// Pre-populates with even keys `0, 2, …` (single-threaded setup).
    ///
    /// # Errors
    ///
    /// Never fails with an untracked accessor.
    ///
    /// # Panics
    ///
    /// Panics if the slab cannot hold `n` nodes.
    pub fn populate(&self, a: &mut dyn MemAccess, n: u64) -> TxResult<()> {
        // Insert descending so each insert is O(1) at the head.
        for i in (0..n).rev() {
            let added = self.insert(a, 0, i * 2, i)?;
            assert!(added, "slab exhausted during population");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{CapacityProfile, Htm, HtmConfig, TxKind};

    fn setup(cap: u32) -> (Htm, SortedList) {
        let htm = Htm::new(
            HtmConfig {
                max_threads: 4,
                capacity: CapacityProfile::UNBOUNDED,
                ..HtmConfig::default()
            },
            SortedList::cells_needed(cap, 4) + 1024,
        );
        let list = SortedList::new(htm.memory(), cap, 4);
        (htm, list)
    }

    #[test]
    fn insert_keeps_order() {
        let (htm, list) = setup(64);
        let mut d = htm.direct(0);
        for k in [5u64, 1, 9, 3, 7] {
            assert!(list.insert(&mut d, 0, k, k * 10).unwrap());
        }
        let (len, sum) = list.checksum(&mut d).unwrap();
        assert_eq!(len, 5);
        assert_eq!(sum, 25);
        assert_eq!(list.get(&mut d, 3).unwrap(), Some(30));
        assert_eq!(list.get(&mut d, 4).unwrap(), None);
    }

    #[test]
    fn duplicate_insert_updates() {
        let (htm, list) = setup(8);
        let mut d = htm.direct(0);
        assert!(list.insert(&mut d, 0, 4, 1).unwrap());
        assert!(!list.insert(&mut d, 0, 4, 2).unwrap());
        assert_eq!(list.get(&mut d, 4).unwrap(), Some(2));
        assert_eq!(list.checksum(&mut d).unwrap().0, 1);
    }

    #[test]
    fn remove_head_middle_tail() {
        let (htm, list) = setup(16);
        let mut d = htm.direct(0);
        for k in 0..6u64 {
            list.insert(&mut d, 0, k, k).unwrap();
        }
        assert!(list.remove(&mut d, 0, 0).unwrap()); // head
        assert!(list.remove(&mut d, 0, 3).unwrap()); // middle
        assert!(list.remove(&mut d, 0, 5).unwrap()); // tail
        assert!(!list.remove(&mut d, 0, 9).unwrap());
        let (len, sum) = list.checksum(&mut d).unwrap();
        assert_eq!((len, sum), (3, 1 + 2 + 4));
    }

    #[test]
    fn range_sum_respects_bounds() {
        let (htm, list) = setup(32);
        let mut d = htm.direct(0);
        for k in 0..10u64 {
            list.insert(&mut d, 0, k, 1).unwrap();
        }
        assert_eq!(list.range_sum(&mut d, 3, 6).unwrap(), (4, 4));
        assert_eq!(list.range_sum(&mut d, 0, 9).unwrap(), (10, 10));
        assert_eq!(list.range_sum(&mut d, 20, 30).unwrap(), (0, 0));
        assert_eq!(list.range_sum(&mut d, 6, 3).unwrap(), (0, 0));
    }

    #[test]
    fn range_update_adds_delta_within_bounds() {
        let (htm, list) = setup(32);
        let mut d = htm.direct(0);
        for k in 0..10u64 {
            list.insert(&mut d, 0, k, 100).unwrap();
        }
        assert_eq!(list.range_update(&mut d, 3, 6, 5).unwrap(), 4);
        assert_eq!(list.get(&mut d, 2).unwrap(), Some(100));
        assert_eq!(list.get(&mut d, 3).unwrap(), Some(105));
        assert_eq!(list.get(&mut d, 6).unwrap(), Some(105));
        assert_eq!(list.get(&mut d, 7).unwrap(), Some(100));
        assert_eq!(list.range_update(&mut d, 20, 30, 1).unwrap(), 0);
        // Keys are untouched; only values move.
        let (len, sum) = list.checksum(&mut d).unwrap();
        assert_eq!((len, sum), (10, 45));
    }

    #[test]
    fn matches_btreemap_model() {
        let (htm, list) = setup(256);
        let mut d = htm.direct(0);
        let mut model = std::collections::BTreeMap::new();
        let mut x = 0x1234_5678u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..1500 {
            let k = rnd() % 64;
            match rnd() % 3 {
                0 => {
                    let v = rnd();
                    list.insert(&mut d, 0, k, v).unwrap();
                    model.insert(k, v);
                }
                1 => {
                    assert_eq!(
                        list.remove(&mut d, 0, k).unwrap(),
                        model.remove(&k).is_some()
                    );
                }
                _ => {
                    assert_eq!(list.get(&mut d, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        let (len, _) = list.checksum(&mut d).unwrap();
        assert_eq!(len as usize, model.len());
    }

    #[test]
    fn long_range_queries_overflow_htm_capacity() {
        let htm = Htm::new(
            HtmConfig {
                max_threads: 2,
                capacity: CapacityProfile::POWER8_SIM,
                ..HtmConfig::default()
            },
            SortedList::cells_needed(2048, 2) + 1024,
        );
        let list = SortedList::new(htm.memory(), 2048, 2);
        let mut setup_acc = htm.direct(0);
        list.populate(&mut setup_acc, 1024).unwrap();
        let mut ctx = htm.thread(0);
        let err = ctx
            .txn(TxKind::Htm, |tx| list.range_sum(tx, 0, u64::MAX))
            .unwrap_err();
        assert_eq!(err, htm_sim::Abort::CapacityRead);
    }

    #[test]
    fn aborted_insert_leaves_structure_intact() {
        let (htm, list) = setup(16);
        let mut d = htm.direct(0);
        for k in [2u64, 6] {
            list.insert(&mut d, 0, k, k).unwrap();
        }
        let mut ctx = htm.thread(0);
        let _ = ctx.txn(TxKind::Htm, |tx| {
            list.insert(tx, 0, 4, 4)?;
            tx.abort::<()>(1)
        });
        let (len, sum) = list.checksum(&mut d).unwrap();
        assert_eq!((len, sum), (2, 8), "aborted insert leaked");
    }
}
