//! Multi-threaded stress tests: atomicity and isolation under real
//! concurrency.

use htm_sim::{Abort, CapacityProfile, Htm, HtmConfig, TxKind};

fn retry<R>(
    ctx: &mut htm_sim::ThreadCtx<'_>,
    kind: TxKind,
    mut f: impl FnMut(&mut htm_sim::Tx<'_>) -> htm_sim::TxResult<R>,
) -> R {
    loop {
        match ctx.txn(kind, |tx| f(tx)) {
            Ok(v) => return v,
            Err(Abort::CapacityRead | Abort::CapacityWrite) => {
                panic!("test transactions must fit capacity")
            }
            Err(_) => std::thread::yield_now(),
        }
    }
}

#[test]
fn concurrent_counter_increments_are_not_lost() {
    const THREADS: usize = 4;
    const INCS: u64 = 500;
    let htm = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::UNBOUNDED,
            max_threads: THREADS,
            ..HtmConfig::default()
        },
        64,
    );
    let counter = htm.memory().alloc(1).cell(0);
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let htm = &htm;
            s.spawn(move || {
                let mut ctx = htm.thread(tid);
                for _ in 0..INCS {
                    retry(&mut ctx, TxKind::Htm, |tx| {
                        let v = tx.read(counter)?;
                        tx.write(counter, v + 1)
                    });
                }
            });
        }
    });
    assert_eq!(htm.direct(0).load(counter), THREADS as u64 * INCS);
}

#[test]
fn transactional_bank_conserves_money() {
    // Random transfers between accounts; transactional readers audit the
    // total. Any atomicity violation shows up as a wrong audit sum.
    const THREADS: usize = 4;
    const ACCOUNTS: usize = 32;
    const OPS: usize = 400;
    const TOTAL: u64 = ACCOUNTS as u64 * 100;

    let htm = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::UNBOUNDED,
            max_threads: THREADS,
            ..HtmConfig::default()
        },
        4096,
    );
    let accounts = htm.memory().alloc(ACCOUNTS);
    {
        let d = htm.direct(0);
        for i in 0..ACCOUNTS {
            d.store(accounts.cell(i), 100);
        }
    }

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let htm = &htm;
            s.spawn(move || {
                let mut ctx = htm.thread(tid);
                let mut seed = (tid as u64 + 1) * 0x9E37_79B9;
                let mut next = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                for op in 0..OPS {
                    if op % 5 == 0 {
                        // Auditor: transactional snapshot of all accounts.
                        let sum = retry(&mut ctx, TxKind::Htm, |tx| {
                            let mut sum = 0u64;
                            for i in 0..ACCOUNTS {
                                sum += tx.read(accounts.cell(i))?;
                            }
                            Ok(sum)
                        });
                        assert_eq!(sum, TOTAL, "torn snapshot observed");
                    } else {
                        let from = (next() as usize) % ACCOUNTS;
                        let to = (next() as usize) % ACCOUNTS;
                        let amt = next() % 10;
                        retry(&mut ctx, TxKind::Htm, |tx| {
                            let f = tx.read(accounts.cell(from))?;
                            if f < amt {
                                return Ok(());
                            }
                            let t = tx.read(accounts.cell(to))?;
                            tx.write(accounts.cell(from), f - amt)?;
                            if to != from {
                                tx.write(accounts.cell(to), t + amt)?;
                            } else {
                                tx.write(accounts.cell(to), f)?;
                            }
                            Ok(())
                        });
                    }
                }
            });
        }
    });

    let d = htm.direct(0);
    let total: u64 = (0..ACCOUNTS).map(|i| d.load(accounts.cell(i))).sum();
    assert_eq!(total, TOTAL);
}

#[test]
fn untracked_single_cell_reads_are_atomic_under_commits() {
    // A writer transaction repeatedly overwrites a cell with values whose
    // low and high halves must match; untracked readers must never see a
    // mixed value (single-cell commit atomicity).
    const ROUNDS: u64 = 2_000;
    let htm = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::UNBOUNDED,
            max_threads: 2,
            ..HtmConfig::default()
        },
        64,
    );
    let cell = htm.memory().alloc(1).cell(0);
    std::thread::scope(|s| {
        let htm_w = &htm;
        s.spawn(move || {
            let mut ctx = htm_w.thread(0);
            for i in 1..=ROUNDS {
                let val = (i << 32) | i;
                // Conflicts with readers cannot happen (readers are
                // untracked and reads_doom_writers only dooms on tx lines
                // in the read path below), so retry on doom.
                loop {
                    if ctx.txn(TxKind::Htm, |tx| tx.write(cell, val)).is_ok() {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
        let htm_r = &htm;
        s.spawn(move || {
            let d = htm_r.direct(1);
            for _ in 0..ROUNDS {
                let v = d.load(cell);
                assert_eq!(v >> 32, v & 0xFFFF_FFFF, "torn single-cell read");
            }
        });
    });
}

#[test]
fn writer_doomed_by_untracked_store_never_commits_its_buffer() {
    // Repeatedly race a transactional read-modify-write against untracked
    // stores; the final value must always reflect a linearizable history
    // (tx adds 2 to even values only; untracked store resets to odd).
    let htm = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::UNBOUNDED,
            max_threads: 2,
            ..HtmConfig::default()
        },
        64,
    );
    let cell = htm.memory().alloc(1).cell(0);
    std::thread::scope(|s| {
        let h0 = &htm;
        s.spawn(move || {
            let mut ctx = h0.thread(0);
            for _ in 0..1_000 {
                let _ = ctx.txn(TxKind::Htm, |tx| {
                    let v = tx.read(cell)?;
                    if v % 2 == 0 {
                        tx.write(cell, v + 2)?;
                    }
                    Ok(())
                });
            }
        });
        let h1 = &htm;
        s.spawn(move || {
            let d = h1.direct(1);
            for _ in 0..1_000 {
                let v = d.load(cell);
                d.store(cell, v + 1); // flip parity either way
            }
        });
    });
    // No assertion on the exact value — the invariant is that every tx
    // commit was based on a non-stale read. A lost doom would let a tx
    // commit v+2 over an untracked v+1, producing an odd->even jump the
    // tx path forbids; detecting it requires history checking, which the
    // bank test covers. Here we just require termination and sane state.
    let v = htm.direct(0).load(cell);
    assert!(v <= 4_000);
}

#[test]
fn many_threads_alloc_and_use_disjoint_regions() {
    const THREADS: usize = 8;
    let htm = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::UNBOUNDED,
            max_threads: THREADS,
            ..HtmConfig::default()
        },
        THREADS * 64,
    );
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let htm = &htm;
            s.spawn(move || {
                let region = htm.memory().alloc(16);
                let mut ctx = htm.thread(tid);
                for i in 0..16 {
                    retry(&mut ctx, TxKind::Htm, |tx| {
                        tx.write(region.cell(i), (tid * 100 + i) as u64)
                    });
                }
                let d = htm.direct(tid);
                for i in 0..16 {
                    assert_eq!(d.load(region.cell(i)), (tid * 100 + i) as u64);
                }
            });
        }
    });
}
