//! End-to-end tests of the deterministic scheduler through the public
//! `Htm` API: virtual time, serialized interleavings, and bit-exact
//! reproducibility of whole multi-threaded histories.

use std::time::{Duration, Instant};

use htm_sim::{clock, Htm, HtmConfig, SchedulerKind, TxKind};

fn det_cfg(threads: usize, schedule_seed: u64) -> HtmConfig {
    HtmConfig {
        max_threads: threads,
        scheduler: SchedulerKind::Deterministic { schedule_seed },
        ..HtmConfig::default()
    }
}

#[test]
fn spin_until_consults_the_virtual_clock() {
    let htm = Htm::new(det_cfg(1, 9), 64);
    let _ctx = htm.thread(0);
    let wall = Instant::now();
    let t0 = clock::now();
    // Ten virtual seconds: a wall-clock spin would hang the test for 10 s;
    // the deterministic scheduler must jump the clock instead.
    clock::spin_until(t0 + 10_000_000_000);
    assert!(clock::now() >= t0 + 10_000_000_000);
    assert!(
        wall.elapsed() < Duration::from_secs(5),
        "deadline was awaited in virtual time, not wall time"
    );
}

#[test]
fn virtual_clock_advances_on_every_read() {
    let htm = Htm::new(det_cfg(1, 3), 64);
    let _ctx = htm.thread(0);
    let a = clock::now();
    let b = clock::now();
    assert!(b > a, "strict monotonicity makes deadline loops terminate");
}

#[test]
fn dropping_the_context_unbinds_the_clock() {
    let htm = Htm::new(det_cfg(1, 3), 64);
    {
        let _ctx = htm.thread(0);
        assert!(clock::now() < 1_000_000, "virtual clock starts near zero");
    }
    // Unbound again: the wall clock (nanoseconds since process start) is
    // far beyond any freshly started virtual clock.
    assert_eq!(clock::now() < 1_000_000, clock::wall_now() < 1_000_000);
}

/// Runs a contended increment workload and returns, per thread, the values
/// it observed — a complete serialization witness.
fn contended_history(schedule_seed: u64, workload_seed: u64) -> Vec<Vec<u64>> {
    let cfg = HtmConfig {
        seed: workload_seed,
        ..det_cfg(3, schedule_seed)
    };
    let htm = Htm::new(cfg, 256);
    let cell = htm.memory().alloc(1).cell(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|tid| {
                let htm = &htm;
                s.spawn(move || {
                    let mut ctx = htm.thread(tid);
                    let mut seen = Vec::new();
                    for _ in 0..40 {
                        let r = ctx.txn(TxKind::Htm, |tx| {
                            let v = tx.read(cell)?;
                            tx.write(cell, v + 1)?;
                            Ok(v)
                        });
                        seen.push(r.unwrap_or(u64::MAX));
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn same_seeds_reproduce_identical_histories() {
    let a = contended_history(0xDECAF, 7);
    let b = contended_history(0xDECAF, 7);
    assert_eq!(a, b, "same (schedule, workload) seeds → same history");
}

#[test]
fn different_schedule_seeds_explore_different_interleavings() {
    // With the workload fixed, at least one of a handful of schedule seeds
    // must produce a different history (all-equal would mean the scheduler
    // ignores its seed).
    let base = contended_history(1, 7);
    let diverged = (2..8u64).any(|s| contended_history(s, 7) != base);
    assert!(diverged, "schedule seed never changed the interleaving");
}

#[test]
fn serialized_increments_never_lose_updates() {
    let cfg = det_cfg(2, 11);
    let htm = Htm::new(cfg, 256);
    let cell = htm.memory().alloc(1).cell(0);
    let committed: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|tid| {
                let htm = &htm;
                s.spawn(move || {
                    let mut ctx = htm.thread(tid);
                    let mut n = 0u64;
                    for _ in 0..50 {
                        if ctx
                            .txn(TxKind::Htm, |tx| {
                                let v = tx.read(cell)?;
                                tx.write(cell, v + 1)?;
                                Ok(())
                            })
                            .is_ok()
                        {
                            n += 1;
                        }
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(
        htm.direct(0).load(cell),
        committed,
        "every committed increment is visible exactly once"
    );
}
