//! Single- and two-thread semantics tests for the simulated HTM engine.

use htm_sim::{Abort, CapacityProfile, Htm, HtmConfig, MemAccess, TxKind};

fn htm_with(profile: CapacityProfile) -> Htm {
    Htm::new(
        HtmConfig {
            capacity: profile,
            max_threads: 8,
            ..HtmConfig::default()
        },
        4096,
    )
}

#[test]
fn committed_writes_become_visible() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(4);
    let mut ctx = htm.thread(0);
    ctx.txn(TxKind::Htm, |tx| {
        tx.write(r.cell(0), 11)?;
        tx.write(r.cell(3), 44)?;
        Ok(())
    })
    .unwrap();
    let d = htm.direct(0);
    assert_eq!(d.load(r.cell(0)), 11);
    assert_eq!(d.load(r.cell(1)), 0);
    assert_eq!(d.load(r.cell(3)), 44);
}

#[test]
fn aborted_writes_are_discarded() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Htm, |tx| {
            tx.write(r.cell(0), 99)?;
            tx.abort::<()>(7)
        })
        .unwrap_err();
    assert_eq!(err, Abort::Explicit(7));
    assert_eq!(htm.direct(0).load(r.cell(0)), 0);
}

#[test]
fn reads_own_writes() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let mut ctx = htm.thread(0);
    let v = ctx
        .txn(TxKind::Htm, |tx| {
            tx.write(r.cell(0), 5)?;
            tx.read(r.cell(0))
        })
        .unwrap();
    assert_eq!(v, 5);
    // Uncommitted value must have been invisible... it is now committed.
    assert_eq!(htm.direct(0).load(r.cell(0)), 5);
}

#[test]
fn buffered_writes_invisible_before_commit() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let cfg_off = htm.config().reads_doom_writers;
    assert!(cfg_off, "default config dooms on reads");
    // Use a second runtime with reads_doom disabled so the observer read
    // does not kill the writer.
    let htm = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::UNBOUNDED,
            reads_doom_writers: false,
            max_threads: 8,
            ..HtmConfig::default()
        },
        1024,
    );
    let r = htm.memory().alloc(1);
    let mut ctx = htm.thread(0);
    let observed = ctx
        .txn(TxKind::Htm, |tx| {
            tx.write(r.cell(0), 123)?;
            // Observe from "another thread" (untracked) mid-transaction.
            Ok(htm.direct(1).load(r.cell(0)))
        })
        .unwrap();
    assert_eq!(observed, 0, "speculative store leaked before commit");
    assert_eq!(htm.direct(1).load(r.cell(0)), 123);
}

#[test]
fn untracked_store_dooms_reader_transaction() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Htm, |tx| {
            let _ = tx.read(r.cell(0))?;
            // Strong isolation: this untracked store (from thread 1) must
            // doom the transaction that has the line in its read-set.
            htm.direct(1).store(r.cell(0), 9);
            // The doom is detected at the next access or at commit.
            let _ = tx.read(r.cell(0))?;
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::Conflict);
    assert_eq!(htm.direct(0).load(r.cell(0)), 9, "untracked store persists");
}

#[test]
fn doom_is_detected_at_commit_even_without_further_accesses() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Htm, |tx| {
            let _ = tx.read(r.cell(0))?;
            htm.direct(1).store(r.cell(0), 9);
            Ok(()) // no further accesses: commit must still fail
        })
        .unwrap_err();
    assert_eq!(err, Abort::Conflict);
}

#[test]
fn untracked_read_dooms_speculative_writer() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Htm, |tx| {
            tx.write(r.cell(0), 5)?;
            let seen = htm.direct(1).load(r.cell(0));
            assert_eq!(seen, 0, "buffered write must stay invisible");
            tx.read(r.cell(0))?; // detect doom
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::Conflict);
}

#[test]
fn capacity_read_aborts() {
    let htm = htm_with(CapacityProfile::TINY); // 4 read lines
    let r = htm.memory().alloc_line_aligned(8 * 8); // 8 lines
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Htm, |tx| {
            for i in 0..5 {
                let _ = tx.read(r.cell(i * 8))?; // distinct lines
            }
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::CapacityRead);
    assert_eq!(ctx.stats.aborts_capacity_read, 1);
}

#[test]
fn capacity_write_aborts() {
    let htm = htm_with(CapacityProfile::TINY); // 2 write lines
    let r = htm.memory().alloc_line_aligned(8 * 4);
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Htm, |tx| {
            for i in 0..3 {
                tx.write(r.cell(i * 8), 1)?;
            }
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::CapacityWrite);
}

#[test]
fn capacity_counts_lines_not_cells() {
    let htm = htm_with(CapacityProfile::TINY); // 4 read lines
    let r = htm.memory().alloc_line_aligned(8);
    let mut ctx = htm.thread(0);
    // 8 cells on ONE line: fits easily.
    ctx.txn(TxKind::Htm, |tx| {
        for i in 0..8 {
            let _ = tx.read(r.cell(i))?;
        }
        assert_eq!(tx.read_footprint(), 1);
        Ok(())
    })
    .unwrap();
}

#[test]
fn rot_reads_are_untracked_and_uncapped() {
    let htm = htm_with(CapacityProfile::TINY);
    let r = htm.memory().alloc_line_aligned(8 * 16);
    let mut ctx = htm.thread(0);
    ctx.txn(TxKind::Rot, |tx| {
        for i in 0..16 {
            let _ = tx.read(r.cell(i * 8))?; // 16 lines >> read cap 4
        }
        assert_eq!(tx.read_footprint(), 0, "ROT tracks no reads");
        tx.write(r.cell(0), 1)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(htm.direct(0).load(r.cell(0)), 1);
}

#[test]
fn rot_writes_are_still_buffered_and_capped() {
    let htm = htm_with(CapacityProfile::TINY); // rot_write_lines = 2
    let r = htm.memory().alloc_line_aligned(8 * 4);
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Rot, |tx| {
            for i in 0..3 {
                tx.write(r.cell(i * 8), 1)?;
            }
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::CapacityWrite);
    assert_eq!(htm.direct(0).load(r.cell(0)), 0, "rolled back");
}

#[test]
#[should_panic(expected = "POWER8-only")]
fn rot_panics_on_intel_like_profile() {
    let htm = htm_with(CapacityProfile::BROADWELL_SIM);
    let mut ctx = htm.thread(0);
    let _ = ctx.txn(TxKind::Rot, |_tx| Ok(()));
}

#[test]
fn suspend_runs_untracked_and_resumes() {
    let htm = htm_with(CapacityProfile::POWER8_SIM);
    let r = htm.memory().alloc_line_aligned(16);
    let side = htm.memory().alloc_line_aligned(8);
    let mut ctx = htm.thread(0);
    ctx.txn(TxKind::Rot, |tx| {
        tx.write(r.cell(0), 42)?;
        let seen = tx.suspend(|d| {
            d.store(side.cell(0), 1); // untracked effect, survives regardless
            d.load(r.cell(0))
        })?;
        assert_eq!(seen, 42, "suspended loads see own speculative stores (L1)");
        Ok(())
    })
    .unwrap();
    assert_eq!(htm.direct(0).load(side.cell(0)), 1);
    assert_eq!(htm.direct(0).load(r.cell(0)), 42);
}

#[test]
fn doom_while_suspended_aborts_at_resume() {
    let htm = htm_with(CapacityProfile::POWER8_SIM);
    let r = htm.memory().alloc_line_aligned(8);
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Rot, |tx| {
            tx.write(r.cell(0), 42)?;
            tx.suspend(|_d| {
                // Conflicting untracked store from another thread while
                // we're suspended.
                htm.direct(1).store(r.cell(0), 7);
            })?;
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::Conflict);
    assert_eq!(
        htm.direct(0).load(r.cell(0)),
        7,
        "tx rolled back, store kept"
    );
}

#[test]
fn interrupt_injection_aborts_eventually() {
    let htm = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::UNBOUNDED,
            interrupt_prob: 0.5,
            max_threads: 2,
            ..HtmConfig::default()
        },
        64,
    );
    let r = htm.memory().alloc(1);
    let mut ctx = htm.thread(0);
    let mut interrupted = false;
    for _ in 0..64 {
        match ctx.txn(TxKind::Htm, |tx| {
            for _ in 0..8 {
                let _ = tx.read(r.cell(0))?;
            }
            Ok(())
        }) {
            Err(Abort::Interrupt) => {
                interrupted = true;
                break;
            }
            Err(other) => panic!("unexpected abort {other:?}"),
            Ok(()) => {}
        }
    }
    assert!(interrupted, "p=0.5 per access should interrupt quickly");
    assert!(ctx.stats.aborts_interrupt >= 1);
}

#[test]
fn explicit_abort_codes_pass_through() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let mut ctx = htm.thread(0);
    for code in [0u32, 1, 0xCA] {
        let err = ctx.txn(TxKind::Htm, |tx| tx.abort::<()>(code)).unwrap_err();
        assert_eq!(err, Abort::Explicit(code));
    }
    assert_eq!(ctx.stats.aborts_explicit, 3);
}

#[test]
fn tx_tx_conflict_requester_wins() {
    // Thread 0 reads the line in a transaction, thread 1 writes it
    // transactionally: requester (thread 1) must win, dooming thread 0.
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let mut c0 = htm.thread(0);
    let mut c1 = htm.thread(1);
    let err = c0
        .txn(TxKind::Htm, |tx| {
            let _ = tx.read(r.cell(0))?;
            // Nested: run thread 1's whole transaction while 0 is active.
            c1.txn(TxKind::Htm, |tx1| {
                tx1.write(r.cell(0), 3)?;
                Ok(())
            })
            .unwrap();
            tx.read(r.cell(0))?; // doomed now
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::Conflict);
    assert_eq!(htm.direct(0).load(r.cell(0)), 3);
}

#[test]
fn tx_tx_conflict_responder_wins_self_aborts() {
    let htm = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::UNBOUNDED,
            conflict_policy: htm_sim::ConflictPolicy::ResponderWins,
            max_threads: 4,
            ..HtmConfig::default()
        },
        64,
    );
    let r = htm.memory().alloc(1);
    let mut c0 = htm.thread(0);
    let mut c1 = htm.thread(1);
    c0.txn(TxKind::Htm, |tx| {
        let _ = tx.read(r.cell(0))?;
        let err = c1
            .txn(TxKind::Htm, |tx1| {
                tx1.write(r.cell(0), 3)?;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err, Abort::Conflict, "requester self-aborted");
        Ok(())
    })
    .unwrap();
    assert_eq!(htm.direct(0).load(r.cell(0)), 0, "responder survived");
}

#[test]
fn thread_slots_are_exclusive_and_reusable() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let c0 = htm.thread(0);
    drop(c0);
    let _again = htm.thread(0); // fine after drop
}

#[test]
#[should_panic(expected = "already claimed")]
fn double_claim_panics() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let _a = htm.thread(1);
    let _b = htm.thread(1);
}

#[test]
fn mem_access_trait_is_object_safe_and_uniform() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);

    fn bump(a: &mut dyn MemAccess, c: htm_sim::CellId) -> htm_sim::TxResult<u64> {
        let v = a.read(c)?;
        a.write(c, v + 1)?;
        Ok(v + 1)
    }

    let mut ctx = htm.thread(0);
    let v1 = ctx.txn(TxKind::Htm, |tx| bump(tx, r.cell(0))).unwrap();
    assert_eq!(v1, 1);
    let mut d = htm.direct(0);
    let v2 = bump(&mut d, r.cell(0)).unwrap();
    assert_eq!(v2, 2);
}

#[test]
fn direct_rmw_primitives() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let d = htm.direct(0);
    assert_eq!(d.compare_exchange(r.cell(0), 0, 10), Ok(0));
    assert_eq!(d.compare_exchange(r.cell(0), 0, 20), Err(10));
    assert_eq!(d.fetch_add(r.cell(0), 5), 10);
    assert_eq!(d.load(r.cell(0)), 15);
}

#[test]
fn stats_track_commits_and_aborts() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let mut ctx = htm.thread(0);
    ctx.txn(TxKind::Htm, |tx| tx.write(r.cell(0), 1)).unwrap();
    let _ = ctx.txn(TxKind::Htm, |tx| tx.abort::<()>(1));
    assert_eq!(ctx.stats.begins(), 2);
    assert_eq!(ctx.stats.commits(), 1);
    assert_eq!(ctx.stats.aborts(), 1);
}

#[test]
fn conflict_abort_is_attributed_to_line_and_peer() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let r = htm.memory().alloc(1);
    let line = htm.memory().line_of(r.cell(0));
    let mut ctx = htm.thread(0);
    let err = ctx
        .txn(TxKind::Htm, |tx| {
            let _ = tx.read(r.cell(0))?;
            htm.direct(1).store(r.cell(0), 9);
            tx.read(r.cell(0))?;
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::Conflict);
    let info = ctx.last_conflict().expect("doomer left a note");
    assert_eq!(info.line, line);
    assert_eq!(info.peer, 1);
    // The note is per-transaction: a clean commit clears it.
    ctx.txn(TxKind::Htm, |tx| tx.write(r.cell(0), 1)).unwrap();
    assert_eq!(ctx.last_conflict(), None);
}

#[test]
fn non_conflict_aborts_carry_no_attribution() {
    let htm = htm_with(CapacityProfile::UNBOUNDED);
    let mut ctx = htm.thread(0);
    let _ = ctx.txn(TxKind::Htm, |tx| tx.abort::<()>(7));
    assert_eq!(ctx.last_conflict(), None);
}
