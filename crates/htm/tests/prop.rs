//! Property-based tests for the HTM substrate.

use htm_sim::{Abort, CapacityProfile, Htm, HtmConfig, TxKind};
use proptest::prelude::*;

/// One operation inside a generated transaction.
#[derive(Debug, Clone)]
enum Op {
    Read(usize),
    Write(usize, u64),
}

fn op_strategy(cells: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..cells).prop_map(Op::Read),
        ((0..cells), any::<u64>()).prop_map(|(c, v)| Op::Write(c, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequentially executed transactions behave exactly like a flat array:
    /// committed writes persist, aborted ones do not, reads see the model.
    #[test]
    fn committed_txs_match_model(
        txs in proptest::collection::vec(
            (proptest::collection::vec(op_strategy(16), 1..12), any::<bool>()),
            1..20,
        )
    ) {
        let htm = Htm::new(
            HtmConfig {
                capacity: CapacityProfile::UNBOUNDED,
                max_threads: 1,
                ..HtmConfig::default()
            },
            64,
        );
        let region = htm.memory().alloc(16);
        let mut model = [0u64; 16];
        let mut ctx = htm.thread(0);

        for (ops, should_abort) in txs {
            let mut shadow = model;
            let result = ctx.txn(TxKind::Htm, |tx| {
                for op in &ops {
                    match *op {
                        Op::Read(c) => {
                            let v = tx.read(region.cell(c))?;
                            // plain assert: the closure's Err type is Abort
                            assert_eq!(v, shadow[c], "tx read diverged from model");
                        }
                        Op::Write(c, v) => {
                            tx.write(region.cell(c), v)?;
                            shadow[c] = v;
                        }
                    }
                }
                if should_abort {
                    return tx.abort(1);
                }
                Ok(())
            });
            match result {
                Ok(()) => {
                    prop_assert!(!should_abort);
                    model = shadow;
                }
                Err(Abort::Explicit(1)) => prop_assert!(should_abort),
                Err(other) => prop_assert!(false, "unexpected abort {other:?}"),
            }
            // Memory must equal the model after every transaction.
            let d = htm.direct(0);
            for (c, &expected) in model.iter().enumerate() {
                prop_assert_eq!(d.load(region.cell(c)), expected);
            }
        }
    }

    /// Capacity accounting: a transaction touching exactly `k` distinct
    /// lines commits iff `k` is within the profile limit.
    #[test]
    fn capacity_boundary_is_exact(k in 1usize..12) {
        let profile = CapacityProfile {
            name: "boundary",
            read_lines: 6,
            write_lines: 6,
            rot_write_lines: 6,
        };
        let htm = Htm::new(
            HtmConfig {
                capacity: profile,
                max_threads: 1,
                ..HtmConfig::default()
            },
            16 * 8,
        );
        let r = htm.memory().alloc_line_aligned(12 * 8);
        let mut ctx = htm.thread(0);
        let res = ctx.txn(TxKind::Htm, |tx| {
            for i in 0..k {
                let _ = tx.read(r.cell(i * 8))?;
            }
            Ok(())
        });
        if k <= 6 {
            prop_assert!(res.is_ok());
        } else {
            prop_assert_eq!(res.unwrap_err(), Abort::CapacityRead);
        }
    }

    /// Untracked stores always persist, whatever transactions race them —
    /// and a doomed transaction's buffer never leaks.
    #[test]
    fn untracked_stores_persist(vals in proptest::collection::vec(any::<u64>(), 1..32)) {
        let htm = Htm::new(
            HtmConfig {
                capacity: CapacityProfile::UNBOUNDED,
                max_threads: 2,
                ..HtmConfig::default()
            },
            64,
        );
        let c = htm.memory().alloc(1).cell(0);
        let d = htm.direct(1);
        let mut ctx = htm.thread(0);
        for (i, v) in vals.iter().enumerate() {
            if i % 2 == 0 {
                d.store(c, *v);
                prop_assert_eq!(d.load(c), *v);
            } else {
                // Transaction that writes then gets doomed by an untracked
                // store: the tx buffer must vanish.
                let res = ctx.txn(TxKind::Htm, |tx| {
                    tx.write(c, v.wrapping_add(1))?;
                    d.store(c, *v);
                    tx.read(c)?; // observe doom
                    Ok(())
                });
                prop_assert_eq!(res.unwrap_err(), Abort::Conflict);
                prop_assert_eq!(d.load(c), *v);
            }
        }
    }
}
