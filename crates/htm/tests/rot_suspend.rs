//! Focused tests for the POWER8-only features (rollback-only transactions
//! and suspend/resume) under concurrency — the substrate RW-LE stands on.

use htm_sim::{Abort, CapacityProfile, Htm, HtmConfig, TxKind};
use std::sync::atomic::{AtomicBool, Ordering};

fn htm(threads: usize) -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: threads,
            capacity: CapacityProfile::POWER8_SIM,
            ..HtmConfig::default()
        },
        32 * 1024,
    )
}

#[test]
fn rot_commits_are_atomic_to_untracked_readers() {
    // A ROT writes two cells; an untracked reader polling both must never
    // see exactly one of them updated *while the ROT is active* (buffered)
    // — after commit both appear. Single-cell reads are atomic; the pair
    // flips together because the flush completes before `Committed`.
    let h = htm(2);
    let r = h.memory().alloc_line_aligned(16);
    let (a, b) = (r.cell(0), r.cell(8));
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (h0, stopr) = (&h, &stop);
        s.spawn(move || {
            let mut ctx = h0.thread(0);
            for i in 1..=500u64 {
                loop {
                    let res = ctx.txn(TxKind::Rot, |tx| {
                        tx.write(a, i)?;
                        tx.write(b, i)?;
                        Ok(())
                    });
                    if res.is_ok() {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            stopr.store(true, Ordering::SeqCst);
        });
        let (h1, stopr) = (&h, &stop);
        s.spawn(move || {
            let d = h1.direct(1);
            while !stopr.load(Ordering::SeqCst) {
                // Read b first, then a: since the writer writes a-then-b
                // within one atomic commit, observing b > a would mean a
                // torn commit. (b read first can lag a, never lead it.)
                let vb = d.load(b);
                let va = d.load(a);
                assert!(vb <= va, "torn ROT commit: a={va}, b={vb}");
            }
        });
    });
    let d = h.direct(0);
    assert_eq!(d.load(a), 500);
    assert_eq!(d.load(b), 500);
}

#[test]
fn suspended_wait_does_not_block_other_transactions() {
    // A suspended transaction parks; an independent transaction on another
    // thread must commit meanwhile (suspend leaves the HTM free).
    let h = htm(2);
    let r = h.memory().alloc_line_aligned(16);
    let parked = AtomicBool::new(false);
    let observed = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (h0, parkedr, observedr) = (&h, &parked, &observed);
        s.spawn(move || {
            let mut ctx = h0.thread(0);
            ctx.txn(TxKind::Rot, |tx| {
                tx.write(r.cell(0), 1)?;
                tx.suspend(|_d| {
                    parkedr.store(true, Ordering::SeqCst);
                    while !observedr.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                })?;
                Ok(())
            })
            .unwrap();
        });
        let (h1, parkedr, observedr) = (&h, &parked, &observed);
        s.spawn(move || {
            while !parkedr.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let mut ctx = h1.thread(1);
            // Disjoint line: commits freely while thread 0 is suspended.
            ctx.txn(TxKind::Htm, |tx| tx.write(r.cell(8), 7)).unwrap();
            observedr.store(true, Ordering::SeqCst);
        });
    });
    let d = h.direct(0);
    assert_eq!(d.load(r.cell(0)), 1, "suspended tx resumed and committed");
    assert_eq!(d.load(r.cell(8)), 7);
}

#[test]
fn rot_write_conflicts_still_abort() {
    // ROTs skip read tracking but their writes conflict normally.
    let h = htm(2);
    let cell = h.memory().alloc(1).cell(0);
    let mut c0 = h.thread(0);
    let mut c1 = h.thread(1);
    let err = c0
        .txn(TxKind::Rot, |tx| {
            tx.write(cell, 1)?;
            // A second ROT writes the same line mid-flight (requester wins).
            c1.txn(TxKind::Rot, |tx1| tx1.write(cell, 2)).unwrap();
            tx.write(cell, 3)?; // doomed
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::Conflict);
    assert_eq!(h.direct(0).load(cell), 2, "the second ROT won");
}

#[test]
fn untracked_read_of_rot_written_line_dooms_the_rot() {
    // The strong-isolation property RW-LE's quiescence relies on.
    let h = htm(2);
    let cell = h.memory().alloc(1).cell(0);
    let mut ctx = h.thread(0);
    let err = ctx
        .txn(TxKind::Rot, |tx| {
            tx.write(cell, 5)?;
            let seen = h.direct(1).load(cell);
            assert_eq!(seen, 0, "ROT buffer leaked");
            tx.write(cell, 6)?; // detect doom
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, Abort::Conflict);
    assert_eq!(h.direct(0).load(cell), 0);
}

#[test]
fn interrupt_injection_hits_rots_too() {
    let h = Htm::new(
        HtmConfig {
            max_threads: 1,
            capacity: CapacityProfile::POWER8_SIM,
            interrupt_prob: 0.5,
            ..HtmConfig::default()
        },
        1024,
    );
    let cell = h.memory().alloc(1).cell(0);
    let mut ctx = h.thread(0);
    let mut interrupted = false;
    for _ in 0..64 {
        if let Err(Abort::Interrupt) = ctx.txn(TxKind::Rot, |tx| {
            for _ in 0..8 {
                tx.write(cell, 1)?;
            }
            Ok(())
        }) {
            interrupted = true;
            break;
        }
    }
    assert!(interrupted);
}
