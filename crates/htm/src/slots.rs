//! The per-thread transaction status table.
//!
//! Every simulated hardware thread owns one slot whose word packs
//! `(epoch << 3) | state`. The epoch increments at each transaction begin,
//! so a stale directory entry can never doom a *later* transaction from the
//! same thread (ABA protection). All cross-thread transitions go through
//! CAS; the owning thread's transitions race only with dooming.
//!
//! State machine (self = owning thread, any = any thread):
//!
//! ```text
//!  Inactive --self--> Active --self CAS--> Committing --self--> Committed --self--> Inactive
//!                      |  ^ \--self CAS--> Suspended --self CAS--> Active
//!                      |  |                    |
//!                      +--any CAS--> Doomed <--+ (any CAS)
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use crate::memory::LineId;
use crate::util::Pad;

pub(crate) const ST_INACTIVE: u64 = 0;
pub(crate) const ST_ACTIVE: u64 = 1;
pub(crate) const ST_SUSPENDED: u64 = 2;
pub(crate) const ST_COMMITTING: u64 = 3;
pub(crate) const ST_COMMITTED: u64 = 4;
pub(crate) const ST_DOOMED: u64 = 5;

const STATE_MASK: u64 = 0b111;

#[inline]
pub(crate) fn pack(epoch: u64, state: u64) -> u64 {
    (epoch << 3) | state
}

#[inline]
pub(crate) fn state_of(word: u64) -> u64 {
    word & STATE_MASK
}

#[inline]
pub(crate) fn epoch_of(word: u64) -> u64 {
    word >> 3
}

/// Identity of one transaction instance: which thread, which epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Owner {
    pub tid: u32,
    pub epoch: u64,
}

/// Result of a doom attempt (or non-destructive classification) of an owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DoomOutcome {
    /// The victim is now (or already was) `Doomed`.
    Dead,
    /// The owner already passed its commit point; the caller must wait for
    /// the flush to complete before touching the line.
    Committing,
    /// The slot now belongs to a different epoch or is inactive/committed —
    /// the directory entry was stale; treat the line as unowned.
    Stale,
    /// The owner is live (`Active`/`Suspended`). Only returned by
    /// [`TxTable::classify`]; `doom` always resolves live owners to `Dead`.
    Live,
}

// Doom-attribution sidecar packing: `|valid:1|epoch_lo:12|peer:19|line:32|`.
// The epoch tag lets the victim reject notes left over from an earlier
// transaction of its own (the doom itself may have been Stale); 12 bits are
// plenty since a wrapped collision only mislabels a diagnostic.
const DI_VALID: u64 = 1 << 63;
const DI_EPOCH_BITS: u64 = 12;
const DI_PEER_BITS: u64 = 19;
const DI_EPOCH_MASK: u64 = (1 << DI_EPOCH_BITS) - 1;
const DI_PEER_MASK: u64 = (1 << DI_PEER_BITS) - 1;

#[inline]
fn pack_doom_info(epoch: u64, peer: u32, line: u32) -> u64 {
    DI_VALID
        | ((epoch & DI_EPOCH_MASK) << (32 + DI_PEER_BITS))
        | ((peer as u64 & DI_PEER_MASK) << 32)
        | line as u64
}

#[derive(Debug)]
pub(crate) struct TxTable {
    slots: Box<[Pad<AtomicU64>]>,
    /// Conflict attribution, one word per thread: who doomed this thread's
    /// current transaction, and over which line. Written by the doomer
    /// *before* its doom CAS so the victim observing `Doomed` always finds
    /// the note; epoch-tagged so stale notes are rejected.
    doom_info: Box<[Pad<AtomicU64>]>,
}

impl TxTable {
    pub(crate) fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || Pad(AtomicU64::new(pack(0, ST_INACTIVE))));
        let mut d = Vec::with_capacity(n);
        d.resize_with(n, || Pad(AtomicU64::new(0)));
        Self {
            slots: v.into_boxed_slice(),
            doom_info: d.into_boxed_slice(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot(&self, tid: u32) -> &AtomicU64 {
        &self.slots[tid as usize].0
    }

    #[inline]
    pub(crate) fn load(&self, tid: u32) -> u64 {
        self.slot(tid).load(Ordering::SeqCst)
    }

    /// Owning thread: begin a new transaction at `epoch`. Clears any
    /// leftover conflict note so an untaken one can never alias a later
    /// epoch with the same low bits.
    pub(crate) fn begin(&self, tid: u32, epoch: u64) {
        self.doom_info[tid as usize].0.store(0, Ordering::SeqCst);
        self.slot(tid)
            .store(pack(epoch, ST_ACTIVE), Ordering::SeqCst);
    }

    /// Owning thread: unconditional transition (used for
    /// Committing→Committed→Inactive and the abort path, where no other
    /// thread may legally CAS the word any more except redundant dooming).
    pub(crate) fn set(&self, tid: u32, epoch: u64, state: u64) {
        self.slot(tid).store(pack(epoch, state), Ordering::SeqCst);
    }

    /// Owning thread: CAS `from`→`to` at `epoch`; `false` means a doomer won.
    pub(crate) fn try_transition(&self, tid: u32, epoch: u64, from: u64, to: u64) -> bool {
        self.slot(tid)
            .compare_exchange(
                pack(epoch, from),
                pack(epoch, to),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Whether the owning thread's current transaction has been doomed.
    #[inline]
    pub(crate) fn is_doomed(&self, owner: Owner) -> bool {
        let w = self.load(owner.tid);
        epoch_of(w) == owner.epoch && state_of(w) == ST_DOOMED
    }

    /// Any thread: try to doom `victim`. See [`DoomOutcome`].
    pub(crate) fn doom(&self, victim: Owner) -> DoomOutcome {
        let slot = self.slot(victim.tid);
        loop {
            let w = slot.load(Ordering::SeqCst);
            if epoch_of(w) != victim.epoch {
                return DoomOutcome::Stale;
            }
            match state_of(w) {
                ST_ACTIVE | ST_SUSPENDED => {
                    if slot
                        .compare_exchange(
                            w,
                            pack(victim.epoch, ST_DOOMED),
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return DoomOutcome::Dead;
                    }
                    // Lost a race; re-read and decide again.
                }
                ST_DOOMED => return DoomOutcome::Dead,
                ST_COMMITTING => return DoomOutcome::Committing,
                _ => return DoomOutcome::Stale,
            }
        }
    }

    /// Records who is about to doom `victim` and over which line, for
    /// conflict attribution. Must be called *before* the doom CAS: the
    /// victim reads the note only after observing `Doomed`, so store-then-CAS
    /// (both SeqCst) guarantees the note is visible by then. A lost doom
    /// race leaves a note tagged with the victim's epoch, which
    /// [`Self::take_conflict`] rejects once the victim moves on.
    pub(crate) fn note_doom(&self, victim: Owner, line: LineId, peer: u32) {
        self.doom_info[victim.tid as usize]
            .0
            .store(pack_doom_info(victim.epoch, peer, line.0), Ordering::SeqCst);
    }

    /// Owning thread: consumes the conflict note for its current
    /// transaction, returning `(line, peer)` if a doomer attributed one.
    /// Clears the note either way.
    pub(crate) fn take_conflict(&self, me: Owner) -> Option<(u32, u32)> {
        let w = self.doom_info[me.tid as usize].0.swap(0, Ordering::SeqCst);
        if w & DI_VALID == 0 {
            return None;
        }
        if (w >> (32 + DI_PEER_BITS)) & DI_EPOCH_MASK != me.epoch & DI_EPOCH_MASK {
            return None;
        }
        Some((w as u32, ((w >> 32) & DI_PEER_MASK) as u32))
    }

    /// Spin until `owner` is no longer in the `Committing` state (i.e. its
    /// write-buffer flush finished or the epoch moved on). Used by untracked
    /// accesses to give single-cell reads commit atomicity.
    pub(crate) fn wait_while_committing(&self, owner: Owner) {
        let mut wait = crate::clock::SpinWait::new();
        loop {
            let w = self.load(owner.tid);
            if epoch_of(w) != owner.epoch || state_of(w) != ST_COMMITTING {
                return;
            }
            wait.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for epoch in [0u64, 1, 77, 1 << 40] {
            for st in [ST_INACTIVE, ST_ACTIVE, ST_DOOMED] {
                let w = pack(epoch, st);
                assert_eq!(epoch_of(w), epoch);
                assert_eq!(state_of(w), st);
            }
        }
    }

    #[test]
    fn doom_active_succeeds() {
        let t = TxTable::new(2);
        t.begin(0, 7);
        let o = Owner { tid: 0, epoch: 7 };
        assert_eq!(t.doom(o), DoomOutcome::Dead);
        assert!(t.is_doomed(o));
    }

    #[test]
    fn doom_stale_epoch_is_noop() {
        let t = TxTable::new(2);
        t.begin(0, 8);
        let o = Owner { tid: 0, epoch: 7 };
        assert_eq!(t.doom(o), DoomOutcome::Stale);
        assert!(!t.is_doomed(Owner { tid: 0, epoch: 8 }));
    }

    #[test]
    fn doom_committing_reports_committing() {
        let t = TxTable::new(1);
        t.begin(0, 3);
        assert!(t.try_transition(0, 3, ST_ACTIVE, ST_COMMITTING));
        assert_eq!(t.doom(Owner { tid: 0, epoch: 3 }), DoomOutcome::Committing);
    }

    #[test]
    fn commit_cas_fails_after_doom() {
        let t = TxTable::new(1);
        t.begin(0, 3);
        assert_eq!(t.doom(Owner { tid: 0, epoch: 3 }), DoomOutcome::Dead);
        assert!(!t.try_transition(0, 3, ST_ACTIVE, ST_COMMITTING));
    }

    #[test]
    fn suspended_can_be_doomed() {
        let t = TxTable::new(1);
        t.begin(0, 1);
        assert!(t.try_transition(0, 1, ST_ACTIVE, ST_SUSPENDED));
        assert_eq!(t.doom(Owner { tid: 0, epoch: 1 }), DoomOutcome::Dead);
        // resume must now fail
        assert!(!t.try_transition(0, 1, ST_SUSPENDED, ST_ACTIVE));
    }

    #[test]
    fn doom_note_round_trips() {
        let t = TxTable::new(4);
        t.begin(1, 9);
        let victim = Owner { tid: 1, epoch: 9 };
        t.note_doom(victim, LineId(1234), 3);
        assert_eq!(t.doom(victim), DoomOutcome::Dead);
        assert_eq!(t.take_conflict(victim), Some((1234, 3)));
        // Consumed: a second take finds nothing.
        assert_eq!(t.take_conflict(victim), None);
    }

    #[test]
    fn stale_doom_note_is_rejected() {
        let t = TxTable::new(4);
        t.begin(1, 9);
        t.note_doom(Owner { tid: 1, epoch: 9 }, LineId(7), 0);
        // Victim moved on before reading the note.
        t.begin(1, 10);
        assert_eq!(t.take_conflict(Owner { tid: 1, epoch: 10 }), None);
    }

    #[test]
    fn doom_note_packs_wide_values() {
        let t = TxTable::new(2);
        let victim = Owner {
            tid: 0,
            epoch: (1 << 40) + 5,
        };
        t.note_doom(victim, LineId(u32::MAX), 0x7_FFFF);
        assert_eq!(t.take_conflict(victim), Some((u32::MAX, 0x7_FFFF)));
    }

    #[test]
    fn wait_while_committing_returns_when_committed() {
        let t = std::sync::Arc::new(TxTable::new(1));
        t.begin(0, 2);
        assert!(t.try_transition(0, 2, ST_ACTIVE, ST_COMMITTING));
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            t2.set(0, 2, ST_COMMITTED);
        });
        t.wait_while_committing(Owner { tid: 0, epoch: 2 });
        assert_eq!(state_of(t.load(0)), ST_COMMITTED);
        h.join().unwrap();
    }
}
