//! The pluggable execution substrate: every scheduling-relevant event in
//! the simulator — tracked and untracked memory accesses, transaction
//! begin/commit/abort, condition waits, timed waits and clock reads —
//! routes through a [`Scheduler`] object instead of hitting the OS (or the
//! wall clock) directly.
//!
//! Two implementations ship:
//!
//! * [`OsScheduler`] — free-running OS threads, exactly the pre-refactor
//!   behaviour. Yield points are no-ops unless the (deprecated)
//!   `sched_shake_prob` knob asks for seeded random perturbation, timed
//!   waits spin on the wall clock, and `now()` is wall time.
//! * [`DetScheduler`] — a fully serialized cooperative scheduler: exactly
//!   one simulated thread runs at a time, the next runnable thread is
//!   picked by a seeded PRNG at every yield point, and time is a virtual
//!   counter advanced only by simulator events. The same
//!   `(workload seed, config, schedule seed)` triple therefore produces a
//!   byte-identical event trace on every run.
//!
//! # Thread binding
//!
//! Free functions like [`crate::clock::now`] and [`crate::clock::spin_until`]
//! cannot take a scheduler argument without churning every signature in the
//! workspace, so claiming a [`crate::ThreadCtx`] *binds* the calling OS
//! thread to its runtime's scheduler through a thread-local. Bound threads
//! read the scheduler clock and wait through the scheduler; unbound threads
//! (harness main threads, plain unit tests) keep the historical wall-clock
//! behaviour. The binding is released when the context drops.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

mod det;
mod os;
mod policy;

pub use det::DetScheduler;
pub use os::OsScheduler;
pub use policy::{
    DecisionRecord, DelayBoundedPolicy, PickReason, RandomPolicy, ReplayPolicy, SchedulePolicy,
    SchedulePolicyKind, SleepSetLite,
};

/// Why a yield point was reached. Schedulers may weight or filter decisions
/// by kind; both built-in implementations currently treat every kind the
/// same, but the taxonomy keeps traces and future policies honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YieldKind {
    /// A tracked (transactional) memory access.
    TxAccess,
    /// An untracked memory access (`Direct` or suspended-mode).
    Access,
    /// A transaction is about to begin.
    TxBegin,
    /// A transaction just committed.
    TxCommit,
    /// A transaction attempt just aborted.
    TxAbort,
    /// One step of a condition wait ([`crate::clock::SpinWait::snooze`]).
    Snooze,
}

/// The execution substrate: owns thread interleaving and the clock.
///
/// Implementations must be safe to call from any participating thread. The
/// simulator calls [`Scheduler::yield_point`] at every event where a real
/// machine could context-switch; a scheduler may run other threads, inject
/// delays, or do nothing there.
pub trait Scheduler: fmt::Debug + Send + Sync {
    /// Announces that OS thread `tid` joined the simulation (called from
    /// [`crate::Htm::thread`]). Serializing schedulers may block here until
    /// every expected participant has arrived and it is `tid`'s turn.
    fn register(&self, tid: u32);

    /// Announces that `tid` left the simulation (context dropped).
    fn deregister(&self, tid: u32);

    /// A point where the interleaving may change. No-op for threads that
    /// never registered (e.g. a harness main thread doing setup).
    fn yield_point(&self, tid: u32, kind: YieldKind);

    /// The scheduler clock, in nanoseconds. Wall time for free-running
    /// schedulers, virtual time for deterministic ones. Deterministic
    /// clocks must advance on every read so bounded waits terminate.
    fn now(&self) -> u64;

    /// Blocks `tid` until [`Scheduler::now`] reaches `deadline_ns`.
    fn wait_until(&self, tid: u32, deadline_ns: u64);

    /// Whether this scheduler serializes execution and virtualizes time.
    fn is_deterministic(&self) -> bool {
        false
    }

    /// The decision trace of the run so far — one [`DecisionRecord`] per
    /// branch point — for schedulers that record one. `None` for
    /// free-running schedulers (the OS made the choices, invisibly).
    fn decision_trace(&self) -> Option<Vec<DecisionRecord>> {
        None
    }

    /// For replaying schedulers: where (if anywhere) the live run stopped
    /// matching the recorded schedule. `None` means faithful so far.
    fn schedule_divergence(&self) -> Option<String> {
        None
    }
}

/// The calling thread's scheduler binding (see module docs).
struct Binding {
    sched: Arc<dyn Scheduler>,
    tid: u32,
}

thread_local! {
    static BOUND: RefCell<Option<Binding>> = const { RefCell::new(None) };
}

/// Binds the calling OS thread to `sched` as simulated thread `tid`.
/// Overwrites any previous binding (last claim wins).
pub(crate) fn bind(sched: Arc<dyn Scheduler>, tid: u32) {
    BOUND.with(|b| *b.borrow_mut() = Some(Binding { sched, tid }));
}

/// Clears the calling thread's binding (context drop).
pub(crate) fn unbind() {
    BOUND.with(|b| *b.borrow_mut() = None);
}

/// Scheduler-clock read for bound threads; `None` when unbound.
#[inline]
pub(crate) fn bound_now() -> Option<u64> {
    BOUND.with(|b| b.borrow().as_ref().map(|bind| bind.sched.now()))
}

/// Routes a timed wait through the bound scheduler. Returns `false` when
/// the thread is unbound (caller falls back to the wall-clock spin).
#[inline]
pub(crate) fn bound_wait_until(deadline_ns: u64) -> bool {
    BOUND.with(|b| match b.borrow().as_ref() {
        Some(bind) => {
            bind.sched.wait_until(bind.tid, deadline_ns);
            true
        }
        None => false,
    })
}

/// Routes one condition-wait step through the bound scheduler **if** it is
/// deterministic (a serialized scheduler must hand the CPU over, or the
/// awaited condition can never change). Returns `false` when the caller
/// should do the classic spin/yield escalation instead.
#[inline]
pub(crate) fn bound_snooze() -> bool {
    BOUND.with(|b| match b.borrow().as_ref() {
        Some(bind) if bind.sched.is_deterministic() => {
            bind.sched.yield_point(bind.tid, YieldKind::Snooze);
            true
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_thread_reports_no_binding() {
        assert!(bound_now().is_none());
        assert!(!bound_wait_until(123));
        assert!(!bound_snooze());
    }

    #[test]
    fn binding_routes_clock_reads_and_waits() {
        let sched: Arc<dyn Scheduler> = Arc::new(DetScheduler::new(7, 1));
        sched.register(0);
        bind(Arc::clone(&sched), 0);
        let a = bound_now().expect("bound");
        let b = bound_now().expect("bound");
        assert!(b > a, "deterministic clock advances on every read");
        assert!(bound_wait_until(b + 1_000_000));
        assert!(
            bound_now().unwrap() >= b + 1_000_000,
            "wait jumped the clock"
        );
        assert!(bound_snooze(), "det scheduler handles snoozes");
        unbind();
        assert!(bound_now().is_none());
        sched.deregister(0);
    }

    #[test]
    fn os_bound_snooze_falls_back_to_spinning() {
        let sched: Arc<dyn Scheduler> = Arc::new(OsScheduler::new(0.0, 1));
        bind(Arc::clone(&sched), 0);
        assert!(!bound_snooze(), "free-running mode keeps the classic spin");
        assert!(bound_now().is_some());
        unbind();
    }
}
