//! Schedule policies: *who runs next* at a deterministic decision point.
//!
//! [`super::DetScheduler`] serializes execution and, at every point where
//! more than one thread could run, asks a [`SchedulePolicy`] to choose the
//! successor. Splitting the *mechanism* (serialization, virtual clock,
//! blocking) from the *policy* (the choice) is what turns the deterministic
//! scheduler from a replay tool into a search tool: the same substrate can
//! sample interleavings blindly ([`RandomPolicy`], the original behaviour),
//! enumerate them systematically ([`DelayBoundedPolicy`], CHESS-style
//! iterative delay bounding), or re-execute one recorded interleaving
//! exactly ([`ReplayPolicy`]).
//!
//! # Decision traces
//!
//! The scheduler records every *branch point* — a pick with two or more
//! runnable threads — as a [`DecisionRecord`] (chosen tid + runnable-set
//! bitmask). The sequence of records is the **decision trace**: together
//! with the workload seed and configuration it pins the entire run, so a
//! decision trace is a stronger replay artifact than a schedule seed (it
//! reproduces a schedule found by *any* policy, not just a PRNG stream).
//! Forced picks (exactly one runnable thread) are not recorded: they carry
//! no information, and skipping them keeps traces short and replay robust.
//!
//! # Sleep-set pruning (DPOR-lite)
//!
//! [`SleepSetLite`] prunes delay-bounded candidates that provably commute
//! with an already-explored schedule: a delay that only swaps the order of
//! two threads that never conflicted (per the HTM directory's conflict-line
//! attribution) yields an equivalent interleaving and need not be run. See
//! DESIGN.md §6e for the soundness argument and its deliberate limits.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use super::YieldKind;
use crate::util::XorShift64;

/// Why the scheduler is picking a successor.
///
/// Policies may use this to shape their baseline (e.g. hand the CPU over on
/// condition-wait steps so spin loops cannot livelock a non-preemptive
/// baseline); [`RandomPolicy`] ignores it entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickReason {
    /// The start barrier released (first pick of the run).
    Start,
    /// A thread deregistered while holding the virtual CPU.
    Exit,
    /// A yield point of the given kind.
    Yield(YieldKind),
    /// The current thread blocked on a timed wait.
    TimedWait,
}

/// One recorded branch point: which thread was chosen among which
/// candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecisionRecord {
    /// The tid the policy selected.
    pub chosen: u32,
    /// Bitmask of runnable tids at this point (tids ≥ 64 are not
    /// representable and are simply absent; deterministic torture runs use
    /// far fewer threads).
    pub runnable: u64,
}

impl DecisionRecord {
    /// The runnable tids other than the chosen one, in ascending order.
    pub fn alternatives(&self) -> impl Iterator<Item = u32> + '_ {
        (0..64u32).filter(move |&t| self.runnable & (1 << t) != 0 && t != self.chosen)
    }
}

/// A scheduling policy for [`super::DetScheduler`].
///
/// `choose` is called at **every** pick — including forced ones with a
/// single runnable thread — so stateful policies (PRNG streams) consume
/// their state identically whether or not the pick is a real branch. The
/// returned index must be `< runnable.len()`; the scheduler clamps
/// defensively. `runnable` is always non-empty and sorted ascending.
pub trait SchedulePolicy: Send + fmt::Debug {
    /// Chooses the index of the next thread to run within `runnable`.
    fn choose(&mut self, runnable: &[u32], reason: PickReason) -> usize;

    /// For replaying policies: a description of the first point where the
    /// live run stopped matching the recorded trace, if any.
    fn divergence(&self) -> Option<String> {
        None
    }
}

/// The original behaviour: a seeded PRNG picks uniformly among the
/// runnable threads. Bit-compatible with the pre-policy `DetScheduler`
/// (the PRNG is consulted at every pick, forced or not, so existing
/// `(seed, sched_seed)` replays and golden traces are unaffected).
#[derive(Debug)]
pub struct RandomPolicy {
    rng: XorShift64,
}

impl RandomPolicy {
    /// A policy drawing from the given schedule seed.
    pub fn new(schedule_seed: u64) -> Self {
        Self {
            rng: XorShift64::new(schedule_seed),
        }
    }
}

impl SchedulePolicy for RandomPolicy {
    fn choose(&mut self, runnable: &[u32], _reason: PickReason) -> usize {
        (self.rng.next_u64() % runnable.len() as u64) as usize
    }
}

/// Position of the first runnable tid strictly greater than `t`, wrapping
/// to 0 — the cyclic successor in tid order.
fn next_after(runnable: &[u32], t: u32) -> usize {
    runnable.iter().position(|&x| x > t).unwrap_or(0)
}

/// CHESS-style iterative delay bounding.
///
/// The baseline is the canonical **non-preemptive** schedule: keep running
/// the current thread until it blocks, exits, or reaches a condition-wait
/// step ([`YieldKind::Snooze`], which hands the CPU to the next thread in
/// tid order — a spinning thread can never starve the thread it waits on).
/// A *delay* at branch step `i` rotates the choice at the `i`-th branch
/// point one position past the baseline; `d` delays therefore inject at
/// most `d` preemptions. Enumerating delay vectors at increasing budgets
/// `d = 0, 1, 2, …` covers the schedule space systematically, and small
/// budgets already expose most ordering bugs (the empirical claim of the
/// CHESS line of work).
#[derive(Debug)]
pub struct DelayBoundedPolicy {
    /// Branch-step indices to delay at, ascending; repeated indices rotate
    /// further at the same point.
    delays: Vec<u64>,
    /// Branch points seen so far (forced picks do not count).
    step: u64,
    /// The thread chosen at the previous pick.
    last: Option<u32>,
}

impl DelayBoundedPolicy {
    /// A policy with the given delay vector (need not be sorted).
    pub fn new(mut delays: Vec<u64>) -> Self {
        delays.sort_unstable();
        Self {
            delays,
            step: 0,
            last: None,
        }
    }
}

impl SchedulePolicy for DelayBoundedPolicy {
    fn choose(&mut self, runnable: &[u32], reason: PickReason) -> usize {
        if runnable.len() == 1 {
            self.last = Some(runnable[0]);
            return 0;
        }
        let base = match self.last {
            // A condition-wait step must hand over: the awaited condition
            // can only change if someone else runs.
            Some(l) if reason == PickReason::Yield(YieldKind::Snooze) => next_after(runnable, l),
            Some(l) => runnable
                .iter()
                .position(|&x| x == l)
                .unwrap_or_else(|| next_after(runnable, l)),
            None => 0,
        };
        let rotations = self.delays.iter().filter(|&&d| d == self.step).count();
        let idx = (base + rotations) % runnable.len();
        self.step += 1;
        self.last = Some(runnable[idx]);
        idx
    }
}

/// Replays a recorded decision trace exactly.
///
/// Each branch point consumes one recorded tid; forced picks consume
/// nothing (they were not recorded). If the recorded tid is not runnable,
/// or the trace runs out at a branch point, the policy notes the first
/// divergence and falls back to the lowest runnable tid so the run can
/// still complete (a diverged replay is a diagnosis, not a deadlock).
#[derive(Debug)]
pub struct ReplayPolicy {
    decisions: Arc<[u32]>,
    pos: usize,
    diverged: Option<String>,
}

impl ReplayPolicy {
    /// A policy replaying the given branch-point choices.
    pub fn new(decisions: Arc<[u32]>) -> Self {
        Self {
            decisions,
            pos: 0,
            diverged: None,
        }
    }

    /// Recorded decisions consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl SchedulePolicy for ReplayPolicy {
    fn choose(&mut self, runnable: &[u32], _reason: PickReason) -> usize {
        if runnable.len() == 1 {
            return 0;
        }
        let step = self.pos;
        let want = self.decisions.get(step).copied();
        self.pos += 1;
        match want {
            Some(t) => match runnable.iter().position(|&x| x == t) {
                Some(i) => i,
                None => {
                    if self.diverged.is_none() {
                        self.diverged = Some(format!(
                            "branch {step}: recorded tid {t} is not runnable \
                             (runnable set {runnable:?})"
                        ));
                    }
                    0
                }
            },
            None => {
                if self.diverged.is_none() {
                    self.diverged = Some(format!(
                        "branch {step}: recorded trace exhausted \
                         (runnable set {runnable:?})"
                    ));
                }
                0
            }
        }
    }

    fn divergence(&self) -> Option<String> {
        self.diverged.clone()
    }
}

/// Data-only policy description, so a policy can travel inside
/// [`crate::HtmConfig`] (which must stay `Clone + Eq + Hash`-able for spec
/// matrices and test tables).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SchedulePolicyKind {
    /// Seeded uniform-random picking ([`RandomPolicy`]).
    Random {
        /// The schedule seed.
        seed: u64,
    },
    /// Non-preemptive baseline plus the given delay vector
    /// ([`DelayBoundedPolicy`]).
    DelayBounded {
        /// Branch-step indices to delay at.
        delays: Vec<u64>,
    },
    /// Exact replay of a recorded decision trace ([`ReplayPolicy`]).
    Replay {
        /// Chosen tids, one per branch point.
        decisions: Arc<[u32]>,
    },
}

impl SchedulePolicyKind {
    /// Instantiates the policy object.
    pub fn build(&self) -> Box<dyn SchedulePolicy> {
        match self {
            SchedulePolicyKind::Random { seed } => Box::new(RandomPolicy::new(*seed)),
            SchedulePolicyKind::DelayBounded { delays } => {
                Box::new(DelayBoundedPolicy::new(delays.clone()))
            }
            SchedulePolicyKind::Replay { decisions } => {
                Box::new(ReplayPolicy::new(Arc::clone(decisions)))
            }
        }
    }
}

/// Sleep-set-style pruning over delay-bounded candidates (DPOR-lite).
///
/// Seeded with the *observed conflict relation* of an executed run — the
/// unordered thread pairs the HTM directory attributed at least one
/// conflict to — it answers whether inserting a delay at a given branch
/// point of that run can possibly produce a non-equivalent interleaving.
/// A delay at a branch point only reorders the chosen thread against the
/// alternatives; if none of those pairs ever conflicted, the two threads'
/// adjacent steps commute and the delayed schedule is equivalent to one
/// already explored, so the candidate is pruned.
///
/// This is deliberately *lite*: the conflict relation is per-run and
/// per-thread-pair, not per-step, so the check is coarser than a full
/// persistent/sleep-set DPOR. It errs on the side of exploring (any
/// conflict between the pair anywhere in the run blocks pruning), which
/// keeps it sound for bug *finding* under the explored policy family; the
/// precise argument (and the gap to full DPOR) is written out in
/// DESIGN.md §6e.
#[derive(Debug, Default)]
pub struct SleepSetLite {
    conflicts: HashSet<(u32, u32)>,
}

impl SleepSetLite {
    /// An empty pruner (no conflicts observed: everything commutes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an attributed conflict between two threads.
    pub fn note_conflict(&mut self, a: u32, b: u32) {
        if a != b {
            self.conflicts.insert((a.min(b), a.max(b)));
        }
    }

    /// Number of distinct conflicting pairs observed.
    pub fn pairs(&self) -> usize {
        self.conflicts.len()
    }

    /// Whether the two threads ever conflicted.
    pub fn conflicted(&self, a: u32, b: u32) -> bool {
        self.conflicts.contains(&(a.min(b), a.max(b)))
    }

    /// Whether delaying the parent run's branch point `record` can produce
    /// a *non*-equivalent interleaving: true iff the chosen thread
    /// conflicts with at least one alternative it would be reordered
    /// against. `false` means the candidate may be pruned.
    pub fn delay_can_matter(&self, record: &DecisionRecord) -> bool {
        record
            .alternatives()
            .any(|t| self.conflicted(record.chosen, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_policy_matches_legacy_modulo_pick() {
        // The pre-policy scheduler computed `rng.next_u64() % len` at every
        // pick; the policy must reproduce that stream bit-for-bit.
        let mut p = RandomPolicy::new(99);
        let mut rng = XorShift64::new(99);
        for len in [1usize, 3, 2, 4, 1, 2] {
            let runnable: Vec<u32> = (0..len as u32).collect();
            let want = (rng.next_u64() % len as u64) as usize;
            assert_eq!(p.choose(&runnable, PickReason::Start), want);
        }
    }

    #[test]
    fn delay_bounded_baseline_is_non_preemptive() {
        let mut p = DelayBoundedPolicy::new(vec![]);
        let r = [0u32, 1, 2];
        // First pick: lowest tid.
        assert_eq!(p.choose(&r, PickReason::Start), 0);
        // Plain yields keep the current thread running.
        for _ in 0..5 {
            assert_eq!(p.choose(&r, PickReason::Yield(YieldKind::Access)), 0);
        }
        // A snooze hands over to the next tid in order.
        assert_eq!(p.choose(&r, PickReason::Yield(YieldKind::Snooze)), 1);
        assert_eq!(p.choose(&r, PickReason::Yield(YieldKind::Access)), 1);
    }

    #[test]
    fn delays_rotate_past_the_baseline() {
        let mut p = DelayBoundedPolicy::new(vec![1]);
        let r = [0u32, 1];
        assert_eq!(p.choose(&r, PickReason::Start), 0, "branch 0: baseline");
        assert_eq!(
            p.choose(&r, PickReason::Yield(YieldKind::Access)),
            1,
            "branch 1 is delayed: rotate to the other thread"
        );
        assert_eq!(
            p.choose(&r, PickReason::Yield(YieldKind::Access)),
            1,
            "after the preemption, thread 1 is the sticky current thread"
        );
    }

    #[test]
    fn forced_picks_do_not_consume_delay_steps() {
        let mut p = DelayBoundedPolicy::new(vec![0]);
        assert_eq!(p.choose(&[2], PickReason::Start), 0, "forced");
        // The first *branch* point is still step 0 and gets the delay.
        assert_eq!(p.choose(&[1, 2], PickReason::Yield(YieldKind::Access)), 0);
        // Baseline would stick with tid 2 (index 1); the delay rotated one
        // past it, landing on tid 1 (index 0).
    }

    #[test]
    fn replay_follows_the_recorded_trace_and_flags_divergence() {
        let mut p = ReplayPolicy::new(vec![1u32, 0].into());
        assert_eq!(p.choose(&[0, 1], PickReason::Start), 1);
        assert_eq!(p.choose(&[9], PickReason::Exit), 0, "forced, not consumed");
        assert_eq!(p.choose(&[0, 2], PickReason::TimedWait), 0);
        assert!(p.divergence().is_none());
        // Trace exhausted at a real branch: diverged, falls back to 0.
        assert_eq!(p.choose(&[0, 1], PickReason::Start), 0);
        assert!(p.divergence().unwrap().contains("exhausted"));
    }

    #[test]
    fn replay_divergence_on_non_runnable_tid() {
        let mut p = ReplayPolicy::new(vec![5u32].into());
        assert_eq!(p.choose(&[0, 1], PickReason::Start), 0);
        let d = p.divergence().unwrap();
        assert!(d.contains("tid 5"), "{d}");
    }

    #[test]
    fn sleep_set_prunes_only_non_conflicting_reorders() {
        let mut s = SleepSetLite::new();
        s.note_conflict(0, 1);
        s.note_conflict(1, 1); // self-conflicts are ignored
        assert_eq!(s.pairs(), 1);
        let swaps_0_1 = DecisionRecord {
            chosen: 0,
            runnable: 0b11,
        };
        let swaps_0_2 = DecisionRecord {
            chosen: 0,
            runnable: 0b101,
        };
        assert!(s.delay_can_matter(&swaps_0_1), "0 and 1 conflicted");
        assert!(
            !s.delay_can_matter(&swaps_0_2),
            "0 and 2 never conflicted: reordering them commutes"
        );
    }

    #[test]
    fn decision_record_alternatives() {
        let r = DecisionRecord {
            chosen: 1,
            runnable: 0b1011,
        };
        assert_eq!(r.alternatives().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn policy_kind_builds_matching_policies() {
        let k = SchedulePolicyKind::DelayBounded { delays: vec![2, 0] };
        let mut p = k.build();
        assert_eq!(p.choose(&[0, 1], PickReason::Start), 1, "delay at step 0");
        let r = SchedulePolicyKind::Replay {
            decisions: vec![1u32].into(),
        };
        let mut p = r.build();
        assert_eq!(p.choose(&[0, 1], PickReason::Start), 1);
    }
}
