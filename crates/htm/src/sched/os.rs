//! The free-running scheduler: OS threads race as they always did.

use std::sync::atomic::{AtomicU64, Ordering};

use super::{Scheduler, YieldKind};
use crate::clock;
use crate::util::mix64;

/// Today's execution model: threads are scheduled by the OS, the clock is
/// wall time, and yield points are (near-)free.
///
/// The scheduler absorbs the legacy *schedule shake* hack: with probability
/// `shake_prob`, a yield point injects a short seeded-random delay (an
/// OS-thread yield or a bounded spin) to perturb the interleaving. The
/// decision stream hashes `(seed, global event counter, tid)` — as
/// deterministic as anything can be over real threads, where the counter
/// order itself depends on OS scheduling.
#[derive(Debug)]
pub struct OsScheduler {
    shake_prob: f64,
    seed: u64,
    /// Global event counter feeding the shake hash.
    shake_clock: AtomicU64,
}

impl OsScheduler {
    /// Creates a free-running scheduler. `shake_prob` of `0.0` makes every
    /// yield point a single branch.
    pub fn new(shake_prob: f64, seed: u64) -> Self {
        Self {
            shake_prob,
            seed,
            shake_clock: AtomicU64::new(0),
        }
    }
}

impl Scheduler for OsScheduler {
    fn register(&self, _tid: u32) {}

    fn deregister(&self, _tid: u32) {}

    #[inline]
    fn yield_point(&self, tid: u32, _kind: YieldKind) {
        let p = self.shake_prob;
        if p <= 0.0 {
            return;
        }
        let n = self.shake_clock.fetch_add(1, Ordering::Relaxed);
        let bits =
            mix64(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((u64::from(tid) + 1) << 48));
        let u = (bits >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        if u >= p {
            return;
        }
        if bits & 3 == 0 {
            std::thread::yield_now();
        } else {
            for _ in 0..(bits >> 2 & 0x7F) {
                std::hint::spin_loop();
            }
        }
    }

    #[inline]
    fn now(&self) -> u64 {
        clock::wall_now()
    }

    fn wait_until(&self, _tid: u32, deadline_ns: u64) {
        let mut spins = 0u32;
        while clock::wall_now() < deadline_ns {
            spins += 1;
            if spins < 32 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_shakes() {
        let s = OsScheduler::new(0.0, 42);
        for tid in 0..4 {
            s.yield_point(tid, YieldKind::Access);
        }
        assert_eq!(
            s.shake_clock.load(Ordering::Relaxed),
            0,
            "the off path must not touch the counter"
        );
    }

    #[test]
    fn shaking_consumes_the_event_counter() {
        let s = OsScheduler::new(1.0, 42);
        for _ in 0..8 {
            s.yield_point(0, YieldKind::Access);
        }
        assert_eq!(s.shake_clock.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn clock_is_wall_time_and_waits_complete() {
        let s = OsScheduler::new(0.0, 1);
        let t0 = s.now();
        s.wait_until(0, t0 + 100_000); // 0.1 ms
        assert!(s.now() >= t0 + 100_000);
        assert!(!s.is_deterministic());
    }
}
