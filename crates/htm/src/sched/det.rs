//! The deterministic serialized scheduler: one thread at a time, a
//! [`SchedulePolicy`] picking who runs next, and a virtual clock driven
//! purely by simulator events.

use parking_lot::{Condvar, Mutex};

use super::policy::{DecisionRecord, PickReason, RandomPolicy, SchedulePolicy};
use super::{Scheduler, YieldKind};

/// Virtual nanoseconds a yield point costs. Large enough that timed waits
/// (δ-starts, reader deadlines) resolve within a few dozen events, small
/// enough that durations estimated from the virtual clock stay plausible.
const YIELD_TICK: u64 = 25;

/// Virtual nanoseconds a bare clock read costs. Strictly positive so the
/// clock is strictly monotonic and every `while now() < deadline` loop
/// terminates even if the scheduler never switches threads.
const NOW_TICK: u64 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// No thread registered (or it deregistered).
    Absent,
    /// Registered and eligible to be scheduled.
    Runnable,
    /// Registered but waiting for the virtual clock to reach a deadline.
    Blocked(u64),
}

#[derive(Debug)]
struct DetState {
    threads: Vec<Slot>,
    registered: usize,
    /// The start barrier has released: every participant arrived once.
    started: bool,
    /// The one thread allowed to run (`None` before start / after the
    /// last deregistration).
    current: Option<u32>,
    vclock: u64,
    policy: Box<dyn SchedulePolicy>,
    /// Reused across picks: collecting the runnable set is the hottest
    /// loop of every deterministic run, so it must not allocate each time.
    scratch: Vec<u32>,
    /// Every branch point (two or more runnable threads) of the run so
    /// far, in order.
    decisions: Vec<DecisionRecord>,
}

impl DetState {
    /// Picks the next thread to run. Sleepers whose deadline the virtual
    /// clock has already passed are woken first (they became schedulable
    /// the moment time caught up with them, even if other threads kept the
    /// CPU busy meanwhile); when every registered thread is blocked on a
    /// timer, the clock jumps to the earliest deadline (the all-asleep
    /// rule of discrete-event simulation). Returns `None` only when no
    /// threads are registered at all.
    fn pick(&mut self, reason: PickReason) -> Option<u32> {
        loop {
            for s in &mut self.threads {
                if matches!(s, Slot::Blocked(d) if *d <= self.vclock) {
                    *s = Slot::Runnable;
                }
            }
            self.scratch.clear();
            for (i, s) in self.threads.iter().enumerate() {
                if *s == Slot::Runnable {
                    self.scratch.push(i as u32);
                }
            }
            if !self.scratch.is_empty() {
                let i = self
                    .policy
                    .choose(&self.scratch, reason)
                    .min(self.scratch.len() - 1);
                let chosen = self.scratch[i];
                if self.scratch.len() > 1 {
                    let mut runnable = 0u64;
                    for &t in &self.scratch {
                        if t < 64 {
                            runnable |= 1 << t;
                        }
                    }
                    self.decisions.push(DecisionRecord { chosen, runnable });
                }
                return Some(chosen);
            }
            let earliest = self
                .threads
                .iter()
                .filter_map(|s| match s {
                    Slot::Blocked(d) => Some(*d),
                    _ => None,
                })
                .min()?;
            self.vclock = self.vclock.max(earliest);
        }
    }

    fn participates(&self, tid: u32) -> bool {
        self.started
            && (tid as usize) < self.threads.len()
            && self.threads[tid as usize] != Slot::Absent
    }
}

/// A fully serialized cooperative scheduler.
///
/// Exactly one simulated thread runs at any moment; at every yield point
/// the running thread hands control to a successor chosen by the
/// installed [`SchedulePolicy`] (a seeded PRNG by default), so the
/// complete interleaving — and therefore every event trace, every
/// conflict, every abort — is a pure function of
/// `(workload seed, config, policy)`. Every branch point is recorded as a
/// [`DecisionRecord`], available through [`Scheduler::decision_trace`]
/// for exact replay.
///
/// Time is virtual: a counter that advances by [`NOW_TICK`] per clock read
/// and [`YIELD_TICK`] per yield, and jumps forward when every thread is
/// blocked on a timed wait. Wall time never enters the simulation.
///
/// # Contract
///
/// * Exactly `participants` OS threads must each claim one
///   [`crate::ThreadCtx`]; registration blocks until all have arrived
///   (a start barrier that erases OS spawn-order nondeterminism), so
///   claiming fewer contexts than `participants` deadlocks by design.
/// * After the barrier releases, a context released mid-run may be
///   re-claimed (dynamic thread churn): the re-registrant joins the
///   running schedule at its next pick instead of re-arming the barrier,
///   even when every other participant has already deregistered.
/// * The start barrier is a **first-wave device**: it never re-arms, not
///   even when every participant has deregistered. A scheduler reused for
///   a second full wave of registrations therefore does not erase that
///   wave's spawn-order nondeterminism — build a fresh scheduler (and a
///   fresh `Htm`, as the in-repo harnesses do) per run.
/// * Participating threads must not block on OS primitives the scheduler
///   cannot see (condvars, channels, `std::sync::Barrier`) while they hold
///   the virtual CPU — spin-and-snooze waits, which route through
///   [`crate::clock::SpinWait`], are the supported shape. The stock
///   mutex-and-condvar `PthreadRwLock` baseline is therefore excluded
///   from deterministic torture runs.
/// * Non-participating threads (e.g. a harness main thread doing setup
///   before workers spawn, or inspecting memory after they join) bypass
///   the scheduler entirely: their yield points are no-ops and their clock
///   reads fall back to wall time.
#[derive(Debug)]
pub struct DetScheduler {
    inner: Mutex<DetState>,
    cv: Condvar,
    participants: usize,
}

impl DetScheduler {
    /// Creates a scheduler expecting exactly `participants` threads, with
    /// the classic seeded-PRNG picking policy.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn new(schedule_seed: u64, participants: usize) -> Self {
        Self::with_policy(Box::new(RandomPolicy::new(schedule_seed)), participants)
    }

    /// Creates a scheduler driven by an arbitrary [`SchedulePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn with_policy(policy: Box<dyn SchedulePolicy>, participants: usize) -> Self {
        assert!(participants > 0, "a schedule needs at least one thread");
        Self {
            inner: Mutex::new(DetState {
                threads: vec![Slot::Absent; participants],
                registered: 0,
                started: false,
                current: None,
                vclock: 0,
                policy,
                scratch: Vec::with_capacity(participants),
                decisions: Vec::new(),
            }),
            cv: Condvar::new(),
            participants,
        }
    }

    /// The virtual clock, without advancing it (tests, reporting).
    pub fn vclock(&self) -> u64 {
        self.inner.lock().vclock
    }
}

impl Scheduler for DetScheduler {
    /// Blocks until every participant has registered *and* the seeded
    /// picker selects this thread for the first time. Once the start
    /// barrier has released, later registrants (mid-run churn: a thread
    /// released its context and claimed a fresh one) simply become
    /// runnable and wait for their next pick — including restarting the
    /// schedule when every other participant already left.
    fn register(&self, tid: u32) {
        let mut st = self.inner.lock();
        let i = tid as usize;
        assert!(
            i < self.participants,
            "tid {tid} out of range for a {}-thread deterministic schedule",
            self.participants
        );
        assert!(
            st.threads[i] == Slot::Absent,
            "thread {tid} registered twice"
        );
        st.threads[i] = Slot::Runnable;
        st.registered += 1;
        if st.registered == self.participants && !st.started {
            st.started = true;
            st.current = st.pick(PickReason::Start);
            self.cv.notify_all();
        } else if st.started && st.current.is_none() {
            // Everyone else deregistered while this thread was between
            // contexts; the schedule must restart or it waits forever.
            st.current = st.pick(PickReason::Start);
            self.cv.notify_all();
        }
        while !(st.started && st.current == Some(tid)) {
            self.cv.wait(&mut st);
        }
    }

    fn deregister(&self, tid: u32) {
        let mut st = self.inner.lock();
        let i = tid as usize;
        if i >= st.threads.len() || st.threads[i] == Slot::Absent {
            return;
        }
        st.threads[i] = Slot::Absent;
        st.registered -= 1;
        if st.registered == 0 {
            // `started` stays set: the start barrier is a first-wave
            // device (it erases OS spawn-order nondeterminism), and a
            // churning thread that re-registers after everyone else left
            // must rejoin the run, not wait for a full house again.
            st.current = None;
        } else if st.current == Some(tid) {
            st.current = st.pick(PickReason::Exit);
        }
        self.cv.notify_all();
    }

    fn yield_point(&self, tid: u32, kind: YieldKind) {
        let mut st = self.inner.lock();
        if !st.participates(tid) || st.current != Some(tid) {
            // Setup/teardown accesses from non-participants run unserialized.
            return;
        }
        st.vclock += YIELD_TICK;
        let next = st
            .pick(PickReason::Yield(kind))
            .expect("the yielding thread is runnable");
        if next != tid {
            st.current = Some(next);
            self.cv.notify_all();
            while st.current != Some(tid) {
                self.cv.wait(&mut st);
            }
        }
    }

    fn now(&self) -> u64 {
        let mut st = self.inner.lock();
        st.vclock += NOW_TICK;
        st.vclock
    }

    fn wait_until(&self, tid: u32, deadline_ns: u64) {
        let mut st = self.inner.lock();
        if !st.participates(tid) || st.current != Some(tid) {
            return;
        }
        if st.vclock >= deadline_ns {
            st.vclock += YIELD_TICK; // an expired wait degrades to a yield
        } else {
            st.threads[tid as usize] = Slot::Blocked(deadline_ns);
        }
        let next = st
            .pick(PickReason::TimedWait)
            .expect("someone is schedulable");
        if next != tid {
            st.current = Some(next);
            self.cv.notify_all();
            while st.current != Some(tid) {
                self.cv.wait(&mut st);
            }
        }
        debug_assert_eq!(st.threads[tid as usize], Slot::Runnable);
        debug_assert!(st.vclock >= deadline_ns, "woken before the deadline");
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn decision_trace(&self) -> Option<Vec<DecisionRecord>> {
        Some(self.inner.lock().decisions.clone())
    }

    fn schedule_divergence(&self) -> Option<String> {
        self.inner.lock().policy.divergence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_runs_without_blocking() {
        let s = DetScheduler::new(1, 1);
        s.register(0);
        let t0 = s.now();
        s.yield_point(0, YieldKind::Access);
        assert!(s.now() > t0);
        s.wait_until(0, t0 + 1_000_000);
        assert!(s.vclock() >= t0 + 1_000_000, "clock jumped over the wait");
        s.deregister(0);
    }

    fn state(threads: Vec<Slot>, vclock: u64, seed: u64) -> DetState {
        let registered = threads.iter().filter(|s| **s != Slot::Absent).count();
        DetState {
            threads,
            registered,
            started: true,
            current: None,
            vclock,
            policy: Box::new(RandomPolicy::new(seed)),
            scratch: Vec::new(),
            decisions: Vec::new(),
        }
    }

    #[test]
    fn pick_stream_is_a_pure_function_of_the_seed() {
        let run = |seed: u64| {
            let mut st = state(vec![Slot::Runnable; 4], 0, seed);
            (0..64)
                .map(|_| st.pick(PickReason::Start).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds, different schedules");
    }

    #[test]
    fn all_blocked_jumps_to_earliest_deadline() {
        let mut st = state(vec![Slot::Blocked(500), Slot::Blocked(300)], 100, 3);
        assert_eq!(
            st.pick(PickReason::TimedWait),
            Some(1),
            "only thread 1 unblocks at t=300"
        );
        assert_eq!(st.vclock, 300);
        assert_eq!(st.threads[0], Slot::Blocked(500), "0 still asleep");
    }

    #[test]
    fn branch_points_are_recorded_and_forced_picks_are_not() {
        let mut st = state(vec![Slot::Runnable, Slot::Runnable], 0, 11);
        let first = st.pick(PickReason::Start).unwrap();
        assert_eq!(st.decisions.len(), 1, "two runnable threads: a branch");
        assert_eq!(st.decisions[0].chosen, first);
        assert_eq!(st.decisions[0].runnable, 0b11);
        st.threads[0] = Slot::Absent;
        st.pick(PickReason::Exit).unwrap();
        assert_eq!(st.decisions.len(), 1, "forced pick records nothing");
    }

    #[test]
    fn replayed_decision_trace_reproduces_the_pick_stream() {
        let mut st = state(vec![Slot::Runnable; 3], 0, 77);
        let picks: Vec<u32> = (0..32)
            .map(|_| st.pick(PickReason::Start).unwrap())
            .collect();
        let decisions: Vec<u32> = st.decisions.iter().map(|d| d.chosen).collect();
        let mut replay = state(vec![Slot::Runnable; 3], 0, 0);
        replay.policy = Box::new(super::super::policy::ReplayPolicy::new(decisions.into()));
        let replayed: Vec<u32> = (0..32)
            .map(|_| replay.pick(PickReason::Start).unwrap())
            .collect();
        assert_eq!(picks, replayed);
        assert!(replay.policy.divergence().is_none());
    }

    #[test]
    fn churned_thread_rejoins_the_running_schedule() {
        let s = Arc::new(DetScheduler::new(3, 2));
        let log = Arc::new(Mutex::new(Vec::new()));
        let churner = {
            let (s, log) = (Arc::clone(&s), Arc::clone(&log));
            std::thread::spawn(move || {
                s.register(0);
                for _ in 0..10 {
                    log.lock().push(0u32);
                    s.yield_point(0, YieldKind::Access);
                }
                // Mid-run churn: leave and come back.
                s.deregister(0);
                s.register(0);
                for _ in 0..10 {
                    log.lock().push(0u32);
                    s.yield_point(0, YieldKind::Access);
                }
                s.deregister(0);
            })
        };
        let steady = {
            let (s, log) = (Arc::clone(&s), Arc::clone(&log));
            std::thread::spawn(move || {
                s.register(1);
                for _ in 0..30 {
                    log.lock().push(1u32);
                    s.yield_point(1, YieldKind::Access);
                }
                s.deregister(1);
            })
        };
        churner.join().unwrap();
        steady.join().unwrap();
        assert_eq!(log.lock().len(), 50, "every iteration of both ran");
    }

    #[test]
    fn reregistration_after_everyone_left_does_not_deadlock() {
        let s = Arc::new(DetScheduler::new(5, 2));
        let b = Arc::new(std::sync::Barrier::new(2));
        let churner = {
            let (s, b) = (Arc::clone(&s), Arc::clone(&b));
            std::thread::spawn(move || {
                s.register(0);
                s.yield_point(0, YieldKind::Access);
                s.deregister(0);
                // Wait (off-schedule) until thread 1 has fully exited, so
                // the re-registration below finds an empty schedule.
                b.wait();
                s.register(0);
                s.yield_point(0, YieldKind::Access);
                s.deregister(0);
            })
        };
        let other = {
            let (s, b) = (Arc::clone(&s), Arc::clone(&b));
            std::thread::spawn(move || {
                s.register(1);
                for _ in 0..5 {
                    s.yield_point(1, YieldKind::Access);
                }
                s.deregister(1);
                b.wait();
            })
        };
        churner.join().unwrap();
        other.join().unwrap();
    }

    #[test]
    fn two_threads_serialize_through_the_barrier() {
        let s = Arc::new(DetScheduler::new(42, 2));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mk = |tid: u32| {
            let (s, log) = (Arc::clone(&s), Arc::clone(&log));
            std::thread::spawn(move || {
                s.register(tid);
                for _ in 0..50 {
                    log.lock().push(tid);
                    s.yield_point(tid, YieldKind::Access);
                }
                s.deregister(tid);
            })
        };
        let (a, b) = (mk(0), mk(1));
        a.join().unwrap();
        b.join().unwrap();
        let log = log.lock();
        assert_eq!(log.len(), 100);
        assert!(log.contains(&0) && log.contains(&1), "both threads ran");
    }

    #[test]
    fn same_seed_reproduces_the_same_interleaving() {
        let run = |seed: u64| {
            let s = Arc::new(DetScheduler::new(seed, 2));
            let log = Arc::new(Mutex::new(Vec::new()));
            let mk = |tid: u32| {
                let (s, log) = (Arc::clone(&s), Arc::clone(&log));
                std::thread::spawn(move || {
                    s.register(tid);
                    for _ in 0..40 {
                        log.lock().push(tid);
                        s.yield_point(tid, YieldKind::Access);
                    }
                    s.deregister(tid);
                })
            };
            let (a, b) = (mk(0), mk(1));
            a.join().unwrap();
            b.join().unwrap();
            Arc::try_unwrap(log).unwrap().into_inner()
        };
        assert_eq!(run(7), run(7), "the interleaving is seed-determined");
    }
}
