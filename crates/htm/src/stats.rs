//! Per-thread transaction statistics.
//!
//! The lock layer (`sprwl-locks`, `sprwl`) keeps its own richer breakdowns
//! (commit modes, reader-induced aborts, latencies); these counters cover
//! the raw HTM substrate and are cheap enough to keep always-on.

use crate::tx::{Abort, TxKind};

/// Counters for one simulated hardware thread.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ThreadStats {
    /// Transactions started in plain HTM mode.
    pub begins_htm: u64,
    /// Transactions started as rollback-only transactions.
    pub begins_rot: u64,
    /// Successful HTM commits.
    pub commits_htm: u64,
    /// Successful ROT commits.
    pub commits_rot: u64,
    /// Aborts due to data conflicts (including being doomed by untracked
    /// accesses — indistinguishable on real hardware too).
    pub aborts_conflict: u64,
    /// Aborts due to read-set capacity overflow.
    pub aborts_capacity_read: u64,
    /// Aborts due to write-set capacity overflow.
    pub aborts_capacity_write: u64,
    /// Explicit (`xabort`-style) aborts requested by the program.
    pub aborts_explicit: u64,
    /// Injected timer-interrupt aborts.
    pub aborts_interrupt: u64,
}

impl ThreadStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn on_begin(&mut self, kind: TxKind) {
        match kind {
            TxKind::Htm => self.begins_htm += 1,
            TxKind::Rot => self.begins_rot += 1,
        }
    }

    pub(crate) fn on_commit(&mut self, kind: TxKind) {
        match kind {
            TxKind::Htm => self.commits_htm += 1,
            TxKind::Rot => self.commits_rot += 1,
        }
    }

    pub(crate) fn on_abort(&mut self, cause: Abort) {
        match cause {
            Abort::Conflict => self.aborts_conflict += 1,
            Abort::CapacityRead => self.aborts_capacity_read += 1,
            Abort::CapacityWrite => self.aborts_capacity_write += 1,
            Abort::Explicit(_) => self.aborts_explicit += 1,
            Abort::Interrupt => self.aborts_interrupt += 1,
        }
    }

    /// Total transactions started.
    pub fn begins(&self) -> u64 {
        self.begins_htm + self.begins_rot
    }

    /// Total successful commits.
    pub fn commits(&self) -> u64 {
        self.commits_htm + self.commits_rot
    }

    /// Total aborts of any cause.
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict
            + self.aborts_capacity_read
            + self.aborts_capacity_write
            + self.aborts_explicit
            + self.aborts_interrupt
    }

    /// Adds `other`'s counters into `self` (cross-thread aggregation).
    pub fn merge(&mut self, other: &ThreadStats) {
        self.begins_htm += other.begins_htm;
        self.begins_rot += other.begins_rot;
        self.commits_htm += other.commits_htm;
        self.commits_rot += other.commits_rot;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_capacity_read += other.aborts_capacity_read;
        self.aborts_capacity_write += other.aborts_capacity_write;
        self.aborts_explicit += other.aborts_explicit;
        self.aborts_interrupt += other.aborts_interrupt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begins_commits_aborts_balance() {
        let mut s = ThreadStats::new();
        s.on_begin(TxKind::Htm);
        s.on_begin(TxKind::Htm);
        s.on_commit(TxKind::Htm);
        s.on_abort(Abort::Conflict);
        assert_eq!(s.begins(), 2);
        assert_eq!(s.commits(), 1);
        assert_eq!(s.aborts(), 1);
    }

    #[test]
    fn each_abort_cause_has_its_own_counter() {
        let mut s = ThreadStats::new();
        for a in [
            Abort::Conflict,
            Abort::CapacityRead,
            Abort::CapacityWrite,
            Abort::Explicit(3),
            Abort::Interrupt,
        ] {
            s.on_abort(a);
        }
        assert_eq!(s.aborts_conflict, 1);
        assert_eq!(s.aborts_capacity_read, 1);
        assert_eq!(s.aborts_capacity_write, 1);
        assert_eq!(s.aborts_explicit, 1);
        assert_eq!(s.aborts_interrupt, 1);
        assert_eq!(s.aborts(), 5);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ThreadStats::new();
        a.on_begin(TxKind::Rot);
        a.on_commit(TxKind::Rot);
        let mut b = ThreadStats::new();
        b.on_begin(TxKind::Htm);
        b.on_abort(Abort::Interrupt);
        a.merge(&b);
        assert_eq!(a.begins(), 2);
        assert_eq!(a.commits_rot, 1);
        assert_eq!(a.aborts_interrupt, 1);
    }
}
