//! # htm-sim — a software-simulated best-effort hardware transactional memory
//!
//! This crate is the hardware substrate for the reproduction of
//! *“Speculative Read Write Locks”* (Issa, Romano, Lopes — Middleware ’18).
//! The paper evaluates SpRWL on Intel Broadwell (TSX/RTM) and IBM POWER8
//! HTM; neither is available here, so the substrate is simulated in
//! software with the semantics the paper’s algorithms rely on:
//!
//! * **Write buffering** — stores issued inside a transaction are invisible
//!   to every other thread until the transaction commits, and become visible
//!   to transactional *and* non-transactional code on commit.
//! * **Eager conflict detection with strong isolation** — a
//!   *non-transactional* store to a cache line inside a transaction’s
//!   read- or write-set immediately dooms that transaction (the
//!   “requester wins” policy of real coherence-based HTMs). This is the
//!   property that makes SpRWL’s uninstrumented readers safe.
//! * **Best-effort capacity limits** — read- and write-sets are tracked at
//!   cache-line granularity and bounded by a configurable
//!   [`CapacityProfile`] ([`CapacityProfile::BROADWELL_SIM`] and
//!   [`CapacityProfile::POWER8_SIM`] mirror the asymmetric/symmetric limits
//!   of the two evaluation platforms).
//! * **Abort causes** — conflict, capacity (read/write), explicit
//!   (`xabort`-style, with an 8-bit-like user code), and injected
//!   “timer interrupt” aborts for failure testing.
//! * **POWER8 extras** — rollback-only transactions (no read-set) and
//!   suspend/resume, which the RW-LE *baseline* requires. SpRWL itself
//!   never uses them; that asymmetry is one of the paper’s points.
//!
//! Memory is modelled as a flat array of 64-bit cells ([`SimMemory`])
//! grouped into cache lines. All shared state that must participate in
//! conflict detection (application data, SpRWL’s `state` array, the
//! fallback lock, the SNZI root) lives in cells; transactional code accesses
//! them through [`Tx`], uninstrumented code through [`Direct`], and both
//! implement [`MemAccess`] so data structures can be written once.
//!
//! ## Quick example
//!
//! ```
//! use htm_sim::{Htm, HtmConfig, TxKind};
//!
//! let htm = Htm::new(HtmConfig::default(), 1024);
//! let cell = htm.memory().alloc(1).cell(0);
//! let mut ctx = htm.thread(0);
//! let committed = ctx.txn(TxKind::Htm, |tx| {
//!     let v = tx.read(cell)?;
//!     tx.write(cell, v + 1)?;
//!     Ok(v + 1)
//! });
//! assert_eq!(committed.unwrap(), 1);
//! assert_eq!(htm.direct(0).load(cell), 1);
//! ```
//!
//! ## Fidelity caveats (deliberate, documented)
//!
//! Commit is not a single hardware-atomic event: the committing transaction
//! moves to a `Committing` state, flushes its write buffer, then becomes
//! `Committed`. Untracked accesses that hit a line owned by a `Committing`
//! transaction spin until the flush completes, so a single untracked read is
//! always atomic. A *sequence* of untracked reads may interleave with a
//! commit exactly as it may on real hardware. Torn multi-cell snapshots are
//! only observable by protocols that fail to prevent racing readers — which
//! is precisely the bug class the SpRWL test-suite hunts for.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod access;
pub mod clock;
pub mod config;
mod directory;
pub mod memory;
pub mod registry;
pub mod sched;
mod slots;
pub mod stats;
pub mod tx;
mod util;

pub use access::{AccessMode, Direct, MemAccess, Suspended};
pub use config::{CapacityProfile, ConflictPolicy, HtmConfig, SchedulerKind};
pub use memory::{CellId, LineId, Region, SimMemory};
pub use registry::SlotRegistry;
pub use sched::{
    DecisionRecord, DetScheduler, OsScheduler, SchedulePolicy, SchedulePolicyKind, Scheduler,
    SleepSetLite, YieldKind,
};
pub use stats::ThreadStats;
pub use tx::{Abort, ConflictInfo, Htm, ThreadCtx, Tx, TxKind, TxResult};
