//! A cheap process-wide monotonic clock, standing in for `rdtsc` — now
//! scheduler-aware.
//!
//! SpRWL uses the hardware timestamp counter to (a) estimate critical
//! section durations with an exponential moving average and (b) spin until
//! a target instant. Threads bound to a [`crate::sched::Scheduler`] (every
//! thread that claimed a [`crate::ThreadCtx`]) read *the scheduler's*
//! clock and wait through it, so under the deterministic scheduler time is
//! virtual and timed waits resolve in simulated nanoseconds instead of
//! busy-waiting on real ones. Unbound threads — harness main threads,
//! plain unit tests — keep the historical behaviour: nanoseconds from a
//! process-global [`std::time::Instant`].

use std::sync::OnceLock;
use std::time::Instant;

use crate::sched;

static START: OnceLock<Instant> = OnceLock::new();

/// Wall-clock nanoseconds elapsed since the first call in this process,
/// bypassing any scheduler binding. Monotonic and cheap. The free-running
/// scheduler's time source; use [`now`] unless you specifically need real
/// time (e.g. measuring the wall cost of a deterministic run).
#[inline]
pub fn wall_now() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds on the calling thread's scheduler clock: virtual time for
/// threads bound to a deterministic scheduler, wall time otherwise.
///
/// Monotonic per thread; granularity is whatever the source offers, which
/// is ample for duration estimation.
///
/// ```
/// let a = htm_sim::clock::now();
/// let b = htm_sim::clock::now();
/// assert!(b >= a);
/// ```
#[inline]
pub fn now() -> u64 {
    match sched::bound_now() {
        Some(t) => t,
        None => wall_now(),
    }
}

/// Waits until [`now`] reaches `deadline_ns`, through the scheduler.
///
/// This mirrors SpRWL’s `wait until rdtsc() >= wait`: a timed wait that
/// avoids hammering shared memory. Bound threads delegate to their
/// scheduler (under the deterministic one, the thread sleeps in virtual
/// time and peers run meanwhile); unbound threads spin with escalating
/// politeness, yielding to the OS so other simulated threads can make
/// progress on oversubscribed hosts.
pub fn spin_until(deadline_ns: u64) {
    if sched::bound_wait_until(deadline_ns) {
        return;
    }
    let mut spins = 0u32;
    while wall_now() < deadline_ns {
        spins += 1;
        if spins < 32 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// A polite spin helper for condition waits: busy-spins briefly, then yields.
///
/// Use in loops of the form `while !cond { wait.snooze() }`. On threads
/// bound to a deterministic scheduler every snooze is a full yield point
/// (the serialized schedule must run a peer, or the condition could never
/// change); elsewhere it keeps the classic pause-then-OS-yield escalation.
#[derive(Debug, Default)]
pub struct SpinWait {
    spins: u32,
}

impl SpinWait {
    /// Creates a fresh spin helper.
    pub fn new() -> Self {
        Self::default()
    }

    /// One wait step: cheap CPU pause at first, an OS yield once the wait
    /// has lasted more than a few iterations (essential on hosts with fewer
    /// cores than simulated threads).
    #[inline]
    pub fn snooze(&mut self) {
        if sched::bound_snooze() {
            return;
        }
        self.spins = self.spins.saturating_add(1);
        if self.spins < 16 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }

    /// Resets the escalation counter (call after the condition made progress).
    pub fn reset(&mut self) {
        self.spins = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let mut last = now();
        for _ in 0..1000 {
            let t = now();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn spin_until_waits_at_least_the_requested_time() {
        let start = now();
        spin_until(start + 200_000); // 0.2 ms
        assert!(now() - start >= 200_000);
    }

    #[test]
    fn spin_until_past_deadline_returns_immediately() {
        let t = now();
        spin_until(t.saturating_sub(1));
    }

    #[test]
    fn spin_wait_escalates_without_panic() {
        let mut w = SpinWait::new();
        for _ in 0..64 {
            w.snooze();
        }
        w.reset();
        w.snooze();
    }

    #[test]
    fn wall_now_tracks_real_time() {
        let a = wall_now();
        let b = wall_now();
        assert!(b >= a);
    }
}
