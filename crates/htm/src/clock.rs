//! A cheap process-wide monotonic clock, standing in for `rdtsc`.
//!
//! SpRWL uses the hardware timestamp counter to (a) estimate critical
//! section durations with an exponential moving average and (b) spin until
//! a target instant. Nanoseconds from a process-global [`std::time::Instant`]
//! provide the same monotonic, low-overhead contract here.

use std::sync::OnceLock;
use std::time::Instant;

static START: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the first call in this process.
///
/// Monotonic and cheap; granularity is whatever the OS clock offers, which
/// is ample for duration estimation.
///
/// ```
/// let a = htm_sim::clock::now();
/// let b = htm_sim::clock::now();
/// assert!(b >= a);
/// ```
#[inline]
pub fn now() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Spins (with escalating politeness) until [`now`] reaches `deadline_ns`.
///
/// This mirrors SpRWL’s `wait until rdtsc() >= wait`: a timed wait that
/// avoids hammering shared memory. On oversubscribed hosts the loop yields
/// to the OS scheduler so other simulated threads can make progress.
pub fn spin_until(deadline_ns: u64) {
    let mut spins = 0u32;
    while now() < deadline_ns {
        spins += 1;
        if spins < 32 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// A polite spin helper for condition waits: busy-spins briefly, then yields.
///
/// Use in loops of the form `while !cond { wait.snooze() }`.
#[derive(Debug, Default)]
pub struct SpinWait {
    spins: u32,
}

impl SpinWait {
    /// Creates a fresh spin helper.
    pub fn new() -> Self {
        Self::default()
    }

    /// One wait step: cheap CPU pause at first, an OS yield once the wait
    /// has lasted more than a few iterations (essential on hosts with fewer
    /// cores than simulated threads).
    #[inline]
    pub fn snooze(&mut self) {
        self.spins = self.spins.saturating_add(1);
        if self.spins < 16 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }

    /// Resets the escalation counter (call after the condition made progress).
    pub fn reset(&mut self) {
        self.spins = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let mut last = now();
        for _ in 0..1000 {
            let t = now();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn spin_until_waits_at_least_the_requested_time() {
        let start = now();
        spin_until(start + 200_000); // 0.2 ms
        assert!(now() - start >= 200_000);
    }

    #[test]
    fn spin_until_past_deadline_returns_immediately() {
        let t = now();
        spin_until(t.saturating_sub(1));
    }

    #[test]
    fn spin_wait_escalates_without_panic() {
        let mut w = SpinWait::new();
        for _ in 0..64 {
            w.snooze();
        }
        w.reset();
        w.snooze();
    }
}
