//! Small internal utilities.

/// Pads (and aligns) a value to a 64-byte cache line to avoid false sharing
/// between per-thread slots in hot arrays.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct Pad<T>(pub T);

impl<T> std::ops::Deref for Pad<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

/// Stateless 64-bit finalizer (splitmix64's): hashes a counter into
/// well-distributed bits. Used by the schedule-shake hook, which has no
/// per-thread state to keep a PRNG in.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny xorshift64* PRNG used for interrupt injection; deliberately not
/// cryptographic, deterministic per seed.
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            state: seed | 1, // never zero
        }
    }

    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns `true` with (approximately) probability `p`.
    #[inline]
    pub(crate) fn hit(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Use the high 53 bits for a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_is_cache_line_aligned() {
        assert!(std::mem::align_of::<Pad<u64>>() >= 64);
        assert!(std::mem::size_of::<Pad<u64>>() >= 64);
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_differs_across_seeds() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn hit_extremes() {
        let mut r = XorShift64::new(7);
        assert!(!r.hit(0.0));
        assert!(r.hit(1.0));
        assert!(!r.hit(-1.0));
    }

    #[test]
    fn hit_rate_roughly_matches_probability() {
        let mut r = XorShift64::new(12345);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.hit(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate was {rate}");
    }
}
