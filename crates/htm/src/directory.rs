//! The conflict directory: a sharded map from cache line to the set of
//! transactions currently holding it.
//!
//! This plays the role of the cache-coherence protocol extensions real HTMs
//! use for conflict detection. Each line entry records at most one
//! transactional *writer* and any number of transactional *readers*.
//! Accesses resolve conflicts eagerly:
//!
//! * transactional accesses under [`ConflictPolicy::RequesterWins`] doom the
//!   current holder(s) (coherence requests always win in hardware);
//! * **untracked** stores doom every transaction holding the line — this is
//!   the strong-isolation property SpRWL's uninstrumented readers depend on;
//! * untracked accesses that find the holder mid-commit spin until the
//!   write-buffer flush finishes, which makes single-cell untracked accesses
//!   atomic with respect to commits.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::config::ConflictPolicy;
use crate::memory::LineId;
use crate::slots::{DoomOutcome, Owner, TxTable};
use crate::tx::Abort;

#[derive(Debug, Default)]
struct LineEntry {
    writer: Option<Owner>,
    readers: Vec<Owner>,
}

impl LineEntry {
    fn is_empty(&self) -> bool {
        self.writer.is_none() && self.readers.is_empty()
    }
}

const SHARD_COUNT: usize = 64;

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<u32, LineEntry>>,
    /// Number of live entries, maintained under the mutex. Lets untracked
    /// *reads* skip the lock entirely when no transaction holds any line
    /// of the shard — mirroring real hardware, where uninstrumented loads
    /// are free while transactional tracking costs.
    occupancy: std::sync::atomic::AtomicUsize,
}

#[derive(Debug)]
pub(crate) struct Directory {
    shards: Box<[Shard]>,
}

struct ShardGuard<'a> {
    map: parking_lot::MutexGuard<'a, HashMap<u32, LineEntry>>,
    occupancy: &'a std::sync::atomic::AtomicUsize,
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        self.occupancy
            .store(self.map.len(), std::sync::atomic::Ordering::SeqCst);
    }
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = HashMap<u32, LineEntry>;

    fn deref(&self) -> &Self::Target {
        &self.map
    }
}

impl std::ops::DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.map
    }
}

/// How an untracked (non-transactional) access behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UntrackedKind {
    Read,
    Write,
}

impl Directory {
    pub(crate) fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARD_COUNT);
        shards.resize_with(SHARD_COUNT, Shard::default);
        Self {
            shards: shards.into_boxed_slice(),
        }
    }

    #[inline]
    fn shard(&self, line: LineId) -> &Shard {
        // Lines are allocated sequentially; a multiplicative hash spreads
        // neighbouring lines across shards.
        let h = (line.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 58) as usize % SHARD_COUNT]
    }

    /// Locks a shard; the guard refreshes the occupancy counter on drop.
    #[inline]
    fn lock_shard(&self, line: LineId) -> ShardGuard<'_> {
        let shard = self.shard(line);
        ShardGuard {
            map: shard.map.lock(),
            occupancy: &shard.occupancy,
        }
    }

    /// Resolves a conflict between `me` and the holder `other`, per policy.
    /// Returns `Ok(())` once the holder is out of the way (doomed, stale or
    /// drained), `Err` if `me` must self-abort. Whichever side loses gets a
    /// conflict-attribution note (line + winning peer) in its slot.
    fn resolve_tx_conflict(
        table: &TxTable,
        policy: ConflictPolicy,
        other: Owner,
        line: LineId,
        me: Owner,
    ) -> Result<(), Abort> {
        match table.doom_or_classify(other, policy, line, me.tid) {
            Ok(DoomOutcome::Dead) | Ok(DoomOutcome::Stale) => Ok(()),
            Ok(DoomOutcome::Committing) => {
                table.wait_while_committing(other);
                Ok(())
            }
            Ok(DoomOutcome::Live) => unreachable!("resolved conflicts never stay live"),
            Err(()) => {
                // ResponderWins: `me` self-aborts; attribute to the holder.
                table.note_doom(me, line, other.tid);
                Err(Abort::Conflict)
            }
        }
    }

    /// Registers `me` as a transactional reader of `line`.
    ///
    /// # Errors
    ///
    /// Fails with [`Abort::Conflict`] under `ResponderWins` when a live
    /// writer holds the line.
    pub(crate) fn acquire_read(
        &self,
        line: LineId,
        me: Owner,
        table: &TxTable,
        policy: ConflictPolicy,
    ) -> Result<(), Abort> {
        let mut shard = self.lock_shard(line);
        let entry = shard.entry(line.0).or_default();
        if let Some(other) = entry.writer {
            if other != me {
                Self::resolve_tx_conflict(table, policy, other, line, me)?;
                entry.writer = None;
            }
        }
        debug_assert!(!entry.readers.contains(&me));
        entry.readers.push(me);
        Ok(())
    }

    /// Registers `me` as the transactional writer of `line`, dooming (or
    /// deferring to, per policy) any other holder.
    ///
    /// # Errors
    ///
    /// Fails with [`Abort::Conflict`] under `ResponderWins` when another
    /// live transaction holds the line.
    pub(crate) fn acquire_write(
        &self,
        line: LineId,
        me: Owner,
        table: &TxTable,
        policy: ConflictPolicy,
    ) -> Result<(), Abort> {
        let mut shard = self.lock_shard(line);
        let entry = shard.entry(line.0).or_default();
        if let Some(other) = entry.writer {
            if other != me {
                Self::resolve_tx_conflict(table, policy, other, line, me)?;
                entry.writer = None;
            }
        }
        // Doom / defer to readers other than me.
        let mut i = 0;
        while i < entry.readers.len() {
            let r = entry.readers[i];
            if r == me {
                i += 1;
                continue;
            }
            Self::resolve_tx_conflict(table, policy, r, line, me)?;
            entry.readers.swap_remove(i);
        }
        entry.writer = Some(me);
        Ok(())
    }

    /// Performs an untracked access to `line`: resolves conflicts with
    /// transactional holders, then runs `op` (the raw memory operation)
    /// **while still holding the line's shard lock**, so the operation is
    /// linearized against transactional acquisitions of the same line.
    ///
    /// Untracked writes doom every holder; untracked reads doom a live
    /// transactional writer iff `reads_doom` (strong isolation); both wait
    /// out an in-flight commit so the raw operation happens after the flush.
    /// `doomer` names the accessing thread for conflict attribution.
    pub(crate) fn untracked_op<R>(
        &self,
        line: LineId,
        kind: UntrackedKind,
        reads_doom: bool,
        doomer: u32,
        table: &TxTable,
        op: impl FnOnce() -> R,
    ) -> R {
        // Fast path: an untracked READ of a line in a shard with no live
        // entries cannot conflict with anything — it linearizes before any
        // in-flight registration — so it skips the lock entirely. Stores
        // must always take the slow path: their doom of registered holders
        // has to be serialized with registration.
        if kind == UntrackedKind::Read
            && self
                .shard(line)
                .occupancy
                .load(std::sync::atomic::Ordering::SeqCst)
                == 0
        {
            return op();
        }
        let mut shard = self.lock_shard(line);
        if let Some(entry) = shard.get_mut(&line.0) {
            if let Some(other) = entry.writer {
                let doom_it = kind == UntrackedKind::Write || reads_doom;
                match if doom_it {
                    table.note_doom(other, line, doomer);
                    table.doom(other)
                } else {
                    table.classify(other)
                } {
                    DoomOutcome::Dead | DoomOutcome::Stale => {
                        if doom_it {
                            entry.writer = None;
                        }
                    }
                    DoomOutcome::Committing => {
                        table.wait_while_committing(other);
                        entry.writer = None;
                    }
                    // reads_doom disabled: the writer stays speculative and
                    // the untracked read observes the pre-transaction value,
                    // which is exactly what buffered writes imply.
                    DoomOutcome::Live => {}
                }
            }
            if kind == UntrackedKind::Write {
                for r in entry.readers.drain(..) {
                    table.note_doom(r, line, doomer);
                    let _ = table.doom(r);
                }
            }
            if entry.is_empty() {
                shard.remove(&line.0);
            }
        }
        op()
    }

    /// Conflict-resolution-only variant of [`Self::untracked_op`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn untracked_access(
        &self,
        line: LineId,
        kind: UntrackedKind,
        reads_doom: bool,
        doomer: u32,
        table: &TxTable,
    ) {
        self.untracked_op(line, kind, reads_doom, doomer, table, || ());
    }

    /// Removes `me`'s registrations for the given lines (commit or abort
    /// cleanup). Idempotent: entries already cleared by conflicting accesses
    /// are skipped.
    pub(crate) fn release<'a>(
        &self,
        me: Owner,
        read_lines: impl Iterator<Item = &'a LineId>,
        write_lines: impl Iterator<Item = &'a LineId>,
    ) {
        for &line in read_lines {
            let mut shard = self.lock_shard(line);
            if let Some(entry) = shard.get_mut(&line.0) {
                entry.readers.retain(|&r| r != me);
                if entry.is_empty() {
                    shard.remove(&line.0);
                }
            }
        }
        for &line in write_lines {
            let mut shard = self.lock_shard(line);
            if let Some(entry) = shard.get_mut(&line.0) {
                if entry.writer == Some(me) {
                    entry.writer = None;
                }
                if entry.is_empty() {
                    shard.remove(&line.0);
                }
            }
        }
    }

    /// Number of lines with live entries (test/debug aid).
    #[cfg(test)]
    pub(crate) fn live_lines(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }
}

impl TxTable {
    /// Policy-dispatching doom: under `RequesterWins` dooms the holder
    /// (noting `line`/`requester` for attribution first); under
    /// `ResponderWins` reports `Err(())` if the holder is live (the
    /// requester must abort itself), and classifies otherwise.
    fn doom_or_classify(
        &self,
        other: Owner,
        policy: ConflictPolicy,
        line: LineId,
        requester: u32,
    ) -> Result<DoomOutcome, ()> {
        match policy {
            ConflictPolicy::RequesterWins => {
                self.note_doom(other, line, requester);
                Ok(self.doom(other))
            }
            ConflictPolicy::ResponderWins => match self.classify(other) {
                DoomOutcome::Live => Err(()),
                other_state => Ok(other_state),
            },
        }
    }

    /// Non-destructive classification of `other`'s state.
    pub(crate) fn classify(&self, other: Owner) -> DoomOutcome {
        use crate::slots::{epoch_of, state_of, ST_ACTIVE, ST_COMMITTING, ST_DOOMED, ST_SUSPENDED};
        let w = self.load(other.tid);
        if epoch_of(w) != other.epoch {
            return DoomOutcome::Stale;
        }
        match state_of(w) {
            ST_COMMITTING => DoomOutcome::Committing,
            ST_DOOMED => DoomOutcome::Dead,
            ST_ACTIVE | ST_SUSPENDED => DoomOutcome::Live,
            _ => DoomOutcome::Stale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(tid: u32, epoch: u64) -> Owner {
        Owner { tid, epoch }
    }

    #[test]
    fn read_read_sharing_is_conflict_free() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(7);
        table.begin(0, 1);
        table.begin(1, 1);
        dir.acquire_read(line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.acquire_read(line, owner(1, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        assert!(!table.is_doomed(owner(0, 1)));
        assert!(!table.is_doomed(owner(1, 1)));
    }

    #[test]
    fn write_dooms_readers_under_requester_wins() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(3);
        table.begin(0, 1);
        table.begin(1, 1);
        dir.acquire_read(line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.acquire_write(line, owner(1, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        assert!(table.is_doomed(owner(0, 1)));
        assert!(!table.is_doomed(owner(1, 1)));
    }

    #[test]
    fn write_self_aborts_under_responder_wins() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(3);
        table.begin(0, 1);
        table.begin(1, 1);
        dir.acquire_read(line, owner(0, 1), &table, ConflictPolicy::ResponderWins)
            .unwrap();
        let res = dir.acquire_write(line, owner(1, 1), &table, ConflictPolicy::ResponderWins);
        assert_eq!(res, Err(Abort::Conflict));
        assert!(!table.is_doomed(owner(0, 1)), "holder survives");
    }

    #[test]
    fn untracked_write_dooms_readers_and_writer() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(9);
        table.begin(0, 1);
        table.begin(1, 1);
        dir.acquire_read(line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.acquire_write(line, owner(1, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.untracked_access(line, UntrackedKind::Write, true, 3, &table);
        assert!(table.is_doomed(owner(0, 1)));
        assert!(table.is_doomed(owner(1, 1)));
    }

    #[test]
    fn untracked_read_dooms_writer_only_when_enabled() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(2);
        table.begin(0, 1);
        dir.acquire_write(line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.untracked_access(line, UntrackedKind::Read, false, 3, &table);
        assert!(!table.is_doomed(owner(0, 1)), "reads_doom disabled");
        dir.untracked_access(line, UntrackedKind::Read, true, 3, &table);
        assert!(table.is_doomed(owner(0, 1)), "strong isolation dooms");
    }

    #[test]
    fn untracked_read_never_dooms_plain_readers() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(4);
        table.begin(0, 1);
        dir.acquire_read(line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.untracked_access(line, UntrackedKind::Read, true, 3, &table);
        assert!(!table.is_doomed(owner(0, 1)));
    }

    #[test]
    fn requester_wins_attributes_doom_to_requester() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(11);
        table.begin(0, 1);
        table.begin(1, 1);
        dir.acquire_read(line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.acquire_write(line, owner(1, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        assert!(table.is_doomed(owner(0, 1)));
        assert_eq!(table.take_conflict(owner(0, 1)), Some((11, 1)));
    }

    #[test]
    fn responder_wins_attributes_self_abort_to_holder() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(3);
        table.begin(0, 1);
        table.begin(1, 1);
        dir.acquire_read(line, owner(0, 1), &table, ConflictPolicy::ResponderWins)
            .unwrap();
        let res = dir.acquire_write(line, owner(1, 1), &table, ConflictPolicy::ResponderWins);
        assert_eq!(res, Err(Abort::Conflict));
        assert_eq!(table.take_conflict(owner(1, 1)), Some((3, 0)));
    }

    #[test]
    fn untracked_write_attributes_dooms() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(9);
        table.begin(0, 1);
        dir.acquire_write(line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.untracked_access(line, UntrackedKind::Write, true, 2, &table);
        assert!(table.is_doomed(owner(0, 1)));
        assert_eq!(table.take_conflict(owner(0, 1)), Some((9, 2)));
    }

    #[test]
    fn release_clears_entries() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let r_line = LineId(1);
        let w_line = LineId(2);
        table.begin(0, 1);
        dir.acquire_read(r_line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.acquire_write(w_line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        assert_eq!(dir.live_lines(), 2);
        dir.release(owner(0, 1), [r_line].iter(), [w_line].iter());
        assert_eq!(dir.live_lines(), 0);
    }

    #[test]
    fn stale_epoch_entries_are_ignored() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(5);
        table.begin(0, 1);
        dir.acquire_write(line, owner(0, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        // Thread 0 moves on to epoch 2 without cleanup (simulating a lost
        // race: cleanup happens later).
        table.begin(0, 2);
        table.begin(1, 1);
        dir.acquire_write(line, owner(1, 1), &table, ConflictPolicy::RequesterWins)
            .unwrap();
        assert!(!table.is_doomed(owner(0, 2)), "new epoch untouched");
    }

    #[test]
    fn reacquiring_own_write_line_is_idempotent() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(6);
        table.begin(0, 1);
        let me = owner(0, 1);
        dir.acquire_write(line, me, &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.acquire_write(line, me, &table, ConflictPolicy::RequesterWins)
            .unwrap();
        assert!(!table.is_doomed(me));
        assert_eq!(dir.live_lines(), 1);
    }

    #[test]
    fn reader_then_writer_upgrade_by_same_tx() {
        let dir = Directory::new();
        let table = TxTable::new(4);
        let line = LineId(8);
        table.begin(0, 1);
        let me = owner(0, 1);
        dir.acquire_read(line, me, &table, ConflictPolicy::RequesterWins)
            .unwrap();
        dir.acquire_write(line, me, &table, ConflictPolicy::RequesterWins)
            .unwrap();
        assert!(
            !table.is_doomed(me),
            "upgrading own line never self-conflicts"
        );
    }
}
