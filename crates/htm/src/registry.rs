//! Dynamic thread-slot registry: which hardware-thread contexts are live.
//!
//! The runtime used to track claimed contexts in a plain
//! `Box<[AtomicBool]>` indexed by a caller-chosen `tid` — a *static*
//! registration table: thread pools could never pick a free slot at
//! runtime, and the bools shared cache lines, so claim/release churn on
//! one thread invalidated its neighbours' lines. This module replaces it
//! with a padded, sharded slot array supporting both the historical
//! claim-by-tid path ([`SlotRegistry::claim`]) and dynamic acquisition
//! ([`SlotRegistry::acquire`]), the prerequisite for thread pools that
//! grow and shrink while a lock is live.
//!
//! Layout: one word per slot, each on its own cache line (the same `Pad`
//! idiom as the transaction table), so a slot's claim/release traffic
//! never false-shares with a neighbour. Acquisition scans are *sharded*:
//! a rotating hint spreads concurrent acquirers across `SHARD` slot
//! groups so they do not all contend on slot 0.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::util::Pad;

/// Slots per shard of the acquisition scan. Concurrent acquirers start
/// their scans one shard apart, so under burst registration each lands
/// on a free slot without racing the others' CAS traffic.
const SHARD: usize = 8;

const FREE: u64 = 0;
const CLAIMED: u64 = 1;

/// Padded per-slot claim words plus the rotating acquisition hint.
#[derive(Debug)]
pub struct SlotRegistry {
    slots: Box<[Pad<AtomicU64>]>,
    /// Next shard an [`SlotRegistry::acquire`] scan starts from.
    hint: Pad<AtomicUsize>,
}

impl SlotRegistry {
    /// A registry with `n` free slots.
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || Pad(AtomicU64::new(FREE)));
        Self {
            slots: v.into_boxed_slice(),
            hint: Pad(AtomicUsize::new(0)),
        }
    }

    /// Number of slots (free or claimed).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the registry has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Claims a specific slot. `false` means it was already claimed.
    pub fn claim(&self, slot: usize) -> bool {
        self.slots[slot]
            .0
            .compare_exchange(FREE, CLAIMED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Claims *some* free slot, scanning from a rotating shard offset, and
    /// returns its index. `None` means every slot is claimed.
    pub fn acquire(&self) -> Option<usize> {
        let n = self.slots.len();
        if n == 0 {
            return None;
        }
        let start = (self.hint.0.fetch_add(1, Ordering::SeqCst) * SHARD) % n;
        for i in 0..n {
            let slot = (start + i) % n;
            if self.claim(slot) {
                return Some(slot);
            }
        }
        None
    }

    /// Releases a claimed slot so it can be acquired again.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not claimed — a double release is always a
    /// lifecycle bug worth failing loudly on.
    pub fn release(&self, slot: usize) {
        let was = self.slots[slot].0.swap(FREE, Ordering::SeqCst);
        assert_eq!(was, CLAIMED, "slot {slot} released while free");
    }

    /// Whether a slot is currently claimed.
    pub fn is_claimed(&self, slot: usize) -> bool {
        self.slots[slot].0.load(Ordering::SeqCst) == CLAIMED
    }

    /// Number of currently claimed slots.
    pub fn active(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.0.load(Ordering::SeqCst) == CLAIMED)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_release_cycle() {
        let r = SlotRegistry::new(4);
        assert_eq!(r.len(), 4);
        assert!(r.claim(2));
        assert!(!r.claim(2), "double claim must fail");
        assert!(r.is_claimed(2));
        assert_eq!(r.active(), 1);
        r.release(2);
        assert!(!r.is_claimed(2));
        assert!(r.claim(2), "released slot is claimable again");
    }

    #[test]
    #[should_panic(expected = "released while free")]
    fn double_release_panics() {
        let r = SlotRegistry::new(2);
        assert!(r.claim(0));
        r.release(0);
        r.release(0);
    }

    #[test]
    fn acquire_finds_every_slot_then_exhausts() {
        let r = SlotRegistry::new(3);
        let mut got: Vec<usize> = (0..3).map(|_| r.acquire().expect("free slot")).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(r.acquire(), None, "all slots claimed");
        r.release(1);
        assert_eq!(r.acquire(), Some(1));
    }

    #[test]
    fn acquire_spreads_across_shards() {
        // With > SHARD slots, consecutive acquirers start in different
        // shards: the first two acquisitions must not be adjacent slots.
        let r = SlotRegistry::new(4 * SHARD);
        let a = r.acquire().unwrap();
        let b = r.acquire().unwrap();
        assert_ne!(a / SHARD, b / SHARD, "scans should start a shard apart");
    }

    #[test]
    fn concurrent_acquire_is_exclusive() {
        let r = std::sync::Arc::new(SlotRegistry::new(16));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || r.acquire().expect("slot")));
        }
        let mut got: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 16, "every thread got a distinct slot");
    }

    #[test]
    fn empty_registry_never_acquires() {
        let r = SlotRegistry::new(0);
        assert!(r.is_empty());
        assert_eq!(r.acquire(), None);
    }
}
