//! The simulated shared memory: a flat array of 64-bit cells grouped into
//! cache lines.
//!
//! Everything that must participate in HTM conflict detection — application
//! data, SpRWL’s reader-state array, the fallback lock, the SNZI root —
//! lives in [`SimMemory`] cells. Conflict detection and capacity accounting
//! operate at [`LineId`] (cache line) granularity, exactly like the
//! coherence-based HTMs being modelled.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Index of a single 64-bit cell in a [`SimMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The raw index, mainly useful for debugging output.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a simulated cache line (a group of consecutive cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(pub(crate) u32);

impl LineId {
    /// The raw index, mainly useful for debugging output.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous range of cells handed out by [`SimMemory::alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    start: u32,
    len: u32,
}

impl Region {
    /// The `i`-th cell of the region.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn cell(&self, i: usize) -> CellId {
        assert!(
            i < self.len as usize,
            "region index {i} out of {}",
            self.len
        );
        CellId(self.start + i as u32)
    }

    /// Number of cells in the region.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the region holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Splits the region at `mid`, returning `[0, mid)` and `[mid, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > self.len()`.
    pub fn split_at(&self, mid: usize) -> (Region, Region) {
        assert!(mid <= self.len as usize);
        (
            Region {
                start: self.start,
                len: mid as u32,
            },
            Region {
                start: self.start + mid as u32,
                len: self.len - mid as u32,
            },
        )
    }

    /// Iterates over all cells of the region.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.len).map(move |i| CellId(self.start + i))
    }
}

/// The flat simulated memory.
///
/// Cells hold `u64` values and are addressed by [`CellId`]; richer data
/// (records, strings) is encoded across multiple cells by the workload
/// layer. Allocation is a simple monotone bump pointer — the simulation
/// never frees memory at this level (workloads run their own free lists on
/// top, which keeps allocator state *inside* the transactional domain, as
/// it is on real hardware).
#[derive(Debug)]
pub struct SimMemory {
    cells: Box<[AtomicU64]>,
    cells_per_line: u32,
    next_free: AtomicU32,
}

impl SimMemory {
    /// Creates a memory of `capacity_cells` zero-initialised cells with
    /// `cells_per_line` cells per simulated cache line.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_cells` exceeds `u32::MAX` or `cells_per_line`
    /// is zero.
    pub fn new(capacity_cells: usize, cells_per_line: u32) -> Self {
        assert!(capacity_cells <= u32::MAX as usize, "memory too large");
        assert!(cells_per_line > 0, "cells_per_line must be non-zero");
        let mut v = Vec::with_capacity(capacity_cells);
        v.resize_with(capacity_cells, || AtomicU64::new(0));
        Self {
            cells: v.into_boxed_slice(),
            cells_per_line,
            next_free: AtomicU32::new(0),
        }
    }

    /// Total number of cells.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Number of cells still available to [`alloc`](Self::alloc).
    pub fn remaining(&self) -> usize {
        self.capacity() - self.next_free.load(Ordering::Relaxed) as usize
    }

    /// The cache line containing `cell`.
    #[inline]
    pub fn line_of(&self, cell: CellId) -> LineId {
        LineId(cell.0 / self.cells_per_line)
    }

    /// Cells per simulated cache line.
    pub fn cells_per_line(&self) -> u32 {
        self.cells_per_line
    }

    /// Allocates `n` consecutive cells.
    ///
    /// # Panics
    ///
    /// Panics if the memory is exhausted; simulation setups size memory
    /// up front, so running out indicates a mis-sized experiment.
    pub fn alloc(&self, n: usize) -> Region {
        let n32 = u32::try_from(n).expect("allocation too large");
        let start = self.next_free.fetch_add(n32, Ordering::Relaxed);
        assert!(
            (start as usize) + n <= self.capacity(),
            "simulated memory exhausted: wanted {n} cells, {} remain",
            self.capacity().saturating_sub(start as usize)
        );
        Region { start, len: n32 }
    }

    /// Allocates `n` cells, each alone on its own cache line (the padded
    /// per-thread array layout SpRWL uses for its `state` array).
    ///
    /// Returns the cells, one per line, in order.
    ///
    /// # Panics
    ///
    /// Panics if the memory is exhausted.
    pub fn alloc_padded(&self, n: usize) -> Vec<CellId> {
        (0..n).map(|_| self.alloc_line_aligned(1).cell(0)).collect()
    }

    /// Allocates a region that starts on a line boundary and occupies whole
    /// lines (`n` cells rounded up).
    ///
    /// # Panics
    ///
    /// Panics if the memory is exhausted.
    pub fn alloc_line_aligned(&self, n: usize) -> Region {
        let cpl = self.cells_per_line as usize;
        // Over-allocate enough to realign, then carve the aligned window.
        let raw = self.alloc(n + cpl - 1 + (cpl - n % cpl) % cpl);
        let misalign = raw.start as usize % cpl;
        let skip = if misalign == 0 { 0 } else { cpl - misalign };
        Region {
            start: raw.start + skip as u32,
            len: n as u32,
        }
    }

    // ---- raw cell access (crate-internal; public code must go through
    // `Tx`/`Direct` so conflict detection stays sound) ----

    #[inline]
    pub(crate) fn raw_load(&self, cell: CellId) -> u64 {
        self.cells[cell.0 as usize].load(Ordering::SeqCst)
    }

    #[inline]
    pub(crate) fn raw_store(&self, cell: CellId, val: u64) {
        self.cells[cell.0 as usize].store(val, Ordering::SeqCst);
    }

    #[inline]
    pub(crate) fn raw_cas(&self, cell: CellId, current: u64, new: u64) -> Result<u64, u64> {
        self.cells[cell.0 as usize].compare_exchange(
            current,
            new,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
    }

    /// Initialization-time store that bypasses conflict detection.
    ///
    /// For single-threaded setup (populating tables, building free lists)
    /// **before** any transaction runs. Using it while transactions are
    /// live would violate strong isolation — use [`crate::Direct`] then.
    #[inline]
    pub fn init_store(&self, cell: CellId, val: u64) {
        self.raw_store(cell, val);
    }

    /// A *coherence read without conflict side effects*: a plain atomic load
    /// that neither dooms conflicting transactions nor waits for in-flight
    /// commits.
    ///
    /// This is only sound for spin loops on cells that are **never written
    /// transactionally** (e.g. SpRWL’s reader-state flags, which only their
    /// owner thread stores, non-transactionally). For anything else use
    /// [`crate::Direct`].
    #[inline]
    pub fn peek(&self, cell: CellId) -> u64 {
        self.raw_load(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_monotone_and_disjoint() {
        let m = SimMemory::new(100, 8);
        let a = m.alloc(10);
        let b = m.alloc(5);
        assert_eq!(a.len(), 10);
        let a_last = a.cell(9).index();
        let b_first = b.cell(0).index();
        assert!(b_first > a_last);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_capacity_panics() {
        let m = SimMemory::new(16, 8);
        m.alloc(17);
    }

    #[test]
    fn line_mapping_groups_cells() {
        let m = SimMemory::new(64, 8);
        let r = m.alloc(16);
        assert_eq!(m.line_of(r.cell(0)), m.line_of(r.cell(7)));
        assert_ne!(m.line_of(r.cell(7)), m.line_of(r.cell(8)));
    }

    #[test]
    fn padded_alloc_puts_each_cell_on_its_own_line() {
        let m = SimMemory::new(1024, 8);
        m.alloc(3); // misalign on purpose
        let cells = m.alloc_padded(5);
        let mut lines: Vec<_> = cells.iter().map(|&c| m.line_of(c)).collect();
        lines.dedup();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn line_aligned_alloc_starts_on_boundary() {
        let m = SimMemory::new(1024, 8);
        m.alloc(5);
        let r = m.alloc_line_aligned(8);
        assert_eq!(r.cell(0).index() % 8, 0);
        assert_eq!(m.line_of(r.cell(0)), m.line_of(r.cell(7)));
    }

    #[test]
    fn region_split_and_iter() {
        let m = SimMemory::new(64, 8);
        let r = m.alloc(10);
        let (a, b) = r.split_at(4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 6);
        assert_eq!(r.iter().count(), 10);
        assert_eq!(a.iter().last(), Some(a.cell(3)));
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn region_bounds_are_checked() {
        let m = SimMemory::new(64, 8);
        let r = m.alloc(4);
        let _ = r.cell(4);
    }

    #[test]
    fn cells_start_zeroed_and_peek_reads_raw() {
        let m = SimMemory::new(8, 8);
        let r = m.alloc(8);
        for c in r.iter() {
            assert_eq!(m.peek(c), 0);
        }
        m.raw_store(r.cell(2), 77);
        assert_eq!(m.peek(r.cell(2)), 77);
    }

    #[test]
    fn raw_cas_success_and_failure() {
        let m = SimMemory::new(8, 8);
        let c = m.alloc(1).cell(0);
        assert_eq!(m.raw_cas(c, 0, 5), Ok(0));
        assert_eq!(m.raw_cas(c, 0, 9), Err(5));
        assert_eq!(m.peek(c), 5);
    }

    #[test]
    fn remaining_tracks_allocations() {
        let m = SimMemory::new(100, 8);
        assert_eq!(m.remaining(), 100);
        m.alloc(30);
        assert_eq!(m.remaining(), 70);
    }
}
