//! The unified memory-access abstraction.
//!
//! Workload code (hashmap, TPC-C) is written once against [`MemAccess`] and
//! then executed either inside a hardware transaction ([`crate::Tx`]) or
//! uninstrumented ([`Direct`]) — exactly the duality SpRWL exploits: the
//! same read-only critical section body runs speculatively for writers and
//! uninstrumented for readers.

use crate::directory::UntrackedKind;
use crate::memory::CellId;
use crate::sched::YieldKind;
use crate::tx::{Htm, Tx, TxResult};

/// How an accessor touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Inside a plain hardware transaction.
    Transactional,
    /// Inside a rollback-only transaction (writes tracked, reads not).
    RotTransactional,
    /// Non-transactional, uninstrumented access with strong-isolation
    /// side effects.
    Untracked,
}

/// A uniform interface over transactional and untracked memory access.
///
/// All methods are fallible so transactional implementations can signal
/// aborts; untracked implementations never fail, but sharing the signature
/// lets data-structure code be written once with `?`.
pub trait MemAccess {
    /// Reads a cell.
    ///
    /// # Errors
    ///
    /// Transactional implementations return [`crate::Abort`] on conflicts,
    /// capacity overflow, explicit aborts or injected interrupts.
    fn read(&mut self, cell: CellId) -> TxResult<u64>;

    /// Writes a cell.
    ///
    /// # Errors
    ///
    /// As for [`MemAccess::read`].
    fn write(&mut self, cell: CellId, val: u64) -> TxResult<()>;

    /// The mode this accessor runs in (lets workloads record footprints or
    /// assert expectations in tests).
    fn mode(&self) -> AccessMode;
}

impl MemAccess for Tx<'_> {
    fn read(&mut self, cell: CellId) -> TxResult<u64> {
        Tx::read(self, cell)
    }

    fn write(&mut self, cell: CellId, val: u64) -> TxResult<()> {
        Tx::write(self, cell, val)
    }

    fn mode(&self) -> AccessMode {
        match self.kind() {
            crate::TxKind::Htm => AccessMode::Transactional,
            crate::TxKind::Rot => AccessMode::RotTransactional,
        }
    }
}

/// Untracked (non-transactional) memory accessor for one thread.
///
/// Every store dooms transactions holding the target line (strong
/// isolation); every load waits out in-flight commit flushes and, if
/// configured, dooms speculative writers of the line. Obtain via
/// [`Htm::direct`] or [`crate::ThreadCtx::direct`].
#[derive(Debug, Clone, Copy)]
pub struct Direct<'h> {
    htm: &'h Htm,
    tid: u32,
}

impl<'h> Direct<'h> {
    pub(crate) fn new(htm: &'h Htm, tid: u32) -> Self {
        Self { htm, tid }
    }

    /// The thread id this accessor is bound to.
    pub fn tid(&self) -> usize {
        self.tid as usize
    }

    /// The owning runtime.
    pub fn htm(&self) -> &'h Htm {
        self.htm
    }

    /// Non-transactional load with full coherence semantics.
    pub fn load(&self, cell: CellId) -> u64 {
        self.htm
            .scheduler()
            .yield_point(self.tid, YieldKind::Access);
        let line = self.htm.mem_ref().line_of(cell);
        self.htm.dir_ref().untracked_op(
            line,
            UntrackedKind::Read,
            self.htm.config().reads_doom_writers,
            self.tid,
            self.htm.table_ref(),
            || self.htm.mem_ref().raw_load(cell),
        )
    }

    /// Non-transactional store; dooms every transaction holding the line
    /// (the strong-isolation property SpRWL's readers rely on).
    pub fn store(&self, cell: CellId, val: u64) {
        self.htm
            .scheduler()
            .yield_point(self.tid, YieldKind::Access);
        let line = self.htm.mem_ref().line_of(cell);
        self.htm.dir_ref().untracked_op(
            line,
            UntrackedKind::Write,
            true,
            self.tid,
            self.htm.table_ref(),
            || self.htm.mem_ref().raw_store(cell, val),
        );
    }

    /// Non-transactional compare-and-swap. Returns the previous value as
    /// `Ok` on success, `Err` on mismatch (like
    /// [`std::sync::atomic::AtomicU64::compare_exchange`]).
    pub fn compare_exchange(&self, cell: CellId, current: u64, new: u64) -> Result<u64, u64> {
        self.htm
            .scheduler()
            .yield_point(self.tid, YieldKind::Access);
        let line = self.htm.mem_ref().line_of(cell);
        self.htm.dir_ref().untracked_op(
            line,
            UntrackedKind::Write,
            true,
            self.tid,
            self.htm.table_ref(),
            || self.htm.mem_ref().raw_cas(cell, current, new),
        )
    }

    /// Non-transactional fetch-and-add; returns the previous value.
    pub fn fetch_add(&self, cell: CellId, delta: u64) -> u64 {
        self.htm
            .scheduler()
            .yield_point(self.tid, YieldKind::Access);
        let line = self.htm.mem_ref().line_of(cell);
        self.htm.dir_ref().untracked_op(
            line,
            UntrackedKind::Write,
            true,
            self.tid,
            self.htm.table_ref(),
            || loop {
                let cur = self.htm.mem_ref().raw_load(cell);
                if self
                    .htm
                    .mem_ref()
                    .raw_cas(cell, cur, cur.wrapping_add(delta))
                    .is_ok()
                {
                    return cur;
                }
            },
        )
    }
}

/// Accessor handed to [`crate::Tx::suspend`] closures: non-transactional
/// access with POWER8 suspended-mode semantics.
///
/// Loads of lines the suspended transaction itself wrote return the
/// buffered (speculative) values, matching POWER8's L1-resident speculative
/// state. Stores behave like any untracked store — including dooming the
/// suspended transaction itself if they touch its footprint, which is how
/// the hardware reacts to self-conflicting suspended stores.
#[derive(Debug)]
pub struct Suspended<'a> {
    pub(crate) htm: &'a Htm,
    pub(crate) me: crate::slots::Owner,
    pub(crate) write_lines: &'a std::collections::HashSet<crate::memory::LineId>,
    pub(crate) write_buf: &'a std::collections::HashMap<u32, u64>,
}

impl Suspended<'_> {
    /// Suspended-mode load; sees the suspended transaction's own buffered
    /// stores.
    pub fn load(&self, cell: CellId) -> u64 {
        self.htm
            .scheduler()
            .yield_point(self.me.tid, YieldKind::Access);
        let line = self.htm.mem_ref().line_of(cell);
        if self.write_lines.contains(&line) {
            // Own speculatively-written line: serve from the write buffer
            // (or the pre-transaction value for untouched cells on it).
            return match self.write_buf.get(&cell.0) {
                Some(&v) => v,
                None => self.htm.mem_ref().raw_load(cell),
            };
        }
        self.htm.dir_ref().untracked_op(
            line,
            UntrackedKind::Read,
            self.htm.config().reads_doom_writers,
            self.me.tid,
            self.htm.table_ref(),
            || self.htm.mem_ref().raw_load(cell),
        )
    }

    /// Suspended-mode store; dooms every transaction holding the line —
    /// including the suspended transaction itself if the line is in its
    /// own footprint.
    pub fn store(&self, cell: CellId, val: u64) {
        self.htm
            .scheduler()
            .yield_point(self.me.tid, YieldKind::Access);
        let line = self.htm.mem_ref().line_of(cell);
        self.htm.dir_ref().untracked_op(
            line,
            UntrackedKind::Write,
            true,
            self.me.tid,
            self.htm.table_ref(),
            || self.htm.mem_ref().raw_store(cell, val),
        );
    }

    /// The thread id of the suspended transaction's owner.
    pub fn tid(&self) -> usize {
        self.me.tid as usize
    }

    /// The owning runtime.
    pub fn htm(&self) -> &Htm {
        self.htm
    }
}

impl MemAccess for Suspended<'_> {
    fn read(&mut self, cell: CellId) -> TxResult<u64> {
        Ok(Suspended::load(self, cell))
    }

    fn write(&mut self, cell: CellId, val: u64) -> TxResult<()> {
        Suspended::store(self, cell, val);
        Ok(())
    }

    fn mode(&self) -> AccessMode {
        AccessMode::Untracked
    }
}

impl MemAccess for Direct<'_> {
    fn read(&mut self, cell: CellId) -> TxResult<u64> {
        Ok(self.load(cell))
    }

    fn write(&mut self, cell: CellId, val: u64) -> TxResult<()> {
        self.store(cell, val);
        Ok(())
    }

    fn mode(&self) -> AccessMode {
        AccessMode::Untracked
    }
}
