//! Configuration of the simulated HTM: capacity profiles, conflict policy,
//! failure injection.

/// Read/write-set capacity limits, in cache lines.
///
/// Real HTMs track transactional footprints in cache structures of very
/// different shapes: Intel Broadwell tolerates roughly 4 MB of reads but
/// only ~22 KB of writes, while POWER8 caps both at 8 KB. The simulated
/// profiles keep that *asymmetry* (Broadwell: reads ≫ writes; POWER8:
/// small and symmetric) while scaling absolute numbers down ×64 so that
/// the paper’s workloads overflow/fit at laptop-scale populations. The
/// workload sizes in `sprwl-workloads` are chosen against these profiles;
/// see DESIGN.md §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapacityProfile {
    /// Human-readable profile name (used in benchmark output).
    pub name: &'static str,
    /// Maximum distinct cache lines a hardware transaction may read.
    pub read_lines: usize,
    /// Maximum distinct cache lines a hardware transaction may write.
    pub write_lines: usize,
    /// Maximum distinct lines a rollback-only transaction (ROT) may write.
    /// ROTs do not track reads at all, which is exactly why RW-LE uses them.
    pub rot_write_lines: usize,
}

impl CapacityProfile {
    /// Intel Broadwell-like: large read capacity, much smaller write capacity.
    pub const BROADWELL_SIM: CapacityProfile = CapacityProfile {
        name: "broadwell-sim",
        read_lines: 512,
        write_lines: 64,
        rot_write_lines: 64,
    };

    /// IBM POWER8-like: small, symmetric 8 KB-equivalent capacity.
    pub const POWER8_SIM: CapacityProfile = CapacityProfile {
        name: "power8-sim",
        read_lines: 128,
        write_lines: 128,
        rot_write_lines: 128,
    };

    /// Effectively unbounded — for tests that must not hit capacity.
    pub const UNBOUNDED: CapacityProfile = CapacityProfile {
        name: "unbounded",
        read_lines: usize::MAX,
        write_lines: usize::MAX,
        rot_write_lines: usize::MAX,
    };

    /// A deliberately tiny profile for capacity-abort unit tests.
    pub const TINY: CapacityProfile = CapacityProfile {
        name: "tiny",
        read_lines: 4,
        write_lines: 2,
        rot_write_lines: 2,
    };

    /// Whether this profile supports rollback-only transactions and
    /// suspend/resume (the POWER8-only features RW-LE needs).
    ///
    /// Only the POWER8-like profile reports `true`, mirroring the paper’s
    /// point that RW-LE cannot run on Intel machines at all.
    pub fn supports_rot(&self) -> bool {
        self.name == "power8-sim" || self.name == "unbounded" || self.name == "tiny"
    }
}

/// What happens when a transactional access conflicts with another *active*
/// transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConflictPolicy {
    /// The requesting access wins and the current holder is doomed — the
    /// behaviour of coherence-based HTMs (Intel, POWER8), and the policy
    /// SpRWL’s correctness argument assumes. Default.
    #[default]
    RequesterWins,
    /// The requesting transaction aborts itself instead; kept for the
    /// conflict-policy ablation benchmark.
    ResponderWins,
}

/// Which execution substrate drives the simulated threads (see
/// [`crate::sched`]).
///
/// Not `Copy` since [`SchedulerKind::DeterministicPolicy`] carries an
/// arbitrarily long delay vector or decision trace; clone freely, the
/// payloads are small or refcounted.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Free-running OS threads ([`crate::sched::OsScheduler`]): the
    /// pre-refactor behaviour, with the wall clock and optional seeded
    /// schedule shake. Default.
    #[default]
    Os,
    /// Fully serialized cooperative scheduling
    /// ([`crate::sched::DetScheduler`]): one thread runs at a time, picked
    /// by a seeded PRNG, over a virtual clock. The same
    /// `(seed, config, schedule_seed)` triple replays bit-exactly.
    ///
    /// Requires exactly [`HtmConfig::max_threads`] claimed thread contexts
    /// (registration is a start barrier), and participants must not block
    /// on OS primitives outside the scheduler's view.
    Deterministic {
        /// Seed for the schedule PRNG (independent of the workload seed so
        /// the two axes can be swept separately).
        schedule_seed: u64,
    },
    /// Fully serialized scheduling driven by an explicit
    /// [`crate::sched::SchedulePolicyKind`] — the schedule-space explorer's
    /// entry point: delay-bounded enumeration or exact decision-trace
    /// replay instead of one PRNG stream.
    /// `Deterministic { schedule_seed }` is shorthand for
    /// `DeterministicPolicy { policy: Random { seed: schedule_seed } }`.
    DeterministicPolicy {
        /// The picking policy to install.
        policy: crate::sched::SchedulePolicyKind,
    },
}

/// Full configuration for an [`crate::Htm`] instance.
#[derive(Debug, Clone)]
pub struct HtmConfig {
    /// Number of simulated hardware threads (size of the transaction table).
    pub max_threads: usize,
    /// 64-bit cells per simulated cache line (8 ⇒ 64-byte lines).
    pub cells_per_line: u32,
    /// Capacity limits.
    pub capacity: CapacityProfile,
    /// Transaction-vs-transaction conflict resolution.
    pub conflict_policy: ConflictPolicy,
    /// Probability that any single transactional access triggers a
    /// spurious “timer interrupt” abort (context-switch/IRQ model).
    /// `0.0` disables injection.
    pub interrupt_prob: f64,
    /// Whether *untracked reads* of a line speculatively written by an
    /// active transaction doom that transaction (true on real hardware;
    /// disabling it is an ablation knob).
    pub reads_doom_writers: bool,
    /// **Deprecated alias** (kept so existing configs keep their exact
    /// behaviour): probability that a yield point under
    /// [`SchedulerKind::Os`] injects a short randomized delay (a spin or
    /// an OS-thread yield) to perturb the interleaving. The knob now
    /// simply parameterizes [`crate::sched::OsScheduler`]; prefer
    /// [`SchedulerKind::Deterministic`], which replaces probabilistic
    /// shaking with exact schedule control. Ignored under the
    /// deterministic scheduler. `0.0` disables (the default; it adds one
    /// branch per access when off).
    pub sched_shake_prob: f64,
    /// Seed for the per-thread injection PRNGs (deterministic tests).
    pub seed: u64,
    /// The execution substrate ([`SchedulerKind::Os`] by default).
    pub scheduler: SchedulerKind,
}

impl Default for HtmConfig {
    fn default() -> Self {
        Self {
            max_threads: 64,
            cells_per_line: 8,
            capacity: CapacityProfile::BROADWELL_SIM,
            conflict_policy: ConflictPolicy::RequesterWins,
            interrupt_prob: 0.0,
            reads_doom_writers: true,
            sched_shake_prob: 0.0,
            seed: 0x5eed,
            scheduler: SchedulerKind::Os,
        }
    }
}

impl HtmConfig {
    /// Convenience constructor: default config with the given capacity
    /// profile.
    pub fn with_capacity(capacity: CapacityProfile) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: zero threads, zero
    /// cells per line, or an out-of-range interrupt probability.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_threads == 0 {
            return Err("max_threads must be at least 1".into());
        }
        if self.max_threads > u32::MAX as usize / 8 {
            return Err("max_threads is unreasonably large".into());
        }
        if self.cells_per_line == 0 {
            return Err("cells_per_line must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.interrupt_prob) {
            return Err("interrupt_prob must be within [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.sched_shake_prob) {
            return Err("sched_shake_prob must be within [0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        HtmConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_threads_is_rejected() {
        let cfg = HtmConfig {
            max_threads: 0,
            ..HtmConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_probability_is_rejected() {
        let cfg = HtmConfig {
            interrupt_prob: 1.5,
            ..HtmConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_cells_per_line_is_rejected() {
        let cfg = HtmConfig {
            cells_per_line: 0,
            ..HtmConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn scheduler_defaults_to_free_running() {
        assert_eq!(HtmConfig::default().scheduler, SchedulerKind::Os);
        let det = HtmConfig {
            scheduler: SchedulerKind::Deterministic { schedule_seed: 1 },
            ..HtmConfig::default()
        };
        det.validate().unwrap();
    }

    #[test]
    fn policy_scheduler_is_valid_and_cloneable() {
        let cfg = HtmConfig {
            scheduler: SchedulerKind::DeterministicPolicy {
                policy: crate::sched::SchedulePolicyKind::DelayBounded { delays: vec![0, 3] },
            },
            ..HtmConfig::default()
        };
        cfg.validate().unwrap();
        assert_eq!(cfg.scheduler.clone(), cfg.scheduler);
    }

    #[test]
    fn profiles_mirror_platform_asymmetry() {
        let b = CapacityProfile::BROADWELL_SIM;
        let p = CapacityProfile::POWER8_SIM;
        assert!(b.read_lines > b.write_lines, "Broadwell reads >> writes");
        assert_eq!(p.read_lines, p.write_lines, "POWER8 symmetric");
        assert!(!b.supports_rot(), "no ROTs on Intel");
        assert!(p.supports_rot(), "ROTs on POWER8");
    }
}
