//! The transaction engine: [`Htm`] runtime, per-thread contexts and the
//! [`Tx`] handle passed to transactional closures.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::access::{Direct, Suspended};
use crate::config::{CapacityProfile, ConflictPolicy, HtmConfig, SchedulerKind};
use crate::directory::Directory;
use crate::memory::{CellId, LineId, SimMemory};
use crate::registry::SlotRegistry;
use crate::sched::{self, DetScheduler, OsScheduler, Scheduler, YieldKind};
use crate::slots::{
    Owner, TxTable, ST_ACTIVE, ST_COMMITTED, ST_COMMITTING, ST_DOOMED, ST_INACTIVE, ST_SUSPENDED,
};
use crate::stats::ThreadStats;
use crate::util::XorShift64;

/// Why a transaction attempt failed.
///
/// Mirrors the abort classes of real best-effort HTMs. The lock layer maps
/// [`Abort::Explicit`] codes onto algorithm-level causes (e.g. SpRWL's
/// "writer found an active reader at commit").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Abort {
    /// Data conflict with a concurrent thread (transactional or untracked).
    Conflict,
    /// The read-set exceeded the capacity profile.
    CapacityRead,
    /// The write-set exceeded the capacity profile.
    CapacityWrite,
    /// The program requested an abort (`xabort`-style) with a user code.
    Explicit(u32),
    /// An injected timer interrupt / context switch hit the transaction.
    Interrupt,
}

impl Abort {
    /// Whether this abort is a capacity overflow (read or write side).
    /// Typical retry policies fall back to the lock immediately on capacity
    /// aborts because retrying cannot help.
    pub fn is_capacity(self) -> bool {
        matches!(self, Abort::CapacityRead | Abort::CapacityWrite)
    }
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Abort::Conflict => write!(f, "data conflict"),
            Abort::CapacityRead => write!(f, "read-set capacity exceeded"),
            Abort::CapacityWrite => write!(f, "write-set capacity exceeded"),
            Abort::Explicit(code) => write!(f, "explicit abort (code {code})"),
            Abort::Interrupt => write!(f, "interrupt"),
        }
    }
}

impl std::error::Error for Abort {}

/// Attribution of a conflict abort: which cache line the conflict was
/// detected on and which peer thread won it. Populated on a best-effort
/// basis — dooms race, so a [`Abort::Conflict`] can occasionally go
/// unattributed — and consumed via [`ThreadCtx::last_conflict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConflictInfo {
    /// The contended cache line.
    pub line: LineId,
    /// The peer thread id that doomed (or outlived) this transaction.
    pub peer: u32,
}

/// Result type threaded through transactional closures; `Err` aborts the
/// attempt.
pub type TxResult<T> = Result<T, Abort>;

/// Which flavour of hardware transaction to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxKind {
    /// A plain best-effort hardware transaction (reads and writes tracked).
    Htm,
    /// A POWER8-style rollback-only transaction: writes are buffered and
    /// tracked, reads are *not* tracked (they behave like untracked reads).
    /// Only available on capacity profiles with
    /// [`CapacityProfile::supports_rot`].
    Rot,
}

/// The simulated HTM runtime: memory, conflict directory and transaction
/// table. One instance per experiment; share by reference (scoped threads)
/// or `Arc`.
#[derive(Debug)]
pub struct Htm {
    mem: SimMemory,
    dir: Directory,
    table: TxTable,
    cfg: HtmConfig,
    registry: SlotRegistry,
    /// The execution substrate: owns interleaving decisions and the clock
    /// (see [`crate::sched`]).
    sched: Arc<dyn Scheduler>,
}

impl Htm {
    /// Creates a runtime with `memory_cells` cells of simulated memory.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`HtmConfig::validate`]).
    pub fn new(cfg: HtmConfig, memory_cells: usize) -> Self {
        cfg.validate().expect("invalid HtmConfig");
        let registry = SlotRegistry::new(cfg.max_threads);
        let sched: Arc<dyn Scheduler> = match &cfg.scheduler {
            SchedulerKind::Os => Arc::new(OsScheduler::new(cfg.sched_shake_prob, cfg.seed)),
            SchedulerKind::Deterministic { schedule_seed } => {
                Arc::new(DetScheduler::new(*schedule_seed, cfg.max_threads))
            }
            SchedulerKind::DeterministicPolicy { policy } => {
                Arc::new(DetScheduler::with_policy(policy.build(), cfg.max_threads))
            }
        };
        Self {
            mem: SimMemory::new(memory_cells, cfg.cells_per_line),
            dir: Directory::new(),
            table: TxTable::new(cfg.max_threads),
            cfg,
            registry,
            sched,
        }
    }

    /// The execution substrate this runtime schedules through.
    pub fn scheduler(&self) -> &Arc<dyn Scheduler> {
        &self.sched
    }

    /// The simulated memory (for allocation and `peek`).
    pub fn memory(&self) -> &SimMemory {
        &self.mem
    }

    /// The active configuration.
    pub fn config(&self) -> &HtmConfig {
        &self.cfg
    }

    /// Claims the per-thread context for hardware thread `tid`.
    ///
    /// Claiming registers the calling OS thread with the runtime's
    /// [`Scheduler`] and binds it thread-locally, so [`crate::clock`]
    /// reads and waits route through the scheduler until the context
    /// drops. Under [`SchedulerKind::Deterministic`] registration is a
    /// start barrier: the call blocks until all
    /// [`HtmConfig::max_threads`] contexts have been claimed (from
    /// distinct OS threads) and the seeded picker first selects this one.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range or already claimed (contexts are
    /// exclusive; they release their slot on drop).
    pub fn thread(&self, tid: usize) -> ThreadCtx<'_> {
        assert!(
            tid < self.cfg.max_threads,
            "tid {tid} out of range (max_threads = {})",
            self.cfg.max_threads
        );
        assert!(
            self.registry.claim(tid),
            "thread context {tid} is already claimed"
        );
        self.claimed_ctx(tid)
    }

    /// Claims *some* free per-thread context, picking the slot dynamically
    /// (sharded scan, see [`crate::registry`]). This is the entry point for
    /// thread pools that grow and shrink at runtime: callers need not
    /// pre-assign stable hardware-thread ids.
    ///
    /// # Panics
    ///
    /// Panics if every context is claimed.
    pub fn acquire_thread(&self) -> ThreadCtx<'_> {
        let tid = self
            .registry
            .acquire()
            .expect("no free thread contexts (all slots claimed)");
        self.claimed_ctx(tid)
    }

    /// Shared tail of [`Htm::thread`]/[`Htm::acquire_thread`]: the slot is
    /// already claimed; register with the scheduler and build the context.
    fn claimed_ctx(&self, tid: usize) -> ThreadCtx<'_> {
        self.sched.register(tid as u32);
        sched::bind(Arc::clone(&self.sched), tid as u32);
        ThreadCtx {
            htm: self,
            tid: tid as u32,
            epoch: 0,
            rng: XorShift64::new(self.cfg.seed ^ ((tid as u64 + 1) << 17)),
            stats: ThreadStats::new(),
            last_conflict: None,
        }
    }

    /// Number of currently claimed per-thread contexts.
    pub fn active_threads(&self) -> usize {
        self.registry.active()
    }

    /// Whether hardware thread `tid`'s context is currently claimed.
    pub fn thread_claimed(&self, tid: usize) -> bool {
        self.registry.is_claimed(tid)
    }

    /// An untracked (non-transactional) accessor for thread `tid`.
    ///
    /// Unlike [`Htm::thread`], this does not claim exclusivity — untracked
    /// accessors carry no state — but the `tid` should match the calling
    /// thread so self-conflicts resolve sensibly.
    pub fn direct(&self, tid: usize) -> Direct<'_> {
        Direct::new(self, tid as u32)
    }

    pub(crate) fn mem_ref(&self) -> &SimMemory {
        &self.mem
    }

    pub(crate) fn dir_ref(&self) -> &Directory {
        &self.dir
    }

    pub(crate) fn table_ref(&self) -> &TxTable {
        &self.table
    }

    /// Number of thread slots.
    pub fn max_threads(&self) -> usize {
        self.table.len()
    }
}

/// Per-thread handle for running transactions. Claim one per OS thread via
/// [`Htm::thread`].
#[derive(Debug)]
pub struct ThreadCtx<'h> {
    htm: &'h Htm,
    tid: u32,
    epoch: u64,
    rng: XorShift64,
    /// Raw substrate statistics for this thread.
    pub stats: ThreadStats,
    /// Attribution of the most recent [`Abort::Conflict`], if the doomer
    /// left one. Reset at every transaction begin.
    last_conflict: Option<ConflictInfo>,
}

impl Drop for ThreadCtx<'_> {
    fn drop(&mut self) {
        sched::unbind();
        self.htm.sched.deregister(self.tid);
        self.htm.registry.release(self.tid as usize);
    }
}

impl<'h> ThreadCtx<'h> {
    /// This context's hardware thread id.
    pub fn tid(&self) -> usize {
        self.tid as usize
    }

    /// The owning runtime.
    pub fn htm(&self) -> &'h Htm {
        self.htm
    }

    /// An untracked accessor bound to this thread id.
    pub fn direct(&self) -> Direct<'h> {
        Direct::new(self.htm, self.tid)
    }

    /// Attribution of the most recent conflict abort, if the winning side
    /// recorded one: the contended line and the peer thread. Best-effort
    /// (dooms race); reset at every [`ThreadCtx::txn`] call.
    pub fn last_conflict(&self) -> Option<ConflictInfo> {
        self.last_conflict
    }

    /// Runs **one attempt** of a hardware transaction. Retry policies live
    /// a layer above (see `sprwl-locks`); call `txn` again to retry.
    ///
    /// The closure receives a [`Tx`] for transactional reads/writes and
    /// must propagate its `Err`s (aborts) outward. On `Ok`, the engine
    /// attempts to commit; the commit itself can still fail with
    /// [`Abort::Conflict`] if the transaction was doomed in flight.
    ///
    /// # Errors
    ///
    /// Any [`Abort`]: conflict, capacity, explicit or injected interrupt.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`TxKind::Rot`] on a capacity profile without
    /// ROT support (programming error — RW-LE must only be instantiated on
    /// POWER8-like profiles, exactly as in the paper).
    pub fn txn<R>(
        &mut self,
        kind: TxKind,
        f: impl FnOnce(&mut Tx<'_>) -> TxResult<R>,
    ) -> Result<R, Abort> {
        if kind == TxKind::Rot {
            assert!(
                self.htm.cfg.capacity.supports_rot(),
                "rollback-only transactions are a POWER8-only feature; \
                 profile `{}` does not support them",
                self.htm.cfg.capacity.name
            );
        }
        self.epoch += 1;
        let me = Owner {
            tid: self.tid,
            epoch: self.epoch,
        };
        self.htm.sched.yield_point(self.tid, YieldKind::TxBegin);
        self.htm.table.begin(me.tid, me.epoch);
        self.stats.on_begin(kind);
        self.last_conflict = None;

        let mut tx = Tx {
            htm: self.htm,
            me,
            kind,
            read_lines: HashSet::new(),
            write_lines: HashSet::new(),
            write_buf: HashMap::new(),
            rng: &mut self.rng,
        };
        let result = f(&mut tx);
        let Tx {
            read_lines,
            write_lines,
            write_buf,
            ..
        } = tx;

        let table = &self.htm.table;
        let outcome = match result {
            Ok(value) => {
                if table.try_transition(me.tid, me.epoch, ST_ACTIVE, ST_COMMITTING) {
                    // Commit point passed: flush buffered writes, then
                    // advertise `Committed` so untracked accesses waiting on
                    // the flush can proceed, then clean the directory.
                    for (&cell, &val) in &write_buf {
                        self.htm.mem.raw_store(CellId(cell), val);
                    }
                    table.set(me.tid, me.epoch, ST_COMMITTED);
                    self.htm
                        .dir
                        .release(me, read_lines.iter(), write_lines.iter());
                    table.set(me.tid, me.epoch, ST_INACTIVE);
                    self.stats.on_commit(kind);
                    // The commit window itself (Committing → flush →
                    // Committed) deliberately contains no yield point:
                    // peers observing `Committing` spin it out under a
                    // directory shard lock, which a serialized scheduler
                    // could never resolve if a switch landed inside.
                    self.htm.sched.yield_point(self.tid, YieldKind::TxCommit);
                    return Ok(value);
                }
                Err(Abort::Conflict)
            }
            Err(cause) => Err(cause),
        };

        // Abort path: mark dead (idempotent wrt concurrent dooming), clean
        // the directory, release the slot.
        table.set(me.tid, me.epoch, ST_DOOMED);
        self.htm
            .dir
            .release(me, read_lines.iter(), write_lines.iter());
        table.set(me.tid, me.epoch, ST_INACTIVE);
        let cause = outcome.as_ref().err().copied().expect("abort path");
        // Consume the doomer's attribution note (always, so it cannot leak
        // into a later epoch); expose it only for genuine conflict aborts.
        let note = table.take_conflict(me);
        if cause == Abort::Conflict {
            self.last_conflict = note.map(|(line, peer)| ConflictInfo {
                line: LineId(line),
                peer,
            });
        }
        self.stats.on_abort(cause);
        self.htm.sched.yield_point(self.tid, YieldKind::TxAbort);
        outcome
    }
}

/// Handle for transactional memory accesses, passed to the closure of
/// [`ThreadCtx::txn`]. All methods return [`TxResult`]; propagate errors
/// with `?` so aborts unwind the attempt.
#[derive(Debug)]
pub struct Tx<'a> {
    htm: &'a Htm,
    me: Owner,
    kind: TxKind,
    read_lines: HashSet<LineId>,
    write_lines: HashSet<LineId>,
    write_buf: HashMap<u32, u64>,
    rng: &'a mut XorShift64,
}

impl Tx<'_> {
    #[inline]
    fn check_alive(&mut self) -> TxResult<()> {
        // Yield before the doom check: a peer scheduled here may conflict
        // with (and doom) this transaction, which the check then observes —
        // the interleavings a real context switch would expose.
        self.htm.sched.yield_point(self.me.tid, YieldKind::TxAccess);
        if self.htm.table.is_doomed(self.me) {
            return Err(Abort::Conflict);
        }
        if self.rng.hit(self.htm.cfg.interrupt_prob) {
            return Err(Abort::Interrupt);
        }
        Ok(())
    }

    fn capacity(&self) -> &CapacityProfile {
        &self.htm.cfg.capacity
    }

    fn policy(&self) -> ConflictPolicy {
        self.htm.cfg.conflict_policy
    }

    /// The transaction flavour this handle runs under.
    pub fn kind(&self) -> TxKind {
        self.kind
    }

    /// Distinct cache lines currently in the read-set (ROTs always report 0).
    pub fn read_footprint(&self) -> usize {
        self.read_lines.len()
    }

    /// Distinct cache lines currently in the write-set.
    pub fn write_footprint(&self) -> usize {
        self.write_lines.len()
    }

    /// Transactionally reads a cell.
    ///
    /// Reads-own-writes: returns the buffered value if this transaction
    /// already wrote the cell. In [`TxKind::Rot`] mode the read is
    /// untracked (no read-set entry, no capacity cost) exactly like POWER8
    /// rollback-only transactions.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if doomed or (under `ResponderWins`) conflicting;
    /// [`Abort::CapacityRead`] on footprint overflow; [`Abort::Interrupt`]
    /// under failure injection.
    pub fn read(&mut self, cell: CellId) -> TxResult<u64> {
        self.check_alive()?;
        if let Some(&v) = self.write_buf.get(&cell.0) {
            return Ok(v);
        }
        let line = self.htm.mem.line_of(cell);
        match self.kind {
            TxKind::Htm => {
                if !self.read_lines.contains(&line) && !self.write_lines.contains(&line) {
                    self.htm
                        .dir
                        .acquire_read(line, self.me, &self.htm.table, self.policy())?;
                    self.read_lines.insert(line);
                    if self.read_lines.len() > self.capacity().read_lines {
                        return Err(Abort::CapacityRead);
                    }
                }
                Ok(self.htm.mem.raw_load(cell))
            }
            TxKind::Rot => {
                // POWER8 ROT reads are untracked; they still participate in
                // coherence, so they conflict with other transactions'
                // speculative writes.
                if self.write_lines.contains(&line) {
                    return Ok(self.htm.mem.raw_load(cell));
                }
                let htm = self.htm;
                Ok(htm.dir.untracked_op(
                    line,
                    crate::directory::UntrackedKind::Read,
                    true,
                    self.me.tid,
                    &htm.table,
                    || htm.mem.raw_load(cell),
                ))
            }
        }
    }

    /// Transactionally writes a cell (buffered until commit).
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`], [`Abort::CapacityWrite`] or [`Abort::Interrupt`]
    /// as for [`Tx::read`].
    pub fn write(&mut self, cell: CellId, val: u64) -> TxResult<()> {
        self.check_alive()?;
        let line = self.htm.mem.line_of(cell);
        if !self.write_lines.contains(&line) {
            self.htm
                .dir
                .acquire_write(line, self.me, &self.htm.table, self.policy())?;
            self.write_lines.insert(line);
            let cap = match self.kind {
                TxKind::Htm => self.capacity().write_lines,
                TxKind::Rot => self.capacity().rot_write_lines,
            };
            if self.write_lines.len() > cap {
                return Err(Abort::CapacityWrite);
            }
        }
        self.write_buf.insert(cell.0, val);
        Ok(())
    }

    /// Explicitly aborts the transaction with `code` (like `xabort imm8`).
    ///
    /// # Errors
    ///
    /// Always returns `Err(Abort::Explicit(code))` — written as a `Result`
    /// so call sites can `return tx.abort(code)`.
    pub fn abort<T>(&self, code: u32) -> TxResult<T> {
        Err(Abort::Explicit(code))
    }

    /// POWER8-style suspend/resume: runs `f` *outside* the transaction
    /// (accesses inside `f` are non-transactional), then resumes. A
    /// conflict that dooms the suspended transaction surfaces at resume,
    /// exactly like the hardware. Mirroring POWER8's L1-resident
    /// speculative state, suspended loads of lines this transaction wrote
    /// *do* observe the buffered values, and suspended stores that touch
    /// the transaction's own footprint doom it.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if the transaction was doomed before suspension
    /// or while suspended.
    ///
    /// # Panics
    ///
    /// Panics if the capacity profile lacks POWER8's suspend/resume.
    pub fn suspend<R>(&mut self, f: impl FnOnce(&Suspended<'_>) -> R) -> TxResult<R> {
        assert!(
            self.htm.cfg.capacity.supports_rot(),
            "suspend/resume is a POWER8-only feature; profile `{}` lacks it",
            self.htm.cfg.capacity.name
        );
        let table = &self.htm.table;
        if !table.try_transition(self.me.tid, self.me.epoch, ST_ACTIVE, ST_SUSPENDED) {
            return Err(Abort::Conflict);
        }
        let s = Suspended {
            htm: self.htm,
            me: self.me,
            write_lines: &self.write_lines,
            write_buf: &self.write_buf,
        };
        let r = f(&s);
        if !table.try_transition(self.me.tid, self.me.epoch, ST_SUSPENDED, ST_ACTIVE) {
            return Err(Abort::Conflict);
        }
        Ok(r)
    }
}
