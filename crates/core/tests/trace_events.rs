//! Black-box checks that SpRWL's instrumentation records the lifecycle
//! events the trace crate defines — and records nothing when tracing is
//! off.

use htm_sim::{CapacityProfile, Htm, HtmConfig};
use sprwl::{SpRwl, SprwlConfig};
use sprwl_locks::{LockThread, RwSync, SectionId};
use sprwl_trace::{EventKind, TraceConfig, TraceRole};

fn htm(threads: usize) -> Htm {
    Htm::new(
        HtmConfig {
            capacity: CapacityProfile::BROADWELL_SIM,
            max_threads: threads,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

const SEC_R: SectionId = SectionId(0);
const SEC_W: SectionId = SectionId(1);

fn kinds(t: &LockThread<'_>) -> Vec<&'static str> {
    t.trace
        .snapshot()
        .events
        .iter()
        .map(|e| e.kind.name())
        .collect()
}

#[test]
fn reader_sections_trace_begin_arrive_depart_end() {
    let h = htm(2);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::default()
        },
    );
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(64));
    lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
    let ks = kinds(&t);
    assert_eq!(
        ks,
        vec![
            "section-begin",
            "reader-arrive",
            "reader-depart",
            "section-end"
        ],
        "uninstrumented reader lifecycle"
    );
    let snap = t.trace.snapshot();
    match snap.events[0].kind {
        EventKind::SectionBegin { role, sec } => {
            assert_eq!(role, TraceRole::Reader);
            assert_eq!(sec, SEC_R.0);
        }
        ref k => panic!("unexpected first event {k:?}"),
    }
    match snap.events[3].kind {
        EventKind::SectionEnd { mode, .. } => assert_eq!(mode, "Unins"),
        ref k => panic!("unexpected last event {k:?}"),
    }
}

#[test]
fn htm_reader_traces_attempt_and_commit_with_footprint() {
    let h = htm(2);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(64));
    lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
    let snap = t.trace.snapshot();
    let commit = snap
        .events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::TxCommit { mode, read_fp, .. } => Some((mode, read_fp)),
            _ => None,
        })
        .expect("HTM probe committed");
    assert_eq!(commit.0, "HTM");
    assert!(commit.1 >= 1, "one line read");
    assert!(kinds(&t).contains(&"tx-attempt"));
}

#[test]
fn writer_sections_trace_the_speculative_lifecycle() {
    let h = htm(2);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(64));
    lock.write_section(&mut t, SEC_W, &mut |a| {
        a.write(cell, 7)?;
        Ok(0)
    });
    let ks = kinds(&t);
    assert_eq!(ks[0], "section-begin");
    assert!(ks.contains(&"tx-attempt"));
    assert!(ks.contains(&"tx-commit"));
    assert_eq!(*ks.last().unwrap(), "section-end");
    let snap = t.trace.snapshot();
    match snap.events.last().unwrap().kind {
        EventKind::SectionEnd { role, mode, .. } => {
            assert_eq!(role, TraceRole::Writer);
            assert_eq!(mode, "HTM");
        }
        ref k => panic!("unexpected last event {k:?}"),
    }
}

#[test]
fn tracing_off_records_nothing() {
    let h = htm(2);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    lock.write_section(&mut t, SEC_W, &mut |a| {
        a.write(cell, 1)?;
        Ok(0)
    });
    lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
    assert!(t.trace.is_empty());
    assert_eq!(t.trace.total_recorded(), 0);
}

#[test]
fn contended_counter_traces_conflict_attributed_aborts() {
    const THREADS: usize = 4;
    let h = htm(THREADS);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);
    let stats = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let h = &h;
                let lock = &lock;
                s.spawn(move || {
                    let mut t = LockThread::with_trace(h.thread(tid), TraceConfig::ring(4096));
                    for _ in 0..300 {
                        lock.write_section(&mut t, SEC_W, &mut |a| {
                            let v = a.read(cell)?;
                            a.write(cell, v + 1)?;
                            Ok(0)
                        });
                    }
                    (t.stats, t.trace.snapshot())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    assert_eq!(
        h.direct(0).load(cell),
        (THREADS * 300) as u64,
        "counter intact"
    );
    // Under this much contention some aborts carry attribution. The
    // attributed lines depend on where the substrate detects the conflict
    // (counter line, state flags, lock word) — what must hold is that the
    // trace and the stats table agree on them.
    let attributed: u64 = stats.iter().map(|(s, _)| s.conflict_lines.total()).sum();
    if attributed > 0 {
        for (s, tr) in &stats {
            if s.conflict_lines.is_empty() {
                continue;
            }
            let tabled: std::collections::HashSet<u64> = s
                .conflict_lines
                .top_k(usize::MAX)
                .iter()
                .map(|c| c.line)
                .collect();
            let traced: Vec<u64> = tr
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::TxAbort { line, .. } if line != sprwl_trace::NO_LINE => Some(line),
                    _ => None,
                })
                .collect();
            assert!(
                !traced.is_empty(),
                "thread with attributed aborts traced none"
            );
            for l in traced {
                assert!(tabled.contains(&l), "traced line {l} missing from table");
            }
        }
    }
}
