//! Tests for the self-tuning reader tracking (§5 future work): mode
//! switching policy and safety across switches.

use htm_sim::{CapacityProfile, Htm, HtmConfig};
use sprwl::{SpRwl, SprwlConfig};
use sprwl_locks::{LockThread, RwSync, SectionId};

fn htm(threads: usize) -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: threads,
            capacity: CapacityProfile::POWER8_SIM,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

const SEC_R: SectionId = SectionId(0);
const SEC_W: SectionId = SectionId(1);

#[test]
fn adaptive_starts_with_flags() {
    let h = htm(2);
    let lock = SpRwl::new(&h, SprwlConfig::adaptive());
    assert!(!lock.snzi_engaged(h.memory()));
    assert_eq!(lock.variant_label(), "Adaptive");
}

#[test]
fn long_readers_engage_the_snzi() {
    let h = htm(2);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false, // keep readers on the uninstrumented path
            ..SprwlConfig::adaptive()
        },
    );
    let big = h.memory().alloc_line_aligned(8 * 300);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    // Long reads, short writes: the duration ratio must cross the
    // switching threshold. Run past the cooldown (5 ms).
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(300);
    while std::time::Instant::now() < deadline && !lock.snzi_engaged(h.memory()) {
        lock.read_section(&mut t, SEC_R, &mut |a| {
            let mut s = 0;
            for i in 0..300 {
                s += a.read(big.cell(i * 8))?;
            }
            Ok(s)
        });
        lock.write_section(&mut t, SEC_W, &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1).map(|_| v)
        });
    }
    assert!(
        lock.snzi_engaged(h.memory()),
        "long readers should have engaged the SNZI"
    );
}

#[test]
fn short_readers_disengage_the_snzi_again() {
    let h = htm(2);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::adaptive()
        },
    );
    let big = h.memory().alloc_line_aligned(8 * 300);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));

    // Phase 1: engage.
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(300);
    while std::time::Instant::now() < deadline && !lock.snzi_engaged(h.memory()) {
        lock.read_section(&mut t, SEC_R, &mut |a| {
            let mut s = 0;
            for i in 0..300 {
                s += a.read(big.cell(i * 8))?;
            }
            Ok(s)
        });
        lock.write_section(&mut t, SEC_W, &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1).map(|_| v)
        });
    }
    assert!(lock.snzi_engaged(h.memory()), "precondition: engaged");

    // Phase 2: short reads, heavier writes — ratio collapses, tracker
    // reverts to flags after the cooldown.
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
    while std::time::Instant::now() < deadline && lock.snzi_engaged(h.memory()) {
        lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
        lock.write_section(&mut t, SEC_W, &mut |a| {
            let mut v = 0;
            for i in 0..40 {
                v = a.read(big.cell(i * 8))?;
                a.write(big.cell(i * 8), v + 1)?;
            }
            Ok(v)
        });
    }
    assert!(
        !lock.snzi_engaged(h.memory()),
        "short readers should have disengaged the SNZI"
    );
}

#[test]
fn audits_stay_consistent_across_mode_switches() {
    // Concurrent bank audit while the workload's reader size oscillates,
    // forcing tracker switches mid-flight.
    const THREADS: usize = 4;
    const SLOTS: usize = 16;
    let h = htm(THREADS);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::adaptive()
        },
    );
    let slots = h.memory().alloc_line_aligned(SLOTS * 8);
    for i in 0..SLOTS {
        h.memory().init_store(slots.cell(i * 8), 64);
    }
    let pad = h.memory().alloc_line_aligned(8 * 256);
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let (h, lock, slots, pad) = (&h, &lock, &slots, &pad);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(tid));
                let mut x = (tid as u64 + 7) | 1;
                let mut rnd = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for op in 0..400usize {
                    // Oscillate reader length in phases to force switches.
                    let long_phase = (op / 100) % 2 == 0;
                    if op % 4 == 0 {
                        let from = (rnd() as usize) % SLOTS;
                        let to = (rnd() as usize) % SLOTS;
                        lock.write_section(&mut t, SEC_W, &mut |a| {
                            let f = a.read(slots.cell(from * 8))?;
                            if f == 0 || from == to {
                                return Ok(0);
                            }
                            let v = a.read(slots.cell(to * 8))?;
                            a.write(slots.cell(from * 8), f - 1)?;
                            a.write(slots.cell(to * 8), v + 1)?;
                            Ok(1)
                        });
                    } else {
                        let sum = lock.read_section(&mut t, SEC_R, &mut |a| {
                            let mut sum = 0;
                            for i in 0..SLOTS {
                                sum += a.read(slots.cell(i * 8))?;
                            }
                            if long_phase {
                                for i in 0..256 {
                                    let _ = a.read(pad.cell(i * 8))?;
                                }
                            }
                            Ok(sum)
                        });
                        assert_eq!(sum, SLOTS as u64 * 64, "torn snapshot across mode switch");
                    }
                }
            });
        }
    });
    let total: u64 = (0..SLOTS)
        .map(|i| h.direct(0).load(slots.cell(i * 8)))
        .sum();
    assert_eq!(total, SLOTS as u64 * 64);
}
