//! White-box tests of the scheduling machinery: duration estimation
//! feeding end-time advertisement, reader joining, writer-wait timing and
//! the §3.4 predictive reader-HTM policy.

use htm_sim::{clock, CapacityProfile, Htm, HtmConfig};
use sprwl::{DeltaPolicy, SpRwl, SprwlConfig};
use sprwl_locks::{AbortCause, CommitMode, LockThread, Role, RwSync, SectionId};

fn htm(threads: usize) -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: threads,
            capacity: CapacityProfile::POWER8_SIM,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

/// Busy work of a roughly known duration inside a critical section.
fn spin_for(ns: u64) {
    let end = clock::now() + ns;
    while clock::now() < end {
        std::hint::spin_loop();
    }
}

#[test]
fn estimator_learns_section_durations_through_the_lock() {
    let h = htm(1);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::default()
        },
    );
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0)); // thread 0 samples
    for _ in 0..16 {
        lock.read_section(&mut t, SectionId(3), &mut |a| {
            spin_for(200_000); // ~200 µs
            a.read(cell)
        });
    }
    let est = lock.estimator().duration(SectionId(3));
    assert!(
        (100_000..1_000_000).contains(&est),
        "estimate should be near 200µs, got {est}ns"
    );
}

#[test]
fn non_sampling_threads_do_not_pollute_estimates() {
    let h = htm(2);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::default()
        },
    );
    let cell = h.memory().alloc(1).cell(0);
    {
        let mut t0 = LockThread::new(h.thread(0));
        lock.read_section(&mut t0, SectionId(5), &mut |a| {
            spin_for(100_000);
            a.read(cell)
        });
    }
    assert_eq!(lock.estimator().sampler(), Some(0), "thread 0 claimed it");
    let claimed = lock.estimator().duration(SectionId(5));
    let mut t1 = LockThread::new(h.thread(1)); // not the sampler
    for _ in 0..8 {
        lock.read_section(&mut t1, SectionId(5), &mut |a| {
            spin_for(800_000); // much longer; would visibly move the EWMA
            a.read(cell)
        });
    }
    assert_eq!(lock.estimator().duration(SectionId(5)), claimed);
}

#[test]
fn first_section_thread_is_promoted_when_thread_zero_coordinates() {
    // Thread 0 exists but never enters a section (a coordinator): the
    // estimator promotes the first thread that does, instead of running
    // blind forever.
    let h = htm(2);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::default()
        },
    );
    let cell = h.memory().alloc(1).cell(0);
    let _coordinator = h.thread(0); // claimed, but does no lock work
    let mut t1 = LockThread::new(h.thread(1));
    for _ in 0..8 {
        lock.read_section(&mut t1, SectionId(5), &mut |a| {
            spin_for(100_000);
            a.read(cell)
        });
    }
    assert_eq!(lock.estimator().sampler(), Some(1));
    let est = lock.estimator().duration(SectionId(5));
    assert!(est > 0, "the promoted sampler's estimates are recorded");
}

#[test]
fn predictive_reader_htm_probes_then_backs_off() {
    let h = htm(1);
    let lock = SpRwl::with_defaults(&h); // adaptive_reader_htm on
    let big = h.memory().alloc_line_aligned(8 * 300);
    let mut t = LockThread::new(h.thread(0));
    let long_read = |t: &mut LockThread<'_>| {
        lock.read_section(t, SectionId(2), &mut |a| {
            let mut s = 0;
            for i in 0..300 {
                s += a.read(big.cell(i * 8))?;
            }
            Ok(s)
        });
    };
    // First execution probes HTM and hits capacity; the next ~63 go
    // straight to the uninstrumented path with no further aborts.
    for _ in 0..32 {
        long_read(&mut t);
    }
    assert_eq!(
        t.stats.aborts_of(AbortCause::Capacity),
        1,
        "exactly one capacity probe within the skip window"
    );
    assert_eq!(t.stats.commits_by(Role::Reader, CommitMode::Unins), 32);
}

#[test]
fn always_probe_policy_pays_a_capacity_abort_per_read() {
    let h = htm(1);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            adaptive_reader_htm: false,
            ..SprwlConfig::default()
        },
    );
    let big = h.memory().alloc_line_aligned(8 * 300);
    let mut t = LockThread::new(h.thread(0));
    for _ in 0..8 {
        lock.read_section(&mut t, SectionId(2), &mut |a| {
            let mut s = 0;
            for i in 0..300 {
                s += a.read(big.cell(i * 8))?;
            }
            Ok(s)
        });
    }
    assert_eq!(
        t.stats.aborts_of(AbortCause::Capacity),
        8,
        "the literal paper policy probes every time"
    );
}

#[test]
fn writer_advertises_and_clears_its_end_time_flag() {
    let h = htm(2);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    // During the section the writer flag must be visible to another thread.
    let seen_writer = std::sync::atomic::AtomicBool::new(false);
    lock.write_section(&mut t, SectionId(1), &mut |a| {
        seen_writer.store(
            lock.would_reader_wait(1, h.memory()),
            std::sync::atomic::Ordering::SeqCst,
        );
        a.write(cell, 1)?;
        Ok(0)
    });
    assert!(
        seen_writer.load(std::sync::atomic::Ordering::SeqCst),
        "a reader polling during the write section must see the writer"
    );
    assert!(
        !lock.would_reader_wait(1, h.memory()),
        "the flag must be cleared after the section"
    );
}

#[test]
fn nosched_readers_never_wait_for_writers() {
    let h = htm(2);
    let lock = SpRwl::new(&h, SprwlConfig::no_sched());
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    lock.write_section(&mut t, SectionId(1), &mut |a| {
        // Even mid-write, NoSched reports no reader wait.
        assert!(!lock.would_reader_wait(1, h.memory()));
        a.write(cell, 1)?;
        Ok(0)
    });
}

#[test]
fn delta_policies_shape_writer_wait_metadata() {
    // Indirect check of Alg. 3's arithmetic through the public surface:
    // with δ = 0 the writer should start at (reader_end − duration);
    // we verify the DeltaPolicy resolution feeding it.
    assert_eq!(DeltaPolicy::Zero.resolve(10_000), 0);
    assert_eq!(DeltaPolicy::HalfWriterDuration.resolve(10_000), 5_000);
    assert_eq!(DeltaPolicy::FixedNs(123).resolve(10_000), 123);
}

#[test]
fn reader_join_aligns_start_times() {
    // RSync's join: while a reader is parked waiting for a writer, a second
    // reader must join it (observable as both entering promptly once the
    // writer finishes — and as zero reader aborts of the writer).
    let h = htm(3);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::rsync()
        },
    );
    let cell = h.memory().alloc(1).cell(0);
    let in_write = std::sync::atomic::AtomicBool::new(false);
    let release = std::sync::atomic::AtomicBool::new(false);
    let entered = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        let (lk, hh, iw, rel) = (&lock, &h, &in_write, &release);
        s.spawn(move || {
            let mut t = LockThread::new(hh.thread(0));
            lk.write_section(&mut t, SectionId(1), &mut |a| {
                iw.store(true, std::sync::atomic::Ordering::SeqCst);
                while !rel.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                a.write(cell, 1)?;
                Ok(0)
            });
        });
        while !in_write.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        for tid in 1..3 {
            let (lk, hh, ent) = (&lock, &h, &entered);
            s.spawn(move || {
                let mut t = LockThread::new(hh.thread(tid));
                lk.read_section(&mut t, SectionId(0), &mut |a| {
                    ent.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    a.read(cell)
                });
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        release.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    assert_eq!(entered.load(std::sync::atomic::Ordering::SeqCst), 2);
    assert_eq!(h.direct(0).load(cell), 1);
}
