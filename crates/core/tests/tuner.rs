//! Deterministic end-to-end check of the runtime self-tuner: under a
//! hot-key workload whose writers keep losing the commit-time reader
//! check, the tuner must raise the hot section's δ-start boost, and the
//! decision must be visible as a `tune-decision` trace event. Runs on the
//! deterministic scheduler, so the flip happens at the same virtual-time
//! point on every host.

use std::sync::Barrier;

use htm_sim::{CapacityProfile, Htm, HtmConfig, SchedulerKind};
use sprwl::{DeltaPolicy, ReaderTracking, SpRwl, SprwlConfig, StretchPolicy};
use sprwl_locks::{CommitMode, LockThread, RwSync, SectionId};
use sprwl_trace::{EventKind, ThreadTrace, TraceConfig};

const SEC_W: SectionId = SectionId(0);
const SEC_R: SectionId = SectionId(1);
const THREADS: usize = 4;
const OPS: usize = 600;

fn det_htm(schedule_seed: u64) -> Htm {
    Htm::new(
        HtmConfig {
            capacity: CapacityProfile::BROADWELL_SIM,
            max_threads: THREADS,
            scheduler: SchedulerKind::Deterministic { schedule_seed },
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

/// Hot-key run: even threads write the shared cell, odd threads read it
/// uninstrumented (no reader HTM, so every read raises the state flag the
/// writers' commit check trips over). δ starts at `Zero` to maximize
/// reader/writer overlap — the pathology the tuner is meant to correct.
/// Returns the hot write section's δ boost and all harvested traces.
fn run(schedule_seed: u64) -> (u64, Vec<ThreadTrace>) {
    let h = det_htm(schedule_seed);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            delta: DeltaPolicy::Zero,
            ..SprwlConfig::self_tuning()
        },
    );
    let cells = h.memory().alloc_line_aligned(64);
    h.memory().init_store(cells.cell(0), 0);
    let barrier = Barrier::new(THREADS);
    let traces = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let (h, lock, cells, barrier) = (&h, &lock, &cells, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut t = LockThread::with_trace(h.thread(tid), TraceConfig::ring(8192));
                    for _ in 0..OPS {
                        if tid % 2 == 0 {
                            lock.write_section(&mut t, SEC_W, &mut |a| {
                                let v = a.read(cells.cell(0))?;
                                a.write(cells.cell(0), v + 1)?;
                                Ok(v + 1)
                            });
                        } else {
                            lock.read_section(&mut t, SEC_R, &mut |a| {
                                // A few extra reads keep the reader's state
                                // flag up long enough to doom writers.
                                let mut acc = 0;
                                for i in 0..8 {
                                    acc += a.read(cells.cell(i * 8))?;
                                }
                                Ok(acc)
                            });
                        }
                    }
                    t.trace.snapshot()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    (lock.debug_delta_boost(SEC_W), traces)
}

fn delta_boost_decisions(traces: &[ThreadTrace]) -> Vec<(u32, u64)> {
    traces
        .iter()
        .flat_map(|t| t.events.iter())
        .filter_map(|e| match e.kind {
            EventKind::TuneDecision {
                knob: "delta-boost",
                sec,
                value,
            } => Some((sec, value)),
            _ => None,
        })
        .collect()
}

#[test]
fn tuner_raises_delta_boost_under_hot_key_reader_pressure() {
    let (boost, traces) = run(7);
    assert!(
        boost > 0,
        "the hot write section's δ boost must have been raised (got {boost})"
    );
    let decisions = delta_boost_decisions(&traces);
    assert!(
        !decisions.is_empty(),
        "every knob flip must be visible as a tune-decision trace event"
    );
    assert!(
        decisions.iter().all(|&(sec, _)| sec == SEC_W.0),
        "δ boosts must target the pressured write section: {decisions:?}"
    );
    // The boost trajectory starts at the step and only ever doubles or
    // halves, capped — i.e. the knob moved through the documented ladder.
    for &(_, v) in &decisions {
        assert!(
            v == 0 || (v % sprwl::tuner::DELTA_BOOST_STEP_NS == 0),
            "unexpected boost value {v}"
        );
        assert!(v <= sprwl::tuner::DELTA_BOOST_MAX_NS);
    }
}

#[test]
fn tuner_flip_is_deterministic() {
    let (boost_a, traces_a) = run(11);
    let (boost_b, traces_b) = run(11);
    assert_eq!(boost_a, boost_b, "same schedule seed, same final boost");
    assert_eq!(
        delta_boost_decisions(&traces_a),
        delta_boost_decisions(&traces_b),
        "same schedule seed, same decision sequence"
    );
}

#[test]
fn tuner_off_by_default_leaves_knobs_alone() {
    // Free-running scheduler: under the deterministic one registration is
    // a start barrier over `max_threads`, and this test claims one thread.
    let h = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::BROADWELL_SIM,
            max_threads: 4,
            ..HtmConfig::default()
        },
        64 * 1024,
    );
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            delta: DeltaPolicy::Zero,
            ..SprwlConfig::default()
        },
    );
    assert_eq!(lock.debug_delta_boost(SEC_W), 0);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    for _ in 0..100 {
        lock.write_section(&mut t, SEC_W, &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1)?;
            Ok(v)
        });
    }
    assert_eq!(
        lock.debug_delta_boost(SEC_W),
        0,
        "default config must never self-tune"
    );
}

/// Harvests `tune-decision` events for one knob as `(sec, value)` pairs.
fn decisions_for(traces: &[ThreadTrace], wanted: &str) -> Vec<(u32, u64)> {
    traces
        .iter()
        .flat_map(|t| t.events.iter())
        .filter_map(|e| match e.kind {
            EventKind::TuneDecision { knob, sec, value } if knob == wanted => Some((sec, value)),
            _ => None,
        })
        .collect()
}

/// Satellite bugfix regression: the bias knob used to watch only
/// reader-check *aborts*, but BRAVO revocations are paid *before* the
/// transaction — a writer that drains the visible table every execution
/// and then commits clean generated zero pressure signal. Single-threaded
/// (so reader aborts are impossible by construction), with the bias
/// force-armed before every write: the revocation feed alone must flip
/// `bias_enabled` off, and a quiet stretch must hand it back.
#[test]
fn tuner_flips_bias_off_under_pure_revocation_pressure() {
    let h = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::BROADWELL_SIM,
            max_threads: 4,
            ..HtmConfig::default()
        },
        64 * 1024,
    );
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            reader_tracking: ReaderTracking::Bravo,
            readers_try_htm: false,
            delta: DeltaPolicy::Zero,
            ..SprwlConfig::self_tuning()
        },
    );
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(8192));
    assert!(lock.debug_bias_enabled());

    // Pressure phase: every write section pays a revocation (zero aborts).
    for _ in 0..64 {
        lock.debug_arm_bias(&t.ctx.direct());
        lock.write_section(&mut t, SEC_W, &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1)?;
            Ok(v)
        });
    }
    assert!(
        !lock.debug_bias_enabled(),
        "sustained revocation pressure with zero reader aborts must flip bias off"
    );

    // Quiet phase: no revocations, no reader aborts → the tuner re-arms.
    for _ in 0..64 {
        lock.write_section(&mut t, SEC_W, &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1)?;
            Ok(v)
        });
    }
    assert!(
        lock.debug_bias_enabled(),
        "a fully quiet window must hand the fast path back to readers"
    );

    let flips = decisions_for(&[t.trace.snapshot()], "bravo-bias");
    assert!(
        flips.contains(&(SEC_W.0, 0)) && flips.contains(&(SEC_W.0, 1)),
        "both flips must be visible as tune-decision events: {flips:?}"
    );
}

/// The stretch-level knob: under chronic capacity pressure on TINY the
/// tuner must walk the section up the ladder (direct → ROT → split), one
/// rung per pressured window, each step visible as a `tune-decision`.
#[test]
fn tuner_escalates_stretch_level_under_capacity_pressure() {
    let h = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::TINY,
            max_threads: 4,
            ..HtmConfig::default()
        },
        64 * 1024,
    );
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            stretch: StretchPolicy::ON,
            readers_try_htm: false,
            delta: DeltaPolicy::Zero,
            ..SprwlConfig::self_tuning()
        },
    );
    // Six distinct lines: overflows TINY's HTM write budget (2) and its
    // ROT budget (2), so every rung below the split keeps capacity-aborting.
    let cells = h.memory().alloc_line_aligned(64);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(8192));
    for round in 0..64u64 {
        lock.write_section(&mut t, SEC_W, &mut |a| {
            for i in 0..6 {
                a.write(cells.cell(i * 8), round + 1)?;
            }
            Ok(round)
        });
    }
    assert_eq!(
        lock.debug_stretch_level(SEC_W),
        2,
        "two pressured windows must escalate the sticky rung to the split"
    );
    let steps = decisions_for(&[t.trace.snapshot()], "stretch-level");
    assert_eq!(
        steps,
        vec![(SEC_W.0, 1), (SEC_W.0, 2)],
        "escalation must climb one rung per window, each step traced"
    );
    // Every execution overflowed both speculative rungs, so all commits
    // landed on the (split) fallback — and the writes actually landed.
    assert_eq!(t.stats.commits_in(CommitMode::Gl), 64);
    let seen = lock.read_section(&mut t, SEC_R, &mut |a| a.read(cells.cell(0)));
    assert_eq!(seen, 64);
}
