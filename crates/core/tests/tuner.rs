//! Deterministic end-to-end check of the runtime self-tuner: under a
//! hot-key workload whose writers keep losing the commit-time reader
//! check, the tuner must raise the hot section's δ-start boost, and the
//! decision must be visible as a `tune-decision` trace event. Runs on the
//! deterministic scheduler, so the flip happens at the same virtual-time
//! point on every host.

use std::sync::Barrier;

use htm_sim::{CapacityProfile, Htm, HtmConfig, SchedulerKind};
use sprwl::{DeltaPolicy, SpRwl, SprwlConfig};
use sprwl_locks::{LockThread, RwSync, SectionId};
use sprwl_trace::{EventKind, ThreadTrace, TraceConfig};

const SEC_W: SectionId = SectionId(0);
const SEC_R: SectionId = SectionId(1);
const THREADS: usize = 4;
const OPS: usize = 600;

fn det_htm(schedule_seed: u64) -> Htm {
    Htm::new(
        HtmConfig {
            capacity: CapacityProfile::BROADWELL_SIM,
            max_threads: THREADS,
            scheduler: SchedulerKind::Deterministic { schedule_seed },
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

/// Hot-key run: even threads write the shared cell, odd threads read it
/// uninstrumented (no reader HTM, so every read raises the state flag the
/// writers' commit check trips over). δ starts at `Zero` to maximize
/// reader/writer overlap — the pathology the tuner is meant to correct.
/// Returns the hot write section's δ boost and all harvested traces.
fn run(schedule_seed: u64) -> (u64, Vec<ThreadTrace>) {
    let h = det_htm(schedule_seed);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            delta: DeltaPolicy::Zero,
            ..SprwlConfig::self_tuning()
        },
    );
    let cells = h.memory().alloc_line_aligned(64);
    h.memory().init_store(cells.cell(0), 0);
    let barrier = Barrier::new(THREADS);
    let traces = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let (h, lock, cells, barrier) = (&h, &lock, &cells, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut t = LockThread::with_trace(h.thread(tid), TraceConfig::ring(8192));
                    for _ in 0..OPS {
                        if tid % 2 == 0 {
                            lock.write_section(&mut t, SEC_W, &mut |a| {
                                let v = a.read(cells.cell(0))?;
                                a.write(cells.cell(0), v + 1)?;
                                Ok(v + 1)
                            });
                        } else {
                            lock.read_section(&mut t, SEC_R, &mut |a| {
                                // A few extra reads keep the reader's state
                                // flag up long enough to doom writers.
                                let mut acc = 0;
                                for i in 0..8 {
                                    acc += a.read(cells.cell(i * 8))?;
                                }
                                Ok(acc)
                            });
                        }
                    }
                    t.trace.snapshot()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    (lock.debug_delta_boost(SEC_W), traces)
}

fn delta_boost_decisions(traces: &[ThreadTrace]) -> Vec<(u32, u64)> {
    traces
        .iter()
        .flat_map(|t| t.events.iter())
        .filter_map(|e| match e.kind {
            EventKind::TuneDecision {
                knob: "delta-boost",
                sec,
                value,
            } => Some((sec, value)),
            _ => None,
        })
        .collect()
}

#[test]
fn tuner_raises_delta_boost_under_hot_key_reader_pressure() {
    let (boost, traces) = run(7);
    assert!(
        boost > 0,
        "the hot write section's δ boost must have been raised (got {boost})"
    );
    let decisions = delta_boost_decisions(&traces);
    assert!(
        !decisions.is_empty(),
        "every knob flip must be visible as a tune-decision trace event"
    );
    assert!(
        decisions.iter().all(|&(sec, _)| sec == SEC_W.0),
        "δ boosts must target the pressured write section: {decisions:?}"
    );
    // The boost trajectory starts at the step and only ever doubles or
    // halves, capped — i.e. the knob moved through the documented ladder.
    for &(_, v) in &decisions {
        assert!(
            v == 0 || (v % sprwl::tuner::DELTA_BOOST_STEP_NS == 0),
            "unexpected boost value {v}"
        );
        assert!(v <= sprwl::tuner::DELTA_BOOST_MAX_NS);
    }
}

#[test]
fn tuner_flip_is_deterministic() {
    let (boost_a, traces_a) = run(11);
    let (boost_b, traces_b) = run(11);
    assert_eq!(boost_a, boost_b, "same schedule seed, same final boost");
    assert_eq!(
        delta_boost_decisions(&traces_a),
        delta_boost_decisions(&traces_b),
        "same schedule seed, same decision sequence"
    );
}

#[test]
fn tuner_off_by_default_leaves_knobs_alone() {
    // Free-running scheduler: under the deterministic one registration is
    // a start barrier over `max_threads`, and this test claims one thread.
    let h = Htm::new(
        HtmConfig {
            capacity: CapacityProfile::BROADWELL_SIM,
            max_threads: 4,
            ..HtmConfig::default()
        },
        64 * 1024,
    );
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            delta: DeltaPolicy::Zero,
            ..SprwlConfig::default()
        },
    );
    assert_eq!(lock.debug_delta_boost(SEC_W), 0);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    for _ in 0..100 {
        lock.write_section(&mut t, SEC_W, &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1)?;
            Ok(v)
        });
    }
    assert_eq!(
        lock.debug_delta_boost(SEC_W),
        0,
        "default config must never self-tune"
    );
}
