//! White-box tests for the §3.3 versioned-SGL reader-bypass protocol.
//!
//! The extension the paper sketches (and omits): a reader that finds the
//! fallback lock held registers the version it observed; once the version
//! has advanced past its registration — one full writer turn has passed —
//! the reader is admitted *even though the lock is held again*, and the
//! new holder defers to it before executing. These tests drive the
//! protocol step by step through the `debug_*` hooks, then end-to-end
//! with real threads.

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::{Htm, HtmConfig};
use sprwl::{SpRwl, SprwlConfig};
use sprwl_locks::{LockThread, RwSync, SectionId};

const NONE: u64 = u64::MAX;

fn htm(threads: usize) -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: threads,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

fn versioned_cfg() -> SprwlConfig {
    SprwlConfig {
        versioned_sgl: true,
        readers_try_htm: false,
        ..SprwlConfig::default()
    }
}

#[test]
fn reader_registers_under_held_lock_and_bypasses_next_holder() {
    let h = htm(4);
    let lock = SpRwl::new(&h, versioned_cfg());
    let writer_a = h.direct(0);
    let writer_b = h.direct(1);
    const READER: usize = 2;

    // Unlocked: the reader may proceed, registering nothing.
    assert!(lock.debug_reader_may_proceed(READER, h.memory()));
    assert_eq!(lock.debug_waiting_version(READER), NONE);

    // Fallback writer A takes the lock; the reader must defer, and its
    // first failed admission check registers the observed version.
    let v1 = lock.debug_fallback_acquire(&writer_a);
    assert!(!lock.debug_reader_may_proceed(READER, h.memory()));
    assert_eq!(lock.debug_waiting_version(READER), v1);

    // Re-checking under the same holder neither admits nor re-registers.
    assert!(!lock.debug_reader_may_proceed(READER, h.memory()));
    assert_eq!(lock.debug_waiting_version(READER), v1);

    // A releases; B acquires version v1+1. A senior registration (v1 < v2)
    // now exists, so B — were it a real fallback writer — must defer.
    lock.debug_fallback_release(&writer_a);
    let v2 = lock.debug_fallback_acquire(&writer_b);
    assert!(v2 > v1, "versions must advance across acquisitions");
    assert!(lock.debug_any_senior_bypasser(v2));

    // The reader's version has been passed: it is admitted while the lock
    // is HELD, and the registration clears — B stops deferring.
    assert!(lock.debug_reader_may_proceed(READER, h.memory()));
    assert_eq!(lock.debug_waiting_version(READER), NONE);
    assert!(!lock.debug_any_senior_bypasser(v2));

    lock.debug_fallback_release(&writer_b);
}

#[test]
fn reader_wait_for_gl_returns_on_version_advance_not_release() {
    let h = htm(4);
    let lock = SpRwl::new(&h, versioned_cfg());
    let writer_a = h.direct(0);
    const READER: usize = 2;

    let v1 = lock.debug_fallback_acquire(&writer_a);
    assert!(!lock.debug_reader_may_proceed(READER, h.memory()));
    assert_eq!(lock.debug_waiting_version(READER), v1);

    // Hand the lock straight to a second holder from another thread while
    // the reader blocks in `reader_wait_for_gl`: the wait must end as soon
    // as the version advances past the registration, even though the lock
    // never goes free from the reader's point of view.
    std::thread::scope(|s| {
        let waiter = s.spawn(|| {
            lock.debug_reader_wait_for_gl(READER, h.memory());
        });
        let writer_b = h.direct(1);
        lock.debug_fallback_release(&writer_a);
        let v2 = lock.debug_fallback_acquire(&writer_b);
        assert!(v2 > v1);
        waiter.join().expect("reader wait deadlocked");
        // The reader is now admitted under the held lock.
        assert!(lock.debug_reader_may_proceed(READER, h.memory()));
        lock.debug_fallback_release(&writer_b);
    });
}

#[test]
fn plain_sgl_never_admits_under_held_lock() {
    let cfg = SprwlConfig {
        versioned_sgl: false,
        readers_try_htm: false,
        ..SprwlConfig::default()
    };
    let h = htm(4);
    let lock = SpRwl::new(&h, cfg);
    let writer = h.direct(0);
    const READER: usize = 2;

    lock.debug_fallback_acquire(&writer);
    // However often the plain-SGL reader re-checks, it stays out and
    // registers nothing.
    for _ in 0..3 {
        assert!(!lock.debug_reader_may_proceed(READER, h.memory()));
        assert_eq!(lock.debug_waiting_version(READER), NONE);
    }
    lock.debug_fallback_release(&writer);
    assert!(lock.debug_reader_may_proceed(READER, h.memory()));
}

/// End-to-end: a stream of fallback writers cannot starve readers when the
/// versioned SGL is on. Writers are driven through the real write path
/// under the TINY capacity profile, whose 4-line read budget cannot even
/// hold the commit-time reader scan — every writer capacity-aborts and
/// takes the fallback lock immediately.
#[test]
fn readers_make_progress_through_a_fallback_writer_stream() {
    use htm_sim::CapacityProfile;

    let cfg = SprwlConfig {
        versioned_sgl: true,
        readers_try_htm: false,
        ..SprwlConfig::default()
    };
    let h = Htm::new(
        HtmConfig {
            max_threads: 4,
            capacity: CapacityProfile::TINY,
            ..HtmConfig::default()
        },
        64 * 1024,
    );
    let lock = SpRwl::new(&h, cfg);
    let cell = h.memory().alloc_line_aligned(1).cell(0);
    let reads_done = AtomicU64::new(0);
    let writes_done = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Two writer threads keep the fallback lock hot.
        for tid in 0..2 {
            let (lock, h, reads_done, writes_done) = (&lock, &h, &reads_done, &writes_done);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(tid));
                while reads_done.load(Ordering::SeqCst) < 50 {
                    lock.write_section(&mut t, SectionId(1), &mut |acc| {
                        let v = acc.read(cell)?;
                        acc.write(cell, v + 1)?;
                        Ok(v)
                    });
                    writes_done.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        // Two reader threads must finish 50 sections despite the stream.
        for tid in 2..4 {
            let (lock, h, reads_done) = (&lock, &h, &reads_done);
            s.spawn(move || {
                let mut t = LockThread::new(h.thread(tid));
                for _ in 0..25 {
                    lock.read_section(&mut t, SectionId(0), &mut |acc| acc.read(cell));
                    reads_done.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });

    assert!(reads_done.load(Ordering::SeqCst) >= 50);
    assert!(writes_done.load(Ordering::SeqCst) > 0);
    lock.check_quiescent(h.memory())
        .expect("lock must be quiescent after the run");
}
