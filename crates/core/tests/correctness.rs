//! White-box and black-box correctness tests for SpRWL: uninstrumented
//! readers, commit-time reader checks, fallback interplay, fairness.

use htm_sim::{CapacityProfile, Htm, HtmConfig};
use sprwl::{SpRwl, SprwlConfig};
use sprwl_locks::{AbortCause, CommitMode, LockThread, Role, RwSync, SectionId};

fn htm(profile: CapacityProfile, threads: usize) -> Htm {
    Htm::new(
        HtmConfig {
            capacity: profile,
            max_threads: threads,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

const SEC_R: SectionId = SectionId(0);
const SEC_W: SectionId = SectionId(1);

#[test]
fn writes_become_visible_to_readers() {
    let h = htm(CapacityProfile::BROADWELL_SIM, 4);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    lock.write_section(&mut t, SEC_W, &mut |a| {
        a.write(cell, 99)?;
        Ok(0)
    });
    let v = lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
    assert_eq!(v, 99);
}

#[test]
fn small_writers_commit_in_htm() {
    let h = htm(CapacityProfile::BROADWELL_SIM, 4);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    for _ in 0..10 {
        lock.write_section(&mut t, SEC_W, &mut |a| {
            let v = a.read(cell)?;
            a.write(cell, v + 1)?;
            Ok(0)
        });
    }
    assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Htm), 10);
    assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Gl), 0);
}

#[test]
fn short_readers_use_the_optimistic_htm_path() {
    let h = htm(CapacityProfile::BROADWELL_SIM, 4);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    for _ in 0..10 {
        lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
    }
    assert_eq!(t.stats.commits_by(Role::Reader, CommitMode::Htm), 10);
    assert_eq!(t.stats.commits_by(Role::Reader, CommitMode::Unins), 0);
}

#[test]
fn long_readers_run_uninstrumented() {
    let h = htm(CapacityProfile::POWER8_SIM, 4); // 128-line read capacity
    let lock = SpRwl::with_defaults(&h);
    let region = h.memory().alloc_line_aligned(8 * 400); // 400 lines
    let mut t = LockThread::new(h.thread(0));
    let sum = lock.read_section(&mut t, SEC_R, &mut |a| {
        let mut s = 0;
        for i in 0..400 {
            s += a.read(region.cell(i * 8))?;
        }
        Ok(s)
    });
    assert_eq!(sum, 0);
    assert_eq!(t.stats.commits_by(Role::Reader, CommitMode::Unins), 1);
    assert_eq!(
        t.stats.aborts_of(AbortCause::Capacity),
        1,
        "one capacity abort, then straight to uninstrumented"
    );
}

#[test]
fn no_htm_first_goes_straight_to_uninstrumented() {
    let h = htm(CapacityProfile::BROADWELL_SIM, 4);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            ..SprwlConfig::default()
        },
    );
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));
    lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
    assert_eq!(t.stats.commits_by(Role::Reader, CommitMode::Unins), 1);
    assert_eq!(t.stats.total_aborts(), 0);
}

#[test]
fn writer_aborts_on_active_reader_then_falls_back() {
    // Pin a reader's state flag (white-box via a parked reader thread) and
    // observe that a writer cannot commit in HTM.
    let h = htm(CapacityProfile::BROADWELL_SIM, 4);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            // NoSched so the writer doesn't simply wait for the reader.
            ..SprwlConfig::no_sched()
        },
    );
    let cell = h.memory().alloc(1).cell(0);
    let reader_in = std::sync::atomic::AtomicBool::new(false);
    let release = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let (lk, hr, ri, rel) = (&lock, &h, &reader_in, &release);
        s.spawn(move || {
            let mut t = LockThread::new(hr.thread(1));
            lk.read_section(&mut t, SEC_R, &mut |a| {
                ri.store(true, std::sync::atomic::Ordering::SeqCst);
                while !rel.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                a.read(cell)
            });
        });
        while !reader_in.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Writer: every HTM attempt must hit the reader check; it ends up
        // in the GL fallback, which waits for the reader — so release the
        // reader after a moment.
        let (lk, hw) = (&lock, &h);
        let wt = s.spawn(move || {
            let mut t = LockThread::new(hw.thread(2));
            lk.write_section(&mut t, SEC_W, &mut |a| {
                a.write(cell, 5)?;
                Ok(0)
            });
            t
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(h.direct(3).load(cell), 0, "writer must not commit yet");
        release.store(true, std::sync::atomic::Ordering::SeqCst);
        let t = wt.join().unwrap();
        assert!(
            t.stats.aborts_of(AbortCause::Reader) >= 1,
            "reader-induced aborts must be classified"
        );
        assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Gl), 1);
    });
    assert_eq!(h.direct(3).load(cell), 5);
}

#[test]
fn reader_arriving_mid_writer_dooms_it_before_commit() {
    // Strong isolation: reader announcement between the writer's check and
    // its commit must doom the writer. We simulate by flagging a reader
    // from inside the writer's transaction after the body ran.
    let h = htm(CapacityProfile::BROADWELL_SIM, 4);
    let lock = SpRwl::new(&h, SprwlConfig::no_sched());
    let cell = h.memory().alloc(1).cell(0);
    let reader_in = std::sync::atomic::AtomicBool::new(false);
    let writer_tried = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // A writer that spins inside its critical section until the reader
        // has announced — so the announcement happens mid-transaction.
        let (lk, hw, ri, wt_flag) = (&lock, &h, &reader_in, &writer_tried);
        s.spawn(move || {
            let mut t = LockThread::new(hw.thread(1));
            let mut first_attempt = true;
            lk.write_section(&mut t, SEC_W, &mut |a| {
                a.write(cell, 1)?;
                if first_attempt {
                    first_attempt = false;
                    wt_flag.store(true, std::sync::atomic::Ordering::SeqCst);
                    while !ri.load(std::sync::atomic::Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                }
                Ok(0)
            });
            // The first attempt must have aborted (conflict or reader);
            // stats prove speculation failed at least once.
            assert!(t.stats.total_aborts() >= 1);
        });
        while !writer_tried.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let (lk, hr, ri) = (&lock, &h, &reader_in);
        s.spawn(move || {
            let mut t = LockThread::new(hr.thread(2));
            lk.read_section(&mut t, SEC_R, &mut |a| {
                ri.store(true, std::sync::atomic::Ordering::SeqCst);
                a.read(cell)
            });
        });
    });
    assert_eq!(h.direct(3).load(cell), 1, "writer eventually committed");
}

#[test]
fn reader_defers_to_fallback_writer() {
    let h = htm(CapacityProfile::BROADWELL_SIM, 4);
    let lock = SpRwl::with_defaults(&h);
    let cell = h.memory().alloc(1).cell(0);

    // Occupy the fallback lock directly (as a GL writer would).
    // White-box: use the lock's write path with a body too big for HTM.
    let big = h.memory().alloc_line_aligned(8 * 200); // 200 write lines >> 64
    let writer_in = std::sync::atomic::AtomicBool::new(false);
    let release = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let (lk, hw, wi, rel) = (&lock, &h, &writer_in, &release);
        s.spawn(move || {
            let mut t = LockThread::new(hw.thread(1));
            lk.write_section(&mut t, SEC_W, &mut |a| {
                for i in 0..200 {
                    a.write(big.cell(i * 8), 1)?;
                }
                a.write(cell, 42)?;
                wi.store(true, std::sync::atomic::Ordering::SeqCst);
                while !rel.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(0)
            });
            assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Gl), 1);
        });
        while !writer_in.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Reader must not observe the GL writer's in-progress stores as a
        // torn snapshot: it waits for the lock, then sees everything.
        let (lk, hr) = (&lock, &h);
        let rt = s.spawn(move || {
            let mut t = LockThread::new(hr.thread(2));
            // Disable the HTM-first path for this check via a long read.
            lk.read_section(&mut t, SEC_R, &mut |a| {
                let mut sum = a.read(cell)?;
                for i in 0..200 {
                    sum += a.read(big.cell(i * 8))?;
                }
                Ok(sum)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        release.store(true, std::sync::atomic::Ordering::SeqCst);
        let sum = rt.join().unwrap();
        assert_eq!(sum, 242, "reader saw the complete fallback write");
    });
}

#[test]
fn concurrent_bank_audit_never_sees_torn_snapshots() {
    bank_audit(SprwlConfig::default());
}

#[test]
fn concurrent_bank_audit_no_sched() {
    bank_audit(SprwlConfig::no_sched());
}

#[test]
fn concurrent_bank_audit_rwait() {
    bank_audit(SprwlConfig::rwait());
}

#[test]
fn concurrent_bank_audit_rsync() {
    bank_audit(SprwlConfig::rsync());
}

#[test]
fn concurrent_bank_audit_snzi() {
    bank_audit(SprwlConfig::with_snzi());
}

#[test]
fn concurrent_bank_audit_versioned_sgl() {
    bank_audit(SprwlConfig {
        versioned_sgl: true,
        ..SprwlConfig::default()
    });
}

#[test]
fn concurrent_bank_audit_timed_waits() {
    bank_audit(SprwlConfig {
        timed_reader_wait: true,
        ..SprwlConfig::default()
    });
}

/// The core safety property, hammered concurrently: uninstrumented readers
/// must always observe money-conserving snapshots while writers transfer.
fn bank_audit(cfg: SprwlConfig) {
    const THREADS: usize = 4;
    const ACCOUNTS: usize = 24; // 24 lines with padding below
    const OPS: usize = 250;
    const TOTAL: u64 = ACCOUNTS as u64 * 100;

    let h = htm(CapacityProfile::POWER8_SIM, THREADS);
    let lock = SpRwl::new(&h, cfg);
    // One account per line so the audit's read-set has many lines; with
    // POWER8 capacity it still fits HTM, so scale: audits read every
    // account twice through different strides to defeat caching tricks.
    let accounts: Vec<_> = (0..ACCOUNTS)
        .map(|_| h.memory().alloc_line_aligned(1).cell(0))
        .collect();
    {
        let d = h.direct(0);
        for &c in &accounts {
            d.store(c, 100);
        }
    }
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let (lk, hh, accounts) = (&lock, &h, &accounts);
            s.spawn(move || {
                let mut t = LockThread::new(hh.thread(tid));
                let mut seed = 0x9E37_79B9u64.wrapping_mul(tid as u64 + 1) | 1;
                let mut next = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                for op in 0..OPS {
                    if op % 3 == 0 {
                        let from = (next() as usize) % ACCOUNTS;
                        let to = (next() as usize) % ACCOUNTS;
                        lk.write_section(&mut t, SEC_W, &mut |a| {
                            let f = a.read(accounts[from])?;
                            if f == 0 || from == to {
                                return Ok(0);
                            }
                            let v = a.read(accounts[to])?;
                            a.write(accounts[from], f - 1)?;
                            a.write(accounts[to], v + 1)?;
                            Ok(1)
                        });
                    } else {
                        let sum = lk.read_section(&mut t, SEC_R, &mut |a| {
                            let mut s = 0;
                            for &c in accounts.iter() {
                                s += a.read(c)?;
                            }
                            Ok(s)
                        });
                        assert_eq!(sum, TOTAL, "torn read snapshot");
                    }
                }
            });
        }
    });
    let d = h.direct(0);
    let total: u64 = accounts.iter().map(|&c| d.load(c)).sum();
    assert_eq!(total, TOTAL);
}

#[test]
fn variant_labels_match_the_paper() {
    let h = htm(CapacityProfile::BROADWELL_SIM, 2);
    assert_eq!(
        SpRwl::new(&h, SprwlConfig::no_sched()).variant_label(),
        "NoSched"
    );
    assert_eq!(
        SpRwl::new(&h, SprwlConfig::rwait()).variant_label(),
        "RWait"
    );
    assert_eq!(
        SpRwl::new(&h, SprwlConfig::rsync()).variant_label(),
        "RSync"
    );
    assert_eq!(SpRwl::new(&h, SprwlConfig::full()).variant_label(), "SpRWL");
    assert_eq!(
        SpRwl::new(&h, SprwlConfig::with_snzi()).variant_label(),
        "SNZI"
    );
}
