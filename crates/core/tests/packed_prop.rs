//! Property tests for the §3.4 packed metadata word codec.

use proptest::prelude::*;
use sprwl::packed::{PackedMeta, MAX_CLOCK, MAX_TID};

fn meta_strategy() -> impl Strategy<Value = PackedMeta> {
    prop_oneof![
        Just(PackedMeta::Inactive),
        (0..=MAX_CLOCK, proptest::option::of(0..=MAX_TID))
            .prop_map(|(clock, waiting_for)| { PackedMeta::Reader { clock, waiting_for } }),
        (0..=MAX_CLOCK).prop_map(|clock| PackedMeta::Writer { clock }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode ∘ decode = id over the whole domain.
    #[test]
    fn roundtrip(meta in meta_strategy()) {
        prop_assert_eq!(PackedMeta::decode(meta.encode()), meta);
    }

    /// Zero means inactive and *only* inactive: every active encoding is
    /// non-zero (the algorithm tests `state != ⊥` with one comparison).
    #[test]
    fn only_inactive_encodes_to_zero(meta in meta_strategy()) {
        if meta == PackedMeta::Inactive {
            prop_assert_eq!(meta.encode(), 0);
        } else {
            prop_assert_ne!(meta.encode(), 0);
        }
    }

    /// The MSB distinguishes writers from everything else, so a writer
    /// check is a single sign test.
    #[test]
    fn writer_bit_is_the_msb(meta in meta_strategy()) {
        let encoded = meta.encode();
        let is_writer = matches!(meta, PackedMeta::Writer { .. });
        prop_assert_eq!(encoded >> 63 == 1, is_writer);
    }

    /// Distinct metadata encode to distinct words (injectivity), so CAS on
    /// the packed word can never confuse two logical states.
    #[test]
    fn encoding_is_injective(a in meta_strategy(), b in meta_strategy()) {
        if a != b {
            prop_assert_ne!(a.encode(), b.encode());
        }
    }
}
