//! BRAVO-biased reader admission: bias lifecycle (arm → revoke → cooldown
//! → re-arm), writer safety against bias-era readers, the tuner knob, and
//! the explicit-thread-count constructor's boundary checks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use htm_sim::{CapacityProfile, Htm, HtmConfig};
use sprwl::{SpRwl, SprwlConfig};
use sprwl_locks::{LockThread, RwSync, SectionId};

fn htm(threads: usize) -> Htm {
    Htm::new(
        HtmConfig {
            max_threads: threads,
            capacity: CapacityProfile::POWER8_SIM,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

/// Bravo config with optimistic reader HTM off, so reads take the
/// uninstrumented path and actually exercise the bias machinery.
fn bravo_cfg() -> SprwlConfig {
    SprwlConfig {
        readers_try_htm: false,
        ..SprwlConfig::with_bravo()
    }
}

const SEC_R: SectionId = SectionId(0);
const SEC_W: SectionId = SectionId(1);

const BIAS_OFF: u64 = 0;
const BIAS_ON: u64 = 1;

#[test]
fn bravo_label_and_initial_bias() {
    let h = htm(2);
    let lock = SpRwl::new(&h, SprwlConfig::with_bravo());
    assert_eq!(lock.variant_label(), "BRAVO");
    assert_eq!(lock.debug_bias_state(h.memory()), BIAS_ON);
    assert!(lock.debug_bias_enabled());
    // The SNZI backstop is always consulted at commit time in Bravo mode.
    assert!(lock.snzi_engaged(h.memory()));
}

#[test]
fn writer_revokes_bias_and_reader_rearms_after_cooldown() {
    let h = htm(2);
    let lock = SpRwl::new(&h, bravo_cfg());
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));

    // A committing writer must have revoked bias (OFF is required in its
    // transactional read-set).
    lock.write_section(&mut t, SEC_W, &mut |a| {
        let v = a.read(cell)?;
        a.write(cell, v + 1).map(|_| v)
    });
    assert_eq!(lock.debug_bias_state(h.memory()), BIAS_OFF);

    // Inside the cooldown readers stay off the fast path; eventually one
    // re-arms the bias.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while lock.debug_bias_state(h.memory()) != BIAS_ON {
        assert!(
            std::time::Instant::now() < deadline,
            "no reader re-armed bias within 5s of the revocation cooldown"
        );
        lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
    }
    assert_eq!(lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell)), 1);
    lock.check_quiescent(h.memory()).unwrap();
}

#[test]
fn disabled_bias_stays_off_after_revocation() {
    let h = htm(2);
    let lock = SpRwl::new(&h, bravo_cfg());
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(0));

    lock.debug_set_bias_enabled(false);
    lock.write_section(&mut t, SEC_W, &mut |a| {
        let v = a.read(cell)?;
        a.write(cell, v + 1).map(|_| v)
    });
    assert_eq!(lock.debug_bias_state(h.memory()), BIAS_OFF);
    // With the knob off, readers must not re-arm no matter how many pass.
    for _ in 0..200 {
        lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
        assert_eq!(lock.debug_bias_state(h.memory()), BIAS_OFF);
    }
    // Flipping the knob back eventually restores the fast path.
    lock.debug_set_bias_enabled(true);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while lock.debug_bias_state(h.memory()) != BIAS_ON {
        assert!(std::time::Instant::now() < deadline);
        lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
    }
    lock.check_quiescent(h.memory()).unwrap();
}

/// Concurrency smoke: bias-era readers must never overlap a committed
/// writer's critical section. The writer flips a canary to an invalid state
/// and back inside its section; readers assert they never observe it.
#[test]
fn bravo_readers_never_observe_torn_writer_state() {
    const THREADS: usize = 4;
    const OPS: usize = 400;
    let h = Arc::new(htm(THREADS));
    let lock = Arc::new(SpRwl::new(&h, bravo_cfg()));
    let cells = h.memory().alloc_padded(2);
    let stop = Arc::new(AtomicBool::new(false));

    let mut join = Vec::new();
    for tid in 0..THREADS {
        let h = Arc::clone(&h);
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        let cells = cells.clone();
        join.push(std::thread::spawn(move || {
            let mut t = LockThread::new(h.thread(tid));
            if tid == 0 {
                for i in 0..OPS {
                    lock.write_section(&mut t, SEC_W, &mut |a| {
                        let v = a.read(cells[0])?;
                        a.write(cells[0], v + 1)?;
                        a.write(cells[1], v + 1)?;
                        Ok(v)
                    });
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
                stop.store(true, Ordering::SeqCst);
            } else {
                let (c0, c1) = (cells[0], cells[1]);
                while !stop.load(Ordering::SeqCst) {
                    // Pack both cells into one u64 so the section interface
                    // can return the snapshot for checking outside.
                    let packed = lock.read_section(&mut t, SEC_R, &mut |a| {
                        let x = a.read(c0)?;
                        let y = a.read(c1)?;
                        Ok((x << 32) | (y & 0xFFFF_FFFF))
                    });
                    assert_eq!(
                        packed >> 32,
                        packed & 0xFFFF_FFFF,
                        "reader observed a torn writer update under BRAVO"
                    );
                }
            }
        }));
    }
    for j in join {
        j.join().unwrap();
    }
    assert_eq!(h.direct(0).load(cells[0]), OPS as u64);
    lock.check_quiescent(h.memory()).unwrap();
}

// ---- explicit-thread-count boundary checks (SpRwl::with_threads) ----

#[test]
fn with_threads_rejects_zero_and_oversubscription() {
    let h = htm(4);
    let err = SpRwl::with_threads(&h, SprwlConfig::default(), 0).unwrap_err();
    assert!(err.contains("at least one"), "unhelpful error: {err}");
    let err = SpRwl::with_threads(&h, SprwlConfig::default(), 5).unwrap_err();
    assert!(
        err.contains("5 threads") && err.contains('4'),
        "error should name both counts: {err}"
    );
    // The boundary itself is fine.
    assert!(SpRwl::with_threads(&h, SprwlConfig::default(), 4).is_ok());
}

#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_tid_fails_fast_with_a_clear_message() {
    let h = htm(4);
    // Lock sized for 2 threads on a 4-context HTM: tid 3 is registered with
    // the HTM but outside the lock's range — it must be rejected at section
    // entry, not deep inside a scheduling scan.
    let lock = SpRwl::with_threads(&h, SprwlConfig::default(), 2).unwrap();
    let cell = h.memory().alloc(1).cell(0);
    let mut t = LockThread::new(h.thread(3));
    lock.read_section(&mut t, SEC_R, &mut |a| a.read(cell));
}
