//! White-box coverage of the capacity-stretching ladder (`StretchPolicy`):
//! oversized writers escalate direct → ROT → split instead of pinning the
//! global lock per execution, the sticky per-section rung remembers the
//! escalation, and the trace shows `stretch-*` events for each rung.

use htm_sim::{CapacityProfile, Htm, HtmConfig};
use sprwl::{DeltaPolicy, SpRwl, SprwlConfig, StretchPolicy};
use sprwl_locks::{CommitMode, LockThread, RwSync, SectionId};
use sprwl_trace::{ThreadTrace, TraceConfig};

const SEC_W: SectionId = SectionId(0);
const SEC_R: SectionId = SectionId(1);

fn htm(profile: CapacityProfile) -> Htm {
    Htm::new(
        HtmConfig {
            capacity: profile,
            max_threads: 4,
            ..HtmConfig::default()
        },
        64 * 1024,
    )
}

fn stretch_cfg() -> SprwlConfig {
    SprwlConfig {
        stretch: StretchPolicy::ON,
        readers_try_htm: false,
        delta: DeltaPolicy::Zero,
        ..SprwlConfig::default()
    }
}

fn count_events(trace: &ThreadTrace, name: &str) -> usize {
    trace
        .events
        .iter()
        .filter(|e| e.kind.name() == name)
        .count()
}

/// POWER8: a writer whose *read* footprint overflows the HTM budget but
/// whose write-set fits the ROT budget must land on the ROT rung — reads
/// are untracked there, so the stretched transaction commits in hardware
/// instead of falling to the lock.
#[test]
fn oversized_reader_footprint_commits_via_rot_on_power8() {
    let h = htm(CapacityProfile::POWER8_SIM);
    let lock = SpRwl::new(&h, stretch_cfg());
    // 200 read lines > the 128-line HTM budget; 4 write lines ≤ the ROT
    // write budget.
    let cells = h.memory().alloc_line_aligned(200 * 8);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(4096));
    for round in 0..3u64 {
        let sum = lock.write_section(&mut t, SEC_W, &mut |a| {
            let mut acc = 0u64;
            for i in 0..200 {
                acc = acc.wrapping_add(a.read(cells.cell(i * 8))?);
            }
            for i in 0..4 {
                a.write(cells.cell(i * 8), round + 1)?;
            }
            Ok(acc)
        });
        let _ = sum;
    }
    assert_eq!(
        lock.debug_stretch_level(SEC_W),
        1,
        "the first capacity abort must sticky-escalate the section to ROT"
    );
    // Execution 1 pays the probe (HTM capacity abort, then ROT); later
    // executions start on the ROT rung directly.
    assert_eq!(t.stats.commits_in(CommitMode::Rot), 3);
    assert_eq!(t.stats.commits_in(CommitMode::Gl), 0);
    let trace = t.trace.snapshot();
    assert!(count_events(&trace, "stretch-rot") >= 3);
    assert_eq!(count_events(&trace, "stretch-split"), 0);
    let seen = lock.read_section(&mut t, SEC_R, &mut |a| a.read(cells.cell(0)));
    assert_eq!(seen, 3);
}

/// TINY: a write-set that overflows even the ROT budget must be split into
/// chunked sub-transactions under the fallback ticket, with the writes all
/// landing and the chunk cadence visible in the trace.
#[test]
fn oversized_write_set_splits_on_tiny() {
    let h = htm(CapacityProfile::TINY);
    let lock = SpRwl::new(&h, stretch_cfg());
    // 6 write lines: > HTM budget (2) and > ROT budget (2); auto chunking
    // uses the profile's write budget → ⌈6/2⌉ = 3 chunks.
    let cells = h.memory().alloc_line_aligned(64);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(4096));
    lock.write_section(&mut t, SEC_W, &mut |a| {
        for i in 0..6 {
            a.write(cells.cell(i * 8), 100 + i as u64)?;
        }
        // Read-own-writes through the split buffer.
        assert_eq!(a.read(cells.cell(0))?, 100);
        Ok(0)
    });
    assert_eq!(
        lock.debug_stretch_level(SEC_W),
        2,
        "overflowing the ROT budget must sticky-escalate to the split rung"
    );
    assert_eq!(t.stats.commits_in(CommitMode::Gl), 1);
    let trace = t.trace.snapshot();
    assert_eq!(count_events(&trace, "stretch-split"), 1);
    assert!(
        count_events(&trace, "stretch-chunk") >= 3,
        "6 lines over 2-line chunks must flush at least 3 sub-transactions"
    );
    // Second execution starts on the split rung: no HTM/ROT probe aborts.
    let aborts_before = t.stats.total_aborts();
    lock.write_section(&mut t, SEC_W, &mut |a| {
        for i in 0..6 {
            a.write(cells.cell(i * 8), 200 + i as u64)?;
        }
        Ok(0)
    });
    assert_eq!(
        t.stats.total_aborts(),
        aborts_before,
        "a split-rung execution must not pay speculative probe aborts"
    );
    for i in 0..6 {
        let v = lock.read_section(&mut t, SEC_R, &mut |a| a.read(cells.cell(i * 8)));
        assert_eq!(v, 200 + i as u64);
    }
}

/// Broadwell has no suspend/resume: the ladder must skip the ROT rung and
/// go straight from the capacity abort to the split.
#[test]
fn broadwell_skips_rot_rung() {
    let h = htm(CapacityProfile::BROADWELL_SIM);
    let lock = SpRwl::new(&h, stretch_cfg());
    // 70 write lines > the 64-line write budget.
    let cells = h.memory().alloc_line_aligned(70 * 8);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(4096));
    lock.write_section(&mut t, SEC_W, &mut |a| {
        for i in 0..70 {
            a.write(cells.cell(i * 8), 7)?;
        }
        Ok(0)
    });
    assert_eq!(lock.debug_stretch_level(SEC_W), 2);
    let trace = t.trace.snapshot();
    assert_eq!(
        count_events(&trace, "stretch-rot"),
        0,
        "no ROT rung without suspend/resume support"
    );
    assert_eq!(count_events(&trace, "stretch-split"), 1);
    assert_eq!(t.stats.commits_in(CommitMode::Gl), 1);
}

/// With stretching off (the default), a capacity abort still means the
/// plain uninstrumented fallback — no sticky level, no stretch events.
/// Guards the seed behaviour the ladder is layered over.
#[test]
fn stretch_off_keeps_capacity_writers_on_plain_fallback() {
    let h = htm(CapacityProfile::TINY);
    let lock = SpRwl::new(
        &h,
        SprwlConfig {
            readers_try_htm: false,
            delta: DeltaPolicy::Zero,
            ..SprwlConfig::default()
        },
    );
    let cells = h.memory().alloc_line_aligned(64);
    let mut t = LockThread::with_trace(h.thread(0), TraceConfig::ring(4096));
    for _ in 0..4 {
        lock.write_section(&mut t, SEC_W, &mut |a| {
            for i in 0..6 {
                a.write(cells.cell(i * 8), 1)?;
            }
            Ok(0)
        });
    }
    assert_eq!(lock.debug_stretch_level(SEC_W), 0);
    assert_eq!(t.stats.commits_in(CommitMode::Gl), 4);
    let trace = t.trace.snapshot();
    assert_eq!(count_events(&trace, "stretch-rot"), 0);
    assert_eq!(count_events(&trace, "stretch-split"), 0);
}

/// `SprwlConfig::stretching()` is the documented way to turn the ladder on.
#[test]
fn stretching_constructor_enables_the_ladder() {
    let cfg = SprwlConfig::stretching();
    assert!(cfg.stretch.enabled);
    assert!(cfg.stretch.rot_attempts > 0);
    assert!(!SprwlConfig::default().stretch.enabled);
}
