//! # sprwl — Speculative Read-Write Locks
//!
//! A from-scratch Rust reproduction of **SpRWL** (Issa, Romano, Lopes:
//! *“Speculative Read Write Locks”*, Middleware ’18): an HTM-based
//! read-write lock whose **readers run uninstrumented** — outside any
//! hardware transaction — and are therefore immune to HTM capacity limits
//! and interrupt-induced aborts, while writers execute speculatively and
//! commit only in the absence of active readers.
//!
//! ## How it works (paper §3)
//!
//! * **Base algorithm** — readers announce themselves in a per-thread
//!   `state` array (one cache line each) with a fence; writers, running as
//!   hardware transactions, scan that array *at commit time* and abort if
//!   any reader is active. Strong isolation closes the race: a reader's
//!   announcement store dooms any writer that already scanned.
//! * **Reader synchronization** — readers defer to active writers
//!   (fairness: a newly arrived reader can never abort an already-running
//!   writer) and join already-waiting readers to align their start times.
//! * **Writer synchronization** — a writer aborted by readers delays its
//!   retry so its re-execution finishes `δ` after the last reader's
//!   predicted end, maximizing overlap while still committing cleanly.
//! * **Optimizations (§3.4)** — readers optimistically try HTM first;
//!   SNZI-based reader tracking (one line in the writer's read-set instead
//!   of one per thread); timed reader waits; a packed 64-bit metadata word
//!   ([`packed::PackedMeta`]); and the §3.3 versioned-SGL anti-starvation
//!   extension the authors describe but omit.
//!
//! The lock implements [`sprwl_locks::RwSync`], the same interface as every
//! baseline in `sprwl-locks`, so it is a drop-in replacement.
//!
//! ## Example
//!
//! ```
//! use htm_sim::{Htm, HtmConfig};
//! use sprwl::SpRwl;
//! use sprwl_locks::{LockThread, RwSync, SectionId};
//!
//! let htm = Htm::new(HtmConfig::default(), 4096);
//! let lock = SpRwl::with_defaults(&htm);
//! let cell = htm.memory().alloc(1).cell(0);
//!
//! let mut t = LockThread::new(htm.thread(0));
//! lock.write_section(&mut t, SectionId(0), &mut |a| {
//!     let v = a.read(cell)?;
//!     a.write(cell, v + 1)?;
//!     Ok(v + 1)
//! });
//! let seen = lock.read_section(&mut t, SectionId(1), &mut |a| a.read(cell));
//! assert_eq!(seen, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adaptive;
mod admission;
mod composed;
pub mod config;
pub mod estimator;
mod lock;
pub mod packed;
mod reader;
pub mod reader_table;
mod stretch;
pub mod tuner;
mod writer;

pub use composed::{InnerMode, SpRwlPair};
pub use config::{DeltaPolicy, ReaderTracking, Scheduling, SprwlConfig, StretchPolicy};
pub use estimator::DurationEstimator;
pub use lock::SpRwl;
