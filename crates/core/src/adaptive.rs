//! Self-tuning reader tracking — the paper's §5 future work, implemented.
//!
//! Fig. 6 shows that SNZI-based reader tracking wins for long readers
//! (one line in the writer's commit-time read-set instead of one per
//! thread) but loses for short readers (O(log n) arrive/depart overhead).
//! The authors propose "self-tuning techniques to automatically
//! enable/disable the use of SNZI"; this module provides exactly that as
//! [`crate::ReaderTracking::Adaptive`].
//!
//! ## Soundness argument
//!
//! Readers *always* maintain their per-thread state flag (the scheduling
//! scans need it in every mode), so a commit-time **flags scan is correct
//! in every mode**. The SNZI query is correct iff every currently active
//! reader also registered in the SNZI. Hence:
//!
//! * switching **to flags** is instantaneous — active SNZI-era readers
//!   also hold their flags, so writers that scan see them;
//! * switching **to SNZI** goes through a transition state: new readers
//!   start registering in the SNZI immediately, writers keep scanning
//!   flags, and the switch completes only after every reader that was
//!   active at the start of the transition has drained (each is waited on
//!   at most once, with a timeout that safely aborts the transition).
//!
//! The mode word lives in simulated memory and is read inside writer
//! transactions, so a concurrent mode switch dooms in-flight writers —
//! they simply retry under the new mode.

use htm_sim::{clock, Direct, SimMemory};
use sprwl_locks::LockThread;

use crate::lock::{SpRwl, STATE_READER};

/// Mode-word values.
pub(crate) const MODE_FLAGS: u64 = 0;
pub(crate) const MODE_SNZI: u64 = 1;
pub(crate) const MODE_TRANS_TO_SNZI: u64 = 2;

/// Reader-to-writer duration ratio above which SNZI is engaged.
const RATIO_HI: u64 = 8;
/// Ratio below which the tracker reverts to flags.
const RATIO_LO: u64 = 2;
/// Minimum interval between switches, ns (hysteresis). Shared with the
/// runtime self-tuner, so both switch initiators honour one clock.
pub(crate) const SWITCH_COOLDOWN_NS: u64 = 5_000_000;
/// How long the transition waits for one pre-transition reader, ns.
const DRAIN_TIMEOUT_NS: u64 = 2_000_000;

/// What a reader registered with — returned by `flag_reader`, consumed by
/// `unflag_reader`, so departures always balance arrivals even across mode
/// switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaderReg {
    pub(crate) in_snzi: bool,
    /// Bravo fast path: the visible-table slot this reader published in.
    pub(crate) vslot: Option<usize>,
    /// Bravo: whether this arrival re-armed the bias word (traced).
    pub(crate) rearmed: bool,
}

impl ReaderReg {
    pub(crate) fn flags() -> Self {
        Self {
            in_snzi: false,
            vslot: None,
            rearmed: false,
        }
    }

    pub(crate) fn snzi() -> Self {
        Self {
            in_snzi: true,
            vslot: None,
            rearmed: false,
        }
    }

    pub(crate) fn bravo_visible(vslot: usize, rearmed: bool) -> Self {
        Self {
            in_snzi: false,
            vslot: Some(vslot),
            rearmed,
        }
    }

    pub(crate) fn bravo_snzi(rearmed: bool) -> Self {
        Self {
            in_snzi: true,
            vslot: None,
            rearmed,
        }
    }
}

impl SpRwl {
    /// The current tracking mode word (static modes never consult it).
    pub(crate) fn mode(&self, mem: &SimMemory) -> u64 {
        self.readers.mode(mem)
    }

    /// Records per-role durations and, on the sampling thread, evaluates
    /// the switching policy. Called at the end of every critical section.
    pub(crate) fn adapt_after_section(&self, t: &mut LockThread<'_>, is_reader: bool, dur: u64) {
        if self.readers.mode_cell.is_none() || t.tid() != 0 {
            return;
        }
        let slot = if is_reader {
            &self.avg_read_ns
        } else {
            &self.avg_write_ns
        };
        let old = slot.load();
        slot.store(if old == 0 { dur } else { (dur + 3 * old) / 4 }.max(1));
        self.maybe_switch(t);
    }

    fn maybe_switch(&self, t: &mut LockThread<'_>) {
        let now = clock::now();
        if now.saturating_sub(self.last_switch_ns.load()) < SWITCH_COOLDOWN_NS {
            return;
        }
        let read = self.avg_read_ns.load();
        let write = self.avg_write_ns.load().max(1);
        if read == 0 {
            return;
        }
        let ratio = read / write;
        let mem = t.ctx.htm().memory();
        let mode = self.mode(mem);
        let d = t.ctx.direct();
        if mode == MODE_FLAGS && ratio >= RATIO_HI {
            self.last_switch_ns.store(now);
            self.switch_to_snzi(&d, t.tid(), mem);
        } else if mode == MODE_SNZI && ratio <= RATIO_LO {
            self.last_switch_ns.store(now);
            // Instantaneous and safe: flags are always maintained.
            let cell = self.readers.mode_cell.expect("adaptive");
            let _ = d.compare_exchange(cell, MODE_SNZI, MODE_FLAGS);
        }
    }

    /// Flags → SNZI: enter the transition state, drain pre-transition
    /// readers (bounded per reader), then complete — or roll back on
    /// timeout, which is always safe because writers scan flags throughout
    /// the transition.
    pub(crate) fn switch_to_snzi(&self, d: &Direct<'_>, me: usize, mem: &SimMemory) {
        let cell = self.readers.mode_cell.expect("adaptive");
        if d.compare_exchange(cell, MODE_FLAGS, MODE_TRANS_TO_SNZI)
            .is_err()
        {
            return;
        }
        // Wait (once each, with a deadline) for readers that might predate
        // the transition and therefore hold only flags.
        let deadline = clock::now() + DRAIN_TIMEOUT_NS;
        for i in 0..self.n {
            if i == me {
                continue;
            }
            let mut spin = clock::SpinWait::new();
            while mem.peek(self.readers.state[i]) == STATE_READER && clock::now() < deadline {
                spin.snooze();
            }
            if mem.peek(self.readers.state[i]) == STATE_READER {
                // Timed out: roll the transition back (safe — writers have
                // been scanning flags all along) and try again later.
                let _ = d.compare_exchange(cell, MODE_TRANS_TO_SNZI, MODE_FLAGS);
                return;
            }
        }
        let _ = d.compare_exchange(cell, MODE_TRANS_TO_SNZI, MODE_SNZI);
    }

    /// Diagnostic: whether the adaptive tracker currently queries the SNZI
    /// at commit time.
    pub fn snzi_engaged(&self, mem: &SimMemory) -> bool {
        match self.cfg.reader_tracking {
            crate::config::ReaderTracking::Flags => false,
            crate::config::ReaderTracking::Snzi => true,
            crate::config::ReaderTracking::Adaptive => self.mode(mem) == MODE_SNZI,
            // Bravo always queries the SNZI at commit (it is the backstop);
            // the bias word is the extra, cheaper structure on top.
            crate::config::ReaderTracking::Bravo => true,
        }
    }
}
