//! The reader admission/tracking table — every structure writers consult
//! to detect active readers, behind one abstraction.
//!
//! Historically the lock object owned three loose pieces (the per-thread
//! `state` flag array, the optional SNZI, the adaptive mode word) and the
//! read/write paths dispatched on [`ReaderTracking`] inline. This module
//! gathers them into [`ReaderTable`] and adds the fourth tracking scheme,
//! **BRAVO-style biased admission** (Dice & Kogan, arXiv 1810.01553),
//! composed with the SNZI as its revocation backstop:
//!
//! * While **bias is armed** (`BIAS_ON`), an arriving reader publishes
//!   itself with a *single CAS* into a hashed visible-readers table —
//!   one padded cache line, no SNZI tree walk, no shared counter — and
//!   re-checks the bias word. O(1) arrival regardless of thread count.
//! * A **writer** must observe `BIAS_OFF` *inside its transaction* to
//!   commit. When bias is armed it first **revokes**: CAS the bias word
//!   `ON → REVOKING` (untracked, outside the transaction), wait for every
//!   occupied visible slot to drain, then publish `OFF`. The drain cost is
//!   proportional to *active* readers (occupied slots), not registered
//!   threads; the commit-time read-set is two lines (bias word + SNZI
//!   root) instead of one per registered thread.
//! * With **bias off**, readers fall back to the SNZI; after a cooldown
//!   they may re-arm bias with a CAS, whose untracked store dooms any
//!   subscribed in-flight writer — the same strong-isolation argument that
//!   makes the uninstrumented readers safe in the first place.
//!
//! ## Soundness of the three-state bias word
//!
//! SpRWL has no writer mutual exclusion on the speculative path, so a
//! plain on/off bias bit would be unsound: a writer could read `off`
//! in-transaction and commit while a bias-era reader (visible-table only,
//! not in the SNZI) is still inside its critical section. The `REVOKING`
//! state closes that window — `OFF` is only ever published by a revoker
//! that has *finished draining* the visible table, so "bias read `OFF`
//! inside the transaction" implies "no bias-era reader is active", and the
//! SNZI query covers everyone else. A reader whose publish CAS races the
//! revocation re-checks the bias word (SeqCst total order: it either sees
//! `ON`, in which case the revoker's later drain scan waits on its slot,
//! or sees the transition and withdraws to the SNZI).
//!
//! Per-thread state flags are still maintained in **every** mode: the
//! scheduling scans (`readers_wait`, `writer_wait`) peek them outside
//! transactions, and they keep the adaptive drain protocol sound.

use htm_sim::{clock, CellId, Direct, SimMemory, Tx, TxResult};
use snzi::Snzi;
use sprwl_locks::ABORT_READER;

use crate::adaptive::{ReaderReg, MODE_SNZI, MODE_TRANS_TO_SNZI};
use crate::config::ReaderTracking;
use crate::lock::{Slot, STATE_EMPTY, STATE_READER};

/// Bias word values (Bravo tracking only).
pub(crate) const BIAS_OFF: u64 = 0;
pub(crate) const BIAS_ON: u64 = 1;
pub(crate) const BIAS_REVOKING: u64 = 2;

/// Base re-arm cooldown after a revocation, ns. Short enough that
/// read-dominated phases re-bias quickly; long enough that a writer burst
/// revokes once, not per writer.
pub(crate) const BIAS_REARM_COOLDOWN_NS: u64 = 200_000;

/// Ceiling for the adaptive re-arm cooldown, ns (see [`ReaderTable::revoke_bias`]).
pub(crate) const BIAS_REARM_COOLDOWN_MAX_NS: u64 = 20_000_000;

/// Geometric growth factor of the re-arm cooldown while armed phases keep
/// dying young.
const BIAS_BACKOFF_FACTOR: u64 = 4;

/// An armed phase that survived at least this long (ns) before a writer
/// tore it down served a genuine read-dominated stretch: the next
/// revocation starts over from the base cooldown. Shorter-lived phases
/// mean writer traffic is steady and re-arming was wasted work — the
/// cooldown multiplies by [`BIAS_BACKOFF_FACTOR`].
const BIAS_ARMED_WORTH_NS: u64 = 1_000_000;

/// Visible-readers table slots per registered thread (then rounded up to a
/// power of two). Oversizing keeps hash collisions — which demote a reader
/// to the SNZI path — rare.
const VISIBLE_SLOTS_PER_THREAD: usize = 4;

/// Every reader-tracking structure writers consult, plus the per-thread
/// state flags the scheduling scans peek.
#[derive(Debug)]
pub(crate) struct ReaderTable {
    pub(crate) n: usize,
    pub(crate) tracking: ReaderTracking,
    /// Per-thread state flags (⊥/READER/WRITER), each on its own simulated
    /// cache line so writers' commit-time scans conflict only with the
    /// owner's announcements.
    pub(crate) state: Vec<CellId>,
    /// SNZI: sole tracking in `Snzi` mode, switch target in `Adaptive`,
    /// revocation backstop in `Bravo`.
    pub(crate) snzi: Option<Snzi>,
    /// Adaptive tracking: the mode word, in simulated memory so writers
    /// subscribe to it. `None` for non-adaptive tracking.
    pub(crate) mode_cell: Option<CellId>,
    /// Bravo: the cell holding the three-state bias word — the SNZI
    /// root, whose client-tag bits carry the bias so writers subscribe to
    /// bias and backstop count in a single line.
    bias_cell: Option<CellId>,
    /// Bravo: the hashed visible-readers table, one padded line per slot.
    /// A slot holds `tid + 1`, or 0 when free.
    visible: Vec<CellId>,
    /// Tuner knob: when 0, readers stop re-arming bias (writer-pressure
    /// response); revocation then makes `BIAS_OFF` sticky.
    bias_enabled: Slot,
    /// Earliest instant (ns) readers may re-arm bias after a revocation.
    rearm_at: Slot,
    /// The adaptive re-arm cooldown currently in force, ns: multiplies by
    /// [`BIAS_BACKOFF_FACTOR`] whenever an armed phase dies younger than
    /// [`BIAS_ARMED_WORTH_NS`] (up to [`BIAS_REARM_COOLDOWN_MAX_NS`]),
    /// resets to the base when one survives — see [`Self::revoke_bias`].
    rearm_cooldown_ns: Slot,
    /// Instant (ns) a reader last re-armed the bias.
    rearmed_at: Slot,
}

impl ReaderTable {
    /// Allocates the tracking structures for `n` threads in `mem`.
    pub(crate) fn new(mem: &SimMemory, n: usize, tracking: ReaderTracking) -> Self {
        let snzi = match tracking {
            ReaderTracking::Flags => None,
            ReaderTracking::Snzi | ReaderTracking::Adaptive | ReaderTracking::Bravo => {
                Some(Snzi::new(mem, n))
            }
        };
        let mode_cell = match tracking {
            ReaderTracking::Adaptive => Some(mem.alloc_line_aligned(1).cell(0)),
            _ => None,
        };
        let (bias_cell, visible) = match tracking {
            ReaderTracking::Bravo => {
                // The bias word lives in the SNZI root's client-tag bits
                // (see crate `snzi`): the writer's commit-time check —
                // "bias verifiably OFF and no backstop readers" — is then
                // one subscribed line and one compare against zero, the
                // same footprint as plain SNZI tracking.
                let cell = snzi.as_ref().expect("bravo snzi backstop").root_cell();
                mem.init_store(cell, BIAS_ON << snzi::ROOT_TAG_SHIFT);
                let slots = (n.max(1) * VISIBLE_SLOTS_PER_THREAD).next_power_of_two();
                (Some(cell), mem.alloc_padded(slots))
            }
            _ => (None, Vec::new()),
        };
        Self {
            n,
            tracking,
            state: mem.alloc_padded(n),
            snzi,
            mode_cell,
            bias_cell,
            visible,
            bias_enabled: Slot::new(1),
            rearm_at: Slot::new(0),
            rearm_cooldown_ns: Slot::new(BIAS_REARM_COOLDOWN_NS),
            rearmed_at: Slot::new(0),
        }
    }

    /// The visible-table slot thread `tid` hashes to (Fibonacci hashing —
    /// the table length is a power of two).
    #[inline]
    fn vslot_of(&self, tid: usize) -> usize {
        ((tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.visible.len() - 1)
    }

    /// The adaptive mode word (callers guarantee adaptive tracking).
    pub(crate) fn mode(&self, mem: &SimMemory) -> u64 {
        match self.mode_cell {
            Some(cell) => mem.peek(cell),
            None => unreachable!("mode() is only called in adaptive tracking"),
        }
    }

    /// Untracked peek of the Bravo bias word (callers guarantee Bravo).
    pub(crate) fn bias_state(&self, mem: &SimMemory) -> u64 {
        snzi::root_tag(mem.peek(self.bias_cell.expect("bravo tracking")))
    }

    /// Tuner knob: allow or forbid readers from re-arming bias.
    pub(crate) fn set_bias_enabled(&self, on: bool) {
        self.bias_enabled.store(u64::from(on));
    }

    /// Whether readers currently may re-arm bias (the tuner knob).
    pub(crate) fn bias_enabled(&self) -> bool {
        self.bias_enabled.load() != 0
    }

    /// Announces thread `tid` as an active reader. The untracked store to
    /// the state line (and/or the SNZI root / bias word, depending on
    /// mode) is what dooms in-flight writers that already passed their
    /// reader check — the paper's strong-isolation argument.
    pub(crate) fn arrive(&self, d: &Direct<'_>, tid: usize) -> ReaderReg {
        // The state flag is always maintained: the scheduling scans (which
        // run outside transactions) use it to find reader end times, and it
        // keeps a flags scan correct in every tracking mode — the key to
        // sound adaptive switching.
        //
        // Ordering matters in adaptive mode: the flag is stored *before*
        // the mode is sampled. In the SeqCst total order, either this store
        // precedes the transition controller's drain scan (which then waits
        // for us), or our mode sample follows its mode CAS (and we register
        // in the SNZI too). Sampling first would open a window where a
        // reader is visible in neither structure the writers check.
        d.store(self.state[tid], STATE_READER);
        match self.tracking {
            ReaderTracking::Flags => ReaderReg::flags(),
            ReaderTracking::Snzi => {
                self.snzi.as_ref().expect("snzi tracking").arrive(d, tid);
                ReaderReg::snzi()
            }
            ReaderTracking::Adaptive => {
                let mode = self.mode(d.htm().memory());
                if mode == MODE_SNZI || mode == MODE_TRANS_TO_SNZI {
                    self.snzi.as_ref().expect("snzi tracking").arrive(d, tid);
                    ReaderReg::snzi()
                } else {
                    ReaderReg::flags()
                }
            }
            ReaderTracking::Bravo => self.arrive_bravo(d, tid),
        }
    }

    /// Bravo arrival: single-CAS publish while bias is armed, SNZI
    /// backstop otherwise (with an opportunistic re-arm after cooldown).
    fn arrive_bravo(&self, d: &Direct<'_>, tid: usize) -> ReaderReg {
        let mem = d.htm().memory();
        let bias = self.bias_cell.expect("bravo tracking");
        let mut rearmed = false;
        let word = mem.peek(bias);
        let mut bias_on = snzi::root_tag(word) == BIAS_ON;
        if !bias_on
            && snzi::root_tag(word) == BIAS_OFF
            && self.bias_enabled()
            && clock::now() >= self.rearm_at.load()
            && d.compare_exchange(bias, word, snzi::with_root_tag(word, BIAS_ON))
                .is_ok()
        {
            // Re-armed: the untracked store dooms subscribed in-flight
            // writers, so none can commit against our fast-path publish.
            // (Opportunistic single-shot CAS: losing to concurrent backstop
            // count traffic just means no re-arm this arrival.)
            self.rearmed_at.store(clock::now());
            rearmed = true;
            bias_on = true;
        }
        if bias_on {
            let slot = self.vslot_of(tid);
            if d.compare_exchange(self.visible[slot], 0, tid as u64 + 1)
                .is_ok()
            {
                if snzi::root_tag(mem.peek(bias)) == BIAS_ON {
                    // Published under an armed bias: any revocation that
                    // starts after this point must drain our slot.
                    return ReaderReg::bravo_visible(slot, rearmed);
                }
                // A revocation began between our publish and the re-check;
                // its drain scan may already have passed our slot. Withdraw
                // and fall back to the SNZI, which the writer also checks.
                d.store(self.visible[slot], 0);
            }
        }
        self.snzi
            .as_ref()
            .expect("bravo snzi backstop")
            .arrive(d, tid);
        ReaderReg::bravo_snzi(rearmed)
    }

    /// Withdraws the reader announcement (balancing whatever `arrive`
    /// registered, even across a mode switch or bias revocation).
    pub(crate) fn depart(&self, d: &Direct<'_>, tid: usize, reg: ReaderReg) {
        d.store(self.state[tid], STATE_EMPTY);
        if let Some(slot) = reg.vslot {
            d.store(self.visible[slot], 0);
        }
        if reg.in_snzi {
            self.snzi.as_ref().expect("snzi tracking").depart(d, tid);
        }
    }

    /// The commit-time reader check (W-checkR), run inside the writer's
    /// transaction just before commit. Aborts with [`ABORT_READER`] if any
    /// concurrent reader is (or may be) active.
    pub(crate) fn check_at_commit(&self, tx: &mut Tx<'_>, me: usize) -> TxResult<()> {
        let use_snzi = match self.tracking {
            ReaderTracking::Flags => false,
            ReaderTracking::Snzi => true,
            ReaderTracking::Adaptive => {
                // Subscribing the mode word means a concurrent switch dooms
                // this transaction — it retries under the new mode.
                let mode = tx.read(self.mode_cell.expect("adaptive"))?;
                mode == MODE_SNZI
            }
            ReaderTracking::Bravo => {
                // Commit requires bias verifiably OFF *in the read-set*:
                // only a revoker that fully drained the visible table
                // publishes OFF, so no bias-era reader can be active. The
                // bias tag shares the SNZI root word with the backstop
                // count, so one subscribed line and one compare against
                // zero covers both — the exact footprint of plain SNZI
                // tracking, independent of the registered thread count.
                let word = self
                    .snzi
                    .as_ref()
                    .expect("bravo snzi backstop")
                    .query_word(tx)?;
                if word != 0 {
                    return tx.abort(ABORT_READER);
                }
                return Ok(());
            }
        };
        if use_snzi {
            if self.snzi.as_ref().expect("snzi tracking").query(tx)? {
                return tx.abort(ABORT_READER);
            }
            return Ok(());
        }
        // Flags scan: correct in every mode, since readers always maintain
        // their state flags.
        for i in 0..self.n {
            if i != me && tx.read(self.state[i])? == STATE_READER {
                return tx.abort(ABORT_READER);
            }
        }
        Ok(())
    }

    /// Whether any reader other than `me` is currently active (untracked
    /// probe; used by the fallback path's `wait_for_readers`).
    pub(crate) fn any_active(&self, d: &Direct<'_>, me: usize) -> bool {
        let mem = d.htm().memory();
        match self.tracking {
            ReaderTracking::Snzi => self
                .snzi
                .as_ref()
                .expect("snzi tracking")
                .query_untracked(d),
            ReaderTracking::Bravo => {
                self.snzi
                    .as_ref()
                    .expect("bravo snzi backstop")
                    .query_untracked(d)
                    || self.visible.iter().any(|&c| mem.peek(c) != 0)
            }
            // Flags are maintained in every mode, so the scan is always
            // correct (and runs outside transactions, so it costs no
            // footprint).
            ReaderTracking::Flags | ReaderTracking::Adaptive => (0..self.n)
                .filter(|&i| i != me)
                .any(|i| mem.peek(self.state[i]) == STATE_READER),
        }
    }

    /// Bravo revocation, run **untracked** by a writer before its
    /// speculative attempts (and by the fallback path): flips bias
    /// `ON → REVOKING`, waits for every occupied visible slot to drain,
    /// then publishes `OFF` and starts the re-arm cooldown.
    ///
    /// Returns `(occupied, scanned)` drain statistics when a revocation
    /// actually ran, `None` when bias was already off. The drain cost —
    /// the only O(·) work on the writer side — is proportional to occupied
    /// slots (*active* readers), never to registered threads: empty slots
    /// cost one peek each and the table is a fixed small multiple of the
    /// thread count.
    pub(crate) fn revoke_bias(&self, d: &Direct<'_>) -> Option<(u64, u64)> {
        let bias = self.bias_cell.expect("bravo tracking");
        let mem = d.htm().memory();
        // Win the revocation, or wait out one already in flight: the
        // winner's drain covers every joiner, so a joiner re-scanning the
        // table would only multiply the cost. The CAS retries only while
        // the tag is ON — backstop count traffic on the shared root word
        // can fail a CAS without changing the tag.
        loop {
            let w = mem.peek(bias);
            match snzi::root_tag(w) {
                BIAS_OFF => return None,
                BIAS_REVOKING => {
                    let mut spin = clock::SpinWait::new();
                    while snzi::root_tag(mem.peek(bias)) == BIAS_REVOKING {
                        spin.snooze();
                    }
                    // The winner published OFF (or a reader has already
                    // re-armed; the caller's next cycle handles that).
                    return None;
                }
                _ => {
                    if d.compare_exchange(bias, w, snzi::with_root_tag(w, BIAS_REVOKING))
                        .is_ok()
                    {
                        break;
                    }
                }
            }
        }
        let mut occupied = 0u64;
        for &slot in &self.visible {
            if mem.peek(slot) != 0 {
                occupied += 1;
                let mut spin = clock::SpinWait::new();
                while mem.peek(slot) != 0 {
                    spin.snooze();
                }
            }
        }
        // Adaptive cooldown, keyed to how long the armed phase survived:
        // a re-arm torn down almost immediately bought the readers nothing
        // — writer traffic is steady, so the cooldown grows geometrically
        // and the thrash rate decays. An armed phase that lived long
        // enough served a read-dominated stretch, and the next revocation
        // starts over from the base cooldown.
        let now = clock::now();
        let armed_ns = now.saturating_sub(self.rearmed_at.load());
        let next = if armed_ns < BIAS_ARMED_WORTH_NS {
            (self.rearm_cooldown_ns.load() * BIAS_BACKOFF_FACTOR).min(BIAS_REARM_COOLDOWN_MAX_NS)
        } else {
            BIAS_REARM_COOLDOWN_NS
        };
        self.rearm_cooldown_ns.store(next);
        self.rearm_at.store(now + next);
        // CAS, not store: never stomp a re-armer's `ON` back to `OFF`
        // without a drain between them. Retried only while the tag still
        // reads REVOKING (count traffic can fail the CAS spuriously).
        loop {
            let w = mem.peek(bias);
            if snzi::root_tag(w) != BIAS_REVOKING {
                break;
            }
            if d.compare_exchange(bias, w, snzi::with_root_tag(w, BIAS_OFF))
                .is_ok()
            {
                break;
            }
        }
        Some((occupied, self.visible.len() as u64))
    }

    /// Test hook (via `SpRwl::debug_arm_bias`): arm the bias immediately,
    /// ignoring the re-arm cooldown and the `bias_enabled` knob. The CAS
    /// retries across count traffic but never stomps a revocation in
    /// flight.
    pub(crate) fn force_arm_bias(&self, d: &Direct<'_>) {
        let bias = self.bias_cell.expect("bravo tracking");
        let mem = d.htm().memory();
        loop {
            let w = mem.peek(bias);
            if snzi::root_tag(w) != BIAS_OFF {
                return;
            }
            if d.compare_exchange(bias, w, snzi::with_root_tag(w, BIAS_ON))
                .is_ok()
            {
                self.rearmed_at.store(clock::now());
                return;
            }
        }
    }

    /// Quiescence invariants of the tracking structures: all state flags
    /// down, the SNZI balanced, the visible table empty, no revocation in
    /// flight.
    pub(crate) fn check_quiescent(&self, mem: &SimMemory) -> Result<(), String> {
        for i in 0..self.n {
            let s = mem.peek(self.state[i]);
            if s != STATE_EMPTY {
                return Err(format!("state[{i}] is {s} (not EMPTY) at quiescence"));
            }
        }
        if let Some(snzi) = &self.snzi {
            snzi.check_balanced(mem)?;
        }
        for (i, &slot) in self.visible.iter().enumerate() {
            let v = mem.peek(slot);
            if v != 0 {
                return Err(format!(
                    "visible[{i}] still holds reader {} at quiescence",
                    v - 1
                ));
            }
        }
        if let Some(bias) = self.bias_cell {
            if snzi::root_tag(mem.peek(bias)) == BIAS_REVOKING {
                return Err("bias revocation still in flight at quiescence".into());
            }
        }
        Ok(())
    }
}
