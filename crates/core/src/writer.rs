//! The SpRWL write path: speculative execution with the commit-time reader
//! check (§3.1, Alg. 1), writer advertisement for reader synchronization
//! (§3.2.1, Alg. 2) and the timed retry of writer synchronization
//! (§3.2.2, Alg. 3).

use htm_sim::clock;
use htm_sim::{Abort, TxKind};
use sprwl_locks::{CommitMode, LockThread, Role, SectionBody, SectionId, ABORT_READER};
use sprwl_trace::{EventKind, TraceBuffer, TraceRole};

use crate::lock::{SpRwl, NONE, STATE_EMPTY, STATE_READER, STATE_WRITER};
use crate::reader::note_abort;

impl SpRwl {
    pub(crate) fn do_write(
        &self,
        t: &mut LockThread<'_>,
        sec: SectionId,
        f: SectionBody<'_>,
    ) -> u64 {
        let start = clock::now();
        let tid = t.tid();
        self.check_tid(tid);
        let mem = t.ctx.htm().memory();
        t.trace.push(EventKind::SectionBegin {
            role: TraceRole::Writer,
            sec: sec.0,
        });

        // Alg. 2: advertise ourselves so newly arriving readers defer to us
        // (fairness: they cannot abort an already-active writer). The flag
        // stays up across retries and the fallback — the paper calls this
        // out explicitly — and is cleared once the section commits.
        let advertise = self.cfg.scheduling.readers_wait();
        if advertise {
            self.clock_w[tid].store(self.est.end_time(sec));
            t.ctx.direct().store(self.readers.state[tid], STATE_WRITER);
        }

        let mut attempts = 0u32;
        let committed = loop {
            self.fallback.wait_until_free(mem);
            // BRAVO: the commit-time check requires the bias word verifiably
            // OFF inside the transaction, so revoke (untracked, draining the
            // visible-readers table) before attempting. One peek when bias
            // is already off; drain cost proportional to *active* readers.
            if self.cfg.reader_tracking == crate::config::ReaderTracking::Bravo {
                if let Some((occupied, scanned)) = self.readers.revoke_bias(&t.ctx.direct()) {
                    t.trace.push(EventKind::BiasRevoke { occupied, scanned });
                }
            }
            attempts += 1;
            t.trace.push(EventKind::TxAttempt {
                role: TraceRole::Writer,
                attempt: attempts,
            });
            match t.ctx.txn(TxKind::Htm, |tx| {
                self.fallback.subscribe(tx)?;
                let t0 = clock::now();
                let r = f(tx)?;
                let dur = clock::now() - t0;
                // W-checkR: commit only in the absence of active readers.
                self.check_for_readers(tx, tid)?;
                let fp = (tx.read_footprint() as u32, tx.write_footprint() as u32);
                Ok((r, dur, fp))
            }) {
                Ok((r, dur, (read_fp, write_fp))) => {
                    self.est.record(tid, sec, dur);
                    self.adapt_after_section(t, false, dur);
                    t.trace.push(EventKind::TxCommit {
                        mode: CommitMode::Htm.label(),
                        read_fp,
                        write_fp,
                    });
                    break Some(r);
                }
                Err(abort) => {
                    note_abort(t, abort, TxKind::Htm);
                    self.tuner_note_abort(sec, abort, TxKind::Htm);
                    if !self.cfg.writer_retry.should_retry(attempts, abort) {
                        break None;
                    }
                    // Alg. 3: after a reader-induced abort, delay the retry
                    // so the re-execution finishes δ after the last reader.
                    if self.cfg.scheduling.writers_wait() && abort == Abort::Explicit(ABORT_READER)
                    {
                        self.writer_wait(tid, sec, mem, &mut t.trace);
                        if advertise {
                            // Refresh the advertised end time after the delay.
                            self.clock_w[tid].store(self.est.end_time(sec));
                        }
                    }
                }
            }
        };

        if let Some(r) = committed {
            if advertise {
                t.ctx.direct().store(self.readers.state[tid], STATE_EMPTY);
                self.clock_w[tid].store(0);
            }
            let latency_ns = clock::now() - start;
            t.stats
                .record_commit(Role::Writer, CommitMode::Htm, latency_ns);
            t.trace.push(EventKind::SectionEnd {
                role: TraceRole::Writer,
                sec: sec.0,
                mode: CommitMode::Htm.label(),
                latency_ns,
            });
            self.tuner_after_section(t, sec);
            return r;
        }

        // Fallback: acquire the global lock (dooming subscribed
        // transactions), defer to bypassing readers (§3.3, versioned mode),
        // wait for active readers, then run uninstrumented.
        let d = t.ctx.direct();
        let version = self.fallback.acquire(&d);
        t.trace.push(EventKind::FallbackAcquire { version });
        if self.cfg.versioned_sgl {
            self.wait_for_bypassing_readers(version, &mut t.trace);
        }
        self.wait_for_readers(&d, tid);
        let t0 = clock::now();
        let mut acc = t.ctx.direct();
        let r = f(&mut acc).expect("fallback write sections cannot abort");
        let dur = clock::now() - t0;
        self.est.record(tid, sec, dur);
        self.adapt_after_section(t, false, dur);
        // Teardown order matters: lower the WRITER flag and zero the
        // advertised end time *before* releasing the fallback lock. Readers
        // woken by the release immediately scan `state`/`clock_w` in
        // `readers_wait`; with the old order they could observe a stale
        // WRITER flag with a stale end time and spin against it until the
        // deadline expired.
        if advertise {
            t.ctx.direct().store(self.readers.state[tid], STATE_EMPTY);
            self.clock_w[tid].store(0);
        }
        self.fallback.release(&t.ctx.direct());
        t.trace.push(EventKind::FallbackRelease);
        let latency_ns = clock::now() - start;
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, latency_ns);
        t.trace.push(EventKind::SectionEnd {
            role: TraceRole::Writer,
            sec: sec.0,
            mode: CommitMode::Gl.label(),
            latency_ns,
        });
        self.tuner_after_section(t, sec);
        r
    }

    /// `writer_wait()` (Alg. 3): find the last active reader's advertised
    /// end time and stall so that our re-execution ends δ after it —
    /// maximizing overlap with readers while still committing clean.
    ///
    /// Times (the adverts and the `spin_until` target) are in the calling
    /// thread's scheduler clock — wall nanoseconds under the free-running
    /// scheduler, virtual ticks under the deterministic one, where the
    /// stall resolves instantly by advancing simulated time.
    fn writer_wait(
        &self,
        tid: usize,
        sec: SectionId,
        mem: &htm_sim::SimMemory,
        trace: &mut TraceBuffer,
    ) {
        let mut last_reader_end = 0u64;
        for i in 0..self.n {
            if i == tid {
                continue;
            }
            if mem.peek(self.readers.state[i]) == STATE_READER {
                last_reader_end = last_reader_end.max(self.clock_r[i].load());
            }
        }
        if last_reader_end == 0 {
            return;
        }
        let my_duration = self.est.estimate(sec);
        // The configured policy plus whatever per-section boost the runtime
        // self-tuner has accumulated for this section (0 when tuning is off).
        let delta = self.cfg.delta.resolve(my_duration) + self.tuner_delta_boost(sec);
        // Start so that (start + my_duration) == last_reader_end + delta.
        let start_at = (last_reader_end + delta).saturating_sub(my_duration);
        trace.push(EventKind::SchedDeltaStart { start_at });
        clock::spin_until(start_at);
    }

    /// §3.3 versioned-SGL writer side: before executing under the lock,
    /// defer to readers that registered while an *earlier* holder was in —
    /// they are entitled to bypass us.
    pub(crate) fn wait_for_bypassing_readers(&self, my_version: u64, trace: &mut TraceBuffer) {
        let mut spin = clock::SpinWait::new();
        let mut noted = false;
        loop {
            let any_senior = (0..self.n).any(|i| {
                let v = self.waiting_version[i].load();
                v != NONE && v < my_version
            });
            if !any_senior {
                return;
            }
            if !noted {
                trace.push(EventKind::SglWaitSenior { my_version });
                noted = true;
            }
            spin.snooze();
        }
    }

    /// Test hook: the commit-time reader check exposed for white-box tests.
    #[doc(hidden)]
    pub fn any_reader_flag_set(&self, mem: &htm_sim::SimMemory, me: usize) -> bool {
        (0..self.n).any(|i| i != me && mem.peek(self.readers.state[i]) == STATE_READER)
    }
}
