//! The SpRWL write path: speculative execution with the commit-time reader
//! check (§3.1, Alg. 1), writer advertisement for reader synchronization
//! (§3.2.1, Alg. 2), the timed retry of writer synchronization (§3.2.2,
//! Alg. 3), and the capacity-stretching ladder for big-footprint writers
//! (POWER8-style rollback-only transactions and transaction splitting;
//! see [`crate::config::StretchPolicy`] and [`crate::stretch`]).

use htm_sim::clock;
use htm_sim::{Abort, TxKind};
use sprwl_locks::{
    CommitMode, LockThread, Role, SectionBody, SectionId, ABORT_LOCKED, ABORT_READER,
};
use sprwl_trace::{EventKind, TraceBuffer, TraceRole};

use crate::lock::{SpRwl, NONE, STATE_EMPTY, STATE_READER, STATE_WRITER};
use crate::reader::note_abort;

/// The stretching ladder's rungs (the per-section sticky level in
/// [`SpRwl::stretch_level`] holds one of these).
pub(crate) const STRETCH_DIRECT: u64 = 0;
pub(crate) const STRETCH_ROT: u64 = 1;
pub(crate) const STRETCH_SPLIT: u64 = 2;

impl SpRwl {
    pub(crate) fn do_write(
        &self,
        t: &mut LockThread<'_>,
        sec: SectionId,
        f: SectionBody<'_>,
    ) -> u64 {
        let start = clock::now();
        let tid = t.tid();
        self.check_tid(tid);
        let mem = t.ctx.htm().memory();
        t.trace.push(EventKind::SectionBegin {
            role: TraceRole::Writer,
            sec: sec.0,
        });

        // Alg. 2: advertise ourselves so newly arriving readers defer to us
        // (fairness: they cannot abort an already-active writer). The flag
        // stays up across retries and the fallback — the paper calls this
        // out explicitly — and is cleared once the section commits.
        let advertise = self.cfg.scheduling.readers_wait();
        if advertise {
            self.clock_w[tid].store(self.est.end_time(sec));
            t.ctx.direct().store(self.readers.state[tid], STATE_WRITER);
        }

        // Capacity-stretching ladder: the sticky per-section level picks
        // the rung this execution *starts* at; capacity aborts escalate
        // within the execution (direct → ROT → split). Profiles without
        // POWER8's suspend/resume have no ROT rung and go straight to the
        // split. When the self-tuner is on it owns the sticky level (the
        // `stretch-level` knob); otherwise the write path escalates it in
        // place, §3.4-skip-budget style.
        let stretch = self.cfg.stretch;
        let supports_rot = stretch.enabled && t.ctx.htm().config().capacity.supports_rot();
        let mut level = if stretch.enabled {
            let l = self.stretch_level[sec.index()].load();
            if l == STRETCH_ROT && !supports_rot {
                STRETCH_SPLIT
            } else {
                l
            }
        } else {
            STRETCH_DIRECT
        };

        // Probe: a sticky stretched rung serializes this section against
        // every other writer, so the section periodically re-tries the
        // direct rung — a shrunken footprint earns its concurrency back,
        // an unchanged one re-escalates on the capacity abort below with
        // its probe backoff doubled. The `stretch_probe` slot packs the
        // countdown to the next probe (low half) and the current backoff
        // (high half); races on it only perturb the probe cadence. The
        // tuner owns the sticky level when it is on; its `stretch-level`
        // decay plays the same role there.
        let mut probing = false;
        let sticky_level = level;
        if level != STRETCH_DIRECT && self.tuner.is_none() && stretch.probe_window > 0 {
            let slot = &self.stretch_probe[sec.index()];
            let v = slot.load();
            let countdown = v as u32;
            if countdown == 0 {
                level = STRETCH_DIRECT;
                probing = true;
            } else {
                slot.store(v - 1);
            }
        }

        let mut committed: Option<(u64, CommitMode)> = None;

        // Rung 0: the plain HTM loop (reads and writes both tracked).
        if level == STRETCH_DIRECT {
            let mut attempts = 0u32;
            loop {
                self.fallback.wait_until_free(mem);
                if stretch.enabled {
                    // A stretched ROT may be mid-flight with untracked
                    // reads; don't start an attempt that is doomed to
                    // abort on the gate subscription below.
                    self.rot_gate.wait_until_free(mem);
                }
                // BRAVO: the commit-time check requires the bias word verifiably
                // OFF inside the transaction, so revoke (untracked, draining the
                // visible-readers table) before attempting. One peek when bias
                // is already off; drain cost proportional to *active* readers.
                if self.cfg.reader_tracking == crate::config::ReaderTracking::Bravo {
                    if let Some((occupied, scanned)) = self.readers.revoke_bias(&t.ctx.direct()) {
                        t.trace.push(EventKind::BiasRevoke { occupied, scanned });
                        self.tuner_note_revoke(sec);
                    }
                }
                attempts += 1;
                t.trace.push(EventKind::TxAttempt {
                    role: TraceRole::Writer,
                    attempt: attempts,
                });
                match t.ctx.txn(TxKind::Htm, |tx| {
                    self.fallback.subscribe(tx)?;
                    if stretch.enabled {
                        // Subscribe the ROT gate: a stretched writer's
                        // untracked acquire dooms us, so our writes can
                        // never land inside its unmonitored read set.
                        self.rot_gate.subscribe(tx)?;
                    }
                    let t0 = clock::now();
                    let r = f(tx)?;
                    let dur = clock::now() - t0;
                    // W-checkR: commit only in the absence of active readers.
                    self.check_for_readers(tx, tid)?;
                    let fp = (tx.read_footprint() as u32, tx.write_footprint() as u32);
                    Ok((r, dur, fp))
                }) {
                    Ok((r, dur, (read_fp, write_fp))) => {
                        self.est.record(tid, sec, dur);
                        self.adapt_after_section(t, false, dur);
                        t.trace.push(EventKind::TxCommit {
                            mode: CommitMode::Htm.label(),
                            read_fp,
                            write_fp,
                        });
                        if probing {
                            // The probe committed directly: the footprint
                            // fits again — stop paying the stretched rung
                            // and forget the accumulated backoff.
                            self.stretch_level[sec.index()].store(STRETCH_DIRECT);
                            self.stretch_probe[sec.index()].store(0);
                        }
                        committed = Some((r, CommitMode::Htm));
                        break;
                    }
                    Err(abort) => {
                        note_abort(t, abort, TxKind::Htm);
                        self.tuner_note_abort(sec, abort, TxKind::Htm);
                        if stretch.enabled && abort.is_capacity() {
                            // Retrying cannot help a footprint overflow —
                            // climb to the next rung instead of falling to
                            // the lock. Untracked ROT reads only cure a
                            // *read*-set overflow; a write-set overflow
                            // needs the ROT's write budget to actually be
                            // bigger, otherwise the attempt is doomed and
                            // the section should split immediately.
                            let cap = t.ctx.htm().config().capacity;
                            let rot_helps = supports_rot
                                && (abort == Abort::CapacityRead
                                    || cap.rot_write_lines > cap.write_lines);
                            level = if rot_helps {
                                STRETCH_ROT
                            } else {
                                STRETCH_SPLIT
                            };
                            // A failed probe must not forget what the ladder
                            // already learned: if this section's ROT rung has
                            // overflowed before (sticky level = split), don't
                            // re-run that doomed experiment.
                            level = level.max(sticky_level);
                            if self.tuner.is_none() {
                                self.stretch_level[sec.index()].store(level);
                                if stretch.probe_window > 0 {
                                    // Schedule the next probe: a failed one
                                    // doubles the wait (capped), a fresh
                                    // escalation starts at the floor.
                                    let slot = &self.stretch_probe[sec.index()];
                                    let backoff = if probing {
                                        ((slot.load() >> 32) as u32).saturating_mul(2).clamp(
                                            stretch.probe_window,
                                            crate::config::StretchPolicy::PROBE_BACKOFF_MAX,
                                        )
                                    } else {
                                        stretch.probe_window
                                    };
                                    slot.store(u64::from(backoff) | (u64::from(backoff) << 32));
                                }
                            }
                            break;
                        }
                        if !self.cfg.writer_retry.should_retry(attempts, abort) {
                            break;
                        }
                        // Alg. 3: after a reader-induced abort, delay the retry
                        // so the re-execution finishes δ after the last reader.
                        if self.cfg.scheduling.writers_wait()
                            && abort == Abort::Explicit(ABORT_READER)
                        {
                            self.writer_wait(tid, sec, mem, &mut t.trace);
                            if advertise {
                                // Refresh the advertised end time after the delay.
                                self.clock_w[tid].store(self.est.end_time(sec));
                            }
                        }
                    }
                }
            }
        }

        // Rung 1: rollback-only transaction — reads untracked (zero read
        // capacity), writes buffered against the ROT budget. A ROT cannot
        // subscribe the fallback lock or scan reader flags transactionally
        // (it tracks no reads), so the commit-time checks run from
        // *suspended* state as untracked peeks, aborting explicitly — the
        // RW-LE pattern. The post-check window is closed the same way the
        // paper's strong-isolation argument closes it: the write-set is
        // frozen before suspension, and a reader arriving after the check
        // dooms the ROT the moment it touches a written line, so readers
        // observe all-old or all-new values, never a torn prefix (§6i).
        //
        // Untracked reads leave one hazard the hardware cannot close: a
        // concurrent *writer* committing into this ROT's read set is never
        // detected, so the ROT could commit a snapshot no serial order
        // explains (the torture lincheck catches exactly this). Holding
        // `rot_gate` for the rung's duration restores writer-writer
        // exclusion against speculative peers (plain HTM writers subscribe
        // the gate), and the `rot_epoch` re-check below catches fallback
        // writers that complete inside our window — while readers stay
        // uninstrumented and concurrent.
        if committed.is_none() && level == STRETCH_ROT && supports_rot {
            self.rot_gate.acquire(&t.ctx.direct());
            let budget = stretch.rot_attempts.max(1);
            let mut attempts = 0u32;
            loop {
                self.fallback.wait_until_free(mem);
                // Snapshot the fallback-completion epoch before the
                // transaction begins: any ticket holder finishing inside
                // our window bumps it, and our reads are untracked, so the
                // suspended re-check below is the only way to notice.
                let epoch0 = mem.peek(self.rot_epoch);
                attempts += 1;
                t.trace.push(EventKind::StretchRot { attempt: attempts });
                t.trace.push(EventKind::TxAttempt {
                    role: TraceRole::Writer,
                    attempt: attempts,
                });
                match t.ctx.txn(TxKind::Rot, |tx| {
                    let t0 = clock::now();
                    let r = f(tx)?;
                    let dur = clock::now() - t0;
                    let verdict = tx.suspend(|s| {
                        let m = s.htm().memory();
                        if self.fallback.is_locked_peek(m) || m.peek(self.rot_epoch) != epoch0 {
                            return Some(ABORT_LOCKED);
                        }
                        if !self.cfg.debug_skip_commit_reader_check
                            && self.any_reader_flag_set(m, tid)
                        {
                            return Some(ABORT_READER);
                        }
                        None
                    })?;
                    if let Some(code) = verdict {
                        return tx.abort(code);
                    }
                    Ok((r, dur, tx.write_footprint() as u32))
                }) {
                    Ok((r, dur, write_fp)) => {
                        self.est.record(tid, sec, dur);
                        self.adapt_after_section(t, false, dur);
                        t.trace.push(EventKind::TxCommit {
                            mode: CommitMode::Rot.label(),
                            read_fp: 0,
                            write_fp,
                        });
                        committed = Some((r, CommitMode::Rot));
                        break;
                    }
                    Err(abort) => {
                        note_abort(t, abort, TxKind::Rot);
                        self.tuner_note_abort(sec, abort, TxKind::Rot);
                        if abort.is_capacity() {
                            // Overflowed even the stretched budget: split.
                            level = STRETCH_SPLIT;
                            if self.tuner.is_none() {
                                self.stretch_level[sec.index()].store(level);
                            }
                            break;
                        }
                        if attempts >= budget {
                            break;
                        }
                        if self.cfg.scheduling.writers_wait()
                            && abort == Abort::Explicit(ABORT_READER)
                        {
                            self.writer_wait(tid, sec, mem, &mut t.trace);
                            if advertise {
                                self.clock_w[tid].store(self.est.end_time(sec));
                            }
                        }
                    }
                }
            }
            // Released on every exit — commit, escalation to the split, or
            // an exhausted retry budget. The fallback path below re-takes
            // it, so an escalating writer cannot self-deadlock.
            self.rot_gate.release(&t.ctx.direct());
        }

        if let Some((r, mode)) = committed {
            if advertise {
                t.ctx.direct().store(self.readers.state[tid], STATE_EMPTY);
                self.clock_w[tid].store(0);
            }
            let latency_ns = clock::now() - start;
            t.stats.record_commit(Role::Writer, mode, latency_ns);
            t.trace.push(EventKind::SectionEnd {
                role: TraceRole::Writer,
                sec: sec.0,
                mode: mode.label(),
                latency_ns,
            });
            self.tuner_after_section(t, sec);
            return r;
        }

        // Fallback: acquire the global lock (dooming subscribed
        // transactions), defer to bypassing readers (§3.3, versioned mode),
        // wait for active readers, then run uninstrumented — either as one
        // direct pass, or (rung 2) split into ordered sub-transactions that
        // each fit the capacity profile's write budget.
        let d = t.ctx.direct();
        let version = self.fallback.acquire(&d);
        t.trace.push(EventKind::FallbackAcquire { version });
        if self.cfg.versioned_sgl {
            self.wait_for_bypassing_readers(version, &mut t.trace);
        }
        self.wait_for_readers(&d, tid);
        let t0 = clock::now();
        let r = if stretch.enabled && level == STRETCH_SPLIT {
            let chunk_lines = if stretch.split_chunk_lines > 0 {
                stretch.split_chunk_lines
            } else {
                t.ctx.htm().config().capacity.write_lines
            };
            crate::stretch::run_split(t, f, chunk_lines)
        } else {
            let mut acc = t.ctx.direct();
            f(&mut acc).expect("fallback write sections cannot abort")
        };
        let dur = clock::now() - t0;
        self.est.record(tid, sec, dur);
        self.adapt_after_section(t, false, dur);
        // Teardown order matters: lower the WRITER flag and zero the
        // advertised end time *before* releasing the fallback lock. Readers
        // woken by the release immediately scan `state`/`clock_w` in
        // `readers_wait`; with the old order they could observe a stale
        // WRITER flag with a stale end time and spin against it until the
        // deadline expired.
        if advertise {
            t.ctx.direct().store(self.readers.state[tid], STATE_EMPTY);
            self.clock_w[tid].store(0);
        }
        if stretch.enabled {
            // Mark our in-place writes for mid-flight ROTs *before* the
            // ticket release makes the lock word look innocent again (see
            // `SpRwl::rot_epoch`). We hold the ticket, so the bump is
            // race-free — and the cell is unsubscribed, so it dooms no
            // speculative writer.
            let d = t.ctx.direct();
            let e = mem.peek(self.rot_epoch);
            d.store(self.rot_epoch, e.wrapping_add(1));
        }
        self.fallback.release(&t.ctx.direct());
        t.trace.push(EventKind::FallbackRelease);
        let latency_ns = clock::now() - start;
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, latency_ns);
        t.trace.push(EventKind::SectionEnd {
            role: TraceRole::Writer,
            sec: sec.0,
            mode: CommitMode::Gl.label(),
            latency_ns,
        });
        self.tuner_after_section(t, sec);
        r
    }

    /// `writer_wait()` (Alg. 3): find the last active reader's advertised
    /// end time and stall so that our re-execution ends δ after it —
    /// maximizing overlap with readers while still committing clean.
    ///
    /// Times (the adverts and the `spin_until` target) are in the calling
    /// thread's scheduler clock — wall nanoseconds under the free-running
    /// scheduler, virtual ticks under the deterministic one, where the
    /// stall resolves instantly by advancing simulated time.
    fn writer_wait(
        &self,
        tid: usize,
        sec: SectionId,
        mem: &htm_sim::SimMemory,
        trace: &mut TraceBuffer,
    ) {
        let mut last_reader_end = 0u64;
        for i in 0..self.n {
            if i == tid {
                continue;
            }
            if mem.peek(self.readers.state[i]) == STATE_READER {
                last_reader_end = last_reader_end.max(self.clock_r[i].load());
            }
        }
        if last_reader_end == 0 {
            return;
        }
        let my_duration = self.est.estimate(sec);
        // The configured policy plus whatever per-section boost the runtime
        // self-tuner has accumulated for this section (0 when tuning is off).
        let delta = self.cfg.delta.resolve(my_duration) + self.tuner_delta_boost(sec);
        // Start so that (start + my_duration) == last_reader_end + delta.
        let start_at = (last_reader_end + delta).saturating_sub(my_duration);
        trace.push(EventKind::SchedDeltaStart { start_at });
        clock::spin_until(start_at);
    }

    /// §3.3 versioned-SGL writer side: before executing under the lock,
    /// defer to readers that registered while an *earlier* holder was in —
    /// they are entitled to bypass us.
    pub(crate) fn wait_for_bypassing_readers(&self, my_version: u64, trace: &mut TraceBuffer) {
        let mut spin = clock::SpinWait::new();
        let mut noted = false;
        loop {
            let any_senior = (0..self.n).any(|i| {
                let v = self.waiting_version[i].load();
                v != NONE && v < my_version
            });
            if !any_senior {
                return;
            }
            if !noted {
                trace.push(EventKind::SglWaitSenior { my_version });
                noted = true;
            }
            spin.snooze();
        }
    }

    /// Test hook: the commit-time reader check exposed for white-box tests.
    /// Also the ROT rung's suspended reader check: [`ReaderTable::arrive`]
    /// stores the per-thread state flag first under *every* tracking mode,
    /// so this untracked scan is sound regardless of how the plain-HTM
    /// check would have subscribed.
    ///
    /// [`ReaderTable::arrive`]: crate::reader_table::ReaderTable
    #[doc(hidden)]
    pub fn any_reader_flag_set(&self, mem: &htm_sim::SimMemory, me: usize) -> bool {
        (0..self.n).any(|i| i != me && mem.peek(self.readers.state[i]) == STATE_READER)
    }
}
