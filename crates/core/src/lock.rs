//! The SpRWL lock object: shared metadata, fallback-lock plumbing and the
//! commit-time reader check. The read- and write-path algorithms live in
//! [`crate::reader`] and [`crate::writer`].

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::{CellId, Direct, Htm, SimMemory, Tx, TxResult};
use sprwl_locks::{GlobalLock, LockThread, RwSync, SectionBody, SectionId, VersionedLock};

use crate::adaptive::ReaderReg;
use crate::config::{ReaderTracking, SprwlConfig};
use crate::estimator::DurationEstimator;
use crate::reader_table::ReaderTable;

/// `state[i]` values (Alg. 1 of the paper).
pub(crate) const STATE_EMPTY: u64 = 0;
pub(crate) const STATE_READER: u64 = 1;
pub(crate) const STATE_WRITER: u64 = 2;

/// "no thread / no version" sentinel in the scheduling arrays.
pub(crate) const NONE: u64 = u64::MAX;

#[derive(Debug)]
#[repr(align(64))]
pub(crate) struct Slot(pub AtomicU64);

impl Slot {
    pub(crate) fn new(v: u64) -> Self {
        Self(AtomicU64::new(v))
    }

    #[inline]
    pub(crate) fn load(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    #[inline]
    pub(crate) fn store(&self, v: u64) {
        self.0.store(v, Ordering::SeqCst)
    }
}

pub(crate) fn slots(n: usize, init: u64) -> Box<[Slot]> {
    let mut v = Vec::with_capacity(n);
    v.resize_with(n, || Slot::new(init));
    v.into_boxed_slice()
}

/// The single-global-lock fallback, plain or versioned (§3.3 extension).
#[derive(Debug)]
pub(crate) enum Fallback {
    Plain(GlobalLock),
    Versioned(VersionedLock),
}

impl Fallback {
    pub(crate) fn is_locked_peek(&self, mem: &SimMemory) -> bool {
        match self {
            Fallback::Plain(gl) => gl.is_locked_peek(mem),
            Fallback::Versioned(vl) => vl.is_locked_peek(mem),
        }
    }

    pub(crate) fn wait_until_free(&self, mem: &SimMemory) {
        let mut w = htm_sim::clock::SpinWait::new();
        while self.is_locked_peek(mem) {
            w.snooze();
        }
    }

    /// `(version, locked)`; plain locks report version 0.
    pub(crate) fn peek(&self, mem: &SimMemory) -> (u64, bool) {
        match self {
            Fallback::Plain(gl) => (0, gl.is_locked_peek(mem)),
            Fallback::Versioned(vl) => vl.peek(mem),
        }
    }

    pub(crate) fn subscribe(&self, tx: &mut Tx<'_>) -> TxResult<()> {
        match self {
            Fallback::Plain(gl) => gl.subscribe(tx),
            Fallback::Versioned(vl) => vl.subscribe(tx),
        }
    }

    /// Blocking acquire; returns the held version (0 for plain locks).
    pub(crate) fn acquire(&self, d: &Direct<'_>) -> u64 {
        match self {
            Fallback::Plain(gl) => {
                gl.acquire(d);
                0
            }
            Fallback::Versioned(vl) => vl.acquire(d),
        }
    }

    pub(crate) fn release(&self, d: &Direct<'_>) {
        match self {
            Fallback::Plain(gl) => gl.release(d),
            Fallback::Versioned(vl) => vl.release(d),
        }
    }
}

/// Speculative Read-Write Lock (the paper's contribution).
///
/// Writers execute as hardware transactions and may only commit when no
/// reader is active; readers execute **uninstrumented**, outside any
/// transaction, protected by strong isolation (their state announcement
/// dooms any in-flight writer that already checked for readers). Two
/// scheduling schemes — reader synchronization and writer synchronization —
/// plus the §3.4 optimizations are selected by [`SprwlConfig`].
///
/// `SpRwl` implements [`RwSync`], so it is a drop-in replacement for the
/// baseline read-write locks in `sprwl-locks`.
#[derive(Debug)]
pub struct SpRwl {
    pub(crate) cfg: SprwlConfig,
    pub(crate) n: usize,
    pub(crate) fallback: Fallback,
    /// Writer-writer gate for the ROT stretching rung. A rollback-only
    /// transaction tracks no reads, so a concurrent writer committing into
    /// its read set goes undetected — the one hazard the HTM cannot close
    /// for us. The gate restores serializability *among speculative
    /// writers*: a stretched ROT holds it for the rung's duration and
    /// plain HTM writers subscribe it (the untracked acquire dooms them,
    /// exactly like the SGL). Only ROTs ever write the gate, so the
    /// subscription costs nothing while no ROT is in flight. Readers never
    /// touch it — they stay uninstrumented, protected by the ROT's
    /// buffered writes and the suspended commit-time flag check. Never
    /// consulted while `cfg.stretch` is off.
    pub(crate) rot_gate: GlobalLock,
    /// Fallback-completion epoch, closing the ROT's remaining writer
    /// hazard: a ticket holder that acquires, writes in place and releases
    /// entirely inside the ROT's execution window is invisible both to the
    /// gate (fallback writers don't take it) and to the ROT's commit-time
    /// lock peek (the lock is free again by then). Every fallback section
    /// bumps this word *before* releasing the ticket; the ROT snapshots it
    /// before starting and re-checks it from suspended state, so any
    /// in-place write that overlapped the window forces an explicit abort.
    /// The cell is never subscribed — bumping it dooms no one.
    pub(crate) rot_epoch: CellId,
    /// Every reader-tracking structure writers consult — the per-thread
    /// state flags, the SNZI, the adaptive mode word and the BRAVO bias
    /// machinery — behind one abstraction (see [`crate::reader_table`]).
    pub(crate) readers: ReaderTable,
    /// Writers' expected end times (`clock_w`).
    pub(crate) clock_w: Box<[Slot]>,
    /// Readers' expected end times (`clock_r`).
    pub(crate) clock_r: Box<[Slot]>,
    /// Which writer each waiting reader is waiting for (`waiting_for`).
    pub(crate) waiting_for: Box<[Slot]>,
    /// First fallback-lock version each blocked reader observed (§3.3).
    pub(crate) waiting_version: Box<[Slot]>,
    pub(crate) est: DurationEstimator,
    /// Per-section skip budget for the predictive readers-try-HTM variant
    /// (§3.4): non-zero means "this section recently overflowed capacity;
    /// go straight to the uninstrumented path".
    pub(crate) htm_skip: Box<[Slot]>,
    /// Per-section stretching rung a capacity-pressured section *starts*
    /// at (0 = direct HTM, 1 = ROT, 2 = split). Escalated in place by the
    /// write path when a rung overflows; decayed back toward 0 by the
    /// tuner's `stretch-level` knob when a window passes with no capacity
    /// pressure. All-zero (and never consulted) while `cfg.stretch` is off.
    pub(crate) stretch_level: Box<[Slot]>,
    /// Per-section execution counter behind `StretchPolicy::probe_window`:
    /// every window-th execution of a section stuck on a stretched rung
    /// re-probes the direct rung (see [`crate::writer`]).
    pub(crate) stretch_probe: Box<[Slot]>,
    /// Global EWMA of read critical-section durations (adaptive policy).
    pub(crate) avg_read_ns: Slot,
    /// Global EWMA of write critical-section durations (adaptive policy).
    pub(crate) avg_write_ns: Slot,
    /// Timestamp of the last mode switch (hysteresis).
    pub(crate) last_switch_ns: Slot,
    /// Runtime per-section self-tuner (`cfg.self_tuning`); `None` when the
    /// feedback loop is off.
    pub(crate) tuner: Option<crate::tuner::SectionTuner>,
}

/// How many executions a capacity-doomed section skips its optimistic HTM
/// attempt before probing hardware again.
pub(crate) const HTM_PROBE_WINDOW: u64 = 64;

impl SpRwl {
    /// Creates an SpRWL instance sized for `htm.max_threads()` threads.
    ///
    /// # Panics
    ///
    /// Panics if the simulated memory is exhausted.
    pub fn new(htm: &Htm, cfg: SprwlConfig) -> Self {
        Self::with_threads(htm, cfg, htm.max_threads())
            .expect("htm.max_threads() is always a valid thread count")
    }

    /// Creates an SpRWL instance sized for exactly `n` threads — thread ids
    /// `0..n` may enter sections; anything else is rejected up front with a
    /// clear error at section entry instead of an index panic deep inside a
    /// scheduling scan.
    ///
    /// # Errors
    ///
    /// Returns a description when `n` is zero or exceeds the HTM
    /// instance's registered thread capacity.
    pub fn with_threads(htm: &Htm, cfg: SprwlConfig, n: usize) -> Result<Self, String> {
        if n == 0 {
            return Err("SpRWL needs at least one thread slot (n = 0)".into());
        }
        if n > htm.max_threads() {
            return Err(format!(
                "SpRWL sized for {n} threads, but the HTM instance registers only {} \
                 thread contexts",
                htm.max_threads()
            ));
        }
        let mem = htm.memory();
        let fallback = if cfg.versioned_sgl {
            Fallback::Versioned(VersionedLock::new(mem))
        } else {
            Fallback::Plain(GlobalLock::new(mem))
        };
        let readers = ReaderTable::new(mem, n, cfg.reader_tracking);
        let est = DurationEstimator::with_default(
            cfg.max_sections,
            cfg.sample_all_threads,
            cfg.default_section_estimate_ns,
        );
        let htm_skip = slots(cfg.max_sections, 0);
        let tuner = cfg
            .self_tuning
            .then(|| crate::tuner::SectionTuner::new(cfg.max_sections));
        Ok(Self {
            n,
            fallback,
            rot_gate: GlobalLock::new(mem),
            rot_epoch: mem.alloc_line_aligned(1).cell(0),
            readers,
            clock_w: slots(n, 0),
            clock_r: slots(n, 0),
            waiting_for: slots(n, NONE),
            waiting_version: slots(n, NONE),
            est,
            htm_skip,
            stretch_level: slots(cfg.max_sections, 0),
            stretch_probe: slots(cfg.max_sections, 0),
            avg_read_ns: Slot::new(0),
            avg_write_ns: Slot::new(0),
            last_switch_ns: Slot::new(0),
            tuner,
            cfg,
        })
    }

    /// Rejects a thread id outside the registered range with a clear
    /// message (called at every section entry).
    #[inline]
    pub(crate) fn check_tid(&self, tid: usize) {
        assert!(
            tid < self.n,
            "thread id {tid} out of range: this SpRWL instance is sized for {} threads \
             (construct it with SpRwl::with_threads to size it explicitly)",
            self.n
        );
    }

    /// With the default (paper) configuration.
    pub fn with_defaults(htm: &Htm) -> Self {
        Self::new(htm, SprwlConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &SprwlConfig {
        &self.cfg
    }

    /// The duration estimator (exposed for tests and diagnostics).
    pub fn estimator(&self) -> &DurationEstimator {
        &self.est
    }

    /// The paper's variant label for this configuration (used by the
    /// Fig. 5 ablation output): `NoSched`/`RWait`/`RSync`/`SpRWL`, with a
    /// `+SNZI` suffix when SNZI tracking is on.
    pub fn variant_label(&self) -> &'static str {
        match (self.cfg.scheduling, self.cfg.reader_tracking) {
            (s, ReaderTracking::Flags) => s.label(),
            (crate::config::Scheduling::Full, ReaderTracking::Snzi) => "SNZI",
            (_, ReaderTracking::Snzi) => "SNZI-variant",
            (_, ReaderTracking::Adaptive) => "Adaptive",
            (crate::config::Scheduling::Full, ReaderTracking::Bravo) => "BRAVO",
            (_, ReaderTracking::Bravo) => "BRAVO-variant",
        }
    }

    // ---- shared helpers ----

    /// `check_for_readers()` (Alg. 1): run inside the writer's transaction
    /// just before commit. Aborts with `ABORT_READER` if any concurrent
    /// reader is active. In `Flags` mode this subscribes every thread's
    /// state line; in `Snzi` mode a single line; in `Bravo` mode two (the
    /// bias word and the SNZI root).
    pub(crate) fn check_for_readers(&self, tx: &mut Tx<'_>, me: usize) -> TxResult<()> {
        if self.cfg.debug_skip_commit_reader_check {
            // Test-only fault injection: pretend no reader is ever active,
            // re-opening the torn-read window the explorer hunts for.
            return Ok(());
        }
        self.readers.check_at_commit(tx, me)
    }

    /// Whether any reader other than `me` is currently active (untracked
    /// probe; used by the fallback path's `wait_for_readers`).
    pub(crate) fn any_reader_active(&self, d: &Direct<'_>, me: usize) -> bool {
        self.readers.any_active(d, me)
    }

    /// `wait_for_readers()` (Alg. 1): the fallback writer, already holding
    /// the global lock, waits for every active reader to drain.
    pub(crate) fn wait_for_readers(&self, d: &Direct<'_>, me: usize) {
        let mut w = htm_sim::clock::SpinWait::new();
        while self.any_reader_active(d, me) {
            w.snooze();
        }
    }

    /// Announces this thread as an active reader (see
    /// [`ReaderTable::arrive`] for the per-mode protocol and ordering
    /// arguments).
    pub(crate) fn flag_reader(&self, d: &Direct<'_>, tid: usize) -> ReaderReg {
        self.readers.arrive(d, tid)
    }

    /// Withdraws the reader announcement (balancing whatever `flag_reader`
    /// registered, even across a mode switch or bias revocation).
    pub(crate) fn unflag_reader(&self, d: &Direct<'_>, tid: usize, reg: ReaderReg) {
        self.readers.depart(d, tid, reg)
    }

    // ---- white-box test hooks (versioned-SGL bypass, §3.3) ----

    /// Test hook: acquire the fallback lock directly, as a fallback writer
    /// would; returns the held version (0 for a plain SGL).
    #[doc(hidden)]
    pub fn debug_fallback_acquire(&self, d: &Direct<'_>) -> u64 {
        self.fallback.acquire(d)
    }

    /// Test hook: release the fallback lock acquired through
    /// [`SpRwl::debug_fallback_acquire`].
    #[doc(hidden)]
    pub fn debug_fallback_release(&self, d: &Direct<'_>) {
        self.fallback.release(d)
    }

    /// Test hook: the fallback lock's `(version, locked)` snapshot.
    #[doc(hidden)]
    pub fn debug_fallback_peek(&self, mem: &SimMemory) -> (u64, bool) {
        self.fallback.peek(mem)
    }

    /// Test hook: the BRAVO bias word (0 = off, 1 = on, 2 = revoking).
    /// Only meaningful under [`ReaderTracking::Bravo`].
    #[doc(hidden)]
    pub fn debug_bias_state(&self, mem: &SimMemory) -> u64 {
        self.readers.bias_state(mem)
    }

    /// Test hook: the tuner's bias re-arm knob.
    #[doc(hidden)]
    pub fn debug_set_bias_enabled(&self, on: bool) {
        self.readers.set_bias_enabled(on)
    }

    /// Test hook: whether readers may currently re-arm bias.
    #[doc(hidden)]
    pub fn debug_bias_enabled(&self) -> bool {
        self.readers.bias_enabled()
    }

    /// Test hook: arm the BRAVO bias immediately, bypassing the re-arm
    /// cooldown — lets tests manufacture sustained revocation pressure
    /// deterministically.
    #[doc(hidden)]
    pub fn debug_arm_bias(&self, d: &Direct<'_>) {
        self.readers.force_arm_bias(d)
    }

    /// Test hook: the per-section stretching rung (0 = direct, 1 = ROT,
    /// 2 = split) the write path would start at.
    #[doc(hidden)]
    pub fn debug_stretch_level(&self, sec: SectionId) -> u64 {
        self.stretch_level[sec.index()].load()
    }

    /// Test hook: the §3.3 registration slot for `tid` (`u64::MAX` = none).
    #[doc(hidden)]
    pub fn debug_waiting_version(&self, tid: usize) -> u64 {
        self.waiting_version[tid].load()
    }

    /// Test hook: whether a fallback writer holding `my_version` would
    /// still defer to a reader registered under an earlier version — the
    /// non-blocking probe behind `wait_for_bypassing_readers` (§3.3).
    #[doc(hidden)]
    pub fn debug_any_senior_bypasser(&self, my_version: u64) -> bool {
        (0..self.n).any(|i| {
            let v = self.waiting_version[i].load();
            v != NONE && v < my_version
        })
    }
}

impl RwSync for SpRwl {
    fn name(&self) -> &'static str {
        "SpRWL"
    }

    fn read_section(&self, t: &mut LockThread<'_>, sec: SectionId, f: SectionBody<'_>) -> u64 {
        self.do_read(t, sec, f)
    }

    fn write_section(&self, t: &mut LockThread<'_>, sec: SectionId, f: SectionBody<'_>) -> u64 {
        self.do_write(t, sec, f)
    }

    fn check_quiescent(&self, mem: &SimMemory) -> Result<(), String> {
        self.readers
            .check_quiescent(mem)
            .map_err(|e| format!("SpRWL: {e}"))?;
        if self.fallback.is_locked_peek(mem) {
            return Err("SpRWL: fallback lock still held at quiescence".into());
        }
        for i in 0..self.n {
            if self.waiting_for[i].load() != NONE {
                return Err(format!(
                    "SpRWL: waiting_for[{i}] still registered at quiescence"
                ));
            }
            if self.waiting_version[i].load() != NONE {
                return Err(format!(
                    "SpRWL: waiting_version[{i}] still registered at quiescence"
                ));
            }
            let cw = self.clock_w[i].load();
            if cw != 0 {
                return Err(format!(
                    "SpRWL: clock_w[{i}] is {cw} (stale end-time advert) at quiescence"
                ));
            }
            let cr = self.clock_r[i].load();
            if cr != 0 {
                return Err(format!(
                    "SpRWL: clock_r[{i}] is {cr} (stale end-time advert) at quiescence"
                ));
            }
        }
        Ok(())
    }
}
