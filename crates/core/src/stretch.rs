//! Capacity stretching for big-footprint writers: the split rung.
//!
//! The POWER8 capacity-stretching techniques give SpRWL writers a ladder
//! past the per-profile footprint limits (see
//! [`crate::config::StretchPolicy`]). The first stretched rung — the
//! rollback-only transaction with its suspended commit check — lives in
//! [`crate::writer`] next to the plain HTM loop it mirrors. This module
//! holds the final rung: **transaction splitting**, for write-sets that
//! overflow even the ROT budget.
//!
//! A split writer executes under its fallback ticket, with bypassing and
//! active readers already drained, so the region is exclusive: new readers
//! defer to the held lock (Alg. 1 line 29) and other writers spin on it.
//! Inside that region the section body runs **once** against a
//! [`SplitAccess`] buffer that never lets the speculative write-set exceed
//! the capacity profile: writes accumulate per chunk and each full chunk
//! is flushed as one ordered sub-transaction. Readers stay uninstrumented
//! throughout — they never observe a torn prefix because none can enter
//! between chunks while the ticket is held (the same §3.1/§3.3 argument
//! that makes the plain fallback safe).
//!
//! Chunk flushes replay buffered `(cell, value)` pairs, which is
//! idempotent, so a flush that aborts (an injected interrupt, or the
//! transient window where a just-doomed peer still holds a line) simply
//! retries; after [`SPLIT_CHUNK_RETRIES`] it falls through to an untracked
//! replay — safe for the same exclusivity reason.

use std::collections::{HashMap, HashSet};

use htm_sim::{AccessMode, CellId, LineId, MemAccess, ThreadCtx, TxKind, TxResult};
use sprwl_locks::{AbortCause, LockThread, SectionBody, SessionStats};
use sprwl_trace::{EventKind, TraceBuffer};

/// Sub-transaction attempts per chunk before the untracked-replay valve.
pub(crate) const SPLIT_CHUNK_RETRIES: u32 = 3;

/// The chunking write buffer a split writer's section body runs against.
///
/// Reads are served from the pending buffer (read-own-writes) or an
/// untracked load; writes accumulate until they span `chunk_lines`
/// distinct cache lines, then flush as one sub-transaction.
pub(crate) struct SplitAccess<'a, 'h> {
    ctx: &'a mut ThreadCtx<'h>,
    trace: &'a mut TraceBuffer,
    stats: &'a mut SessionStats,
    /// Distinct cache lines per sub-transaction (≤ the profile's HTM
    /// write budget, so a flush cannot capacity-abort).
    chunk_lines: usize,
    /// Buffered writes of the current chunk, in first-write order;
    /// rewrites update in place so replay order stays deterministic.
    pending: Vec<(CellId, u64)>,
    index_of: HashMap<CellId, usize>,
    lines: HashSet<LineId>,
    /// Chunks flushed so far (the `stretch-chunk` index).
    chunks: u32,
}

impl SplitAccess<'_, '_> {
    /// Flushes the buffered chunk as one sub-transaction (untracked replay
    /// after [`SPLIT_CHUNK_RETRIES`] failed attempts); no-op when empty.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let writes = std::mem::take(&mut self.pending);
        self.index_of.clear();
        let n_lines = self.lines.len() as u32;
        self.lines.clear();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.ctx.txn(TxKind::Htm, |tx| {
                for &(cell, val) in &writes {
                    tx.write(cell, val)?;
                }
                Ok(())
            }) {
                Ok(()) => break,
                Err(abort) => {
                    self.stats
                        .record_abort(AbortCause::classify(abort, TxKind::Htm));
                    if attempts >= SPLIT_CHUNK_RETRIES {
                        // The ticketed region is exclusive, so an untracked
                        // replay is just as atomic from any observer's view.
                        let d = self.ctx.direct();
                        for &(cell, val) in &writes {
                            d.store(cell, val);
                        }
                        break;
                    }
                }
            }
        }
        self.trace.push(EventKind::StretchChunk {
            index: self.chunks,
            lines: n_lines,
        });
        self.chunks += 1;
    }
}

impl MemAccess for SplitAccess<'_, '_> {
    fn read(&mut self, cell: CellId) -> TxResult<u64> {
        if let Some(&i) = self.index_of.get(&cell) {
            return Ok(self.pending[i].1);
        }
        Ok(self.ctx.direct().load(cell))
    }

    fn write(&mut self, cell: CellId, val: u64) -> TxResult<()> {
        if let Some(&i) = self.index_of.get(&cell) {
            self.pending[i].1 = val;
            return Ok(());
        }
        let line = self.ctx.htm().memory().line_of(cell);
        self.index_of.insert(cell, self.pending.len());
        self.pending.push((cell, val));
        self.lines.insert(line);
        if self.lines.len() >= self.chunk_lines {
            self.flush();
        }
        Ok(())
    }

    fn mode(&self) -> AccessMode {
        AccessMode::Untracked
    }
}

/// Runs one write-section body split into ordered sub-transactions.
///
/// Caller contract: the fallback ticket is held and both bypassing and
/// active readers have been drained (the region is exclusive). Returns the
/// body's result and the number of chunks flushed; emits one
/// `stretch-chunk` event per flush and the closing `stretch-split`.
pub(crate) fn run_split(t: &mut LockThread<'_>, f: SectionBody<'_>, chunk_lines: usize) -> u64 {
    let LockThread { ctx, stats, trace } = t;
    let mut acc = SplitAccess {
        ctx,
        trace,
        stats,
        chunk_lines: chunk_lines.max(1),
        pending: Vec::new(),
        index_of: HashMap::new(),
        lines: HashSet::new(),
        chunks: 0,
    };
    let r = f(&mut acc).expect("split write sections cannot abort");
    acc.flush();
    let chunks = acc.chunks;
    acc.trace.push(EventKind::StretchSplit { chunks });
    r
}
