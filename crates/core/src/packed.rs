//! The packed 64-bit metadata word of §3.4.
//!
//! The paper sketches (but does not implement) an encoding that folds a
//! thread's four scheduling variables — `state`, `clock_w`/`clock_r` and
//! `waiting_for` — into a single word: zero means inactive; otherwise the
//! MSB distinguishes reader/writer, the next `k` bits carry the
//! `waiting_for` thread id (supporting up to 1024 threads at `k = 10`),
//! and the remaining 53 bits carry the clock (several days at nanosecond
//! granularity). We implement the codec and property-test it; the default
//! lock keeps the four-array layout (like the authors' prototype), and the
//! codec documents exactly what the single-word variant would store.

/// Number of bits reserved for the `waiting_for` field.
pub const WAITING_BITS: u32 = 10;
/// Maximum encodable thread id.
pub const MAX_TID: u16 = (1 << WAITING_BITS) - 2; // one value reserved for "none"
/// Number of bits left for the clock.
pub const CLOCK_BITS: u32 = 63 - WAITING_BITS;
/// Maximum encodable clock value (~104 days in nanoseconds).
pub const MAX_CLOCK: u64 = (1 << CLOCK_BITS) - 1;

const WAITING_NONE: u64 = (1 << WAITING_BITS) - 1;

/// A thread's decoded metadata word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackedMeta {
    /// The thread is in no critical section (`⊥` everywhere).
    Inactive,
    /// The thread is an active reader.
    Reader {
        /// Expected end time of its read critical section (`clock_r`).
        clock: u64,
        /// Writer thread this reader is waiting for, if any (`waiting_for`).
        waiting_for: Option<u16>,
    },
    /// The thread is an active writer.
    Writer {
        /// Expected end time of its write critical section (`clock_w`).
        clock: u64,
    },
}

impl PackedMeta {
    /// Encodes into the single-word representation.
    ///
    /// # Panics
    ///
    /// Panics if the clock exceeds [`MAX_CLOCK`] or a `waiting_for` id
    /// exceeds [`MAX_TID`] — both impossible for realistic inputs (104
    /// days of uptime, 1023 threads) and therefore programming errors.
    pub fn encode(self) -> u64 {
        match self {
            PackedMeta::Inactive => 0,
            PackedMeta::Reader { clock, waiting_for } => {
                assert!(clock <= MAX_CLOCK, "clock overflow");
                let wf = match waiting_for {
                    Some(tid) => {
                        assert!(tid <= MAX_TID, "tid overflow");
                        tid as u64
                    }
                    None => WAITING_NONE,
                };
                // Reader: MSB = 0, but the word must be non-zero even for
                // clock 0 / no waiting — guaranteed because WAITING_NONE
                // has all waiting bits set.
                (wf << CLOCK_BITS) | clock
            }
            PackedMeta::Writer { clock } => {
                assert!(clock <= MAX_CLOCK, "clock overflow");
                (1 << 63) | (WAITING_NONE << CLOCK_BITS) | clock
            }
        }
    }

    /// Decodes the single-word representation.
    pub fn decode(word: u64) -> PackedMeta {
        if word == 0 {
            return PackedMeta::Inactive;
        }
        let clock = word & MAX_CLOCK;
        let wf = (word >> CLOCK_BITS) & WAITING_NONE;
        if word >> 63 == 1 {
            PackedMeta::Writer { clock }
        } else {
            PackedMeta::Reader {
                clock,
                waiting_for: if wf == WAITING_NONE {
                    None
                } else {
                    Some(wf as u16)
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_is_zero() {
        assert_eq!(PackedMeta::Inactive.encode(), 0);
        assert_eq!(PackedMeta::decode(0), PackedMeta::Inactive);
    }

    #[test]
    fn reader_with_no_wait_is_nonzero() {
        let w = PackedMeta::Reader {
            clock: 0,
            waiting_for: None,
        }
        .encode();
        assert_ne!(w, 0, "active reader must be distinguishable from ⊥");
    }

    #[test]
    fn roundtrip_representatives() {
        for m in [
            PackedMeta::Inactive,
            PackedMeta::Reader {
                clock: 12345,
                waiting_for: None,
            },
            PackedMeta::Reader {
                clock: MAX_CLOCK,
                waiting_for: Some(0),
            },
            PackedMeta::Reader {
                clock: 0,
                waiting_for: Some(MAX_TID),
            },
            PackedMeta::Writer { clock: 0 },
            PackedMeta::Writer { clock: MAX_CLOCK },
        ] {
            assert_eq!(PackedMeta::decode(m.encode()), m, "roundtrip of {m:?}");
        }
    }

    #[test]
    #[should_panic(expected = "clock overflow")]
    fn oversized_clock_panics() {
        let _ = PackedMeta::Writer {
            clock: MAX_CLOCK + 1,
        }
        .encode();
    }

    #[test]
    #[should_panic(expected = "tid overflow")]
    fn oversized_tid_panics() {
        let _ = PackedMeta::Reader {
            clock: 0,
            waiting_for: Some(MAX_TID + 1),
        }
        .encode();
    }

    #[test]
    fn capacity_supports_1023_threads_and_days_of_clock() {
        const { assert!(MAX_TID >= 1022) };
        let days = MAX_CLOCK / 1_000_000_000 / 86_400;
        assert!(days >= 100, "clock range too small: {days} days");
    }
}
