//! The SpRWL read path: optimistic HTM attempt (§3.4), reader
//! synchronization (§3.2.1, Alg. 2), and the uninstrumented fast path with
//! the fallback-lock handshake (§3.1, Alg. 1).

use htm_sim::clock;
use htm_sim::TxKind;
use sprwl_locks::{AbortCause, CommitMode, LockThread, Role, SectionBody, SectionId};

use crate::lock::{SpRwl, NONE, STATE_WRITER};

impl SpRwl {
    pub(crate) fn do_read(
        &self,
        t: &mut LockThread<'_>,
        sec: SectionId,
        f: SectionBody<'_>,
    ) -> u64 {
        let start = clock::now();
        let tid = t.tid();
        let mem = t.ctx.htm().memory();

        // §3.4 optimization: attempt the read section speculatively first.
        // Readers that fit in HTM commit like TLE would; capacity aborts
        // switch to the uninstrumented path immediately. Under the
        // predictive refinement, a section whose last probe overflowed
        // capacity skips hardware for a window of executions.
        if self.cfg.readers_try_htm && self.reader_htm_worth_probing(sec) {
            let mut attempts = 0u32;
            loop {
                self.fallback.wait_until_free(mem);
                attempts += 1;
                match t.ctx.txn(TxKind::Htm, |tx| {
                    self.fallback.subscribe(tx)?;
                    let t0 = clock::now();
                    let r = f(tx)?;
                    Ok((r, clock::now() - t0))
                }) {
                    Ok((r, dur)) => {
                        self.est.record(tid, sec, dur);
                        self.adapt_after_section(t, true, dur);
                        t.stats
                            .record_commit(Role::Reader, CommitMode::Htm, clock::now() - start);
                        return r;
                    }
                    Err(abort) => {
                        t.stats
                            .record_abort(AbortCause::classify(abort, TxKind::Htm));
                        if abort.is_capacity() && self.cfg.adaptive_reader_htm {
                            self.htm_skip[sec.index()].store(crate::lock::HTM_PROBE_WINDOW);
                        }
                        if !self.cfg.reader_retry.should_retry(attempts, abort) {
                            break;
                        }
                    }
                }
            }
        }

        // §3.2.1: synchronize with active writers before announcing.
        if self.cfg.scheduling.readers_wait() {
            self.readers_wait(tid, mem);
        }
        // §3.2.2: advertise our expected end time so aborted writers can
        // time their retry.
        if self.cfg.scheduling.writers_wait() {
            self.clock_r[tid].store(self.est.end_time(sec));
        }

        // Alg. 1: announce, then defer to a fallback-lock holder if any
        // (withdrawing the announcement first — this ordering is what makes
        // reader/fallback-writer deadlock impossible, §3.3).
        let d = t.ctx.direct();
        let reg = loop {
            let reg = self.flag_reader(&d, tid);
            if self.reader_may_proceed(tid, mem) {
                break reg;
            }
            self.unflag_reader(&d, tid, reg);
            self.reader_wait_for_gl(tid, mem);
        };

        let t0 = clock::now();
        let mut acc = t.ctx.direct();
        let r = f(&mut acc).expect("uninstrumented read sections cannot abort");
        let dur = clock::now() - t0;

        self.unflag_reader(&d, tid, reg);
        if self.cfg.scheduling.writers_wait() {
            self.clock_r[tid].store(0);
        }
        self.est.record(tid, sec, dur);
        self.adapt_after_section(t, true, dur);
        t.stats
            .record_commit(Role::Reader, CommitMode::Unins, clock::now() - start);
        r
    }

    /// Predictive readers-try-HTM (§3.4): `true` when the section should
    /// probe hardware. Capacity-doomed sections decrement a skip budget;
    /// when it drains, one probe is allowed (re-arming on another capacity
    /// abort). Racy decrements are fine — this is a statistical policy.
    fn reader_htm_worth_probing(&self, sec: sprwl_locks::SectionId) -> bool {
        if !self.cfg.adaptive_reader_htm {
            return true;
        }
        let slot = &self.htm_skip[sec.index()];
        let remaining = slot.load();
        if remaining == 0 {
            return true;
        }
        slot.store(remaining - 1);
        false
    }

    /// `Readers_Wait()` (Alg. 2): wait for the active writer expected to
    /// finish last — or join a reader already waiting, aligning reader
    /// start times (the `RSync` refinement over `RWait`).
    fn readers_wait(&self, tid: usize, mem: &htm_sim::SimMemory) {
        let mut wait_for: Option<usize> = None;
        let mut max_end = 0u64;
        for i in 0..self.n {
            if i == tid {
                continue;
            }
            if mem.peek(self.state[i]) == STATE_WRITER {
                let end = self.clock_w[i].load();
                if end >= max_end {
                    max_end = end;
                    wait_for = Some(i);
                }
            } else if self.cfg.scheduling.readers_join() {
                let wf = self.waiting_for[i].load();
                if wf != NONE {
                    // Join the waiting reader: start as soon as it does.
                    wait_for = Some(wf as usize);
                    break;
                }
            }
        }
        let Some(w) = wait_for else { return };
        self.waiting_for[tid].store(w as u64);
        // Bound the wait by the writer's advertised end time plus one
        // refresh (it may start one more section before we sample the flag
        // down). Safety never depends on this wait — it only trades reader
        // latency against writer aborts — and an unbounded poll can starve
        // readers on hosts whose schedulers sample the flag too coarsely
        // to catch the brief flag-down window between back-to-back writes.
        let start = clock::now();
        let advertised_end = self.clock_w[w].load().max(start);
        let section_est = advertised_end - start;
        let deadline = advertised_end + section_est + 10_000;
        if self.cfg.timed_reader_wait {
            // §3.4: park until the writer's advertised end time instead of
            // hammering its state line.
            clock::spin_until(advertised_end.min(deadline));
        }
        let mut spin = clock::SpinWait::new();
        while mem.peek(self.state[w]) == STATE_WRITER && clock::now() < deadline {
            spin.snooze();
        }
        self.waiting_for[tid].store(NONE);
    }

    /// Alg. 1 line 29 (plus the §3.3 versioned extension): may an announced
    /// reader enter, or must it defer to a fallback-lock writer?
    fn reader_may_proceed(&self, tid: usize, mem: &htm_sim::SimMemory) -> bool {
        let (version, locked) = self.fallback.peek(mem);
        if !locked {
            self.waiting_version[tid].store(NONE);
            return true;
        }
        if !self.cfg.versioned_sgl {
            return false;
        }
        // Versioned SGL: remember the first version we observed; once the
        // version has advanced past it, we have waited through a full
        // writer turn and may enter — the current holder defers to us (it
        // waits for registered versions smaller than its own before
        // executing, and for our state flag afterwards).
        let registered = self.waiting_version[tid].load();
        if registered == NONE {
            self.waiting_version[tid].store(version);
            false
        } else if version > registered {
            self.waiting_version[tid].store(NONE);
            true
        } else {
            false
        }
    }

    /// Wait until the fallback lock frees (or, versioned, until its version
    /// advances past our registration so we may bypass).
    fn reader_wait_for_gl(&self, tid: usize, mem: &htm_sim::SimMemory) {
        let mut spin = clock::SpinWait::new();
        loop {
            let (version, locked) = self.fallback.peek(mem);
            if !locked {
                return;
            }
            if self.cfg.versioned_sgl {
                let registered = self.waiting_version[tid].load();
                if registered != NONE && version > registered {
                    return;
                }
            }
            spin.snooze();
        }
    }

    /// Test hook: the Alg. 1 admission check (plus §3.3 registration side
    /// effects) exposed for white-box versioned-SGL tests.
    #[doc(hidden)]
    pub fn debug_reader_may_proceed(&self, tid: usize, mem: &htm_sim::SimMemory) -> bool {
        self.reader_may_proceed(tid, mem)
    }

    /// Test hook: the blocking reader-vs-fallback-lock wait exposed for
    /// white-box versioned-SGL tests.
    #[doc(hidden)]
    pub fn debug_reader_wait_for_gl(&self, tid: usize, mem: &htm_sim::SimMemory) {
        self.reader_wait_for_gl(tid, mem)
    }

    /// Test hook: whether this lock's scheduling would make a reader wait
    /// right now (used by scheduling unit tests).
    #[doc(hidden)]
    pub fn would_reader_wait(&self, tid: usize, mem: &htm_sim::SimMemory) -> bool {
        if !self.cfg.scheduling.readers_wait() {
            return false;
        }
        (0..self.n).any(|i| {
            i != tid
                && (mem.peek(self.state[i]) == STATE_WRITER
                    || (self.cfg.scheduling.readers_join() && self.waiting_for[i].load() != NONE))
        })
    }
}
