//! The SpRWL read path: optimistic HTM attempt (§3.4), reader
//! synchronization (§3.2.1, Alg. 2), and the uninstrumented fast path with
//! the fallback-lock handshake (§3.1, Alg. 1).

use htm_sim::clock;
use htm_sim::TxKind;
use sprwl_locks::{AbortCause, CommitMode, LockThread, Role, SectionBody, SectionId};
use sprwl_trace::{EventKind, TraceBuffer, TraceRole, NO_LINE, NO_PEER};

use crate::lock::{SpRwl, NONE, STATE_WRITER};

/// Records a speculative abort in both the stats and the trace, pulling
/// conflict attribution (line + peer) out of the thread context when the
/// substrate provided it.
pub(crate) fn note_abort(t: &mut LockThread<'_>, abort: htm_sim::Abort, kind: TxKind) {
    let cause = AbortCause::classify(abort, kind);
    t.stats.record_abort(cause);
    let (line, peer) = match t.ctx.last_conflict() {
        Some(info) => {
            t.stats.record_conflict(info.line.index() as u64, info.peer);
            (info.line.index() as u64, info.peer)
        }
        None => (NO_LINE, NO_PEER),
    };
    t.trace.push(EventKind::TxAbort {
        cause: cause.label(),
        line,
        peer,
    });
}

impl SpRwl {
    pub(crate) fn do_read(
        &self,
        t: &mut LockThread<'_>,
        sec: SectionId,
        f: SectionBody<'_>,
    ) -> u64 {
        let start = clock::now();
        let tid = t.tid();
        self.check_tid(tid);
        let mem = t.ctx.htm().memory();
        t.trace.push(EventKind::SectionBegin {
            role: TraceRole::Reader,
            sec: sec.0,
        });

        // §3.4 optimization: attempt the read section speculatively first.
        // Readers that fit in HTM commit like TLE would; capacity aborts
        // switch to the uninstrumented path immediately. Under the
        // predictive refinement, a section whose last probe overflowed
        // capacity skips hardware for a window of executions.
        if self.cfg.readers_try_htm && self.reader_htm_worth_probing(sec) {
            let mut attempts = 0u32;
            loop {
                self.fallback.wait_until_free(mem);
                attempts += 1;
                t.trace.push(EventKind::TxAttempt {
                    role: TraceRole::Reader,
                    attempt: attempts,
                });
                match t.ctx.txn(TxKind::Htm, |tx| {
                    self.fallback.subscribe(tx)?;
                    let t0 = clock::now();
                    let r = f(tx)?;
                    let fp = (tx.read_footprint() as u32, tx.write_footprint() as u32);
                    Ok((r, clock::now() - t0, fp))
                }) {
                    Ok((r, dur, (read_fp, write_fp))) => {
                        self.est.record(tid, sec, dur);
                        self.adapt_after_section(t, true, dur);
                        let latency_ns = clock::now() - start;
                        t.stats
                            .record_commit(Role::Reader, CommitMode::Htm, latency_ns);
                        t.trace.push(EventKind::TxCommit {
                            mode: CommitMode::Htm.label(),
                            read_fp,
                            write_fp,
                        });
                        t.trace.push(EventKind::SectionEnd {
                            role: TraceRole::Reader,
                            sec: sec.0,
                            mode: CommitMode::Htm.label(),
                            latency_ns,
                        });
                        self.tuner_after_section(t, sec);
                        return r;
                    }
                    Err(abort) => {
                        note_abort(t, abort, TxKind::Htm);
                        self.tuner_note_abort(sec, abort, TxKind::Htm);
                        if abort.is_capacity() && self.cfg.adaptive_reader_htm {
                            self.htm_skip[sec.index()].store(crate::lock::HTM_PROBE_WINDOW);
                        }
                        if !self.cfg.reader_retry.should_retry(attempts, abort) {
                            break;
                        }
                    }
                }
            }
        }

        // §3.2.1: synchronize with active writers before announcing.
        if self.cfg.scheduling.readers_wait() {
            self.readers_wait(tid, mem, &mut t.trace);
        }
        // §3.2.2: advertise our expected end time so aborted writers can
        // time their retry.
        if self.cfg.scheduling.writers_wait() {
            self.clock_r[tid].store(self.est.end_time(sec));
        }

        // Alg. 1: announce, then defer to a fallback-lock holder if any
        // (withdrawing the announcement first — this ordering is what makes
        // reader/fallback-writer deadlock impossible, §3.3).
        let d = t.ctx.direct();
        let reg = loop {
            let reg = self.flag_reader(&d, tid);
            // A registration left by an earlier admission check means this
            // entry bypasses (or outlived) a fallback-lock holder (§3.3).
            let registered = self.waiting_version[tid].load();
            if self.reader_may_proceed(tid, mem) {
                if self.cfg.versioned_sgl && registered != NONE {
                    t.trace.push(EventKind::SglBypassEnter { registered });
                }
                break reg;
            }
            self.unflag_reader(&d, tid, reg);
            self.reader_wait_for_gl(tid, mem);
        };
        if reg.rearmed {
            // This arrival flipped the BRAVO bias word back on after a
            // revocation cooldown.
            t.trace.push(EventKind::BiasRearm);
        }
        t.trace.push(EventKind::ReaderArrive);

        let t0 = clock::now();
        let mut acc = t.ctx.direct();
        let r = f(&mut acc).expect("uninstrumented read sections cannot abort");
        let dur = clock::now() - t0;

        self.unflag_reader(&d, tid, reg);
        t.trace.push(EventKind::ReaderDepart);
        if self.cfg.scheduling.writers_wait() {
            self.clock_r[tid].store(0);
        }
        self.est.record(tid, sec, dur);
        self.adapt_after_section(t, true, dur);
        let latency_ns = clock::now() - start;
        t.stats
            .record_commit(Role::Reader, CommitMode::Unins, latency_ns);
        t.trace.push(EventKind::SectionEnd {
            role: TraceRole::Reader,
            sec: sec.0,
            mode: CommitMode::Unins.label(),
            latency_ns,
        });
        self.tuner_after_section(t, sec);
        r
    }

    /// Predictive readers-try-HTM (§3.4): `true` when the section should
    /// probe hardware. Capacity-doomed sections decrement a skip budget;
    /// when it drains, one probe is allowed (re-arming on another capacity
    /// abort). Racy decrements are fine — this is a statistical policy.
    fn reader_htm_worth_probing(&self, sec: sprwl_locks::SectionId) -> bool {
        if !self.cfg.adaptive_reader_htm {
            return true;
        }
        let slot = &self.htm_skip[sec.index()];
        let remaining = slot.load();
        if remaining == 0 {
            return true;
        }
        slot.store(remaining - 1);
        false
    }

    /// `Readers_Wait()` (Alg. 2): wait for the active writer expected to
    /// finish last — or join a reader already waiting, aligning reader
    /// start times (the `RSync` refinement over `RWait`).
    fn readers_wait(&self, tid: usize, mem: &htm_sim::SimMemory, trace: &mut TraceBuffer) {
        let mut wait_for: Option<usize> = None;
        let mut joined = false;
        let mut max_end = 0u64;
        for i in 0..self.n {
            if i == tid {
                continue;
            }
            if mem.peek(self.readers.state[i]) == STATE_WRITER {
                let end = self.clock_w[i].load();
                if end >= max_end {
                    max_end = end;
                    wait_for = Some(i);
                }
            } else if self.cfg.scheduling.readers_join() {
                let wf = self.waiting_for[i].load();
                if wf != NONE {
                    // Join the waiting reader: start as soon as it does.
                    wait_for = Some(wf as usize);
                    joined = true;
                    break;
                }
            }
        }
        let Some(w) = wait_for else { return };
        if joined {
            trace.push(EventKind::SchedJoinWaiter { target: w as u32 });
        }
        self.waiting_for[tid].store(w as u64);
        // Bound the wait by the writer's advertised end time plus one
        // refresh (it may start one more section before we sample the flag
        // down). Safety never depends on this wait — it only trades reader
        // latency against writer aborts — and an unbounded poll can starve
        // readers on hosts whose schedulers sample the flag too coarsely
        // to catch the brief flag-down window between back-to-back writes.
        let start = clock::now();
        let advertised_end = self.clock_w[w].load().max(start);
        let section_est = advertised_end - start;
        let deadline = advertised_end + section_est + 10_000;
        trace.push(EventKind::SchedWaitWriter {
            writer: w as u32,
            deadline,
        });
        if self.cfg.timed_reader_wait {
            // §3.4: park until the writer's advertised end time instead of
            // hammering its state line.
            clock::spin_until(advertised_end.min(deadline));
        }
        let mut spin = clock::SpinWait::new();
        while mem.peek(self.readers.state[w]) == STATE_WRITER && clock::now() < deadline {
            spin.snooze();
        }
        self.waiting_for[tid].store(NONE);
    }

    /// Alg. 1 line 29 (plus the §3.3 versioned extension): may an announced
    /// reader enter, or must it defer to a fallback-lock writer?
    pub(crate) fn reader_may_proceed(&self, tid: usize, mem: &htm_sim::SimMemory) -> bool {
        let (version, locked) = self.fallback.peek(mem);
        if !locked {
            self.waiting_version[tid].store(NONE);
            return true;
        }
        if !self.cfg.versioned_sgl {
            return false;
        }
        // Versioned SGL: remember the first version we observed; once the
        // version has advanced past it, we have waited through a full
        // writer turn and may enter — the current holder defers to us (it
        // waits for registered versions smaller than its own before
        // executing, and for our state flag afterwards).
        let registered = self.waiting_version[tid].load();
        if registered == NONE {
            self.waiting_version[tid].store(version);
            false
        } else if version > registered {
            self.waiting_version[tid].store(NONE);
            true
        } else {
            false
        }
    }

    /// Wait until the fallback lock frees (or, versioned, until its version
    /// advances past our registration so we may bypass).
    pub(crate) fn reader_wait_for_gl(&self, tid: usize, mem: &htm_sim::SimMemory) {
        let mut spin = clock::SpinWait::new();
        loop {
            let (version, locked) = self.fallback.peek(mem);
            if !locked {
                return;
            }
            if self.cfg.versioned_sgl {
                let registered = self.waiting_version[tid].load();
                if registered != NONE && version > registered {
                    return;
                }
            }
            spin.snooze();
        }
    }

    /// Test hook: the Alg. 1 admission check (plus §3.3 registration side
    /// effects) exposed for white-box versioned-SGL tests.
    #[doc(hidden)]
    pub fn debug_reader_may_proceed(&self, tid: usize, mem: &htm_sim::SimMemory) -> bool {
        self.reader_may_proceed(tid, mem)
    }

    /// Test hook: the blocking reader-vs-fallback-lock wait exposed for
    /// white-box versioned-SGL tests.
    #[doc(hidden)]
    pub fn debug_reader_wait_for_gl(&self, tid: usize, mem: &htm_sim::SimMemory) {
        self.reader_wait_for_gl(tid, mem)
    }

    /// Test hook: whether this lock's scheduling would make a reader wait
    /// right now (used by scheduling unit tests).
    #[doc(hidden)]
    pub fn would_reader_wait(&self, tid: usize, mem: &htm_sim::SimMemory) -> bool {
        if !self.cfg.scheduling.readers_wait() {
            return false;
        }
        (0..self.n).any(|i| {
            i != tid
                && (mem.peek(self.readers.state[i]) == STATE_WRITER
                    || (self.cfg.scheduling.readers_join() && self.waiting_for[i].load() != NONE))
        })
    }
}
