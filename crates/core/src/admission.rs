//! Non-blocking reader/writer admission — the building blocks async
//! front-ends (e.g. `sprwl-server`'s future-based guards) compose instead
//! of the blocking [`crate::reader`]/[`crate::writer`] loops.
//!
//! The blocking read path (Alg. 1) is a loop of *announce → check → enter
//! or withdraw-and-wait*. [`SpRwl::try_enter_read`] is exactly one
//! iteration of that loop with the wait removed: it either admits the
//! caller (announcement published, [`ReaderReg`] returned) or withdraws the
//! announcement and returns `None`, so a failed attempt never leaves a
//! reader flag, SNZI arrival, or BRAVO visible-table slot behind. That
//! withdraw-before-defer ordering is the same one that makes
//! reader/fallback-writer deadlock impossible in the blocking path (§3.3) —
//! an async poll that parked while still announced could block a fallback
//! writer's `wait_for_readers` drain forever.
//!
//! One piece of state *does* survive a failed attempt on purpose: the §3.3
//! versioned-SGL registration in `waiting_version[tid]`. It is the
//! anti-starvation ticket — a reader that keeps re-polling must keep its
//! first-observed fallback version or it can be starved by back-to-back
//! fallback writers forever. A caller that *abandons* the acquire (drops a
//! pending future) must clear the ticket with
//! [`SpRwl::cancel_read_admission`], or `check_quiescent` will report the
//! stale registration and fallback writers will keep deferring to a reader
//! that no longer exists.

use htm_sim::{Direct, SimMemory};

use crate::adaptive::ReaderReg;
use crate::lock::{SpRwl, NONE};

impl SpRwl {
    /// One non-blocking reader-admission attempt (one iteration of the
    /// Alg. 1 announce/check loop). On success the reader is announced and
    /// may run its uninstrumented section; balance with
    /// [`SpRwl::exit_read`]. On failure nothing is announced (any §3.3
    /// version registration persists — see the module docs).
    ///
    /// # Panics
    ///
    /// Panics when `tid` is outside the range this lock was sized for.
    pub fn try_enter_read(&self, d: &Direct<'_>, tid: usize, mem: &SimMemory) -> Option<ReaderReg> {
        self.check_tid(tid);
        let reg = self.flag_reader(d, tid);
        if self.reader_may_proceed(tid, mem) {
            Some(reg)
        } else {
            self.unflag_reader(d, tid, reg);
            None
        }
    }

    /// Withdraws a reader admission obtained from
    /// [`SpRwl::try_enter_read`] (the async analogue of the blocking
    /// path's section exit).
    pub fn exit_read(&self, d: &Direct<'_>, tid: usize, reg: ReaderReg) {
        self.unflag_reader(d, tid, reg);
    }

    /// Abandons an in-progress (not yet admitted) read acquire: clears the
    /// §3.3 versioned-SGL registration a failed [`SpRwl::try_enter_read`]
    /// may have left so fallback writers stop deferring to this thread and
    /// quiescence checks pass. Idempotent; a no-op when nothing was
    /// registered. Must NOT be called while an admission is held — the
    /// announcement itself is withdrawn by [`SpRwl::exit_read`].
    pub fn cancel_read_admission(&self, tid: usize) {
        self.check_tid(tid);
        self.waiting_version[tid].store(NONE);
    }

    /// Whether this thread currently holds a §3.3 versioned-SGL
    /// registration (a pending acquire's anti-starvation ticket).
    pub fn read_admission_pending(&self, tid: usize) -> bool {
        self.check_tid(tid);
        self.waiting_version[tid].load() != NONE
    }

    /// Non-blocking writer-admission probe: `true` when the fallback lock
    /// is free, i.e. a `write_section` started now would not immediately
    /// park behind a fallback writer. Purely advisory — it registers
    /// nothing, so a caller that polls it and walks away leaves no state —
    /// and racy by nature: the answer can be stale by the time the writer
    /// starts, which is fine because `write_section` re-checks under its
    /// own protocol. Async front-ends use it to park `write()` futures on
    /// a wake-list instead of spinning inside the blocking path.
    pub fn write_admission_open(&self, mem: &SimMemory) -> bool {
        !self.fallback.is_locked_peek(mem)
    }

    /// Debug probe: whether any reader other than `me` is currently
    /// announced (what a fallback writer's reader drain would see).
    pub fn debug_any_reader_active(&self, d: &Direct<'_>, me: usize) -> bool {
        self.any_reader_active(d, me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SprwlConfig;
    use htm_sim::{Htm, HtmConfig};
    use sprwl_locks::RwSync;

    fn htm(threads: usize) -> Htm {
        Htm::new(
            HtmConfig {
                max_threads: threads,
                ..HtmConfig::default()
            },
            4096,
        )
    }

    fn versioned_cfg() -> SprwlConfig {
        SprwlConfig {
            versioned_sgl: true,
            ..SprwlConfig::default()
        }
    }

    #[test]
    fn try_enter_read_admits_on_an_idle_lock_and_exits_clean() {
        let htm = htm(2);
        let lock = SpRwl::with_defaults(&htm);
        let mem = htm.memory();
        let d = htm.direct(0);
        let reg = lock.try_enter_read(&d, 0, mem).expect("idle lock admits");
        lock.exit_read(&d, 0, reg);
        lock.check_quiescent(mem).expect("clean after exit");
    }

    #[test]
    fn try_enter_read_fails_clean_under_a_fallback_writer() {
        let htm = htm(2);
        let lock = SpRwl::new(&htm, versioned_cfg());
        let mem = htm.memory();
        let writer = htm.direct(1);
        lock.debug_fallback_acquire(&writer);
        let d = htm.direct(0);
        assert!(lock.try_enter_read(&d, 0, mem).is_none());
        // The failed attempt left no announcement: the fallback writer's
        // reader drain sees nobody.
        assert!(!lock.debug_any_reader_active(&writer, 1));
        lock.debug_fallback_release(&writer);
        // The versioned registration is the anti-starvation ticket;
        // cancelling clears it.
        assert!(lock.read_admission_pending(0));
        lock.cancel_read_admission(0);
        assert!(!lock.read_admission_pending(0));
        lock.check_quiescent(mem).expect("clean after cancel");
    }

    #[test]
    fn abandoned_acquire_without_cancel_fails_quiescence() {
        let htm = htm(2);
        let lock = SpRwl::new(&htm, versioned_cfg());
        let mem = htm.memory();
        let writer = htm.direct(1);
        lock.debug_fallback_acquire(&writer);
        let d = htm.direct(0);
        assert!(lock.try_enter_read(&d, 0, mem).is_none());
        lock.debug_fallback_release(&writer);
        let err = lock.check_quiescent(mem).unwrap_err();
        assert!(err.contains("waiting_version"), "{err}");
        lock.cancel_read_admission(0);
        lock.check_quiescent(mem).expect("clean after cancel");
    }

    #[test]
    fn versioned_ticket_admits_after_a_writer_turn() {
        let htm = htm(2);
        let lock = SpRwl::new(&htm, versioned_cfg());
        let mem = htm.memory();
        let writer = htm.direct(1);
        let d = htm.direct(0);
        lock.debug_fallback_acquire(&writer);
        assert!(lock.try_enter_read(&d, 0, mem).is_none(), "registers");
        lock.debug_fallback_release(&writer);
        // A second writer turn advances the version past the registration:
        // the reader bypasses even while the lock is held (§3.3).
        lock.debug_fallback_acquire(&writer);
        let reg = lock
            .try_enter_read(&d, 0, mem)
            .expect("senior ticket bypasses the junior fallback holder");
        lock.exit_read(&d, 0, reg);
        lock.debug_fallback_release(&writer);
        lock.check_quiescent(mem).expect("clean");
    }

    #[test]
    fn write_admission_probe_tracks_the_fallback_word() {
        let htm = htm(2);
        let lock = SpRwl::with_defaults(&htm);
        let mem = htm.memory();
        assert!(lock.write_admission_open(mem));
        let d = htm.direct(0);
        lock.debug_fallback_acquire(&d);
        assert!(!lock.write_admission_open(mem));
        lock.debug_fallback_release(&d);
        assert!(lock.write_admission_open(mem));
    }

    #[test]
    fn bravo_admission_round_trip_keeps_the_bias_machinery_balanced() {
        let htm = htm(2);
        let lock = SpRwl::new(&htm, SprwlConfig::with_bravo());
        let mem = htm.memory();
        let d = htm.direct(0);
        for _ in 0..3 {
            let reg = lock.try_enter_read(&d, 0, mem).expect("admits");
            lock.exit_read(&d, 0, reg);
        }
        lock.check_quiescent(mem)
            .expect("bias word, SNZI and visible table all balanced");
    }
}
