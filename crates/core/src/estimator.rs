//! Per-section critical-section duration estimation (§3.2 of the paper).
//!
//! SpRWL's scheduling schemes need to predict when an active writer (or
//! reader) will finish. The paper samples execution times on a single
//! thread (to keep overhead off the hot path of all others), maintains an
//! exponential moving average per critical-section identifier, and turns
//! it into an *expected end time* by adding the current timestamp counter.
//!
//! Two deliberate departures from a naive reading of the paper:
//!
//! * **Unsampled sections get a default estimate.** Until the first sample
//!   lands, a bare `now + 0` end time would advertise "I finish
//!   immediately", silently degrading δ-timed writer starts to "start now"
//!   for the whole warm-up window. [`DurationEstimator::estimate`] returns
//!   a configurable floor instead (see
//!   [`DEFAULT_SECTION_ESTIMATE_NS`]); [`DurationEstimator::duration`]
//!   still exposes the raw 0 for callers that want "no prediction".
//! * **The sampler is promoted, not hard-wired.** The paper samples on one
//!   thread; the original code pinned that to tid 0, so harnesses whose
//!   thread 0 is a coordinator that never enters a section recorded no
//!   samples at all and both scheduling schemes ran blind. The first
//!   thread that actually records a section claims the sampler role (one
//!   CAS on the cold path), which is tid 0 whenever tid 0 does real work —
//!   identical behaviour for every existing harness.

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::clock;
use sprwl_locks::SectionId;

/// EWMA weight for new samples (numerator over [`ALPHA_DEN`]): ¼, quick to
/// react to workload shifts yet stable.
const ALPHA_NUM: u64 = 1;
const ALPHA_DEN: u64 = 4;

/// Estimate used for sections that have never been sampled, in
/// nanoseconds. One virtual microsecond: long enough that a δ-timed writer
/// start is a real wait rather than a no-op, short enough to be washed out
/// by the first real sample.
pub const DEFAULT_SECTION_ESTIMATE_NS: u64 = 1_000;

/// Sampler slot value meaning "no thread has claimed the role yet".
const NO_SAMPLER: u64 = u64::MAX;

#[derive(Debug)]
#[repr(align(64))]
struct Ewma(AtomicU64);

/// Lock-free per-section duration estimator.
#[derive(Debug)]
pub struct DurationEstimator {
    sections: Box<[Ewma]>,
    sample_all_threads: bool,
    /// The promoted single-sampler tid ([`NO_SAMPLER`] until the first
    /// record). Unused when `sample_all_threads`.
    sampler: AtomicU64,
    default_estimate_ns: u64,
}

impl DurationEstimator {
    /// Creates an estimator for section ids `0..max_sections` with the
    /// stock [`DEFAULT_SECTION_ESTIMATE_NS`] floor.
    ///
    /// # Panics
    ///
    /// Panics if `max_sections` is zero.
    pub fn new(max_sections: usize, sample_all_threads: bool) -> Self {
        Self::with_default(
            max_sections,
            sample_all_threads,
            DEFAULT_SECTION_ESTIMATE_NS,
        )
    }

    /// Creates an estimator whose unsampled sections estimate
    /// `default_estimate_ns` (0 restores the historical "no prediction ⇒
    /// ends now" behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `max_sections` is zero.
    pub fn with_default(
        max_sections: usize,
        sample_all_threads: bool,
        default_estimate_ns: u64,
    ) -> Self {
        assert!(max_sections > 0, "need at least one section slot");
        let mut v = Vec::with_capacity(max_sections);
        v.resize_with(max_sections, || Ewma(AtomicU64::new(0)));
        Self {
            sections: v.into_boxed_slice(),
            sample_all_threads,
            sampler: AtomicU64::new(NO_SAMPLER),
            default_estimate_ns,
        }
    }

    /// Whether `tid` is a sampling thread. Before any thread has recorded
    /// a section this is true for everyone (the role is unclaimed); after
    /// that, only for the promoted sampler — the first thread to actually
    /// execute a section, rather than a hard-wired tid 0 that may be a
    /// coordinator which never enters one.
    pub fn samples(&self, tid: usize) -> bool {
        if self.sample_all_threads {
            return true;
        }
        match self.sampler.load(Ordering::Relaxed) {
            NO_SAMPLER => true,
            s => s == tid as u64,
        }
    }

    /// The promoted sampler, if the role has been claimed.
    pub fn sampler(&self) -> Option<usize> {
        match self.sampler.load(Ordering::Relaxed) {
            NO_SAMPLER => None,
            s => Some(s as usize),
        }
    }

    /// Records one observed duration for `sec`, if `tid` samples. The
    /// first recording thread claims the single-sampler role.
    ///
    /// # Panics
    ///
    /// Panics if `sec` is out of the configured range.
    pub fn record(&self, tid: usize, sec: SectionId, duration_ns: u64) {
        if !self.sample_all_threads {
            let me = tid as u64;
            let claimed = match self.sampler.load(Ordering::Relaxed) {
                NO_SAMPLER => match self.sampler.compare_exchange(
                    NO_SAMPLER,
                    me,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => me,
                    Err(winner) => winner,
                },
                s => s,
            };
            if claimed != me {
                return;
            }
        }
        let slot = &self.sections[sec.index()].0;
        // Racy read-modify-write is fine: samples are statistical and the
        // paper's single-sampler design makes races rare by construction.
        let old = slot.load(Ordering::Relaxed);
        let new = if old == 0 {
            duration_ns
        } else {
            (ALPHA_NUM * duration_ns + (ALPHA_DEN - ALPHA_NUM) * old) / ALPHA_DEN
        };
        slot.store(new.max(1), Ordering::Relaxed);
    }

    /// The raw duration estimate for `sec`, in nanoseconds (0 when no
    /// sample has been recorded yet — "no prediction").
    ///
    /// # Panics
    ///
    /// Panics if `sec` is out of the configured range.
    pub fn duration(&self, sec: SectionId) -> u64 {
        self.sections[sec.index()].0.load(Ordering::Relaxed)
    }

    /// The working duration estimate for `sec`: the EWMA when sampled, the
    /// configured default otherwise. Scheduling maths (δ resolution,
    /// advertised end times) should use this, never a bare 0.
    pub fn estimate(&self, sec: SectionId) -> u64 {
        match self.duration(sec) {
            0 => self.default_estimate_ns,
            d => d,
        }
    }

    /// `estimateEndTime()` of the paper: now + expected duration (the
    /// defaulted [`DurationEstimator::estimate`], so a never-sampled
    /// section still advertises a plausible end time instead of "ends
    /// now").
    pub fn end_time(&self, sec: SectionId) -> u64 {
        clock::now() + self.estimate(sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_the_average() {
        let e = DurationEstimator::new(4, false);
        assert_eq!(e.duration(SectionId(0)), 0);
        e.record(0, SectionId(0), 1000);
        assert_eq!(e.duration(SectionId(0)), 1000);
    }

    #[test]
    fn ewma_converges_towards_new_regime() {
        let e = DurationEstimator::new(4, false);
        e.record(0, SectionId(1), 1000);
        for _ in 0..32 {
            e.record(0, SectionId(1), 3000);
        }
        let d = e.duration(SectionId(1));
        assert!((2800..=3000).contains(&d), "did not converge: {d}");
    }

    #[test]
    fn ewma_damps_outliers() {
        let e = DurationEstimator::new(4, false);
        for _ in 0..8 {
            e.record(0, SectionId(0), 1000);
        }
        e.record(0, SectionId(0), 100_000);
        let d = e.duration(SectionId(0));
        assert!(d < 30_000, "one outlier dominated: {d}");
        assert!(d > 1000);
    }

    #[test]
    fn first_recorder_claims_the_single_sampler_role() {
        let e = DurationEstimator::new(4, false);
        assert_eq!(e.sampler(), None);
        assert!(e.samples(0) && e.samples(3), "role unclaimed: anyone may");
        e.record(0, SectionId(0), 1_000);
        assert_eq!(e.sampler(), Some(0), "tid 0 recorded first, as usual");
        e.record(3, SectionId(0), 5_000);
        assert_eq!(e.duration(SectionId(0)), 1_000, "non-sampler ignored");
        assert!(e.samples(0));
        assert!(!e.samples(3));
    }

    #[test]
    fn coordinator_zero_promotes_first_section_thread() {
        // tid 0 is a coordinator that never enters a section: the first
        // thread that *does* record becomes the sampler instead of the
        // estimator staying blind forever.
        let e = DurationEstimator::new(4, false);
        e.record(2, SectionId(0), 7_000);
        assert_eq!(e.sampler(), Some(2));
        assert_eq!(e.duration(SectionId(0)), 7_000);
        e.record(0, SectionId(0), 1);
        assert_eq!(
            e.duration(SectionId(0)),
            7_000,
            "the late coordinator does not unseat the promoted sampler"
        );
        assert!(!e.samples(0));
        assert!(e.samples(2));
    }

    #[test]
    fn sample_all_threads_mode() {
        let e = DurationEstimator::new(4, true);
        e.record(3, SectionId(0), 5_000);
        assert_eq!(e.duration(SectionId(0)), 5_000);
        assert_eq!(e.sampler(), None, "no single-sampler role in this mode");
        assert!(e.samples(0) && e.samples(7));
    }

    #[test]
    fn sections_are_independent() {
        let e = DurationEstimator::new(4, false);
        e.record(0, SectionId(0), 100);
        e.record(0, SectionId(1), 9_000);
        assert_eq!(e.duration(SectionId(0)), 100);
        assert_eq!(e.duration(SectionId(1)), 9_000);
    }

    #[test]
    fn unsampled_sections_estimate_the_default() {
        let e = DurationEstimator::new(4, false);
        assert_eq!(e.duration(SectionId(0)), 0, "raw view: no prediction");
        assert_eq!(e.estimate(SectionId(0)), DEFAULT_SECTION_ESTIMATE_NS);
        let before = clock::now();
        assert!(
            e.end_time(SectionId(0)) >= before + DEFAULT_SECTION_ESTIMATE_NS,
            "first-writer-before-first-sample window: end time must not \
             degrade to bare now()"
        );
        e.record(0, SectionId(0), 250);
        assert_eq!(e.estimate(SectionId(0)), 250, "real sample replaces it");
    }

    #[test]
    fn zero_default_restores_historical_behaviour() {
        let e = DurationEstimator::with_default(4, false, 0);
        assert_eq!(e.estimate(SectionId(0)), 0);
    }

    #[test]
    fn end_time_is_in_the_future_by_the_estimate() {
        let e = DurationEstimator::new(4, false);
        e.record(0, SectionId(0), 1_000_000);
        let before = clock::now();
        let end = e.end_time(SectionId(0));
        assert!(end >= before + 1_000_000);
    }

    #[test]
    #[should_panic]
    fn out_of_range_section_panics() {
        let e = DurationEstimator::new(2, false);
        e.record(0, SectionId(2), 1);
    }
}
