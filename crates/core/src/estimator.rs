//! Per-section critical-section duration estimation (§3.2 of the paper).
//!
//! SpRWL's scheduling schemes need to predict when an active writer (or
//! reader) will finish. The paper samples execution times on a single
//! thread (to keep overhead off the hot path of all others), maintains an
//! exponential moving average per critical-section identifier, and turns
//! it into an *expected end time* by adding the current timestamp counter.

use std::sync::atomic::{AtomicU64, Ordering};

use htm_sim::clock;
use sprwl_locks::SectionId;

/// EWMA weight for new samples (numerator over [`ALPHA_DEN`]): ¼, quick to
/// react to workload shifts yet stable.
const ALPHA_NUM: u64 = 1;
const ALPHA_DEN: u64 = 4;

#[derive(Debug)]
#[repr(align(64))]
struct Ewma(AtomicU64);

/// Lock-free per-section duration estimator.
#[derive(Debug)]
pub struct DurationEstimator {
    sections: Box<[Ewma]>,
    sample_all_threads: bool,
}

impl DurationEstimator {
    /// Creates an estimator for section ids `0..max_sections`.
    ///
    /// # Panics
    ///
    /// Panics if `max_sections` is zero.
    pub fn new(max_sections: usize, sample_all_threads: bool) -> Self {
        assert!(max_sections > 0, "need at least one section slot");
        let mut v = Vec::with_capacity(max_sections);
        v.resize_with(max_sections, || Ewma(AtomicU64::new(0)));
        Self {
            sections: v.into_boxed_slice(),
            sample_all_threads,
        }
    }

    /// Whether `tid` is a sampling thread (thread 0 only, unless
    /// configured otherwise — the paper's single-sampler design).
    pub fn samples(&self, tid: usize) -> bool {
        self.sample_all_threads || tid == 0
    }

    /// Records one observed duration for `sec`, if `tid` samples.
    ///
    /// # Panics
    ///
    /// Panics if `sec` is out of the configured range.
    pub fn record(&self, tid: usize, sec: SectionId, duration_ns: u64) {
        if !self.samples(tid) {
            return;
        }
        let slot = &self.sections[sec.index()].0;
        // Racy read-modify-write is fine: samples are statistical and the
        // paper's single-sampler design makes races rare by construction.
        let old = slot.load(Ordering::Relaxed);
        let new = if old == 0 {
            duration_ns
        } else {
            (ALPHA_NUM * duration_ns + (ALPHA_DEN - ALPHA_NUM) * old) / ALPHA_DEN
        };
        slot.store(new.max(1), Ordering::Relaxed);
    }

    /// The current duration estimate for `sec`, in nanoseconds (0 when no
    /// sample has been recorded yet).
    ///
    /// # Panics
    ///
    /// Panics if `sec` is out of the configured range.
    pub fn duration(&self, sec: SectionId) -> u64 {
        self.sections[sec.index()].0.load(Ordering::Relaxed)
    }

    /// `estimateEndTime()` of the paper: now + expected duration.
    pub fn end_time(&self, sec: SectionId) -> u64 {
        clock::now() + self.duration(sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_the_average() {
        let e = DurationEstimator::new(4, false);
        assert_eq!(e.duration(SectionId(0)), 0);
        e.record(0, SectionId(0), 1000);
        assert_eq!(e.duration(SectionId(0)), 1000);
    }

    #[test]
    fn ewma_converges_towards_new_regime() {
        let e = DurationEstimator::new(4, false);
        e.record(0, SectionId(1), 1000);
        for _ in 0..32 {
            e.record(0, SectionId(1), 3000);
        }
        let d = e.duration(SectionId(1));
        assert!((2800..=3000).contains(&d), "did not converge: {d}");
    }

    #[test]
    fn ewma_damps_outliers() {
        let e = DurationEstimator::new(4, false);
        for _ in 0..8 {
            e.record(0, SectionId(0), 1000);
        }
        e.record(0, SectionId(0), 100_000);
        let d = e.duration(SectionId(0));
        assert!(d < 30_000, "one outlier dominated: {d}");
        assert!(d > 1000);
    }

    #[test]
    fn only_thread_zero_samples_by_default() {
        let e = DurationEstimator::new(4, false);
        e.record(3, SectionId(0), 5_000);
        assert_eq!(e.duration(SectionId(0)), 0);
        assert!(e.samples(0));
        assert!(!e.samples(3));
    }

    #[test]
    fn sample_all_threads_mode() {
        let e = DurationEstimator::new(4, true);
        e.record(3, SectionId(0), 5_000);
        assert_eq!(e.duration(SectionId(0)), 5_000);
    }

    #[test]
    fn sections_are_independent() {
        let e = DurationEstimator::new(4, false);
        e.record(0, SectionId(0), 100);
        e.record(0, SectionId(1), 9_000);
        assert_eq!(e.duration(SectionId(0)), 100);
        assert_eq!(e.duration(SectionId(1)), 9_000);
    }

    #[test]
    fn end_time_is_in_the_future_by_the_estimate() {
        let e = DurationEstimator::new(4, false);
        e.record(0, SectionId(0), 1_000_000);
        let before = clock::now();
        let end = e.end_time(SectionId(0));
        assert!(end >= before + 1_000_000);
    }

    #[test]
    #[should_panic]
    fn out_of_range_section_panics() {
        let e = DurationEstimator::new(2, false);
        e.record(0, SectionId(2), 1);
    }
}
