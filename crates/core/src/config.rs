//! SpRWL configuration: scheduling variants, reader tracking, optimizations.

use sprwl_locks::RetryPolicy;

/// Which of the paper's scheduling schemes are active.
///
/// These are exactly the variants of the §4.1.1 ablation (Fig. 5):
/// `NoSched` < `RWait` < `RSync` < `Full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheduling {
    /// §3.1 base algorithm only: writers check for readers at commit;
    /// no waiting on either side.
    NoSched,
    /// Readers wait for the active writer predicted to finish last, but do
    /// not join other waiting readers.
    RWait,
    /// Full reader synchronization (§3.2.1): waiting readers are joined by
    /// newcomers, aligning reader start times.
    RSync,
    /// Reader synchronization + writer synchronization (§3.2.2): aborted
    /// writers delay their retry to finish δ after the last active reader.
    /// The paper's default.
    #[default]
    Full,
}

impl Scheduling {
    /// Whether readers wait for active writers at all.
    pub fn readers_wait(self) -> bool {
        !matches!(self, Scheduling::NoSched)
    }

    /// Whether waiting readers are joined by newly arrived readers.
    pub fn readers_join(self) -> bool {
        matches!(self, Scheduling::RSync | Scheduling::Full)
    }

    /// Whether writers delay retries after reader-induced aborts.
    pub fn writers_wait(self) -> bool {
        matches!(self, Scheduling::Full)
    }

    /// Label used in benchmark output (paper's variant names).
    pub fn label(self) -> &'static str {
        match self {
            Scheduling::NoSched => "NoSched",
            Scheduling::RWait => "RWait",
            Scheduling::RSync => "RSync",
            Scheduling::Full => "SpRWL",
        }
    }
}

/// How writers detect concurrent active readers at commit time (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReaderTracking {
    /// Scan the per-thread `state` array: O(threads) cache lines in the
    /// writer's transactional read-set. The paper's default.
    #[default]
    Flags,
    /// Query a scalable non-zero indicator: one cache line in the read-set,
    /// at the cost of O(log threads) reader arrival/departure overhead.
    Snzi,
    /// Self-tuning (the paper's §5 future work): start with flags, switch
    /// to SNZI when readers dwarf writers, and back — with a sound
    /// transition protocol (see [`crate::adaptive`]).
    Adaptive,
    /// BRAVO-style biased admission (Dice & Kogan): while bias is armed,
    /// readers publish with a single CAS into a hashed visible-readers
    /// table and writers' commit-time read-set is two lines (bias word +
    /// SNZI root); writers revoke bias by draining the table — cost
    /// proportional to *active* readers, not registered threads. The SNZI
    /// is the backstop when bias is off (see [`crate::reader_table`]).
    Bravo,
}

/// The δ slack of the writer-synchronization scheme (§3.2.2): a delayed
/// writer aims to finish δ cycles after the last active reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeltaPolicy {
    /// δ = half the writer's expected duration — the paper's default,
    /// found best in their preliminary experiments.
    #[default]
    HalfWriterDuration,
    /// δ = 0: maximize reader/writer overlap, risking more reader aborts.
    Zero,
    /// A fixed δ in nanoseconds (for the δ-sweep ablation).
    FixedNs(u64),
}

impl DeltaPolicy {
    /// Resolves δ for a writer whose estimated duration is `writer_ns`.
    pub fn resolve(self, writer_ns: u64) -> u64 {
        match self {
            DeltaPolicy::HalfWriterDuration => writer_ns / 2,
            DeltaPolicy::Zero => 0,
            DeltaPolicy::FixedNs(ns) => ns,
        }
    }
}

/// Capacity stretching for big-footprint writers (the POWER8
/// capacity-stretching techniques — rollback-only transactions,
/// suspend/resume, transaction splitting — applied to SpRWL's write path).
///
/// With stretching off, a writer whose footprint overflows the capacity
/// profile falls straight to the global lock on every execution. With it
/// on, the writer escalates per section through a ladder:
///
/// 1. **direct** — the plain HTM attempt (reads and writes both tracked);
/// 2. **ROT** — a rollback-only transaction: reads untracked (zero read
///    capacity cost), writes buffered, with the commit-time reader check
///    run from *suspended* state since a ROT cannot subscribe the fallback
///    lock transactionally;
/// 3. **split** — the section body runs once against a chunking write
///    buffer under the writer's fallback ticket, each full chunk flushed
///    as an ordered sub-transaction that fits the profile's write budget.
///
/// The rung a section *starts* at is sticky per section (escalated on
/// capacity aborts) and, under [`SprwlConfig::self_tuning`], decayed back
/// toward `direct` by the tuner's `stretch-level` knob when a window
/// passes without capacity pressure. Profiles without POWER8's
/// suspend/resume ([`htm_sim::CapacityProfile::supports_rot`]) skip the
/// ROT rung and escalate `direct` → `split`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StretchPolicy {
    /// Master switch. Off by default: stretching changes commit modes and
    /// trace shapes, which golden traces and static baselines don't expect.
    pub enabled: bool,
    /// Retry budget for the ROT rung (conflict/reader aborts retry within
    /// it; a capacity abort escalates to the split rung immediately).
    pub rot_attempts: u32,
    /// Distinct cache lines per split sub-transaction. 0 = auto: the
    /// capacity profile's HTM write budget.
    pub split_chunk_lines: usize,
    /// Probe-backoff floor for sections stuck on a stretched rung
    /// (0 = never probe). Stretched rungs serialize against every other
    /// writer, so a section whose footprint shrank back under the HTM
    /// budget must not pay that exclusion forever: the section
    /// periodically re-tries the direct rung, with exponential backoff —
    /// a failed probe (another capacity abort) doubles the wait up to
    /// [`StretchPolicy::PROBE_BACKOFF_MAX`], a successful one resets the
    /// sticky level and the backoff. Bimodal sections (TPC-C Delivery:
    /// footprint tracks the order backlog) probe often and mostly win;
    /// persistently big ones (long range updates) converge to one cheap
    /// failed probe per backoff cap. The writer-side twin of
    /// `adaptive_reader_htm`'s §3.4 skip budget.
    pub probe_window: u32,
}

impl StretchPolicy {
    /// Stretching disabled (the default).
    pub const OFF: StretchPolicy = StretchPolicy {
        enabled: false,
        rot_attempts: 0,
        split_chunk_lines: 0,
        probe_window: 0,
    };

    /// The paper-shaped default when stretching is on: the RW-LE ROT retry
    /// budget, auto-sized split chunks.
    pub const ON: StretchPolicy = StretchPolicy {
        enabled: true,
        rot_attempts: 5,
        split_chunk_lines: 0,
        probe_window: 1,
    };

    /// Ceiling for the probe backoff: at most one wasted direct attempt
    /// per this many executions of a persistently oversized section.
    pub const PROBE_BACKOFF_MAX: u32 = 64;
}

impl Default for StretchPolicy {
    fn default() -> Self {
        Self::OFF
    }
}

/// Full SpRWL configuration.
#[derive(Debug, Clone)]
pub struct SprwlConfig {
    /// Scheduling variant (ablation: Fig. 5).
    pub scheduling: Scheduling,
    /// Commit-time reader detection (ablation: Fig. 6).
    pub reader_tracking: ReaderTracking,
    /// §3.4: readers optimistically try HTM before going uninstrumented.
    pub readers_try_htm: bool,
    /// §3.4's predictive refinement ("one could use the online statistics
    /// … to predict a priori whether certain readers are likely to incur
    /// capacity exceptions and run them directly using the uninstrumented
    /// execution path"): after a capacity abort, a section skips its
    /// optimistic HTM attempts for a window of executions before probing
    /// again. Without real hardware the probe-everything policy would pay
    /// the simulator's (much higher) per-access instrumentation cost on
    /// every long read, so the predictive variant is the default here.
    pub adaptive_reader_htm: bool,
    /// Retry budget for readers' optimistic HTM attempts.
    pub reader_retry: RetryPolicy,
    /// Retry budget for writers.
    pub writer_retry: RetryPolicy,
    /// δ slack for writer synchronization.
    pub delta: DeltaPolicy,
    /// §3.3: use a versioned SGL so readers cannot starve behind a stream
    /// of fallback writers (the extension the authors describe but omit).
    pub versioned_sgl: bool,
    /// Sample critical-section durations on every thread instead of only
    /// thread 0 (the paper samples a single thread to cut overhead).
    pub sample_all_threads: bool,
    /// §3.4: readers park with a timed wait (using the writer's advertised
    /// end time) instead of polling the writer's state flag.
    pub timed_reader_wait: bool,
    /// Maximum distinct [`sprwl_locks::SectionId`]s the duration estimator
    /// tracks.
    pub max_sections: usize,
    /// Duration estimate (ns) advertised for sections that have never been
    /// sampled, so the first writer through a cold section still publishes
    /// a plausible end time instead of "ends now". 0 restores the old
    /// degenerate behaviour.
    pub default_section_estimate_ns: u64,
    /// Runtime self-tuning (see [`crate::tuner`]): watch each section's
    /// abort mix over a sliding window and adjust its policy knobs —
    /// boost δ-start under join-the-waiter (reader-caused) abort
    /// pressure, demote chronically capacity-aborting sections off the
    /// optimistic reader-HTM path, and (under `Adaptive` tracking)
    /// request the flags→SNZI switch from observed reader-scan pressure.
    /// Off by default: the tuner changes lock behaviour at runtime, which
    /// would perturb deterministic golden traces and static-config
    /// baselines that don't expect it.
    pub self_tuning: bool,
    /// Capacity stretching for big-footprint writers (ROT + suspend/resume
    /// + splitting; see [`StretchPolicy`]). Off by default.
    pub stretch: StretchPolicy,
    /// **Test-only fault injection**: skip the commit-time reader check
    /// (`check_for_readers`), deliberately re-introducing the torn-read
    /// window SpRWL's W-checkR step exists to close. Exists so the
    /// schedule-space explorer has a real ordering bug to find; never
    /// enable outside of tests.
    #[doc(hidden)]
    pub debug_skip_commit_reader_check: bool,
}

impl Default for SprwlConfig {
    fn default() -> Self {
        Self {
            scheduling: Scheduling::Full,
            reader_tracking: ReaderTracking::Flags,
            readers_try_htm: true,
            adaptive_reader_htm: true,
            reader_retry: RetryPolicy::PAPER_DEFAULT,
            writer_retry: RetryPolicy::PAPER_DEFAULT,
            delta: DeltaPolicy::HalfWriterDuration,
            versioned_sgl: false,
            sample_all_threads: false,
            timed_reader_wait: false,
            max_sections: 64,
            default_section_estimate_ns: crate::estimator::DEFAULT_SECTION_ESTIMATE_NS,
            self_tuning: false,
            stretch: StretchPolicy::OFF,
            debug_skip_commit_reader_check: false,
        }
    }
}

impl SprwlConfig {
    /// The §3.1 base algorithm (`NoSched` in Fig. 5): no scheduling, no
    /// optimistic reader HTM.
    pub fn no_sched() -> Self {
        Self {
            scheduling: Scheduling::NoSched,
            readers_try_htm: false,
            ..Self::default()
        }
    }

    /// The `RWait` ablation variant.
    pub fn rwait() -> Self {
        Self {
            scheduling: Scheduling::RWait,
            readers_try_htm: false,
            ..Self::default()
        }
    }

    /// The `RSync` ablation variant.
    pub fn rsync() -> Self {
        Self {
            scheduling: Scheduling::RSync,
            readers_try_htm: false,
            ..Self::default()
        }
    }

    /// The full algorithm (paper default).
    pub fn full() -> Self {
        Self::default()
    }

    /// The full algorithm with SNZI reader tracking.
    pub fn with_snzi() -> Self {
        Self {
            reader_tracking: ReaderTracking::Snzi,
            ..Self::default()
        }
    }

    /// The full algorithm with BRAVO-biased reader admission (SNZI as the
    /// revocation backstop).
    pub fn with_bravo() -> Self {
        Self {
            reader_tracking: ReaderTracking::Bravo,
            ..Self::default()
        }
    }

    /// The full algorithm with self-tuning reader tracking (§5 future
    /// work: automatically enable/disable SNZI).
    pub fn adaptive() -> Self {
        Self {
            reader_tracking: ReaderTracking::Adaptive,
            ..Self::default()
        }
    }

    /// The full algorithm with the runtime per-section self-tuner on.
    pub fn self_tuning() -> Self {
        Self {
            self_tuning: true,
            ..Self::default()
        }
    }

    /// The full algorithm with capacity stretching for writers on.
    pub fn stretching() -> Self {
        Self {
            stretch: StretchPolicy::ON,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_hierarchy() {
        assert!(!Scheduling::NoSched.readers_wait());
        assert!(Scheduling::RWait.readers_wait());
        assert!(!Scheduling::RWait.readers_join());
        assert!(Scheduling::RSync.readers_join());
        assert!(!Scheduling::RSync.writers_wait());
        assert!(Scheduling::Full.writers_wait());
    }

    #[test]
    fn delta_resolution() {
        assert_eq!(DeltaPolicy::HalfWriterDuration.resolve(1000), 500);
        assert_eq!(DeltaPolicy::Zero.resolve(1000), 0);
        assert_eq!(DeltaPolicy::FixedNs(42).resolve(1000), 42);
    }

    #[test]
    fn variant_constructors_match_ablation_names() {
        assert_eq!(SprwlConfig::no_sched().scheduling.label(), "NoSched");
        assert_eq!(SprwlConfig::rwait().scheduling.label(), "RWait");
        assert_eq!(SprwlConfig::rsync().scheduling.label(), "RSync");
        assert_eq!(SprwlConfig::full().scheduling.label(), "SpRWL");
        assert_eq!(
            SprwlConfig::with_snzi().reader_tracking,
            ReaderTracking::Snzi
        );
        assert_eq!(
            SprwlConfig::with_bravo().reader_tracking,
            ReaderTracking::Bravo
        );
    }
}
