//! Runtime per-section self-tuning: the online half of the observability
//! loop.
//!
//! The offline contention analyzer (`sprwl-trace`'s `analyze` module)
//! distills a capture into per-section rollups after the fact; this module
//! maintains the same rollups *in process* — a lightweight per-section
//! aggregator fed by the existing abort/commit instrumentation, no trace
//! buffer involved — and turns them into policy adjustments while the
//! workload runs:
//!
//! * **δ-start boost**: a section whose writers keep losing the
//!   commit-time reader check (`AbortCause::Reader` — the join-the-waiter
//!   pattern where synchronized readers repeatedly doom the same writer)
//!   gets extra δ slack, so the delayed retry aims further past the last
//!   reader. The boost doubles under sustained pressure, caps, and decays
//!   once the pressure disappears.
//! * **Reader-HTM demotion**: a section whose attempts chronically
//!   overflow capacity is parked off the optimistic reader-HTM path for a
//!   long window (a stronger form of the §3.4 predictive skip budget).
//! * **Tracking-mode switch**: under `ReaderTracking::Adaptive`, heavy
//!   data-conflict pressure on a section's writers — the signature of
//!   commit-time flag scans colliding with reader announcements — asks the
//!   [`crate::adaptive`] machinery for the flags→SNZI transition, reusing
//!   its drain protocol and hysteresis clock.
//!
//! Every decision is emitted as a [`EventKind::TuneDecision`] trace event
//! *outside* the critical section, so the loop is observable (and, under
//! sampled tracing, never suppressed).
//!
//! Counters are per-section [`Slot`]s updated with racy read-modify-write,
//! like the §3.4 skip budget: this is a statistical policy, and a lost
//! increment merely delays a decision by a few sections. Windows are
//! counted in section completions, not wall time, so deterministic-
//! scheduler runs tune at reproducible points.

use htm_sim::{clock, Abort, TxKind};
use sprwl_locks::{AbortCause, LockThread, SectionId};
use sprwl_trace::EventKind;

use crate::adaptive::{MODE_FLAGS, MODE_SNZI, SWITCH_COOLDOWN_NS};
use crate::lock::{slots, Slot, SpRwl, HTM_PROBE_WINDOW};
use crate::writer::{STRETCH_DIRECT, STRETCH_ROT, STRETCH_SPLIT};

/// Section completions per tuning window.
pub(crate) const TUNE_WINDOW: u64 = 32;
/// Reader/capacity aborts per window that count as pressure.
pub(crate) const PRESSURE_THRESHOLD: u64 = TUNE_WINDOW / 4;
/// Conflict aborts per window that suggest the flags scan itself is hot.
pub(crate) const SCAN_PRESSURE_THRESHOLD: u64 = TUNE_WINDOW / 2;
/// First δ boost, nanoseconds; doubles per pressured window.
pub const DELTA_BOOST_STEP_NS: u64 = 500;
/// δ boost ceiling, nanoseconds.
pub const DELTA_BOOST_MAX_NS: u64 = 50_000;
/// Demotion parks a section off reader HTM for this many executions.
pub(crate) const DEMOTE_WINDOW: u64 = HTM_PROBE_WINDOW * 8;

/// Per-section counters and knobs. Allocated once, sized like the other
/// per-section tables (`cfg.max_sections`).
#[derive(Debug)]
pub(crate) struct SectionTuner {
    /// Completions since the window opened.
    execs: Box<[Slot]>,
    /// `AbortCause::Reader` aborts in the window.
    reader_aborts: Box<[Slot]>,
    /// Capacity(-ROT) aborts in the window.
    capacity_aborts: Box<[Slot]>,
    /// Conflict(-ROT) aborts in the window.
    conflict_aborts: Box<[Slot]>,
    /// BRAVO bias revocations paid by this section's writers in the window.
    revokes: Box<[Slot]>,
    /// The per-section δ-start boost currently in force, nanoseconds.
    delta_boost_ns: Box<[Slot]>,
}

impl SectionTuner {
    pub(crate) fn new(max_sections: usize) -> Self {
        Self {
            execs: slots(max_sections, 0),
            reader_aborts: slots(max_sections, 0),
            capacity_aborts: slots(max_sections, 0),
            conflict_aborts: slots(max_sections, 0),
            revokes: slots(max_sections, 0),
            delta_boost_ns: slots(max_sections, 0),
        }
    }
}

#[inline]
fn bump(slot: &Slot) {
    slot.store(slot.load() + 1);
}

/// Takes a window counter's value and rearms it.
#[inline]
fn take(slot: &Slot) -> u64 {
    let v = slot.load();
    slot.store(0);
    v
}

impl SpRwl {
    /// Feeds one speculative abort into the tuner's per-section window.
    /// Called next to the stats/trace abort recording on both roles' HTM
    /// loops; a no-op unless `cfg.self_tuning` is set.
    #[inline]
    pub(crate) fn tuner_note_abort(&self, sec: SectionId, abort: Abort, kind: TxKind) {
        let Some(tun) = &self.tuner else { return };
        let i = sec.index();
        match AbortCause::classify(abort, kind) {
            AbortCause::Reader => bump(&tun.reader_aborts[i]),
            AbortCause::Capacity | AbortCause::CapacityRot => bump(&tun.capacity_aborts[i]),
            AbortCause::Conflict | AbortCause::ConflictRot => bump(&tun.conflict_aborts[i]),
            _ => {}
        }
    }

    /// Feeds one BRAVO bias revocation (the writer drained the visible-
    /// readers table before even attempting) into the window. Revocations
    /// happen *before* the transaction, so the abort feed never sees them —
    /// without this the bias knob is blind to exactly the cost it is
    /// supposed to manage.
    #[inline]
    pub(crate) fn tuner_note_revoke(&self, sec: SectionId) {
        let Some(tun) = &self.tuner else { return };
        bump(&tun.revokes[sec.index()]);
    }

    /// Closes out one section completion; every `TUNE_WINDOW`-th completion
    /// of a section evaluates its window and may adjust its knobs. Called
    /// after the `SectionEnd` trace event, outside the critical section, so
    /// emitted decisions are never sampled away and never extend a
    /// transaction's footprint.
    pub(crate) fn tuner_after_section(&self, t: &mut LockThread<'_>, sec: SectionId) {
        let Some(tun) = &self.tuner else { return };
        let i = sec.index();
        let execs = tun.execs[i].load() + 1;
        if execs < TUNE_WINDOW {
            tun.execs[i].store(execs);
            return;
        }
        tun.execs[i].store(0);
        let readers = take(&tun.reader_aborts[i]);
        let capacity = take(&tun.capacity_aborts[i]);
        let conflicts = take(&tun.conflict_aborts[i]);
        let revokes = take(&tun.revokes[i]);

        // (a) δ-start: writers on this section keep dying to the reader
        // check → give their timed retry more slack; decay when quiet.
        let boost = tun.delta_boost_ns[i].load();
        if readers >= PRESSURE_THRESHOLD {
            let new = if boost == 0 {
                DELTA_BOOST_STEP_NS
            } else {
                (boost * 2).min(DELTA_BOOST_MAX_NS)
            };
            if new != boost {
                tun.delta_boost_ns[i].store(new);
                t.trace.push(EventKind::TuneDecision {
                    knob: "delta-boost",
                    sec: sec.0,
                    value: new,
                });
            }
        } else if readers == 0 && boost > 0 {
            let new = boost / 2;
            tun.delta_boost_ns[i].store(new);
            t.trace.push(EventKind::TuneDecision {
                knob: "delta-boost",
                sec: sec.0,
                value: new,
            });
        }

        // (b) chronic capacity overflow → park the section off the
        // optimistic reader-HTM path for a long window (reusing the §3.4
        // skip budget the read path already consults).
        if capacity >= PRESSURE_THRESHOLD {
            self.htm_skip[i].store(DEMOTE_WINDOW);
            t.trace.push(EventKind::TuneDecision {
                knob: "htm-skip",
                sec: sec.0,
                value: DEMOTE_WINDOW,
            });
        }

        // (c) adaptive tracking: sustained conflict pressure while scanning
        // flags suggests the commit-time scan itself is the hot set —
        // request the flags→SNZI transition through the existing protocol,
        // honouring its hysteresis clock.
        if self.readers.mode_cell.is_some() && conflicts >= SCAN_PRESSURE_THRESHOLD {
            let now = clock::now();
            if now.saturating_sub(self.last_switch_ns.load()) >= SWITCH_COOLDOWN_NS {
                let mem = t.ctx.htm().memory();
                if self.mode(mem) == MODE_FLAGS {
                    self.last_switch_ns.store(now);
                    let d = t.ctx.direct();
                    self.switch_to_snzi(&d, t.tid(), mem);
                    if self.mode(mem) == MODE_SNZI {
                        t.trace.push(EventKind::TuneDecision {
                            knob: "tracking-mode",
                            sec: sec.0,
                            value: MODE_SNZI,
                        });
                    }
                }
            }
        }

        // (d) BRAVO bias: sustained writer pressure means the bias is
        // hurting — either reader-check aborts keep killing writers, or the
        // writers keep paying the *pre-transaction* revocation drain, which
        // the abort feed never sees (revocations happen before the attempt,
        // so a window could show zero aborts while every writer walks the
        // visible-readers table). Stop readers from re-arming the bias,
        // making `BIAS_OFF` sticky after the next revocation. A fully quiet
        // window — no reader aborts *and* no revocations — hands the fast
        // path back to the readers.
        if self.cfg.reader_tracking == crate::config::ReaderTracking::Bravo {
            let pressured = readers >= PRESSURE_THRESHOLD || revokes >= PRESSURE_THRESHOLD;
            if pressured && self.readers.bias_enabled() {
                self.readers.set_bias_enabled(false);
                t.trace.push(EventKind::TuneDecision {
                    knob: "bravo-bias",
                    sec: sec.0,
                    value: 0,
                });
            } else if readers == 0 && revokes == 0 && !self.readers.bias_enabled() {
                self.readers.set_bias_enabled(true);
                t.trace.push(EventKind::TuneDecision {
                    knob: "bravo-bias",
                    sec: sec.0,
                    value: 1,
                });
            }
        }

        // (e) capacity-stretching escalation: when stretching is on, the
        // tuner owns the per-section sticky rung (direct → ROT → split),
        // escalating under sustained capacity pressure and decaying one
        // rung per fully clean window so a workload phase-change can find
        // its way back to the cheap path. Profiles without suspend/resume
        // have no ROT rung: 0 ↔ 2 directly.
        if self.cfg.stretch.enabled {
            let supports_rot = t.ctx.htm().config().capacity.supports_rot();
            let level = self.stretch_level[i].load();
            let new = if capacity >= PRESSURE_THRESHOLD {
                match level {
                    STRETCH_DIRECT if supports_rot => STRETCH_ROT,
                    STRETCH_DIRECT | STRETCH_ROT => STRETCH_SPLIT,
                    other => other,
                }
            } else if capacity == 0 {
                match level {
                    STRETCH_SPLIT if supports_rot => STRETCH_ROT,
                    STRETCH_SPLIT | STRETCH_ROT => STRETCH_DIRECT,
                    other => other,
                }
            } else {
                level
            };
            if new != level {
                self.stretch_level[i].store(new);
                t.trace.push(EventKind::TuneDecision {
                    knob: "stretch-level",
                    sec: sec.0,
                    value: new,
                });
            }
        }
    }

    /// The δ-start boost currently in force for `sec` (0 when the tuner is
    /// off). Added on top of the configured [`crate::DeltaPolicy`] by the
    /// writer-synchronization wait.
    #[inline]
    pub(crate) fn tuner_delta_boost(&self, sec: SectionId) -> u64 {
        match &self.tuner {
            Some(tun) => tun.delta_boost_ns[sec.index()].load(),
            None => 0,
        }
    }

    /// Test hook: the per-section δ boost the tuner has applied.
    #[doc(hidden)]
    pub fn debug_delta_boost(&self, sec: SectionId) -> u64 {
        self.tuner_delta_boost(sec)
    }

    /// Test hook: the per-section reader-HTM skip budget (shared between
    /// the §3.4 predictive policy and the tuner's demotion).
    #[doc(hidden)]
    pub fn debug_htm_skip(&self, sec: SectionId) -> u64 {
        self.htm_skip[sec.index()].load()
    }
}
