//! Cross-lock composition: one critical section spanning **two** SpRWL
//! locks guarding disjoint data.
//!
//! Lock-based code regularly nests critical sections ("move a record from
//! table A to table B"), and linearizability is compositional — a history
//! over two linearizable locks must itself be linearizable over the union
//! of their data. [`SpRwlPair`] provides the composed section the torture
//! harness exercises to test exactly that guarantee: the section enters
//! the *outer* lock as a writer and the *inner* lock in either role
//! ([`InnerMode`]), while other threads keep using each lock individually.
//!
//! ## How the composition stays correct
//!
//! **Speculative path.** The whole composed body runs in a single hardware
//! transaction that subscribes *both* fallback locks (any fallback
//! acquisition on either side dooms it) and re-runs the commit-time reader
//! check on the outer lock always and on the inner lock when the section
//! writes the inner bank. Inner-bank *reads* need no flag check: a
//! conflicting inner writer either runs in HTM (the conflict is detected
//! in hardware) or holds the inner fallback (our subscription aborts us).
//!
//! **Fallback path.** Locks are acquired in the fixed global order
//! *outer, then inner*, which rules out cross-lock deadlock among
//! composed sections. For an inner *write* the section takes the inner
//! fallback too, with the same bypassing-reader and active-reader waits a
//! plain fallback writer performs. For an inner *read* it uses the real
//! reader admission protocol (announce, defer to a fallback holder,
//! re-announce): holding the outer fallback while waiting is safe because
//! an inner fallback holder never waits on the outer lock — it only
//! drains *flagged* inner readers, and this section only stays flagged
//! once the inner fallback is free (or the §3.3 version handshake has
//! entitled it to bypass, which the holder honours before executing).

use htm_sim::clock;
use htm_sim::{Htm, SimMemory, TxKind};
use sprwl_locks::{CommitMode, LockThread, Role, SectionBody, SectionId};
use sprwl_trace::{EventKind, TraceRole};

use crate::lock::{SpRwl, NONE, STATE_EMPTY, STATE_WRITER};
use crate::reader::note_abort;
use crate::SprwlConfig;

/// The role the composed section takes on the **inner** lock. (On the
/// outer lock it is always a writer.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerMode {
    /// Reader-in-writer nesting: the section only reads the inner bank.
    Read,
    /// Writer-in-writer nesting: the section writes both banks.
    Write,
}

impl InnerMode {
    /// Stable label for diagnostics and torture case names.
    pub fn label(self) -> &'static str {
        match self {
            InnerMode::Read => "read-in-writer",
            InnerMode::Write => "write-in-writer",
        }
    }
}

/// Two SpRWL locks with a composed two-lock critical section.
///
/// The pair owns both locks; plain single-lock sections go straight to
/// [`SpRwlPair::outer`] / [`SpRwlPair::inner`] (they implement
/// [`sprwl_locks::RwSync`] as usual), composed sections through
/// [`SpRwlPair::composed_section`]. Every composed section acquires in
/// the fixed order outer-then-inner.
#[derive(Debug)]
pub struct SpRwlPair {
    /// The lock the composed section enters first, always as a writer.
    pub outer: SpRwl,
    /// The lock the composed section enters second, in either role.
    pub inner: SpRwl,
}

impl SpRwlPair {
    /// Creates the pair over one HTM substrate with per-lock configs.
    pub fn new(htm: &Htm, outer: SprwlConfig, inner: SprwlConfig) -> Self {
        Self {
            outer: SpRwl::new(htm, outer),
            inner: SpRwl::new(htm, inner),
        }
    }

    /// Creates the pair with the paper-default configuration on both locks.
    pub fn with_defaults(htm: &Htm) -> Self {
        Self::new(htm, SprwlConfig::default(), SprwlConfig::default())
    }

    /// Verifies both locks are quiescent (torture oracle hook).
    ///
    /// # Errors
    ///
    /// Describes the first piece of non-quiescent state found, prefixed
    /// with the lock it belongs to.
    pub fn check_quiescent(&self, mem: &SimMemory) -> Result<(), String> {
        use sprwl_locks::RwSync;
        self.outer
            .check_quiescent(mem)
            .map_err(|e| format!("outer: {e}"))?;
        self.inner
            .check_quiescent(mem)
            .map_err(|e| format!("inner: {e}"))
    }

    /// Executes `f` with the outer lock held as a writer and the inner
    /// lock in `inner_mode`, atomically with respect to both locks.
    ///
    /// Records exactly one writer commit in `t.stats` (the composed
    /// section is one atomic step, not two).
    pub fn composed_section(
        &self,
        t: &mut LockThread<'_>,
        sec: SectionId,
        inner_mode: InnerMode,
        f: SectionBody<'_>,
    ) -> u64 {
        let start = clock::now();
        let tid = t.tid();
        let mem = t.ctx.htm().memory();
        t.trace.push(EventKind::SectionBegin {
            role: TraceRole::Writer,
            sec: sec.0,
        });

        // Writer advertisement on each lock we write, so newly arriving
        // readers of that lock defer to us (Alg. 2). Held across retries
        // and the fallback, cleared at commit — as in the plain write path.
        let adv_outer = self.outer.cfg.scheduling.readers_wait();
        if adv_outer {
            self.outer.clock_w[tid].store(self.outer.est.end_time(sec));
            t.ctx
                .direct()
                .store(self.outer.readers.state[tid], STATE_WRITER);
        }
        let adv_inner = inner_mode == InnerMode::Write && self.inner.cfg.scheduling.readers_wait();
        if adv_inner {
            self.inner.clock_w[tid].store(self.inner.est.end_time(sec));
            t.ctx
                .direct()
                .store(self.inner.readers.state[tid], STATE_WRITER);
        }

        let mut attempts = 0u32;
        let committed = loop {
            self.outer.fallback.wait_until_free(mem);
            self.inner.fallback.wait_until_free(mem);
            attempts += 1;
            t.trace.push(EventKind::TxAttempt {
                role: TraceRole::Writer,
                attempt: attempts,
            });
            match t.ctx.txn(TxKind::Htm, |tx| {
                self.outer.fallback.subscribe(tx)?;
                self.inner.fallback.subscribe(tx)?;
                let t0 = clock::now();
                let r = f(tx)?;
                let dur = clock::now() - t0;
                self.outer.check_for_readers(tx, tid)?;
                if inner_mode == InnerMode::Write {
                    self.inner.check_for_readers(tx, tid)?;
                }
                let fp = (tx.read_footprint() as u32, tx.write_footprint() as u32);
                Ok((r, dur, fp))
            }) {
                Ok((r, dur, (read_fp, write_fp))) => {
                    self.outer.est.record(tid, sec, dur);
                    self.adapt_both(t, dur);
                    t.trace.push(EventKind::TxCommit {
                        mode: CommitMode::Htm.label(),
                        read_fp,
                        write_fp,
                    });
                    break Some(r);
                }
                Err(abort) => {
                    note_abort(t, abort, TxKind::Htm);
                    // No δ-timed retry here: the single-lock heuristic
                    // targets *that* lock's last reader, which has no
                    // two-lock analogue. Retry immediately or fall back.
                    if !self.outer.cfg.writer_retry.should_retry(attempts, abort) {
                        break None;
                    }
                }
            }
        };

        if let Some(r) = committed {
            if adv_inner {
                t.ctx
                    .direct()
                    .store(self.inner.readers.state[tid], STATE_EMPTY);
                self.inner.clock_w[tid].store(0);
            }
            if adv_outer {
                t.ctx
                    .direct()
                    .store(self.outer.readers.state[tid], STATE_EMPTY);
                self.outer.clock_w[tid].store(0);
            }
            let latency_ns = clock::now() - start;
            t.stats
                .record_commit(Role::Writer, CommitMode::Htm, latency_ns);
            t.trace.push(EventKind::SectionEnd {
                role: TraceRole::Writer,
                sec: sec.0,
                mode: CommitMode::Htm.label(),
                latency_ns,
            });
            return r;
        }

        // Fallback: outer first, then inner — the global order.
        let d = t.ctx.direct();
        let version = self.outer.fallback.acquire(&d);
        t.trace.push(EventKind::FallbackAcquire { version });
        if self.outer.cfg.versioned_sgl {
            self.outer.wait_for_bypassing_readers(version, &mut t.trace);
        }
        self.outer.wait_for_readers(&d, tid);

        let inner_reg = match inner_mode {
            InnerMode::Write => {
                let v = self.inner.fallback.acquire(&d);
                t.trace.push(EventKind::FallbackAcquire { version: v });
                if self.inner.cfg.versioned_sgl {
                    self.inner.wait_for_bypassing_readers(v, &mut t.trace);
                }
                self.inner.wait_for_readers(&d, tid);
                None
            }
            InnerMode::Read => {
                // The genuine reader admission protocol on the inner lock
                // (Alg. 1 / §3.3): announce, defer to a fallback holder,
                // re-announce. See the module docs for why waiting here
                // with the outer fallback held cannot deadlock.
                let reg = loop {
                    let reg = self.inner.flag_reader(&d, tid);
                    let registered = self.inner.waiting_version[tid].load();
                    if self.inner.reader_may_proceed(tid, mem) {
                        if self.inner.cfg.versioned_sgl && registered != NONE {
                            t.trace.push(EventKind::SglBypassEnter { registered });
                        }
                        break reg;
                    }
                    self.inner.unflag_reader(&d, tid, reg);
                    self.inner.reader_wait_for_gl(tid, mem);
                };
                t.trace.push(EventKind::ReaderArrive);
                Some(reg)
            }
        };

        let t0 = clock::now();
        let mut acc = t.ctx.direct();
        let r = f(&mut acc).expect("fallback composed sections cannot abort");
        let dur = clock::now() - t0;
        self.outer.est.record(tid, sec, dur);
        self.adapt_both(t, dur);

        // Teardown in reverse acquisition order; on each lock, withdraw
        // the advertisement *before* releasing (readers woken by the
        // release scan state/clock_w immediately).
        match inner_reg {
            Some(reg) => {
                self.inner.unflag_reader(&d, tid, reg);
                t.trace.push(EventKind::ReaderDepart);
            }
            None => {
                if adv_inner {
                    t.ctx
                        .direct()
                        .store(self.inner.readers.state[tid], STATE_EMPTY);
                    self.inner.clock_w[tid].store(0);
                }
                self.inner.fallback.release(&d);
                t.trace.push(EventKind::FallbackRelease);
            }
        }
        if adv_outer {
            t.ctx
                .direct()
                .store(self.outer.readers.state[tid], STATE_EMPTY);
            self.outer.clock_w[tid].store(0);
        }
        self.outer.fallback.release(&d);
        t.trace.push(EventKind::FallbackRelease);

        let latency_ns = clock::now() - start;
        t.stats
            .record_commit(Role::Writer, CommitMode::Gl, latency_ns);
        t.trace.push(EventKind::SectionEnd {
            role: TraceRole::Writer,
            sec: sec.0,
            mode: CommitMode::Gl.label(),
            latency_ns,
        });
        r
    }

    /// Feed the adaptive policies of both locks — the composed section
    /// occupied both, whatever its inner role.
    fn adapt_both(&self, t: &mut LockThread<'_>, dur: u64) {
        self.outer.adapt_after_section(t, false, dur);
        self.inner.adapt_after_section(t, false, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::HtmConfig;
    use sprwl_locks::{RetryPolicy, RwSync};

    const SEC: SectionId = SectionId(2);

    #[test]
    fn composed_sections_update_both_banks() {
        let htm = Htm::new(HtmConfig::default(), 4096);
        let pair = SpRwlPair::with_defaults(&htm);
        let a = htm.memory().alloc_line_aligned(1).cell(0);
        let b = htm.memory().alloc_line_aligned(1).cell(0);
        let mut t = LockThread::new(htm.thread(0));
        for mode in [InnerMode::Write, InnerMode::Read] {
            pair.composed_section(&mut t, SEC, mode, &mut |m| {
                let va = m.read(a)?;
                m.write(a, va + 1)?;
                let vb = m.read(b)?;
                if mode == InnerMode::Write {
                    m.write(b, vb + 1)?;
                }
                Ok(va * 100 + vb)
            });
        }
        // Exactly one *writer* commit per composed section, never a
        // separate reader commit for the inner entry.
        let writer_commits = t.stats.commits_by(Role::Writer, CommitMode::Htm)
            + t.stats.commits_by(Role::Writer, CommitMode::Gl);
        assert_eq!(writer_commits, 2);
        assert_eq!(t.stats.total_commits(), 2);
        drop(t); // release the thread context before reclaiming tid 0
        let d = htm.thread(0).direct();
        assert_eq!(d.load(a), 2);
        assert_eq!(d.load(b), 1);
        pair.check_quiescent(htm.memory()).expect("quiescent");
    }

    #[test]
    fn composed_fallback_runs_under_both_locks() {
        let htm = Htm::new(HtmConfig::default(), 4096);
        let outer_cfg = SprwlConfig {
            writer_retry: RetryPolicy {
                max_attempts: 1,
                capacity_fallback_immediate: true,
            },
            ..SprwlConfig::default()
        };
        let pair = SpRwlPair::new(&htm, outer_cfg, SprwlConfig::default());
        let a = htm.memory().alloc_line_aligned(1).cell(0);
        let b = htm.memory().alloc_line_aligned(1).cell(0);

        // A reader flagged on the outer lock aborts the single HTM attempt
        // (commit-time check), forcing the composed fallback; it unflags
        // only once it *sees* the fallback acquired, so the path is taken
        // deterministically.
        std::thread::scope(|s| {
            let pair = &pair;
            let htm = &htm;
            s.spawn(move || {
                let ctx = htm.thread(1);
                let d1 = ctx.direct();
                let reg = pair.outer.flag_reader(&d1, 1);
                let mut spin = clock::SpinWait::new();
                while !pair.outer.debug_fallback_peek(htm.memory()).1 {
                    spin.snooze();
                }
                pair.outer.unflag_reader(&d1, 1, reg);
            });
            s.spawn(move || {
                let mut t = LockThread::new(htm.thread(0));
                // Only start once the reader flag is up, so the first (and
                // only) HTM attempt is guaranteed to hit the commit check.
                let mut spin = clock::SpinWait::new();
                while !pair.outer.any_reader_flag_set(htm.memory(), 0) {
                    spin.snooze();
                }
                let r = pair.composed_section(&mut t, SEC, InnerMode::Write, &mut |m| {
                    let va = m.read(a)?;
                    m.write(a, va + 1)?;
                    let vb = m.read(b)?;
                    m.write(b, vb + 1)?;
                    Ok(va + vb)
                });
                assert_eq!(r, 0);
                assert_eq!(t.stats.commits_by(Role::Writer, CommitMode::Gl), 1);
            });
        });
        let d = htm.thread(0).direct();
        assert_eq!(d.load(a), 1);
        assert_eq!(d.load(b), 1);
        pair.check_quiescent(htm.memory()).expect("quiescent");
    }

    #[test]
    fn concurrent_plain_and_composed_sections_stay_consistent() {
        let htm = Htm::new(HtmConfig::default(), 8192);
        let pair = SpRwlPair::with_defaults(&htm);
        let a = htm.memory().alloc_line_aligned(1).cell(0);
        let b = htm.memory().alloc_line_aligned(1).cell(0);
        let iters = 60u64;

        std::thread::scope(|s| {
            let pair = &pair;
            let htm = &htm;
            // Composed write-in-writer increments both banks.
            s.spawn(move || {
                let mut t = LockThread::new(htm.thread(0));
                for _ in 0..iters {
                    pair.composed_section(&mut t, SEC, InnerMode::Write, &mut |m| {
                        let va = m.read(a)?;
                        m.write(a, va + 1)?;
                        let vb = m.read(b)?;
                        m.write(b, vb + 1)?;
                        Ok(va)
                    });
                }
            });
            // Composed read-in-writer increments outer, checks inner.
            s.spawn(move || {
                let mut t = LockThread::new(htm.thread(1));
                for _ in 0..iters {
                    pair.composed_section(&mut t, SEC, InnerMode::Read, &mut |m| {
                        let va = m.read(a)?;
                        m.write(a, va + 1)?;
                        m.read(b)
                    });
                }
            });
            // Plain writer on the inner lock.
            s.spawn(move || {
                let mut t = LockThread::new(htm.thread(2));
                for _ in 0..iters {
                    pair.inner.write_section(&mut t, SectionId(1), &mut |m| {
                        let vb = m.read(b)?;
                        m.write(b, vb + 1)?;
                        Ok(vb)
                    });
                }
            });
            // Plain reader on the outer lock.
            s.spawn(move || {
                let mut t = LockThread::new(htm.thread(3));
                for _ in 0..iters {
                    pair.outer
                        .read_section(&mut t, SectionId(0), &mut |m| m.read(a));
                }
            });
        });

        let d = htm.thread(0).direct();
        assert_eq!(d.load(a), 2 * iters);
        assert_eq!(d.load(b), 2 * iters);
        pair.check_quiescent(htm.memory()).expect("quiescent");
    }

    #[test]
    fn inner_mode_labels_are_stable() {
        assert_eq!(InnerMode::Read.label(), "read-in-writer");
        assert_eq!(InnerMode::Write.label(), "write-in-writer");
    }
}
