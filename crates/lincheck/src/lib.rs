//! # sprwl-lincheck — offline linearizability checking for recorded histories
//!
//! The torture harness's end-state oracle (mirror-pair arithmetic,
//! quiescence) catches many synchronization bugs, but it judges only the
//! *final* state: a non-linearizable interleaving that happens to restore
//! the invariants slips through. This crate closes that gap in the
//! Wing–Gong / Porcupine style: it consumes the per-thread operation
//! histories the harness embeds in its `sprwl-trace` event streams and
//! searches for a **linearization** — a single sequential order of all
//! operations that (a) respects each thread's program order, (b) respects
//! real time (an operation that *returned* before another was *invoked*
//! must precede it), and (c) replays correctly against a sequential
//! register-bank model.
//!
//! ## History model
//!
//! An operation ([`Op`]) is an atomic step over a bank of `u64` registers:
//! a set of **reads** `(register, observed value)` plus a set of
//! **increments** `(register, observed old value)` — fetch-and-add by one.
//! This uniformly covers the torture workloads: a read section is all
//! reads, a mirror-pair write section is one increment (the section
//! returns the pre-increment value), and a composed cross-lock section is
//! increments on one lock's bank plus reads or increments on the other's
//! (registers are namespaced per bank, so the two-lock product is the same
//! model over the union of registers — linearizability of the combined
//! history is exactly the composition guarantee under test).
//!
//! ## Timestamps and soundness
//!
//! Each op's `inv` mark is pushed *before* the section is invoked and its
//! `resp` mark *after* it returns, on the recording thread, so the
//! recorded interval **contains** the true execution interval. Both
//! scheduler substrates provide globally comparable timestamps (one
//! process-wide monotonic clock free-running; one global virtual clock
//! deterministic), so `resp(A) < inv(B)` soundly implies A really
//! completed before B began. Widened intervals only *weaken* the
//! real-time order, so the checker can produce false *negatives*
//! (accepting an interleaving tighter timestamps would reject) but never
//! false positives: a `NonLinearizable` verdict is trustworthy.
//!
//! ## Search
//!
//! [`check`] runs an explicit-stack DFS over the pending-operation
//! frontier: at each step, any thread's next unlinearized op whose
//! invocation is not preceded (in real time) by another thread's pending
//! response is a candidate; applying it must match the model. Visited
//! frontiers are memoized — the register bank is a pure function of the
//! per-thread progress vector, so the vector alone is the state key. A
//! configurable node budget turns pathological histories into
//! [`Verdict::Unknown`] instead of a hang.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod checker;
pub mod mutate;
pub mod synth;

pub use checker::{check, CheckConfig, Verdict};

use sprwl_trace::history::{marks_from_jsonl, marks_of, MarkHistory, MarkRecord};
use sprwl_trace::ThreadTrace;

/// The mark labels of the history encoding, shared with every recorder
/// (the torture workers push these; the extractor consumes them).
pub mod labels {
    /// Invocation: pushed before the critical section is entered.
    /// Payload: `a` = per-thread op sequence number, `b` = op kind tag
    /// (free-form, diagnostics only).
    pub const INV: &str = "lin-inv";
    /// One observed read. Payload: `a` = register, `b` = observed value.
    pub const READ: &str = "lin-read";
    /// One observed increment. Payload: `a` = register, `b` = observed
    /// old value (the fetch-and-add return).
    pub const WRITE: &str = "lin-write";
    /// Response: pushed after the critical section returned.
    /// Payload: `a` = per-thread op sequence number, `b` unused.
    pub const RET: &str = "lin-ret";
}

/// One completed operation: an atomic step over the register bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// The recording thread.
    pub tid: u32,
    /// Per-thread sequence number (from the `lin-inv` payload).
    pub seq: u64,
    /// Op-kind tag (from the `lin-inv` payload; diagnostics only).
    pub kind: u64,
    /// Invocation timestamp (at or before the true invocation).
    pub inv: u64,
    /// Response timestamp (at or after the true response).
    pub resp: u64,
    /// Observed reads: `(register, value)`.
    pub reads: Vec<(u32, u64)>,
    /// Observed increments: `(register, old value)`.
    pub incrs: Vec<(u32, u64)>,
}

/// A complete recorded history: each thread's completed operations in
/// program order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// Per-thread operation sequences, in recording order.
    pub threads: Vec<Vec<Op>>,
    /// Events lost to trace-ring overwrite across all threads. Non-zero
    /// means the mark streams have holes, so [`check`] answers
    /// [`Verdict::Unknown`] rather than judge an incomplete history.
    pub dropped_events: u64,
    /// Operations that invoked but never recorded a response (a thread
    /// that stopped mid-run, e.g. on a torture poison bail-out). They are
    /// excluded from the history; excluding a pending op only removes
    /// constraints, so it cannot manufacture a false violation.
    pub truncated_ops: u64,
}

impl History {
    /// Total completed operations.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Number of registers the sequential model needs (max index + 1).
    pub fn num_registers(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .flat_map(|o| o.reads.iter().chain(o.incrs.iter()))
            .map(|&(r, _)| r as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Extracts the history from in-memory traces (e.g.
    /// `CaseArtifacts::traces` from the torture harness).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed mark stream (a nested
    /// `lin-inv`, or an effect/response mark with no open operation in a
    /// thread that lost no events).
    pub fn from_traces(traces: &[ThreadTrace]) -> Result<Self, String> {
        Self::from_marks(&marks_of(traces))
    }

    /// Extracts the history from a JSONL trace dump — the exporter's
    /// output or a torture postmortem file.
    ///
    /// # Errors
    ///
    /// As for [`History::from_traces`], plus JSONL-level parse errors.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        Self::from_marks(&marks_from_jsonl(text)?)
    }

    /// Assembles per-thread op sequences from a normalized mark stream.
    fn from_marks(marks: &MarkHistory) -> Result<Self, String> {
        let mut h = History {
            dropped_events: marks.total_dropped(),
            ..History::default()
        };
        for tid in marks.tids() {
            let lost_events = marks.dropped.iter().any(|&(t, _)| t == tid);
            let stream: Vec<&MarkRecord> = marks.of_thread(tid).collect();
            let (ops, truncated) = thread_ops(tid, &stream, lost_events)?;
            h.truncated_ops += truncated;
            if !ops.is_empty() {
                h.threads.push(ops);
            }
        }
        Ok(h)
    }
}

/// Parses one thread's mark stream into `(completed ops, pending ops
/// dropped)`. `lost_events` means the thread's ring overflowed: orphan
/// effect/response marks at the head of the stream are then expected
/// (their `lin-inv` was overwritten) and skipped; in a complete stream
/// they are an encoding error.
fn thread_ops(
    tid: u32,
    stream: &[&MarkRecord],
    lost_events: bool,
) -> Result<(Vec<Op>, u64), String> {
    let mut ops = Vec::new();
    let mut open: Option<Op> = None;
    for m in stream {
        match m.label.as_str() {
            labels::INV => {
                if open.is_some() {
                    return Err(format!(
                        "thread {tid}: lin-inv (seq {}) while an op is still open",
                        m.a
                    ));
                }
                open = Some(Op {
                    tid,
                    seq: m.a,
                    kind: m.b,
                    inv: m.ts,
                    resp: 0,
                    reads: Vec::new(),
                    incrs: Vec::new(),
                });
            }
            labels::READ | labels::WRITE | labels::RET => match open.as_mut() {
                Some(op) => match m.label.as_str() {
                    labels::READ => op.reads.push((m.a as u32, m.b)),
                    labels::WRITE => op.incrs.push((m.a as u32, m.b)),
                    _ => {
                        op.resp = m.ts;
                        ops.push(open.take().expect("open op"));
                    }
                },
                None if lost_events && ops.is_empty() => {} // truncated head
                None => {
                    return Err(format!(
                        "thread {tid}: {} with no open op in a complete stream",
                        m.label
                    ))
                }
            },
            _ => {} // foreign marks (e.g. "torture-op") interleave freely
        }
    }
    let truncated = u64::from(open.is_some());
    Ok((ops, truncated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprwl_trace::{Event, EventKind};

    fn mark(ts: u64, label: &'static str, a: u64, b: u64) -> Event {
        Event {
            ts,
            kind: EventKind::Mark { label, a, b },
        }
    }

    fn trace(tid: u32, dropped: u64, events: Vec<Event>) -> ThreadTrace {
        ThreadTrace::full(tid, events, dropped)
    }

    #[test]
    fn extracts_complete_ops() {
        let traces = vec![trace(
            0,
            0,
            vec![
                mark(1, labels::INV, 0, 1),
                mark(5, labels::WRITE, 3, 7),
                mark(6, labels::RET, 0, 0),
                mark(8, labels::INV, 1, 0),
                mark(9, labels::READ, 3, 8),
                mark(9, labels::READ, 4, 0),
                mark(10, labels::RET, 1, 0),
            ],
        )];
        let h = History::from_traces(&traces).expect("well-formed");
        assert_eq!(h.total_ops(), 2);
        assert_eq!(h.num_registers(), 5);
        let t = &h.threads[0];
        assert_eq!((t[0].inv, t[0].resp), (1, 6));
        assert_eq!(t[0].incrs, vec![(3, 7)]);
        assert_eq!(t[1].reads, vec![(3, 8), (4, 0)]);
        assert_eq!(h.dropped_events, 0);
    }

    #[test]
    fn pending_tail_op_is_truncated() {
        let traces = vec![trace(
            0,
            0,
            vec![
                mark(1, labels::INV, 0, 1),
                mark(2, labels::RET, 0, 0),
                mark(3, labels::INV, 1, 1), // never returns (poison bail)
            ],
        )];
        let h = History::from_traces(&traces).expect("well-formed");
        assert_eq!(h.total_ops(), 1);
    }

    #[test]
    fn orphan_head_is_tolerated_only_with_drops() {
        let orphan = vec![mark(2, labels::RET, 0, 0), mark(3, labels::INV, 1, 0)];
        assert!(History::from_traces(&[trace(0, 0, orphan.clone())]).is_err());
        let h = History::from_traces(&[trace(0, 4, orphan)]).expect("ring-truncated head");
        assert_eq!(h.total_ops(), 0);
        assert_eq!(h.dropped_events, 4);
    }

    #[test]
    fn nested_inv_is_malformed() {
        let traces = vec![trace(
            0,
            0,
            vec![mark(1, labels::INV, 0, 0), mark(2, labels::INV, 1, 0)],
        )];
        assert!(History::from_traces(&traces).is_err());
    }

    #[test]
    fn foreign_marks_are_ignored() {
        let traces = vec![trace(
            0,
            0,
            vec![
                mark(0, "torture-op", 3, 1),
                mark(1, labels::INV, 0, 1),
                mark(2, labels::RET, 0, 0),
            ],
        )];
        let h = History::from_traces(&traces).expect("well-formed");
        assert_eq!(h.total_ops(), 1);
    }
}
