//! Seeded generation of *valid* histories — executions of the sequential
//! register-bank model with jittered (but containing) timestamp intervals.
//!
//! The generator linearizes first and decorates with timestamps second, so
//! every synthesized history is linearizable by construction; the mutation
//! self-tests then corrupt these and assert the checker notices.

use crate::{History, Op};

/// splitmix64 — the same tiny PRNG the torture harness derives seeds with.
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    /// Seeds the generator (the zero seed is remapped to a fixed odd word).
    pub fn new(seed: u64) -> Self {
        Self(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Synthesizes a linearizable history: `threads` threads each perform
/// `ops_per_thread` operations against `pairs` registers, `write_pct`
/// percent of them increments (recording the observed old value) and the
/// rest multi-register reads. The true linearization order is a seeded
/// shuffle of all thread slots; timestamps are jittered around each op's
/// global slot such that intervals of adjacent ops overlap but each
/// recorded interval still contains its true linearization point.
pub fn synth_history(
    seed: u64,
    threads: usize,
    ops_per_thread: usize,
    pairs: usize,
    write_pct: u32,
) -> History {
    assert!(threads > 0 && pairs > 0);
    let mut rng = Prng::new(seed);

    // Deck of thread slots, Fisher–Yates shuffled: the linearization order.
    let mut deck: Vec<u32> = (0..threads as u32)
        .flat_map(|t| std::iter::repeat_n(t, ops_per_thread))
        .collect();
    for i in (1..deck.len()).rev() {
        deck.swap(i, rng.below(i as u64 + 1) as usize);
    }

    let mut state = vec![0u64; pairs];
    let mut hist = History {
        threads: vec![Vec::new(); threads],
        ..History::default()
    };
    for (g, &t) in deck.iter().enumerate() {
        // True linearization point of slot g is 10*(g+1); jitter ≤ 4 on
        // each side keeps per-thread order monotone (per-thread gaps are
        // ≥ 10) while letting adjacent global slots overlap in real time.
        let base = 10 * (g as u64 + 1);
        let inv = base - rng.below(5);
        let resp = base + rng.below(5);
        let seq = hist.threads[t as usize].len() as u64;
        let mut op = Op {
            tid: t,
            seq,
            kind: 0,
            inv,
            resp,
            reads: Vec::new(),
            incrs: Vec::new(),
        };
        if rng.below(100) < u64::from(write_pct) {
            op.kind = 1;
            let p = rng.below(pairs as u64) as u32;
            op.incrs.push((p, state[p as usize]));
            state[p as usize] += 1;
        } else {
            let span = 1 + rng.below(3.min(pairs as u64)) as usize;
            let start = rng.below(pairs as u64) as usize;
            for k in 0..span {
                let p = (start + k) % pairs;
                op.reads.push((p as u32, state[p]));
            }
        }
        hist.threads[t as usize].push(op);
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check, CheckConfig};

    #[test]
    fn synthesized_histories_are_linearizable() {
        for seed in 0..6u64 {
            let h = synth_history(seed, 3, 12, 4, 40);
            assert_eq!(h.total_ops(), 36);
            let v = check(&h, &CheckConfig::default());
            assert!(v.is_linearizable(), "seed {seed}: {v}");
        }
    }

    #[test]
    fn per_thread_timestamps_are_monotone() {
        let h = synth_history(7, 4, 10, 3, 50);
        for ops in &h.threads {
            for w in ops.windows(2) {
                assert!(w[0].resp < w[1].inv || w[0].inv < w[1].inv);
                assert!(w[0].inv <= w[0].resp);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            synth_history(42, 3, 8, 2, 30),
            synth_history(42, 3, 8, 2, 30)
        );
    }
}
