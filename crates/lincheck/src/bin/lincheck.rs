//! Standalone checker: judge a recorded JSONL history (an exporter dump or
//! a torture postmortem file) from the command line.
//!
//! ```text
//! lincheck <trace.jsonl> [--max-nodes N]
//!          [--mutate drop-commit|swap-commits|duplicate-read] [--mutate-seed S]
//! ```
//!
//! Exit status: 0 linearizable, 1 non-linearizable, 2 unknown
//! (incomplete history or budget exhausted), 3 usage or extraction error.
//!
//! `--mutate` corrupts the extracted history with one seeded mutation
//! before checking — the documented way to watch the checker catch an
//! injected bug on a real recorded history.

use std::process::ExitCode;

use sprwl_lincheck::mutate::{self, Mutation};
use sprwl_lincheck::{check, CheckConfig, History, Verdict};

fn usage() -> ExitCode {
    eprintln!(
        "usage: lincheck <trace.jsonl> [--max-nodes N] \
         [--mutate drop-commit|swap-commits|duplicate-read] [--mutate-seed S]"
    );
    ExitCode::from(3)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path: Option<String> = None;
    let mut cfg = CheckConfig::default();
    let mut mutation: Option<Mutation> = None;
    let mut mutate_seed = 0u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-nodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.max_nodes = n,
                None => return usage(),
            },
            "--mutate" => match args.next().as_deref().and_then(Mutation::parse) {
                Some(m) => mutation = Some(m),
                None => return usage(),
            },
            "--mutate-seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => mutate_seed = s,
                None => return usage(),
            },
            "-h" | "--help" => return usage(),
            _ if path.is_none() && !a.starts_with('-') => path = Some(a),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lincheck: cannot read {path}: {e}");
            return ExitCode::from(3);
        }
    };
    let mut hist = match History::from_jsonl(&text) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("lincheck: malformed history in {path}: {e}");
            return ExitCode::from(3);
        }
    };
    eprintln!(
        "lincheck: {} ops across {} threads, {} registers, {} dropped events, {} truncated ops",
        hist.total_ops(),
        hist.threads.len(),
        hist.num_registers(),
        hist.dropped_events,
        hist.truncated_ops,
    );
    if let Some(m) = mutation {
        match mutate::apply(&hist, m, mutate_seed) {
            Some(bad) => {
                eprintln!(
                    "lincheck: injected mutation {} (seed {mutate_seed})",
                    m.name()
                );
                hist = bad;
            }
            None => {
                eprintln!(
                    "lincheck: mutation {} found no eligible site in this history",
                    m.name()
                );
                return ExitCode::from(3);
            }
        }
    }
    let verdict = check(&hist, &cfg);
    println!("{verdict}");
    match verdict {
        Verdict::Linearizable => ExitCode::SUCCESS,
        Verdict::NonLinearizable(_) => ExitCode::from(1),
        Verdict::Unknown(_) => ExitCode::from(2),
    }
}
