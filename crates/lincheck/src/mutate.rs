//! History mutators for checker self-tests: each mutation models a real
//! synchronization-bug symptom and is constructed so that applying it to a
//! valid history *must* flip the verdict to non-linearizable.
//!
//! Why each mutation is guaranteed to flip (given a history where the
//! observed old values on some register form the chain `0, 1, 2, …`, as
//! every real fetch-and-add history does):
//!
//! - **DropCommit** removes an increment observing old `k` on a register
//!   where some *other* op observed a value `≥ k+1` — with the increment
//!   gone, the model can never raise the register past `k`, so that
//!   observation is unsatisfiable (a lost update).
//! - **SwapCommits** exchanges the observed old values of two increments
//!   on one register from *different threads* that are ordered in real
//!   time — after the swap, the model order required by the old-value
//!   chain contradicts the real-time order (a reordered commit).
//! - **DuplicateRead** appends a new single-read op observing a *stale*
//!   value of a register after every other op has responded — by then the
//!   register has moved past the stale value, and real time forces the
//!   duplicate to linearize last (a use-after-unlock / torn republish).

use crate::{History, Op};

/// The mutation kinds, each modeling one bug symptom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Remove a committed increment another op's observation depends on.
    DropCommit,
    /// Swap the observed old values of two real-time-ordered increments
    /// on one register across threads.
    SwapCommits,
    /// Append a stale read of a register after the full history completed.
    DuplicateRead,
}

impl Mutation {
    /// All mutation kinds, for exhaustive self-tests.
    pub const ALL: [Mutation; 3] = [
        Mutation::DropCommit,
        Mutation::SwapCommits,
        Mutation::DuplicateRead,
    ];

    /// Stable CLI/diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropCommit => "drop-commit",
            Mutation::SwapCommits => "swap-commits",
            Mutation::DuplicateRead => "duplicate-read",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Flat handle to one op: `(thread index, op index)`.
type Loc = (usize, usize);

fn ops(h: &History) -> impl Iterator<Item = (Loc, &Op)> + '_ {
    h.threads
        .iter()
        .enumerate()
        .flat_map(|(t, v)| v.iter().enumerate().map(move |(i, o)| ((t, i), o)))
}

/// Applies `m` to a copy of `h`, choosing among the eligible sites by
/// `seed`. Returns `None` when the history has no eligible site (e.g. no
/// two cross-thread increments on a common register). Deterministic in
/// `(h, m, seed)`.
pub fn apply(h: &History, m: Mutation, seed: u64) -> Option<History> {
    match m {
        Mutation::DropCommit => drop_commit(h, seed),
        Mutation::SwapCommits => swap_commits(h, seed),
        Mutation::DuplicateRead => duplicate_read(h, seed),
    }
}

fn pick<T>(cands: Vec<T>, seed: u64) -> Option<T> {
    if cands.is_empty() {
        return None;
    }
    let i = (seed % cands.len() as u64) as usize;
    cands.into_iter().nth(i)
}

/// Highest value of register `r` observed anywhere in `h` (reads see the
/// post-state history too, increments their old value).
fn max_observation(h: &History, r: u32) -> u64 {
    ops(h)
        .flat_map(|(_, o)| o.reads.iter().chain(o.incrs.iter()))
        .filter(|&&(reg, _)| reg == r)
        .map(|&(_, v)| v)
        .max()
        .unwrap_or(0)
}

fn drop_commit(h: &History, seed: u64) -> Option<History> {
    // Eligible: an increment observing old k on r, where some *other* op
    // observed ≥ k+1 on r (so the drop is noticed).
    let mut cands: Vec<Loc> = Vec::new();
    for (loc, o) in ops(h) {
        for &(r, k) in &o.incrs {
            let depended = ops(h)
                .filter(|&(l2, _)| l2 != loc)
                .flat_map(|(_, o2)| o2.reads.iter().chain(o2.incrs.iter()))
                .any(|&(r2, v2)| r2 == r && v2 > k);
            if depended {
                cands.push(loc);
                break;
            }
        }
    }
    let (t, i) = pick(cands, seed)?;
    let mut out = h.clone();
    out.threads[t].remove(i);
    for (seq, o) in out.threads[t].iter_mut().enumerate() {
        o.seq = seq as u64; // keep per-thread numbering dense
    }
    Some(out)
}

fn swap_commits(h: &History, seed: u64) -> Option<History> {
    // Eligible: two increments on one register, different threads, with
    // distinct old values, strictly ordered in real time.
    let mut cands: Vec<(Loc, usize, Loc, usize)> = Vec::new();
    for (la, a) in ops(h) {
        for (ia, &(ra, olda)) in a.incrs.iter().enumerate() {
            for (lb, b) in ops(h) {
                if lb.0 == la.0 || a.resp >= b.inv {
                    continue; // same thread, or not real-time ordered a → b
                }
                for (ib, &(rb, oldb)) in b.incrs.iter().enumerate() {
                    if ra == rb && olda != oldb {
                        cands.push((la, ia, lb, ib));
                    }
                }
            }
        }
    }
    let ((ta, ia_op), ia, (tb, ib_op), ib) = pick(cands, seed)?;
    let mut out = h.clone();
    let olda = out.threads[ta][ia_op].incrs[ia].1;
    let oldb = out.threads[tb][ib_op].incrs[ib].1;
    out.threads[ta][ia_op].incrs[ia].1 = oldb;
    out.threads[tb][ib_op].incrs[ib].1 = olda;
    Some(out)
}

fn duplicate_read(h: &History, seed: u64) -> Option<History> {
    // Eligible: any register some increment moved past 0 — the appended
    // "reader depart replayed late" observes the stale pre-history value 0
    // after everything else responded.
    let mut regs: Vec<u32> = ops(h)
        .flat_map(|(_, o)| o.incrs.iter())
        .map(|&(r, _)| r)
        .collect();
    regs.sort_unstable();
    regs.dedup();
    regs.retain(|&r| max_observation(h, r) >= 1);
    let r = pick(regs, seed)?;
    let mut out = h.clone();
    let after = ops(h).map(|(_, o)| o.resp).max().unwrap_or(0) + 10;
    let tid = out.threads.len() as u32;
    out.threads.push(vec![Op {
        tid,
        seq: 0,
        kind: 2,
        inv: after,
        resp: after + 1,
        reads: vec![(r, 0)],
        incrs: Vec::new(),
    }]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synth_history;
    use crate::{check, CheckConfig};

    #[test]
    fn every_mutation_has_sites_on_a_real_history() {
        let h = synth_history(3, 3, 16, 4, 50);
        for m in Mutation::ALL {
            assert!(apply(&h, m, 0).is_some(), "{} found no site", m.name());
        }
    }

    #[test]
    fn mutations_flip_the_verdict() {
        let h = synth_history(11, 3, 16, 4, 50);
        assert!(check(&h, &CheckConfig::default()).is_linearizable());
        for m in Mutation::ALL {
            for seed in 0..4 {
                let Some(bad) = apply(&h, m, seed) else {
                    continue;
                };
                let v = check(&bad, &CheckConfig::default());
                assert!(v.is_violation(), "{} seed {seed}: {v}", m.name());
            }
        }
    }

    #[test]
    fn apply_is_deterministic() {
        let h = synth_history(5, 2, 10, 3, 60);
        for m in Mutation::ALL {
            assert_eq!(apply(&h, m, 9), apply(&h, m, 9));
        }
    }

    #[test]
    fn parse_round_trips() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.name()), Some(m));
        }
        assert_eq!(Mutation::parse("bogus"), None);
    }
}
