//! The Wing–Gong search: DFS over the pending-operation frontier with
//! memoized progress vectors and a node budget.

use std::collections::HashSet;

use crate::History;

/// Checker limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Maximum candidate applications before the search gives up with
    /// [`Verdict::Unknown`]. Lock-guarded histories are heavily ordered in
    /// real time, so the default is far beyond anything a green torture
    /// case needs while still bounding pathological inputs.
    pub max_nodes: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            max_nodes: 2_000_000,
        }
    }
}

/// The checker's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A linearization exists: the history is consistent with some atomic
    /// sequential execution.
    Linearizable,
    /// No order satisfying program order, real time, and the sequential
    /// model exists. The string describes the deepest frontier the search
    /// reached and why each pending operation is stuck there.
    NonLinearizable(String),
    /// The checker could not decide: the history is incomplete (ring
    /// overwrite holes) or the search exceeded its node budget.
    Unknown(String),
}

impl Verdict {
    /// `true` for [`Verdict::Linearizable`].
    pub fn is_linearizable(&self) -> bool {
        matches!(self, Verdict::Linearizable)
    }

    /// `true` for [`Verdict::NonLinearizable`].
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::NonLinearizable(_))
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Linearizable => write!(f, "linearizable"),
            Verdict::NonLinearizable(d) => write!(f, "NON-LINEARIZABLE: {d}"),
            Verdict::Unknown(r) => write!(f, "unknown: {r}"),
        }
    }
}

/// Whether `op` replays correctly against the current register bank: every
/// read sees the register's value, every increment sees it as the old
/// value. All observations are against the pre-state — the op is atomic
/// and each register appears at most once per op in our recorders.
fn applies(op: &crate::Op, state: &[u64]) -> bool {
    op.reads.iter().all(|&(r, v)| state[r as usize] == v)
        && op.incrs.iter().all(|&(r, old)| state[r as usize] == old)
}

/// One-phrase explanation of why `op` cannot be linearized next.
fn stuck_reason(op: &crate::Op, state: &[u64]) -> Option<String> {
    for &(r, v) in &op.reads {
        if state[r as usize] != v {
            return Some(format!(
                "read of register {r} observed {v}, model holds {}",
                state[r as usize]
            ));
        }
    }
    for &(r, old) in &op.incrs {
        if state[r as usize] != old {
            return Some(format!(
                "increment on register {r} observed old {old}, model holds {}",
                state[r as usize]
            ));
        }
    }
    None
}

/// Searches for a linearization of `h`.
///
/// Candidates at each step are each thread's *next* pending operation
/// (program order); a candidate is real-time eligible iff no other
/// thread's next pending op responded strictly before the candidate's
/// invocation — per-thread response timestamps are monotone, so checking
/// only the heads is sufficient. The register bank after any prefix is a
/// pure function of the per-thread progress vector, so visited vectors are
/// memoized and never re-expanded.
///
/// Deterministic: candidate order is fixed (thread index), and the memo
/// set is only queried for membership — the verdict for a given history
/// and config never varies between runs.
pub fn check(h: &History, cfg: &CheckConfig) -> Verdict {
    if h.dropped_events > 0 {
        return Verdict::Unknown(format!(
            "incomplete history: {} events lost to trace-ring overwrite \
             (enlarge the ring to check this run)",
            h.dropped_events
        ));
    }
    let n = h.threads.len();
    let total = h.total_ops();
    if total == 0 {
        return Verdict::Linearizable;
    }
    let mut state = vec![0u64; h.num_registers()];
    // Progress vector: ops linearized per thread. u32 indices keep the
    // memo set compact.
    let mut idx = vec![0u32; n];
    let mut visited: HashSet<Vec<u32>> = HashSet::new();
    visited.insert(idx.clone());

    // Explicit DFS stack: the thread applied at each depth, plus the
    // candidate cursor to resume from when backtracking to that depth.
    let mut chosen: Vec<usize> = Vec::with_capacity(total);
    let mut cursors: Vec<usize> = Vec::with_capacity(total);
    let mut cursor = 0usize;
    let mut nodes = 0u64;

    // Deepest dead-end frontier seen, for the violation report.
    let mut best: Option<(usize, String)> = None;

    loop {
        if chosen.len() == total {
            return Verdict::Linearizable;
        }

        let mut advanced = false;
        while cursor < n {
            let c = cursor;
            cursor += 1;
            let Some(op) = h.threads[c].get(idx[c] as usize) else {
                continue;
            };
            // Real-time order: another thread's pending head that responded
            // before our invocation must linearize first.
            let precluded = (0..n).any(|u| {
                u != c
                    && h.threads[u]
                        .get(idx[u] as usize)
                        .is_some_and(|p| p.resp < op.inv)
            });
            if precluded {
                continue;
            }
            nodes += 1;
            if nodes > cfg.max_nodes {
                return Verdict::Unknown(format!(
                    "node budget exhausted ({} candidate applications, {}/{} ops placed)",
                    cfg.max_nodes,
                    chosen.len(),
                    total
                ));
            }
            if !applies(op, &state) {
                continue;
            }
            for &(r, _) in &op.incrs {
                state[r as usize] += 1;
            }
            idx[c] += 1;
            if !visited.insert(idx.clone()) {
                idx[c] -= 1;
                for &(r, _) in &op.incrs {
                    state[r as usize] -= 1;
                }
                continue;
            }
            chosen.push(c);
            cursors.push(cursor);
            cursor = 0;
            advanced = true;
            break;
        }
        if advanced {
            continue;
        }

        // Dead end: remember the deepest one for diagnostics.
        if best.as_ref().is_none_or(|(d, _)| chosen.len() > *d) {
            best = Some((chosen.len(), frontier_report(h, &idx, &state)));
        }

        match chosen.pop() {
            None => {
                let (depth, report) = best.expect("at least one dead end recorded");
                return Verdict::NonLinearizable(format!(
                    "no linearization exists; deepest frontier placed {depth}/{total} ops:\n{report}"
                ));
            }
            Some(c) => {
                idx[c] -= 1;
                let op = &h.threads[c][idx[c] as usize];
                for &(r, _) in &op.incrs {
                    state[r as usize] -= 1;
                }
                cursor = cursors.pop().expect("cursor stack in sync");
            }
        }
    }
}

/// Describes each thread's pending head at a stuck frontier.
fn frontier_report(h: &History, idx: &[u32], state: &[u64]) -> String {
    let n = h.threads.len();
    let mut out = String::new();
    for (c, ops) in h.threads.iter().enumerate() {
        let Some(op) = ops.get(idx[c] as usize) else {
            continue;
        };
        let precluded = (0..n).any(|u| {
            u != c
                && h.threads[u]
                    .get(idx[u] as usize)
                    .is_some_and(|p| p.resp < op.inv)
        });
        let why = if precluded {
            "blocked by real-time order (another pending op responded first)".to_string()
        } else {
            match stuck_reason(op, state) {
                Some(r) => r,
                None => "applies, but every successor state was already explored".to_string(),
            }
        };
        out.push_str(&format!(
            "    thread {} op {} (kind {}, inv {}, resp {}): {}\n",
            op.tid, op.seq, op.kind, op.inv, op.resp, why
        ));
    }
    if out.is_empty() {
        out.push_str("    (no pending operations)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    fn op(
        tid: u32,
        seq: u64,
        inv: u64,
        resp: u64,
        reads: Vec<(u32, u64)>,
        incrs: Vec<(u32, u64)>,
    ) -> Op {
        Op {
            tid,
            seq,
            kind: 0,
            inv,
            resp,
            reads,
            incrs,
        }
    }

    fn hist(threads: Vec<Vec<Op>>) -> History {
        History {
            threads,
            dropped_events: 0,
            truncated_ops: 0,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check(&hist(vec![]), &CheckConfig::default()).is_linearizable());
    }

    #[test]
    fn sequential_counter_is_linearizable() {
        // One thread: incr old 0, incr old 1, read 2.
        let h = hist(vec![vec![
            op(0, 0, 1, 2, vec![], vec![(0, 0)]),
            op(0, 1, 3, 4, vec![], vec![(0, 1)]),
            op(0, 2, 5, 6, vec![(0, 2)], vec![]),
        ]]);
        assert!(check(&h, &CheckConfig::default()).is_linearizable());
    }

    #[test]
    fn concurrent_ops_may_reorder_against_timestamps() {
        // T0 increments (old 1) *while* T1 increments (old 0): overlapping
        // intervals, so the checker must place T1 first even though T0's
        // interval starts earlier.
        let h = hist(vec![
            vec![op(0, 0, 1, 10, vec![], vec![(0, 1)])],
            vec![op(1, 0, 2, 9, vec![], vec![(0, 0)])],
        ]);
        assert!(check(&h, &CheckConfig::default()).is_linearizable());
    }

    #[test]
    fn real_time_order_is_enforced() {
        // T0's increment (old 1) finished strictly before T1's (old 0)
        // began — the model order contradicts real time.
        let h = hist(vec![
            vec![op(0, 0, 1, 2, vec![], vec![(0, 1)])],
            vec![op(1, 0, 5, 6, vec![], vec![(0, 0)])],
        ]);
        let v = check(&h, &CheckConfig::default());
        assert!(v.is_violation(), "{v}");
    }

    #[test]
    fn stale_read_is_a_violation() {
        // A read of 0 after an increment (old 0) completed in real time.
        let h = hist(vec![
            vec![op(0, 0, 1, 2, vec![], vec![(0, 0)])],
            vec![op(1, 0, 5, 6, vec![(0, 0)], vec![])],
        ]);
        let v = check(&h, &CheckConfig::default());
        assert!(v.is_violation(), "{v}");
        let Verdict::NonLinearizable(d) = v else {
            unreachable!()
        };
        assert!(d.contains("read of register 0"), "{d}");
    }

    #[test]
    fn torn_multi_register_read_is_a_violation() {
        // A writer increments registers 0 and 1 in one atomic op; a
        // concurrent reader sees 0 updated but 1 not — impossible atomically.
        let h = hist(vec![
            vec![op(0, 0, 1, 10, vec![], vec![(0, 0), (1, 0)])],
            vec![op(1, 0, 2, 9, vec![(0, 1), (1, 0)], vec![])],
        ]);
        let v = check(&h, &CheckConfig::default());
        assert!(v.is_violation(), "{v}");
    }

    #[test]
    fn duplicate_old_values_are_a_violation() {
        // Two increments both claiming old 0 on one register: a lost update.
        let h = hist(vec![
            vec![op(0, 0, 1, 10, vec![], vec![(0, 0)])],
            vec![op(1, 0, 2, 9, vec![], vec![(0, 0)])],
        ]);
        assert!(check(&h, &CheckConfig::default()).is_violation());
    }

    #[test]
    fn dropped_events_answer_unknown() {
        let mut h = hist(vec![vec![op(0, 0, 1, 2, vec![], vec![(0, 0)])]]);
        h.dropped_events = 3;
        assert!(matches!(
            check(&h, &CheckConfig::default()),
            Verdict::Unknown(_)
        ));
    }

    #[test]
    fn node_budget_answers_unknown() {
        let h = hist(vec![
            vec![op(0, 0, 1, 10, vec![], vec![(0, 0)])],
            vec![op(1, 0, 1, 10, vec![], vec![(1, 0)])],
        ]);
        assert!(matches!(
            check(&h, &CheckConfig { max_nodes: 1 }),
            Verdict::Unknown(_)
        ));
    }

    #[test]
    fn verdict_is_deterministic() {
        let h = hist(vec![
            vec![
                op(0, 0, 1, 10, vec![], vec![(0, 1)]),
                op(0, 1, 12, 14, vec![(0, 2), (1, 1)], vec![]),
            ],
            vec![
                op(1, 0, 2, 9, vec![], vec![(0, 0)]),
                op(1, 1, 11, 13, vec![], vec![(1, 0)]),
            ],
        ]);
        let a = check(&h, &CheckConfig::default());
        for _ in 0..5 {
            assert_eq!(a, check(&h, &CheckConfig::default()));
        }
    }
}
