//! Mutation self-tests (checker soundness): every seeded corruption of a
//! valid history must flip the verdict to non-linearizable, across many
//! seeds and history shapes. A checker that misses any of these would
//! also miss the corresponding real lock bug.

use sprwl_lincheck::mutate::{apply, Mutation};
use sprwl_lincheck::synth::synth_history;
use sprwl_lincheck::{check, CheckConfig, Verdict};

fn shapes() -> Vec<(u64, usize, usize, usize, u32)> {
    vec![
        // (seed, threads, ops/thread, pairs, write_pct)
        (0xA11CE, 2, 12, 2, 50),
        (0xB0B, 3, 16, 4, 40),
        (0xC0FFEE, 4, 10, 3, 70),
        (0xD00D, 3, 20, 5, 30),
    ]
}

#[test]
fn baselines_are_linearizable() {
    for (seed, t, n, p, w) in shapes() {
        let h = synth_history(seed, t, n, p, w);
        let v = check(&h, &CheckConfig::default());
        assert!(v.is_linearizable(), "shape seed {seed:#x}: {v}");
    }
}

#[test]
fn drop_commit_flips_verdict() {
    assert_mutation_flips(Mutation::DropCommit);
}

#[test]
fn swap_commits_flips_verdict() {
    assert_mutation_flips(Mutation::SwapCommits);
}

#[test]
fn duplicate_read_flips_verdict() {
    assert_mutation_flips(Mutation::DuplicateRead);
}

fn assert_mutation_flips(m: Mutation) {
    let mut applied = 0u32;
    for (seed, t, n, p, w) in shapes() {
        let h = synth_history(seed, t, n, p, w);
        for mseed in 0..8u64 {
            let Some(bad) = apply(&h, m, mseed) else {
                continue;
            };
            applied += 1;
            let v = check(&bad, &CheckConfig::default());
            assert!(
                v.is_violation(),
                "{} (shape {seed:#x}, mutation seed {mseed}) went undetected: {v}",
                m.name()
            );
        }
    }
    assert!(applied >= 8, "{}: only {applied} eligible sites", m.name());
}

#[test]
fn violation_reports_name_the_stuck_operation() {
    let h = synth_history(0xF00D, 3, 14, 3, 50);
    let bad = apply(&h, Mutation::DuplicateRead, 1).expect("eligible site");
    match check(&bad, &CheckConfig::default()) {
        Verdict::NonLinearizable(d) => {
            assert!(d.contains("thread"), "diagnostic lacks thread info: {d}");
            assert!(d.contains("deepest frontier"), "{d}");
        }
        v => panic!("expected violation, got {v}"),
    }
}

#[test]
fn mutated_verdicts_are_deterministic() {
    let h = synth_history(0xDEED, 3, 12, 3, 50);
    for m in Mutation::ALL {
        let Some(bad) = apply(&h, m, 2) else { continue };
        let first = check(&bad, &CheckConfig::default());
        for _ in 0..3 {
            assert_eq!(first, check(&bad, &CheckConfig::default()));
        }
    }
}
