//! Exit-code contract of the `lincheck` binary. CI and the torture
//! harness both branch on these codes, so they are pinned here:
//! 0 = linearizable, 1 = non-linearizable, 2 = unknown (budget or
//! incomplete history), 3 = usage/extraction error. In particular a
//! budget-starved `Unknown` (2) must never be conflated with a real
//! violation (1) — a gate that treats "any non-zero" as "bug found"
//! would pass vacuously the day the budget is too small.

use std::path::PathBuf;
use std::process::Command;

fn golden() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../torture/tests/golden/det_cross_smoke.trace.jsonl")
}

fn run(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_lincheck"))
        .args(args)
        .output()
        .expect("spawn lincheck")
        .status
        .code()
        .expect("exit code")
}

#[test]
fn linearizable_history_exits_zero() {
    let g = golden();
    assert_eq!(run(&[g.to_str().unwrap()]), 0);
}

#[test]
fn injected_mutation_exits_one() {
    let g = golden();
    assert_eq!(run(&[g.to_str().unwrap(), "--mutate", "drop-commit"]), 1);
}

#[test]
fn starved_budget_exits_two_not_one() {
    let g = golden();
    assert_eq!(
        run(&[g.to_str().unwrap(), "--max-nodes", "1"]),
        2,
        "a budget-starved verdict is Unknown, never a violation"
    );
    // And starving the budget of a *mutated* history must also answer
    // Unknown: the checker cannot have proven a violation in one node.
    assert_eq!(
        run(&[
            g.to_str().unwrap(),
            "--mutate",
            "drop-commit",
            "--max-nodes",
            "1"
        ]),
        2
    );
}

#[test]
fn usage_errors_exit_three() {
    assert_eq!(run(&[]), 3, "no trace path");
    assert_eq!(run(&["--bogus-flag"]), 3, "unknown flag");
    assert_eq!(run(&["/nonexistent/trace.jsonl"]), 3, "unreadable file");
    let g = golden();
    assert_eq!(
        run(&[g.to_str().unwrap(), "--max-nodes", "not-a-number"]),
        3,
        "malformed flag value"
    );
}
