//! Future-based guard acquisition over one shard's [`SpRwl`].
//!
//! The blocking lock parks waiters inside `read_section`/`write_section`
//! by spinning; a service front-end instead wants *futures* that resolve
//! when admission opens, parking the worker on the shard's [`WakeList`]
//! meanwhile. Two invariants make the futures safe to drop at any point
//! (async callers cancel by dropping):
//!
//! * **Never pend while announced.** A [`ReadFuture`] poll is one
//!   admit-or-withdraw attempt ([`SpRwl::try_enter_read`]): if it cannot
//!   enter it has already unflagged itself before returning `Pending`, so
//!   a dropped future never strands a reader flag, SNZI arrival, or BRAVO
//!   visible-table slot that would wedge a fallback writer's reader drain.
//!   The only cross-poll state is the §3.3 versioned-SGL anti-starvation
//!   ticket, and [`ReadFuture::drop`] clears it via
//!   [`SpRwl::cancel_read_admission`] when the future dies unresolved.
//! * **Register, then re-check.** Both futures register their waker and
//!   then retry once before pending, closing the race where the writer
//!   notified the wake-list between the failed attempt and the
//!   registration.
//!
//! A [`WriteFuture`] registers nothing at all — it resolves when the
//! fallback lock looks free ([`SpRwl::write_admission_open`]) and the
//! caller then runs the ordinary synchronous `write_section`, which
//! re-arbitrates under the lock's own protocol. Dropping it mid-acquire
//! is trivially safe.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use htm_sim::Direct;
use sprwl::adaptive::ReaderReg;
use sprwl::SpRwl;
use sprwl_locks::{LockThread, SectionBody, SectionId};

use crate::wake::WakeList;

/// One shard's lock plus the wake-list its pending acquirers park on.
#[derive(Debug)]
pub struct ShardLock {
    lock: SpRwl,
    wake: WakeList,
}

impl ShardLock {
    /// Wraps a shard lock with an empty wake-list.
    pub fn new(lock: SpRwl) -> Self {
        Self {
            lock,
            wake: WakeList::new(),
        }
    }

    /// The underlying lock (quiescence checks, debug probes).
    pub fn lock(&self) -> &SpRwl {
        &self.lock
    }

    /// The shard's wake-list (tests and introspection).
    pub fn wake(&self) -> &WakeList {
        &self.wake
    }

    /// A future resolving to an uninstrumented-read admission on this
    /// shard. Cancel by dropping, at any point.
    pub fn read<'a, 'h>(&'a self, d: Direct<'h>, tid: usize) -> ReadFuture<'a, 'h> {
        ReadFuture {
            shard: self,
            d,
            tid,
            resolved: false,
        }
    }

    /// A future resolving when a write section started now would not park
    /// behind a fallback writer. Purely advisory (see module docs); follow
    /// it with [`ShardLock::write_section`].
    pub fn write_ready<'a, 'h>(&'a self, d: Direct<'h>) -> WriteFuture<'a, 'h> {
        WriteFuture { shard: self, d }
    }

    /// Runs a write critical section and then wakes every parked future —
    /// completing a writer is the only event that changes admission state,
    /// so this is the single notify point of the front-end.
    pub fn write_section(&self, t: &mut LockThread<'_>, sec: SectionId, f: SectionBody<'_>) -> u64 {
        use sprwl_locks::RwSync;
        let r = self.lock.write_section(t, sec, f);
        self.wake.notify_all();
        r
    }
}

/// A pending read admission on one shard. Resolves to a [`ReadGuard`].
#[derive(Debug)]
pub struct ReadFuture<'a, 'h> {
    shard: &'a ShardLock,
    d: Direct<'h>,
    tid: usize,
    resolved: bool,
}

impl<'a, 'h> Future for ReadFuture<'a, 'h> {
    type Output = ReadGuard<'a, 'h>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mem = this.d.htm().memory();
        let mut admit = this.shard.lock.try_enter_read(&this.d, this.tid, mem);
        if admit.is_none() {
            this.shard.wake.register(cx.waker());
            admit = this.shard.lock.try_enter_read(&this.d, this.tid, mem);
        }
        match admit {
            Some(reg) => {
                this.resolved = true;
                Poll::Ready(ReadGuard {
                    shard: this.shard,
                    d: this.d,
                    tid: this.tid,
                    reg: Some(reg),
                })
            }
            None => Poll::Pending,
        }
    }
}

impl Drop for ReadFuture<'_, '_> {
    fn drop(&mut self) {
        if !self.resolved {
            // A pending poll may have left the §3.3 anti-starvation ticket
            // registered; clear it or fallback writers keep deferring to a
            // reader that no longer exists (and quiescence checks fail).
            self.shard.lock.cancel_read_admission(self.tid);
        }
    }
}

/// An admitted uninstrumented reader; the section runs through
/// [`ReadGuard::access`] and ends when the guard drops.
#[derive(Debug)]
pub struct ReadGuard<'a, 'h> {
    shard: &'a ShardLock,
    d: Direct<'h>,
    tid: usize,
    reg: Option<ReaderReg>,
}

impl<'h> ReadGuard<'_, 'h> {
    /// Direct (uninstrumented) memory access for the section body; it
    /// implements [`htm_sim::MemAccess`], so shared structures take it
    /// unchanged.
    pub fn access(&self) -> Direct<'h> {
        self.d
    }
}

impl Drop for ReadGuard<'_, '_> {
    fn drop(&mut self) {
        if let Some(reg) = self.reg.take() {
            self.shard.lock.exit_read(&self.d, self.tid, reg);
        }
    }
}

/// A pending writer-admission probe on one shard. Resolves to `()`; run
/// the write section afterwards.
#[derive(Debug)]
pub struct WriteFuture<'a, 'h> {
    shard: &'a ShardLock,
    d: Direct<'h>,
}

impl Future for WriteFuture<'_, '_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mem = this.d.htm().memory();
        if this.shard.lock.write_admission_open(mem) {
            return Poll::Ready(());
        }
        this.shard.wake.register(cx.waker());
        if this.shard.lock.write_admission_open(mem) {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}
