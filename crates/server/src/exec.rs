//! A minimal future driver — the crate's whole "executor".
//!
//! Each service worker is an OS thread that drives one future at a time,
//! so all we need is [`block_on`]: poll, and when pending, park until the
//! waker fires. Parking uses [`htm_sim::clock::SpinWait`], whose every
//! `snooze` is a full yield point under the deterministic scheduler — a
//! parked worker keeps handing its turns to peers, so a whole service run
//! stays schedulable and byte-reproducible. No tokio, consistent with the
//! repo's offline-shims approach.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use htm_sim::clock::SpinWait;

/// Re-poll even without a wake after this many snoozes. Wake-lists are
/// notified after every write section, but a notification can race a
/// registration; the bounded re-poll turns a lost wake into extra latency
/// instead of a hang, and under the deterministic scheduler it keeps the
/// schedule finite.
const REPOLL_EVERY: u32 = 64;

/// The waker payload: a flag the parked thread spins on.
struct ParkFlag {
    woken: AtomicBool,
}

impl Wake for ParkFlag {
    fn wake(self: Arc<Self>) {
        self.woken.store(true, Ordering::Release);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.store(true, Ordering::Release);
    }
}

/// Drives `fut` to completion on the calling thread.
///
/// Deterministic-scheduler safe: the park loop only spins through
/// [`SpinWait::snooze`] (never an OS block), so a bound thread keeps
/// yielding schedule turns while parked.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let flag = Arc::new(ParkFlag {
        woken: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&flag));
    let mut cx = Context::from_waker(&waker);
    let mut fut = pin!(fut);
    let mut spin = SpinWait::new();
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                let mut budget = REPOLL_EVERY;
                while !flag.woken.swap(false, Ordering::Acquire) && budget > 0 {
                    spin.snooze();
                    budget -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_future_returns_immediately() {
        assert_eq!(block_on(std::future::ready(7)), 7);
    }

    #[test]
    fn pending_future_is_repolled_until_ready() {
        struct CountDown(u32);
        impl Future for CountDown {
            type Output = u32;
            fn poll(mut self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.0 == 0 {
                    Poll::Ready(42)
                } else {
                    self.0 -= 1;
                    // Never call the waker: only the bounded re-poll can
                    // finish this future.
                    let _ = cx;
                    Poll::Pending
                }
            }
        }
        assert_eq!(block_on(CountDown(3)), 42);
    }

    #[test]
    fn wake_from_another_thread_unparks() {
        struct Gate(Arc<AtomicBool>);
        impl Future for Gate {
            type Output = ();
            fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0.load(Ordering::Acquire) {
                    Poll::Ready(())
                } else {
                    cx.waker().wake_by_ref();
                    // Waking ourselves forces a re-poll loop; flip the gate
                    // from a peer to finish.
                    Poll::Pending
                }
            }
        }
        let open = Arc::new(AtomicBool::new(false));
        let gate = Gate(Arc::clone(&open));
        let t = std::thread::spawn({
            let open = Arc::clone(&open);
            move || open.store(true, Ordering::Release)
        });
        block_on(gate);
        t.join().unwrap();
    }
}
